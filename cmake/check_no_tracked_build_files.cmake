# Guard test: no build tree may ever be committed again.
#
# A build-tsan/ tree (object files, CMake caches, binaries) was once
# checked in by accident; .gitignore now excludes build*/, and this
# script makes the mistake a test failure instead of a review catch.
#
# Run as: cmake -DREPO_DIR=<source dir> -P check_no_tracked_build_files.cmake
# Passes trivially when the source tree is not a git checkout (e.g. a
# tarball build) or git is unavailable.

if(NOT DEFINED REPO_DIR)
    message(FATAL_ERROR "REPO_DIR not set")
endif()

find_program(GIT_EXECUTABLE git)
if(NOT GIT_EXECUTABLE OR NOT EXISTS "${REPO_DIR}/.git")
    message(STATUS "not a git checkout; nothing to check")
    return()
endif()

execute_process(
    COMMAND "${GIT_EXECUTABLE}" ls-files -- "build*/**"
    WORKING_DIRECTORY "${REPO_DIR}"
    OUTPUT_VARIABLE tracked
    RESULT_VARIABLE status
    OUTPUT_STRIP_TRAILING_WHITESPACE)

if(NOT status EQUAL 0)
    message(STATUS "git ls-files failed (${status}); nothing to check")
    return()
endif()

if(NOT tracked STREQUAL "")
    message(FATAL_ERROR
            "tracked files under a build directory:\n${tracked}\n"
            "Build trees are generated artifacts; remove them with "
            "'git rm -r --cached <dir>' (build*/ is gitignored).")
endif()

message(STATUS "no tracked files under build*/")
