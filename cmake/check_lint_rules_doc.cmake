# Keeps docs/LINT_RULES.md in lockstep with the rule catalogue that
# statsched_lint actually enforces (tools/lint/lint.cc).
#
# Check mode (the `lint_rules_doc` ctest):
#   cmake -DLINT_BIN=<statsched_lint> -DDOC=<docs/LINT_RULES.md> \
#         -P check_lint_rules_doc.cmake
#
# Generate mode (run after editing the catalogue):
#   cmake -DLINT_BIN=build/tools/lint/statsched_lint \
#         -DDOC=docs/LINT_RULES.md -DMODE=generate \
#         -P cmake/check_lint_rules_doc.cmake

if(NOT DEFINED LINT_BIN OR NOT DEFINED DOC)
    message(FATAL_ERROR
            "usage: cmake -DLINT_BIN=<statsched_lint> -DDOC=<doc.md> "
            "[-DMODE=generate] -P check_lint_rules_doc.cmake")
endif()

execute_process(COMMAND ${LINT_BIN} --markdown-rules
                OUTPUT_VARIABLE generated
                RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "${LINT_BIN} --markdown-rules failed (exit ${status})")
endif()

if(DEFINED MODE AND MODE STREQUAL "generate")
    file(WRITE ${DOC} "${generated}")
    message(STATUS "wrote ${DOC}")
    return()
endif()

if(NOT EXISTS ${DOC})
    message(FATAL_ERROR
            "${DOC} does not exist; generate it with:\n"
            "  cmake -DLINT_BIN=${LINT_BIN} -DDOC=${DOC} "
            "-DMODE=generate -P cmake/check_lint_rules_doc.cmake")
endif()

file(READ ${DOC} committed)
if(NOT committed STREQUAL generated)
    message(FATAL_ERROR
            "${DOC} is out of date with the rule catalogue in "
            "tools/lint/lint.cc.\nRegenerate it with:\n"
            "  cmake -DLINT_BIN=${LINT_BIN} -DDOC=${DOC} "
            "-DMODE=generate -P cmake/check_lint_rules_doc.cmake")
endif()
message(STATUS "${DOC} matches the rule catalogue")
