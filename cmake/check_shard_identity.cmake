# Sharding determinism gate, run by ctest (cli_shard_identity).
#
# Runs the same iterate campaign in-process (--shards 0) and sharded
# (--shards 1 and 2, real statsched_worker subprocesses) and asserts
# that stdout is byte-identical and the exit codes agree — the
# ShardedEngine bit-identity contract, checked end to end through the
# real pipe transport. Fault injection is on so the outcome channel
# (failed measurements, retries above the shard layer) is exercised
# across the wire too.
#
# Usage: cmake -DCLI=<statsched_cli> -DWORK_DIR=<scratch>
#              -P check_shard_identity.cmake

if(NOT CLI OR NOT WORK_DIR)
    message(FATAL_ERROR "need -DCLI=... and -DWORK_DIR=...")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

set(CAMPAIGN iterate --benchmark aho --loss 10 --ninit 300
    --ndelta 100 --max 2000 --fault-rate 5 --threads 2)

foreach(shards 0 1 2)
    execute_process(
        COMMAND ${CLI} ${CAMPAIGN} --shards ${shards}
        OUTPUT_FILE "${WORK_DIR}/out_${shards}.txt"
        ERROR_FILE "${WORK_DIR}/err_${shards}.txt"
        RESULT_VARIABLE code)
    if(shards EQUAL 0)
        set(reference_code ${code})
    elseif(NOT code EQUAL reference_code)
        message(FATAL_ERROR "--shards ${shards} exited ${code}, "
            "in-process exited ${reference_code}")
    endif()
endforeach()

foreach(shards 1 2)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                "${WORK_DIR}/out_0.txt" "${WORK_DIR}/out_${shards}.txt"
        RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
        message(FATAL_ERROR "--shards ${shards} stdout differs from "
            "the in-process run (${WORK_DIR}/out_${shards}.txt vs "
            "${WORK_DIR}/out_0.txt)")
    endif()
endforeach()
