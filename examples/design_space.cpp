/**
 * @file
 * Design-space exploration: how large is the assignment space of
 * your processor, when is exhaustive search feasible, and how do the
 * baseline schedulers compare to the exact optimum when it is?
 *
 * Usage:   ./examples/design_space [tasks]
 *          (exhaustive part runs when tasks <= 7)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/assignment_space.hh"
#include "core/baselines.hh"
#include "core/capture_probability.hh"
#include "core/enumerator.hh"
#include "num/duration.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main(int argc, char **argv)
{
    using namespace statsched;
    using core::Topology;

    const unsigned tasks =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;

    const Topology t2 = Topology::ultraSparcT2();
    const core::AssignmentSpace space(t2);

    std::printf("topology %s: %u hardware contexts\n",
                t2.shapeString().c_str(), t2.contexts());
    const num::BigUint count = space.countAssignments(tasks);
    std::printf("assignments of %u tasks: %s (%s to run all at 1 s "
                "each)\n", tasks, count.toScientific(3).c_str(),
                num::Duration::fromSeconds(count).toString().c_str());

    std::printf("random draws to capture a top-1%% assignment with "
                "probability 0.99: %llu\n",
                static_cast<unsigned long long>(
                    core::requiredSampleSize(1.0, 0.99)));

    if (tasks > 7 || tasks % 3 != 0) {
        std::printf("\n(exhaustive comparison runs for 3 or 6 "
                    "tasks; pass 3 or 6)\n");
        return 0;
    }

    // Exhaustive search over the full space with the simulator.
    sim::EngineOptions noiseless;
    noiseless.noiseRelStdDev = 0.0;
    sim::SimulatedEngine engine(
        sim::makeWorkload(sim::Benchmark::IpfwdIntAdd, tasks / 3),
        {}, noiseless);

    double best = 0.0;
    double worst = 1e300;
    core::Assignment best_assignment(t2, {0});
    core::AssignmentEnumerator(t2, tasks).forEach(
        [&](const core::Assignment &a) {
            const double v = engine.deterministic(a);
            if (v > best) {
                best = v;
                best_assignment = a;
            }
            worst = std::min(worst, v);
            return true;
        });

    const double linux_like = engine.deterministic(
        core::linuxLikeAssignment(t2, tasks));
    const double naive = core::naiveExpectedPerformance(
        engine, t2, tasks, 1000, 99);

    std::printf("\nexhaustive optimum: %12.0f PPS  %s\n", best,
                best_assignment.toString().c_str());
    std::printf("worst assignment:   %12.0f PPS  (%.0f%% below "
                "optimal)\n", worst, 100.0 * (best - worst) / best);
    std::printf("Linux-like:         %12.0f PPS  (%.1f%% below "
                "optimal)\n", linux_like,
                100.0 * (best - linux_like) / best);
    std::printf("naive (random):     %12.0f PPS  (%.1f%% below "
                "optimal)\n", naive, 100.0 * (best - naive) / best);
    return 0;
}
