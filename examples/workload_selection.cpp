/**
 * @file
 * Workload selection on a single-sharing-level processor (paper
 * Section 6): "In processors with one level of resource sharing, the
 * presented methodology can be directly applied to address the
 * workload selection problem. The designer has to generate a sample
 * of random workloads, run them on the target machine, measure the
 * performance of each workload, and follow the methodology we
 * presented in Section 3."
 *
 * This example does exactly that: a pool of candidate single-thread
 * services, an SMT processor whose contexts share everything (one
 * core, one pipe), random K-of-N workload selections measured on the
 * simulator, and the EVT machinery estimating the performance of the
 * optimal selection.
 *
 * Usage:   ./examples/workload_selection [samples]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "stats/pot.hh"
#include "stats/rng.hh"

namespace
{

using namespace statsched;

/** Builds the candidate pool: N heterogeneous one-thread services. */
std::vector<sim::TaskProfile>
candidatePool(std::size_t n)
{
    std::vector<sim::TaskProfile> pool;
    for (std::size_t i = 0; i < n; ++i) {
        sim::TaskProfile p;
        p.name = "svc" + std::to_string(i);
        // Deterministic variety: issue-hungry, cache-hungry and
        // memory-bound services in rotation.
        switch (i % 3) {
          case 0:   // compute-leaning
            p.issueDemand = 0.20 + 0.008 * (i % 7);
            p.loadStoreFraction = 0.20;
            p.l1dFootprintKb = 0.8;
            p.instructionsPerPacket = 760.0 + 8.0 * (i % 5);
            break;
          case 1:   // cache-leaning
            p.issueDemand = 0.18 + 0.006 * (i % 7);
            p.loadStoreFraction = 0.38;
            p.l1dFootprintKb = 1.2 + 0.1 * (i % 5);
            p.instructionsPerPacket = 800.0 + 10.0 * (i % 5);
            break;
          default:  // memory-leaning
            p.issueDemand = 0.17 + 0.005 * (i % 7);
            p.loadStoreFraction = 0.32;
            p.l1dFootprintKb = 1.0;
            p.tableKb = 8192.0;
            p.randomAccessFraction = 0.0006 + 0.0002 * (i % 4);
            p.sharedDataId = 2000 + static_cast<std::uint32_t>(i);
            p.instructionsPerPacket = 780.0;
            break;
        }
        p.l1iFootprintKb = 2.0 + 0.5 * (i % 4);
        p.codeId = 300 + static_cast<std::uint32_t>(i);
        pool.push_back(p);
    }
    return pool;
}

/** Measures one K-subset selection as a workload of 1-thread apps. */
double
measureSelection(const std::vector<sim::TaskProfile> &pool,
                 const std::vector<std::size_t> &selection,
                 const core::Topology &smt)
{
    sim::Workload workload("selection");
    for (std::size_t idx : selection) {
        sim::AppInstance instance;
        instance.name = pool[idx].name;
        instance.stages = {pool[idx]};
        workload.addInstance(std::move(instance));
    }
    sim::EngineOptions noiseless;
    noiseless.noiseRelStdDev = 0.0;
    sim::SimulatedEngine engine(std::move(workload), {}, noiseless);

    // With one level of sharing the distribution of tasks over
    // contexts is irrelevant — any placement gives the same result.
    std::vector<core::ContextId> ctx(selection.size());
    for (std::size_t i = 0; i < ctx.size(); ++i)
        ctx[i] = static_cast<core::ContextId>(i);
    return engine.deterministic(core::Assignment(smt, ctx));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::size_t samples =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

    // A single-level SMT processor: 16 contexts sharing one pipe's
    // worth of everything (so only *workload selection* matters).
    const core::Topology smt{1, 1, 16};
    const std::size_t pool_size = 32;
    const std::size_t select = 12;
    const auto pool = candidatePool(pool_size);

    std::printf("pool of %zu services, selecting %zu for the %s SMT "
                "processor\n", pool_size, select,
                smt.shapeString().c_str());

    // Random K-subset sampling with replacement across samples.
    stats::Rng rng(2021);
    std::vector<double> measured;
    double best = 0.0;
    std::vector<std::size_t> best_selection;
    std::vector<std::size_t> ids(pool_size);
    for (std::size_t i = 0; i < pool_size; ++i)
        ids[i] = i;

    for (std::size_t s = 0; s < samples; ++s) {
        // Partial Fisher-Yates K-subset.
        for (std::size_t i = 0; i < select; ++i) {
            const std::size_t j =
                i + rng.uniformInt(pool_size - i);
            std::swap(ids[i], ids[j]);
        }
        std::vector<std::size_t> selection(ids.begin(),
                                           ids.begin() + select);
        const double pps = measureSelection(pool, selection, smt);
        measured.push_back(pps);
        if (pps > best) {
            best = pps;
            best_selection = selection;
        }
    }

    const auto est = stats::estimateOptimalPerformance(measured);
    std::printf("sampled %zu workload selections\n", samples);
    std::printf("best observed selection: %.0f PPS\n", best);
    if (est.valid && est.fit.xi < -0.05) {
        const bool bounded = std::isfinite(est.upbUpper) &&
            est.upbUpper < 2.0 * est.upb;
        std::printf("estimated optimal selection performance: "
                    "%.0f PPS (95%% CI [%.0f, %s])\n", est.upb,
                    est.upbLower,
                    bounded ? std::to_string(
                                  static_cast<long long>(
                                      est.upbUpper)).c_str()
                            : "unbounded above at this sample size");
        std::printf("headroom over the best observed: %.2f%% "
                    "(xi-hat = %.3f)\n",
                    100.0 * est.improvementHeadroom(), est.fit.xi);
    } else {
        std::printf("tail shape xi-hat = %.3f is too close to zero "
                    "for a reliable endpoint\nestimate — the "
                    "diagnostic the framework provides before you "
                    "trust a bound.\n", est.fit.xi);
    }
    std::printf("best selection:");
    std::sort(best_selection.begin(), best_selection.end());
    for (std::size_t idx : best_selection)
        std::printf(" %s", pool[idx].name.c_str());
    std::printf("\n");
    return 0;
}
