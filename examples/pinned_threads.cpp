/**
 * @file
 * Real pinned-thread execution: the Netra-DPS-style flow end to end
 * on the host machine. Instead of the deterministic simulator, each
 * sampled assignment is *actually executed*: the real packet kernels
 * (src/net) run as R->P->T thread pipelines pinned to the host CPUs
 * that correspond to the assigned hardware contexts, and measured
 * throughput drives the same statistical machinery.
 *
 * Host CPUs differ from an UltraSPARC T2, so absolute numbers are
 * illustrative — but the method is engine-agnostic by design (the
 * paper's key claim).
 *
 * Usage:   ./examples/pinned_threads [samples] [instances]
 */

#include <cstdio>
#include <cstdlib>

#include "core/estimator.hh"
#include "hw/pinned_executor.hh"

int
main(int argc, char **argv)
{
    using namespace statsched;

    const std::size_t samples =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
    const std::uint32_t instances =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;

    const core::Topology t2 = core::Topology::ultraSparcT2();

    hw::PinnedOptions options;
    options.measureMillis = 100;
    hw::PinnedThreadEngine engine(sim::Benchmark::IpfwdL1, instances,
                                  options);

    std::printf("engine: %s — real threads, %u ms per "
                "measurement\n", engine.name().c_str(),
                options.measureMillis);

    core::OptimalPerformanceEstimator estimator(
        engine, t2, 3 * instances, /*seed=*/11);
    const auto result = estimator.extend(samples);

    std::printf("measured %zu assignments in ~%.1f s of wall "
                "clock\n", result.sample.size(),
                result.sample.size() * options.measureMillis /
                1000.0);
    std::printf("best observed:     %.0f PPS\n",
                result.bestObserved);
    if (result.pot.valid) {
        std::printf("estimated optimum: %.0f PPS  (95%% CI "
                    "[%.0f, %.0f])\n", result.pot.upb,
                    result.pot.upbLower, result.pot.upbUpper);
        std::printf("xi-hat = %.3f, headroom = %.2f%%\n",
                    result.pot.fit.xi,
                    100.0 * result.estimatedLoss());
    } else {
        std::printf("tail estimate invalid at this sample size "
                    "(xi-hat >= 0) — host noise is\nsubstantial; "
                    "increase the sample or the measurement "
                    "window.\n");
    }
    if (result.bestAssignment) {
        std::printf("best assignment:   %s\n",
                    result.bestAssignment->toString().c_str());
    }
    return 0;
}
