/**
 * @file
 * Industrial scenario (paper Section 5.3): a customer requires the
 * deployed assignment to be within X% of the optimal performance.
 * The iterative algorithm keeps sampling random assignments —
 * growing the sample by Ndelta at a time and re-estimating the
 * optimum — until the captured best assignment meets the target.
 *
 * Usage:   ./examples/iterative_tuning [loss_percent] [benchmark]
 *          benchmark in {ipfwd-l1, ipfwd-mem, analyzer, aho,
 *          stateful}
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/iterative.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

statsched::sim::Benchmark
parseBenchmark(const char *name)
{
    using statsched::sim::Benchmark;
    if (!std::strcmp(name, "ipfwd-mem"))
        return Benchmark::IpfwdMem;
    if (!std::strcmp(name, "analyzer"))
        return Benchmark::PacketAnalyzer;
    if (!std::strcmp(name, "aho"))
        return Benchmark::AhoCorasick;
    if (!std::strcmp(name, "stateful"))
        return Benchmark::Stateful;
    return Benchmark::IpfwdL1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace statsched;

    const double loss_percent =
        argc > 1 ? std::strtod(argv[1], nullptr) : 2.5;
    const sim::Benchmark benchmark =
        parseBenchmark(argc > 2 ? argv[2] : "ipfwd-l1");

    const core::Topology t2 = core::Topology::ultraSparcT2();
    sim::SimulatedEngine engine(sim::makeWorkload(benchmark, 8));

    core::IterativeOptions options;
    options.initialSample = 1000;   // Ninit, as in the paper
    options.incrementSample = 100;  // Ndelta
    options.acceptableLoss = loss_percent / 100.0;
    options.maxSample = 20000;

    std::printf("benchmark: %s, acceptable loss: %.2f%%\n",
                sim::benchmarkName(benchmark).c_str(), loss_percent);
    std::printf("%-8s %14s %14s %10s\n", "n", "best (PPS)",
                "UPB-hat (PPS)", "loss");

    const auto run = core::iterativeAssignmentSearch(
        engine, t2, engine.workload().taskCount(), /*seed=*/7,
        options);

    for (const auto &step : run.steps) {
        std::printf("%-8zu %14.0f %14.0f %9.2f%%\n", step.sampleSize,
                    step.bestObserved, step.upb, 100.0 * step.loss);
    }

    if (run.satisfied) {
        std::printf("\ntarget met after %zu assignments "
                    "(~%.0f minutes of measurements).\n",
                    run.totalSampled,
                    run.totalSampled * 1.5 / 60.0);
        std::printf("deploy: %s\n",
                    run.final.bestAssignment->toString().c_str());
    } else {
        std::printf("\ntarget NOT met within %zu assignments; "
                    "best loss %.2f%%.\n", run.totalSampled,
                    100.0 * run.steps.back().loss);
    }
    return 0;
}
