/**
 * @file
 * Quickstart: estimate the optimal performance of a workload.
 *
 * The 30-line version of the paper's method:
 *  1. pick a processor topology and a workload;
 *  2. sample random task assignments and measure them;
 *  3. estimate the optimal system performance (UPB) with a 95%
 *     confidence interval, and keep the best assignment found.
 *
 * Build & run:   ./examples/quickstart [sample_size]
 */

#include <cstdio>
#include <cstdlib>

#include "core/estimator.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

int
main(int argc, char **argv)
{
    using namespace statsched;

    const std::size_t sample_size =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

    // The paper's case study: 8 instances (24 threads) of IPFwd-L1
    // on an UltraSPARC T2 (8 cores x 2 pipes x 4 strands).
    const core::Topology t2 = core::Topology::ultraSparcT2();
    sim::SimulatedEngine engine(
        sim::makeWorkload(sim::Benchmark::IpfwdL1, 8));

    core::OptimalPerformanceEstimator estimator(
        engine, t2, engine.workload().taskCount(), /*seed=*/42);
    const core::EstimationResult result =
        estimator.extend(sample_size);

    std::printf("workload:            %s on %s\n",
                engine.workload().name().c_str(),
                t2.shapeString().c_str());
    std::printf("sample size:         %zu random assignments "
                "(~%.0f min at 1.5 s each)\n",
                result.sample.size(), result.modeledSeconds / 60.0);
    std::printf("best observed:       %.0f PPS\n",
                result.bestObserved);
    std::printf("estimated optimum:   %.0f PPS  "
                "(95%% CI [%.0f, %.0f])\n", result.pot.upb,
                result.pot.upbLower, result.pot.upbUpper);
    std::printf("GPD tail shape:      xi = %.3f (must be < 0)\n",
                result.pot.fit.xi);
    std::printf("possible improvement over the best observed: "
                "%.2f%%\n", 100.0 * result.estimatedLoss());
    if (result.bestAssignment) {
        std::printf("best assignment:     %s\n",
                    result.bestAssignment->toString().c_str());
    }
    return 0;
}
