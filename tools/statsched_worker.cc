/**
 * @file
 * statsched_worker — shard measurement worker.
 *
 * Spawned by `statsched_cli iterate --shards N` (via
 * core::makeProcessShardFactory), one process per shard slot. The
 * worker builds the same in-process measurement substrate the
 * coordinator would use — FaultInjecting?(Simulated), from the same
 * engine flags — and serves the shard protocol over stdin/stdout:
 * frames in, frames out, nothing else on stdout (diagnostics go to
 * stderr, which is inherited from the coordinator).
 *
 * No ParallelEngine here: shard-level parallelism comes from the
 * number of workers, and the protocol evaluates items through batch
 * kernels, which are index-pure either way.
 *
 * Lifetime is governed by the coordinator, not by signals: the worker
 * serves until stdin reaches EOF (coordinator exited or released the
 * slot), a Shutdown frame arrives, or the coordinator breaks
 * protocol. SIGINT/SIGTERM at the terminal reach the whole foreground
 * process group, so the worker installs the standard handlers and
 * drains gracefully: an in-flight request group is finished and its
 * response flushed, and the worker exits 0 only once idle — the
 * coordinator never sees a half-answered request. stdin is polled in
 * bounded slices rather than blocked on outright, so a signal that
 * lands while the worker is NOT inside read() (the classic
 * check-then-block race) is still observed within one slice. A
 * second signal of the same kind hard-kills a wedged worker
 * (base/shutdown.hh).
 *
 * --garbage-values turns the worker into a Byzantine backend for the
 * chaos harness: it computes honestly, then flips mantissa bits of
 * every Ok value before replying — wrong VALUES behind valid frames
 * and CRCs, the one corruption the transport layer cannot catch.
 * Audit duplication in the coordinator exists to convict exactly
 * this worker.
 *
 * Exit codes: 0 clean stop (EOF, Shutdown, or signal drain),
 * 2 usage error, 3 protocol error.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "base/cli.hh"
#include "base/shutdown.hh"
#include "core/fault_injection.hh"
#include "core/shard_worker.hh"
#include "core/topology.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;

/** Writes all of `bytes` to stdout, retrying EINTR and short
 *  writes. @return false when the coordinator end is gone. */
bool
writeFrames(const std::vector<std::uint8_t> &bytes)
{
    const std::uint8_t *p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        const ssize_t n = ::write(STDOUT_FILENO, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Byzantine decorator: measures honestly through the inner engine,
 * then corrupts the value bits of every Ok outcome. The corruption
 * (XOR of low mantissa bits) keeps the value finite, plausible and
 * deterministic — indistinguishable from an honest reading without a
 * second opinion, which is exactly what the coordinator's audit
 * duplication provides.
 */
class GarbageValuesEngine : public core::PerformanceEngine
{
  public:
    explicit GarbageValuesEngine(core::PerformanceEngine &inner)
        : inner_(inner)
    {
    }

    double
    measure(const core::Assignment &assignment) override
    {
        return measureOutcome(assignment).valueOrNaN();
    }

    core::MeasurementOutcome
    measureOutcome(const core::Assignment &assignment) override
    {
        return corrupt(inner_.measureOutcome(assignment));
    }

    void
    measureBatchOutcome(
        std::span<const core::Assignment> batch,
        std::span<core::MeasurementOutcome> out) override
    {
        inner_.measureBatchOutcome(batch, out);
        for (core::MeasurementOutcome &outcome : out)
            outcome = corrupt(outcome);
    }

    core::OutcomeKernel
    outcomeKernel(std::size_t batchSize) override
    {
        core::OutcomeKernel kernel = inner_.outcomeKernel(batchSize);
        if (!kernel)
            return kernel;
        return [kernel](const core::Assignment &assignment,
                        std::size_t index) {
            return corrupt(kernel(assignment, index));
        };
    }

    void
    reserveMeasurementIndices(std::size_t count) override
    {
        inner_.reserveMeasurementIndices(count);
    }

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    void
    collectStats(core::EngineStats &stats) const override
    {
        inner_.collectStats(stats);
    }

  private:
    static core::MeasurementOutcome
    corrupt(core::MeasurementOutcome outcome)
    {
        if (!outcome.ok())
            return outcome;
        std::uint64_t bits = 0;
        std::memcpy(&bits, &outcome.value, sizeof bits);
        bits ^= 0xffffffULL; // low mantissa: finite, same magnitude
        std::memcpy(&outcome.value, &bits, sizeof bits);
        return outcome;
    }

    core::PerformanceEngine &inner_;
};

sim::Benchmark
parseBenchmark(const std::string &name)
{
    using sim::Benchmark;
    if (name == "ipfwd-l1")
        return Benchmark::IpfwdL1;
    if (name == "ipfwd-mem")
        return Benchmark::IpfwdMem;
    if (name == "analyzer")
        return Benchmark::PacketAnalyzer;
    if (name == "aho")
        return Benchmark::AhoCorasick;
    if (name == "stateful")
        return Benchmark::Stateful;
    if (name == "intadd")
        return Benchmark::IpfwdIntAdd;
    if (name == "intmul")
        return Benchmark::IpfwdIntMul;
    std::fprintf(stderr, "statsched_worker: unknown benchmark '%s'\n",
                 name.c_str());
    std::exit(2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    base::OptionParser args;
    args.addOption("benchmark", "ipfwd-l1", "workload kernel");
    args.addOption("instances", "8", "pipeline instances");
    args.addOption("fault-rate", "0",
                   "injected transient failure percent");
    args.addOption("fault-garbage", "0",
                   "injected NaN reading percent");
    args.addOption("fault-outlier", "0",
                   "injected silent outlier percent");
    args.addOption("fault-hang", "0", "injected modeled hang percent");
    args.addOption("fault-seed", "1024023", "fault injection seed");
    args.addOption("config-hash", "0",
                   "coordinator's engine-configuration fingerprint, "
                   "echoed in the Hello");
    args.addFlag("garbage-values",
                 "chaos mode: corrupt every Ok value's bits before "
                 "replying (Byzantine worker)");
    if (!args.parse(argc, argv, 1)) {
        std::fprintf(stderr,
                     "statsched_worker: %s\noptions:\n%s",
                     args.error().c_str(), args.usage().c_str());
        return 2;
    }

    const long instances = args.getInt("instances");
    if (instances <= 0) {
        std::fprintf(stderr,
                     "statsched_worker: '--instances' must be "
                     "positive\n");
        return 2;
    }
    core::FaultOptions faults;
    faults.transientRate = args.getDouble("fault-rate") / 100.0;
    faults.garbageRate = args.getDouble("fault-garbage") / 100.0;
    faults.outlierRate = args.getDouble("fault-outlier") / 100.0;
    faults.hangRate = args.getDouble("fault-hang") / 100.0;
    faults.seed =
        static_cast<std::uint64_t>(args.getInt("fault-seed"));
    if (faults.totalRate() > 1.0) {
        std::fprintf(stderr, "statsched_worker: fault rates add up "
                     "to more than 100%%\n");
        return 2;
    }
    const std::uint64_t configHash =
        std::strtoull(args.get("config-hash").c_str(), nullptr, 10);

    sim::SimulatedEngine simulated(
        sim::makeWorkload(parseBenchmark(args.get("benchmark")),
                          static_cast<std::uint32_t>(instances)));
    std::unique_ptr<core::FaultInjectingEngine> faulty;
    core::PerformanceEngine *engine = &simulated;
    if (faults.totalRate() > 0.0) {
        faulty = std::make_unique<core::FaultInjectingEngine>(
            *engine, faults);
        engine = faulty.get();
    }
    std::unique_ptr<GarbageValuesEngine> garbage;
    if (args.flag("garbage-values")) {
        garbage = std::make_unique<GarbageValuesEngine>(*engine);
        engine = garbage.get();
    }

    const core::Topology topo = core::Topology::ultraSparcT2();
    core::ShardWorker worker(
        *engine, topo, simulated.workload().taskCount(), configHash);

    base::installShutdownHandlers();

    if (!writeFrames(worker.helloBytes()))
        return 0; // coordinator already gone; nothing to report

    std::vector<std::uint8_t> responses;
    std::uint8_t buffer[4096];
    while (true) {
        // Bounded poll slices: a shutdown signal may land at ANY
        // point of this loop, not only inside read(), so the drain
        // check must re-run on a timer — a flag set between the
        // check and the blocking call would otherwise be lost until
        // the next request arrives.
        struct pollfd pfd = {};
        pfd.fd = STDIN_FILENO;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        // Graceful drain: exit only when idle — an in-flight
        // request group is finished and flushed first, so the
        // coordinator is never left owed a response.
        if (base::shutdownRequested() && worker.idle()) {
            std::fprintf(stderr,
                         "statsched_worker: shutdown signal, "
                         "drained and exiting\n");
            return 0;
        }
        if (ready < 0) {
            if (errno == EINTR)
                continue; // drain check re-runs at the loop top
            std::fprintf(stderr,
                         "statsched_worker: stdin poll failed\n");
            return 3;
        }
        if (ready == 0)
            continue; // idle slice; keep watching for shutdown
        const ssize_t n =
            ::read(STDIN_FILENO, buffer, sizeof buffer);
        if (n < 0) {
            if (errno == EINTR)
                continue; // drain check re-runs at the loop top
            std::fprintf(stderr,
                         "statsched_worker: stdin read failed\n");
            return 3;
        }
        if (n == 0)
            return 0; // EOF: orderly stop
        responses.clear();
        const bool serving = worker.consume(
            buffer, static_cast<std::size_t>(n), responses);
        if (!responses.empty() && !writeFrames(responses))
            return worker.protocolError() ? 3 : 0;
        if (serving && base::shutdownRequested() && worker.idle()) {
            // The signal landed while a request was in flight; the
            // response above is flushed, so this is the safe point.
            std::fprintf(stderr,
                         "statsched_worker: shutdown signal, drained "
                         "and exiting\n");
            return 0;
        }
        if (!serving) {
            if (worker.protocolError()) {
                std::fprintf(stderr, "statsched_worker: %s\n",
                             worker.errorDetail().c_str());
                return 3;
            }
            return 0; // Shutdown frame
        }
    }
}
