/**
 * @file
 * statsched — command-line front end to the library.
 *
 * Subcommands:
 *   count     size of the assignment space (Table 1 style)
 *   capture   capture-probability / sample-size math (Figure 2)
 *   enumerate exhaustive listing of canonical assignments
 *   baselines naive / Linux-like / packed performance on a benchmark
 *   estimate  sample + EVT estimation of the optimal performance
 *   iterate   the Section-5.3 iterative algorithm
 *
 * Run `statsched_cli help` for usage. All stochastic commands accept
 * --seed and are fully reproducible.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/assignment_space.hh"
#include "core/baselines.hh"
#include "core/capture_probability.hh"
#include "core/enumerator.hh"
#include "core/estimator.hh"
#include "core/iterative.hh"
#include "num/duration.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;

/** Simple --key value argument map. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i + 1 < argc; i += 2) {
            if (std::strncmp(argv[i], "--", 2) != 0) {
                std::fprintf(stderr, "expected --option, got %s\n",
                             argv[i]);
                std::exit(2);
            }
            values_[argv[i] + 2] = argv[i + 1];
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    long
    getInt(const std::string &key, long fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end()
            ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        const auto it = values_.find(key);
        return it == values_.end()
            ? fallback : std::strtod(it->second.c_str(), nullptr);
    }

  private:
    std::map<std::string, std::string> values_;
};

core::Topology
parseTopology(const std::string &spec)
{
    // "CxPxS", e.g. "8x2x4".
    unsigned c = 8;
    unsigned p = 2;
    unsigned s = 4;
    if (std::sscanf(spec.c_str(), "%ux%ux%u", &c, &p, &s) != 3) {
        std::fprintf(stderr, "bad topology '%s' (want CxPxS)\n",
                     spec.c_str());
        std::exit(2);
    }
    return core::Topology{c, p, s};
}

sim::Benchmark
parseBenchmark(const std::string &name)
{
    using sim::Benchmark;
    if (name == "ipfwd-l1")
        return Benchmark::IpfwdL1;
    if (name == "ipfwd-mem")
        return Benchmark::IpfwdMem;
    if (name == "analyzer")
        return Benchmark::PacketAnalyzer;
    if (name == "aho")
        return Benchmark::AhoCorasick;
    if (name == "stateful")
        return Benchmark::Stateful;
    if (name == "intadd")
        return Benchmark::IpfwdIntAdd;
    if (name == "intmul")
        return Benchmark::IpfwdIntMul;
    std::fprintf(stderr, "unknown benchmark '%s' (ipfwd-l1, "
                 "ipfwd-mem, analyzer, aho, stateful, intadd, "
                 "intmul)\n", name.c_str());
    std::exit(2);
}

int
cmdCount(const Args &args)
{
    const core::Topology topo =
        parseTopology(args.get("topology", "8x2x4"));
    const long tasks = args.getInt("tasks", 24);
    if (tasks < 1 ||
        tasks > static_cast<long>(topo.contexts())) {
        std::fprintf(stderr, "tasks out of range for %s\n",
                     topo.shapeString().c_str());
        return 2;
    }
    const core::AssignmentSpace space(topo);
    const auto count =
        space.countAssignments(static_cast<std::uint32_t>(tasks));
    std::printf("topology %s (%u contexts), %ld tasks\n",
                topo.shapeString().c_str(), topo.contexts(), tasks);
    std::printf("assignments: %s", count.toScientific(4).c_str());
    if (count.fitsUint64())
        std::printf(" (exactly %s)", count.toString().c_str());
    std::printf("\n");
    std::printf("run all at 1 s each:     %s\n",
                num::Duration::fromSeconds(count).toString().c_str());
    std::printf("predict all at 1 us:     %s\n",
                num::Duration::fromMicroseconds(count)
                    .toString().c_str());
    return 0;
}

int
cmdCapture(const Args &args)
{
    const double percent = args.getDouble("percent", 1.0);
    const double target = args.getDouble("target", 0.99);
    const long n = args.getInt("samples", 0);
    if (n > 0) {
        std::printf("P(capture top %.2f%% in %ld draws) = %.6f\n",
                    percent, n,
                    core::captureProbability(
                        percent, static_cast<std::uint64_t>(n)));
    } else {
        std::printf("draws for P(capture top %.2f%%) >= %.4f: "
                    "%llu\n", percent, target,
                    static_cast<unsigned long long>(
                        core::requiredSampleSize(percent, target)));
    }
    return 0;
}

int
cmdEnumerate(const Args &args)
{
    const core::Topology topo =
        parseTopology(args.get("topology", "8x2x4"));
    const long tasks = args.getInt("tasks", 3);
    const long limit = args.getInt("limit", 50);
    if (tasks < 1 || tasks > 8) {
        std::fprintf(stderr,
                     "enumerate supports 1..8 tasks (space grows "
                     "as Table 1 shows)\n");
        return 2;
    }
    core::AssignmentEnumerator enumerator(
        topo, static_cast<std::uint32_t>(tasks));
    long shown = 0;
    const std::uint64_t total = enumerator.forEach(
        [&shown, limit](const core::Assignment &a) {
            if (shown < limit) {
                std::printf("%6ld  %s\n", shown + 1,
                            a.toString().c_str());
            }
            ++shown;
            return true;
        });
    std::printf("total canonical assignments: %llu%s\n",
                static_cast<unsigned long long>(total),
                total > static_cast<std::uint64_t>(limit)
                    ? " (listing truncated; use --limit)" : "");
    return 0;
}

int
cmdBaselines(const Args &args)
{
    const sim::Benchmark benchmark =
        parseBenchmark(args.get("benchmark", "ipfwd-l1"));
    const long instances = args.getInt("instances", 8);
    const long seed = args.getInt("seed", 1);
    const core::Topology topo = core::Topology::ultraSparcT2();

    sim::SimulatedEngine engine(
        sim::makeWorkload(benchmark,
                          static_cast<std::uint32_t>(instances)));
    const std::uint32_t tasks = engine.workload().taskCount();

    const double naive = core::naiveExpectedPerformance(
        engine, topo, tasks, 1000, static_cast<std::uint64_t>(seed));
    const double linux_like = engine.measure(
        core::linuxLikeAssignment(topo, tasks));
    const double packed = engine.measure(
        core::packedAssignment(topo, tasks));
    std::printf("%s, %ld instances (%u tasks) on %s\n",
                sim::benchmarkName(benchmark).c_str(), instances,
                tasks, topo.shapeString().c_str());
    std::printf("naive (random mean):  %12.0f PPS\n", naive);
    std::printf("Linux-like balanced:  %12.0f PPS\n", linux_like);
    std::printf("packed (pessimal):    %12.0f PPS\n", packed);
    return 0;
}

int
cmdEstimate(const Args &args)
{
    const sim::Benchmark benchmark =
        parseBenchmark(args.get("benchmark", "ipfwd-l1"));
    const long instances = args.getInt("instances", 8);
    const long samples = args.getInt("samples", 2000);
    const long seed = args.getInt("seed", 42);
    const core::Topology topo = core::Topology::ultraSparcT2();

    sim::SimulatedEngine engine(
        sim::makeWorkload(benchmark,
                          static_cast<std::uint32_t>(instances)));
    core::OptimalPerformanceEstimator estimator(
        engine, topo, engine.workload().taskCount(),
        static_cast<std::uint64_t>(seed));
    const auto result =
        estimator.extend(static_cast<std::size_t>(samples));

    std::printf("%s: %ld random assignments (seed %ld)\n",
                engine.name().c_str(), samples, seed);
    std::printf("best observed:      %12.0f PPS\n",
                result.bestObserved);
    if (result.pot.valid) {
        std::printf("estimated optimum:  %12.0f PPS  "
                    "[%.0f, %.0f] @ 0.95\n", result.pot.upb,
                    result.pot.upbLower, result.pot.upbUpper);
        std::printf("tail shape xi-hat:  %12.3f\n",
                    result.pot.fit.xi);
        std::printf("headroom:           %11.2f%%\n",
                    100.0 * result.estimatedLoss());
    } else {
        std::printf("tail estimate invalid (xi >= 0 or sample too "
                    "small)\n");
    }
    if (result.bestAssignment) {
        std::printf("best assignment:    %s\n",
                    result.bestAssignment->toString().c_str());
    }
    return 0;
}

int
cmdIterate(const Args &args)
{
    const sim::Benchmark benchmark =
        parseBenchmark(args.get("benchmark", "ipfwd-l1"));
    const long instances = args.getInt("instances", 8);
    const double loss = args.getDouble("loss", 2.5);
    const long seed = args.getInt("seed", 7);
    const core::Topology topo = core::Topology::ultraSparcT2();

    sim::SimulatedEngine engine(
        sim::makeWorkload(benchmark,
                          static_cast<std::uint32_t>(instances)));
    core::IterativeOptions options;
    options.acceptableLoss = loss / 100.0;
    options.initialSample =
        static_cast<std::size_t>(args.getInt("ninit", 1000));
    options.incrementSample =
        static_cast<std::size_t>(args.getInt("ndelta", 100));
    options.maxSample =
        static_cast<std::size_t>(args.getInt("max", 20000));
    options.useUpperConfidenceBound =
        args.getInt("confident", 0) != 0;

    const auto run = core::iterativeAssignmentSearch(
        engine, topo, engine.workload().taskCount(),
        static_cast<std::uint64_t>(seed), options);
    std::printf("target loss %.2f%%: %s after %zu assignments "
                "(%zu iterations)\n", loss,
                run.satisfied ? "met" : "NOT met",
                run.totalSampled, run.steps.size());
    std::printf("final: best %.0f PPS, UPB %.0f PPS, loss %.2f%%\n",
                run.final.bestObserved, run.final.pot.upb,
                100.0 * run.steps.back().loss);
    return 0;
}

int
cmdHelp()
{
    std::printf(
        "statsched — statistical task-assignment toolkit "
        "(ASPLOS'12 reproduction)\n\n"
        "usage: statsched_cli <command> [--option value ...]\n\n"
        "commands:\n"
        "  count      --tasks N [--topology CxPxS]\n"
        "  capture    --percent P [--samples N | --target T]\n"
        "  enumerate  --tasks N [--topology CxPxS] [--limit K]\n"
        "  baselines  --benchmark B [--instances K] [--seed S]\n"
        "  estimate   --benchmark B [--instances K] [--samples N] "
        "[--seed S]\n"
        "  iterate    --benchmark B [--loss PCT] [--ninit N] "
        "[--ndelta N]\n"
        "             [--max N] [--confident 1]\n"
        "  help\n\n"
        "benchmarks: ipfwd-l1 ipfwd-mem analyzer aho stateful "
        "intadd intmul\n");
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return cmdHelp();
    const std::string command = argv[1];
    const Args args(argc, argv, 2);

    if (command == "count")
        return cmdCount(args);
    if (command == "capture")
        return cmdCapture(args);
    if (command == "enumerate")
        return cmdEnumerate(args);
    if (command == "baselines")
        return cmdBaselines(args);
    if (command == "estimate")
        return cmdEstimate(args);
    if (command == "iterate")
        return cmdIterate(args);
    if (command == "help" || command == "--help")
        return cmdHelp();

    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    cmdHelp();
    return 2;
}
