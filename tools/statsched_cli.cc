/**
 * @file
 * statsched — command-line front end to the library.
 *
 * Subcommands:
 *   count     size of the assignment space (Table 1 style)
 *   capture   capture-probability / sample-size math (Figure 2)
 *   enumerate exhaustive listing of canonical assignments
 *   baselines naive / Linux-like / packed performance on a benchmark
 *   estimate  sample + EVT estimation of the optimal performance
 *   iterate   the Section-5.3 iterative algorithm
 *
 * Run `statsched_cli help` for usage. All stochastic commands accept
 * --seed and are fully reproducible; --threads only changes how the
 * measurement batches are scheduled, never the results.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/cli.hh"
#include "core/assignment_space.hh"
#include "core/baselines.hh"
#include "core/capture_probability.hh"
#include "core/enumerator.hh"
#include "core/estimator.hh"
#include "core/fault_injection.hh"
#include "core/iterative.hh"
#include "core/memoizing_engine.hh"
#include "core/parallel_engine.hh"
#include "core/resilient_engine.hh"
#include "num/duration.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using base::OptionParser;

core::Topology
parseTopology(const std::string &spec)
{
    // "CxPxS", e.g. "8x2x4".
    unsigned c = 8;
    unsigned p = 2;
    unsigned s = 4;
    if (std::sscanf(spec.c_str(), "%ux%ux%u", &c, &p, &s) != 3) {
        std::fprintf(stderr, "bad topology '%s' (want CxPxS)\n",
                     spec.c_str());
        std::exit(2);
    }
    return core::Topology{c, p, s};
}

sim::Benchmark
parseBenchmark(const std::string &name)
{
    using sim::Benchmark;
    if (name == "ipfwd-l1")
        return Benchmark::IpfwdL1;
    if (name == "ipfwd-mem")
        return Benchmark::IpfwdMem;
    if (name == "analyzer")
        return Benchmark::PacketAnalyzer;
    if (name == "aho")
        return Benchmark::AhoCorasick;
    if (name == "stateful")
        return Benchmark::Stateful;
    if (name == "intadd")
        return Benchmark::IpfwdIntAdd;
    if (name == "intmul")
        return Benchmark::IpfwdIntMul;
    std::fprintf(stderr, "unknown benchmark '%s' (ipfwd-l1, "
                 "ipfwd-mem, analyzer, aho, stateful, intadd, "
                 "intmul)\n", name.c_str());
    std::exit(2);
}

/** Parses the command's options or exits with its usage text. */
void
parseOrDie(OptionParser &parser, const std::string &command, int argc,
           char **argv)
{
    if (!parser.parse(argc, argv, 2)) {
        std::fprintf(stderr, "%s: %s\noptions:\n%s", command.c_str(),
                     parser.error().c_str(), parser.usage().c_str());
        std::exit(2);
    }
}

/**
 * Reads a numeric option that must be strictly positive (sample
 * sizes, task counts); exits with a parse-style error otherwise, so
 * "--samples 0" fails at the command line instead of deep in the
 * estimator.
 */
long
positiveOrDie(const OptionParser &parser, const std::string &command,
              const std::string &name)
{
    const long value = parser.getInt(name);
    if (value <= 0) {
        std::fprintf(stderr, "%s: '--%s' must be positive (got %s)\n",
                     command.c_str(), name.c_str(),
                     parser.get(name).c_str());
        std::exit(2);
    }
    return value;
}

/** Declares the options shared by every measurement command. */
void
addEngineOptions(OptionParser &parser)
{
    parser.addOption("benchmark", "ipfwd-l1", "workload kernel");
    parser.addOption("instances", "8", "pipeline instances");
    parser.addOption("threads", "0",
                     "measurement threads (0 = hardware)");
    parser.addFlag("no-memoize",
                   "measure duplicate assignments afresh");
    parser.addOption("fault-rate", "0",
                     "injected transient failure percent");
    parser.addOption("fault-garbage", "0",
                     "injected NaN reading percent");
    parser.addOption("fault-outlier", "0",
                     "injected silent outlier percent");
    parser.addOption("fault-hang", "0",
                     "injected modeled hang percent");
    parser.addOption("fault-seed", "1024023",
                     "fault injection seed");
    parser.addOption("retries", "3",
                     "retry attempts per failed measurement");
}

/**
 * The standard measurement stack (performance_engine.hh ordering):
 * Metered(Memoizing?(Resilient?(Parallel(FaultInjecting?(Sim))))).
 * Fault injection (when any --fault-* rate is set) corrupts
 * measurements deterministically; the pool fans batches out; the
 * resilient layer retries and quarantines; memoization dedups each
 * batch; the meter on top sees every requested measurement.
 */
struct EngineStack
{
    std::unique_ptr<sim::SimulatedEngine> simulated;
    std::unique_ptr<core::FaultInjectingEngine> faulty;
    std::unique_ptr<core::ParallelEngine> parallel;
    std::unique_ptr<core::ResilientEngine> resilient;
    std::unique_ptr<core::MemoizingEngine> memoizing;
    std::unique_ptr<core::MeteredEngine> metered;

    core::PerformanceEngine &top() { return *metered; }
    const sim::SimulatedEngine &sim() const { return *simulated; }
};

EngineStack
makeEngineStack(const OptionParser &args)
{
    const long instances = positiveOrDie(args, "engine", "instances");
    const long threads = args.getInt("threads");
    if (threads < 0) {
        std::fprintf(stderr,
                     "engine: '--threads' must be >= 0 (got %s)\n",
                     args.get("threads").c_str());
        std::exit(2);
    }

    core::FaultOptions faults;
    faults.transientRate = args.getDouble("fault-rate") / 100.0;
    faults.garbageRate = args.getDouble("fault-garbage") / 100.0;
    faults.outlierRate = args.getDouble("fault-outlier") / 100.0;
    faults.hangRate = args.getDouble("fault-hang") / 100.0;
    faults.seed =
        static_cast<std::uint64_t>(args.getInt("fault-seed"));
    if (faults.totalRate() > 1.0) {
        std::fprintf(stderr, "engine: fault rates add up to more "
                     "than 100%%\n");
        std::exit(2);
    }
    const long retries = args.getInt("retries");
    if (retries < 0) {
        std::fprintf(stderr,
                     "engine: '--retries' must be >= 0 (got %s)\n",
                     args.get("retries").c_str());
        std::exit(2);
    }

    EngineStack stack;
    stack.simulated = std::make_unique<sim::SimulatedEngine>(
        sim::makeWorkload(parseBenchmark(args.get("benchmark")),
                          static_cast<std::uint32_t>(instances)));
    core::PerformanceEngine *below = stack.simulated.get();
    if (faults.totalRate() > 0.0) {
        stack.faulty = std::make_unique<core::FaultInjectingEngine>(
            *below, faults);
        below = stack.faulty.get();
    }
    stack.parallel = std::make_unique<core::ParallelEngine>(
        *below, static_cast<unsigned>(threads));
    below = stack.parallel.get();
    if (stack.faulty) {
        core::ResilientOptions resilience;
        resilience.maxAttempts =
            static_cast<std::uint32_t>(retries) + 1;
        stack.resilient = std::make_unique<core::ResilientEngine>(
            *below, resilience);
        below = stack.resilient.get();
    }
    if (!args.flag("no-memoize")) {
        stack.memoizing =
            std::make_unique<core::MemoizingEngine>(*below);
        below = stack.memoizing.get();
    }
    stack.metered = std::make_unique<core::MeteredEngine>(*below);
    return stack;
}

void
printEngineReport(const EngineStack &stack)
{
    const core::EngineStats stats = stack.metered->stats();
    std::printf("engine: %u thread(s), memoize %s\n",
                stack.parallel->threads(),
                stack.memoizing ? "on" : "off");
    std::printf("measurements:       %12llu in %llu batches\n",
                static_cast<unsigned long long>(stats.measurements),
                static_cast<unsigned long long>(stats.batches));
    if (stack.memoizing) {
        std::printf("cache hit rate:     %11.2f%%  "
                    "(%llu of %llu served from cache)\n",
                    100.0 * stats.cacheHitRate(),
                    static_cast<unsigned long long>(stats.cacheHits),
                    static_cast<unsigned long long>(
                        stats.cacheHits + stats.cacheMisses));
    }
    if (stack.faulty || stats.failures != 0 || stats.retries != 0 ||
        stats.quarantined != 0) {
        std::printf("failed attempts:    %12llu  (retried %llu, "
                    "quarantined %llu)\n",
                    static_cast<unsigned long long>(stats.failures),
                    static_cast<unsigned long long>(stats.retries),
                    static_cast<unsigned long long>(
                        stats.quarantined));
    }
    std::printf("modeled time:       %11.1f min "
                "(at %.1f s per real measurement)\n",
                stats.modeledSeconds / 60.0,
                stack.sim().secondsPerMeasurement());
}

int
cmdCount(int argc, char **argv)
{
    OptionParser args;
    args.addOption("topology", "8x2x4", "processor shape CxPxS");
    args.addOption("tasks", "24", "workload size");
    parseOrDie(args, "count", argc, argv);

    const core::Topology topo = parseTopology(args.get("topology"));
    const long tasks = args.getInt("tasks");
    if (tasks < 1 ||
        tasks > static_cast<long>(topo.contexts())) {
        std::fprintf(stderr, "tasks out of range for %s\n",
                     topo.shapeString().c_str());
        return 2;
    }
    const core::AssignmentSpace space(topo);
    const auto count =
        space.countAssignments(static_cast<std::uint32_t>(tasks));
    std::printf("topology %s (%u contexts), %ld tasks\n",
                topo.shapeString().c_str(), topo.contexts(), tasks);
    std::printf("assignments: %s", count.toScientific(4).c_str());
    if (count.fitsUint64())
        std::printf(" (exactly %s)", count.toString().c_str());
    std::printf("\n");
    std::printf("run all at 1 s each:     %s\n",
                num::Duration::fromSeconds(count).toString().c_str());
    std::printf("predict all at 1 us:     %s\n",
                num::Duration::fromMicroseconds(count)
                    .toString().c_str());
    return 0;
}

int
cmdCapture(int argc, char **argv)
{
    OptionParser args;
    args.addOption("percent", "1.0", "top-percent band");
    args.addOption("target", "0.99", "capture probability wanted");
    args.addOption("samples", "0", "draws (0: solve for draws)");
    parseOrDie(args, "capture", argc, argv);

    const double percent = args.getDouble("percent");
    const double target = args.getDouble("target");
    const long n = args.getInt("samples");
    if (n > 0) {
        std::printf("P(capture top %.2f%% in %ld draws) = %.6f\n",
                    percent, n,
                    core::captureProbability(
                        percent, static_cast<std::uint64_t>(n)));
    } else {
        std::printf("draws for P(capture top %.2f%%) >= %.4f: "
                    "%llu\n", percent, target,
                    static_cast<unsigned long long>(
                        core::requiredSampleSize(percent, target)));
    }
    return 0;
}

int
cmdEnumerate(int argc, char **argv)
{
    OptionParser args;
    args.addOption("topology", "8x2x4", "processor shape CxPxS");
    args.addOption("tasks", "3", "workload size (1..8)");
    args.addOption("limit", "50", "listing length cap");
    parseOrDie(args, "enumerate", argc, argv);

    const core::Topology topo = parseTopology(args.get("topology"));
    const long tasks = args.getInt("tasks");
    const long limit = args.getInt("limit");
    if (tasks < 1 || tasks > 8) {
        std::fprintf(stderr,
                     "enumerate supports 1..8 tasks (space grows "
                     "as Table 1 shows)\n");
        return 2;
    }
    core::AssignmentEnumerator enumerator(
        topo, static_cast<std::uint32_t>(tasks));
    long shown = 0;
    const std::uint64_t total = enumerator.forEach(
        [&shown, limit](const core::Assignment &a) {
            if (shown < limit) {
                std::printf("%6ld  %s\n", shown + 1,
                            a.toString().c_str());
            }
            ++shown;
            return true;
        });
    std::printf("total canonical assignments: %llu%s\n",
                static_cast<unsigned long long>(total),
                total > static_cast<std::uint64_t>(limit)
                    ? " (listing truncated; use --limit)" : "");
    return 0;
}

int
cmdBaselines(int argc, char **argv)
{
    OptionParser args;
    addEngineOptions(args);
    args.addOption("seed", "1", "sampler seed");
    args.addOption("draws", "1000", "random draws for the mean");
    parseOrDie(args, "baselines", argc, argv);

    const core::Topology topo = core::Topology::ultraSparcT2();
    EngineStack stack = makeEngineStack(args);
    const std::uint32_t tasks = stack.sim().workload().taskCount();

    const double naive = core::naiveExpectedPerformance(
        stack.top(), topo, tasks,
        static_cast<std::size_t>(
            positiveOrDie(args, "baselines", "draws")),
        static_cast<std::uint64_t>(args.getInt("seed")));
    const double linux_like = stack.top().measure(
        core::linuxLikeAssignment(topo, tasks));
    const double packed = stack.top().measure(
        core::packedAssignment(topo, tasks));
    std::printf("%s, %ld instances (%u tasks) on %s\n",
                sim::benchmarkName(
                    parseBenchmark(args.get("benchmark"))).c_str(),
                args.getInt("instances"), tasks,
                topo.shapeString().c_str());
    std::printf("naive (random mean):  %12.0f PPS\n", naive);
    std::printf("Linux-like balanced:  %12.0f PPS\n", linux_like);
    std::printf("packed (pessimal):    %12.0f PPS\n", packed);
    printEngineReport(stack);
    return 0;
}

int
cmdEstimate(int argc, char **argv)
{
    OptionParser args;
    addEngineOptions(args);
    args.addOption("samples", "2000", "random assignments to draw");
    args.addOption("seed", "42", "sampler seed");
    args.addFlag("cold-fits",
                 "restart every GPD fit from the moment estimate "
                 "(bit-identical to from-scratch estimation)");
    parseOrDie(args, "estimate", argc, argv);

    const long samples = positiveOrDie(args, "estimate", "samples");
    const long seed = args.getInt("seed");
    const core::Topology topo = core::Topology::ultraSparcT2();

    EngineStack stack = makeEngineStack(args);
    core::OptimalPerformanceEstimator estimator(
        stack.top(), topo, stack.sim().workload().taskCount(),
        static_cast<std::uint64_t>(seed), {}, !args.flag("cold-fits"));
    const auto result =
        estimator.extend(static_cast<std::size_t>(samples));

    std::printf("%s: %ld random assignments (seed %ld)\n",
                stack.top().name().c_str(), samples, seed);
    std::printf("best observed:      %12.0f PPS\n",
                result.bestObserved);
    if (result.pot.valid) {
        std::printf("estimated optimum:  %12.0f PPS  "
                    "[%.0f, %.0f] @ 0.95\n", result.pot.upb,
                    result.pot.upbLower, result.pot.upbUpper);
        std::printf("tail shape xi-hat:  %12.3f\n",
                    result.pot.fit.xi);
        std::printf("headroom:           %11.2f%%\n",
                    100.0 * result.estimatedLoss());
    } else {
        std::printf("tail estimate invalid (%s)\n",
                    result.pot.invalidReason.c_str());
    }
    if (result.failed != 0) {
        std::printf("failed measurements:%12zu of %zu attempted\n",
                    result.failed, result.attempted);
    }
    if (result.bestAssignment) {
        std::printf("best assignment:    %s\n",
                    result.bestAssignment->toString().c_str());
    }
    printEngineReport(stack);
    return 0;
}

int
cmdIterate(int argc, char **argv)
{
    OptionParser args;
    addEngineOptions(args);
    args.addOption("loss", "2.5", "acceptable loss percent");
    args.addOption("seed", "7", "sampler seed");
    args.addOption("ninit", "1000", "initial sample size");
    args.addOption("ndelta", "100", "per-iteration increment");
    args.addOption("max", "20000", "total sample cap");
    args.addFlag("confident",
                 "stop against the upper CI bound of the UPB");
    args.addFlag("cold-fits",
                 "restart every GPD fit from the moment estimate "
                 "(bit-identical to from-scratch estimation)");
    parseOrDie(args, "iterate", argc, argv);

    const double loss = args.getDouble("loss");
    const core::Topology topo = core::Topology::ultraSparcT2();

    EngineStack stack = makeEngineStack(args);
    core::IterativeOptions options;
    options.acceptableLoss = loss / 100.0;
    options.initialSample = static_cast<std::size_t>(
        positiveOrDie(args, "iterate", "ninit"));
    options.incrementSample = static_cast<std::size_t>(
        positiveOrDie(args, "iterate", "ndelta"));
    options.maxSample = static_cast<std::size_t>(
        positiveOrDie(args, "iterate", "max"));
    options.useUpperConfidenceBound = args.flag("confident");
    options.warmStartFits = !args.flag("cold-fits");

    const auto run = core::iterativeAssignmentSearch(
        stack.top(), topo, stack.sim().workload().taskCount(),
        static_cast<std::uint64_t>(args.getInt("seed")), options);
    std::printf("target loss %.2f%%: %s after %zu assignments "
                "(%zu iterations)\n", loss,
                run.satisfied ? "met" : "NOT met",
                run.totalSampled, run.steps.size());
    if (!run.abortReason.empty())
        std::printf("aborted: %s\n", run.abortReason.c_str());
    if (run.totalFailed != 0) {
        std::printf("failed measurements: %zu of %zu attempted\n",
                    run.totalFailed, run.totalAttempted);
    }
    std::printf("final: best %.0f PPS, UPB %.0f PPS, loss %.2f%%\n",
                run.final.bestObserved, run.final.pot.upb,
                100.0 * run.steps.back().loss);
    if (run.final.bestAssignment) {
        std::printf("best assignment:    %s\n",
                    run.final.bestAssignment->toString().c_str());
    }
    printEngineReport(stack);
    return 0;
}

int
cmdHelp()
{
    std::printf(
        "statsched — statistical task-assignment toolkit "
        "(ASPLOS'12 reproduction)\n\n"
        "usage: statsched_cli <command> [--option value | "
        "--option=value | --flag ...]\n\n"
        "commands:\n"
        "  count      --tasks N [--topology CxPxS]\n"
        "  capture    --percent P [--samples N | --target T]\n"
        "  enumerate  --tasks N [--topology CxPxS] [--limit K]\n"
        "  baselines  --benchmark B [--instances K] [--seed S] "
        "[--draws N]\n"
        "  estimate   --benchmark B [--instances K] [--samples N] "
        "[--seed S]\n"
        "             [--cold-fits]\n"
        "  iterate    --benchmark B [--loss PCT] [--ninit N] "
        "[--ndelta N]\n"
        "             [--max N] [--confident] [--cold-fits]\n"
        "  help\n\n"
        "measurement commands also take --threads N (0 = hardware "
        "concurrency)\nand --no-memoize (measure duplicate "
        "assignments afresh).\n\n"
        "fault tolerance: --fault-rate / --fault-garbage / "
        "--fault-outlier /\n--fault-hang PCT inject deterministic "
        "measurement faults (seeded by\n--fault-seed); --retries N "
        "bounds the recovery attempts per failed\nmeasurement "
        "(default 3).\n\n"
        "benchmarks: ipfwd-l1 ipfwd-mem analyzer aho stateful "
        "intadd intmul\n");
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return cmdHelp();
    const std::string command = argv[1];

    if (command == "count")
        return cmdCount(argc, argv);
    if (command == "capture")
        return cmdCapture(argc, argv);
    if (command == "enumerate")
        return cmdEnumerate(argc, argv);
    if (command == "baselines")
        return cmdBaselines(argc, argv);
    if (command == "estimate")
        return cmdEstimate(argc, argv);
    if (command == "iterate")
        return cmdIterate(argc, argv);
    if (command == "help" || command == "--help")
        return cmdHelp();

    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    cmdHelp();
    return 2;
}
