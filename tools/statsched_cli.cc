/**
 * @file
 * statsched — command-line front end to the library.
 *
 * Subcommands:
 *   count     size of the assignment space (Table 1 style)
 *   capture   capture-probability / sample-size math (Figure 2)
 *   enumerate exhaustive listing of canonical assignments
 *   baselines naive / Linux-like / packed performance on a benchmark
 *   estimate  sample + EVT estimation of the optimal performance
 *   iterate   the Section-5.3 iterative algorithm
 *
 * Run `statsched_cli help` for usage. All stochastic commands accept
 * --seed and are fully reproducible; --threads only changes how the
 * measurement batches are scheduled, never the results.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "base/cli.hh"
#include "base/clock.hh"
#include "base/shutdown.hh"
#include "core/assignment_space.hh"
#include "core/baselines.hh"
#include "core/campaign.hh"
#include "core/capture_probability.hh"
#include "core/enumerator.hh"
#include "core/estimator.hh"
#include "core/fault_injection.hh"
#include "core/iterative.hh"
#include "core/memoizing_engine.hh"
#include "core/parallel_engine.hh"
#include "core/resilient_engine.hh"
#include "core/shard_protocol.hh"
#include "core/sharded_engine.hh"
#include "num/duration.hh"
#include "sim/benchmarks.hh"
#include "sim/engine.hh"

namespace
{

using namespace statsched;
using base::OptionParser;

core::Topology
parseTopology(const std::string &spec)
{
    // "CxPxS", e.g. "8x2x4".
    unsigned c = 8;
    unsigned p = 2;
    unsigned s = 4;
    if (std::sscanf(spec.c_str(), "%ux%ux%u", &c, &p, &s) != 3) {
        std::fprintf(stderr, "bad topology '%s' (want CxPxS)\n",
                     spec.c_str());
        std::exit(2);
    }
    return core::Topology{c, p, s};
}

sim::Benchmark
parseBenchmark(const std::string &name)
{
    using sim::Benchmark;
    if (name == "ipfwd-l1")
        return Benchmark::IpfwdL1;
    if (name == "ipfwd-mem")
        return Benchmark::IpfwdMem;
    if (name == "analyzer")
        return Benchmark::PacketAnalyzer;
    if (name == "aho")
        return Benchmark::AhoCorasick;
    if (name == "stateful")
        return Benchmark::Stateful;
    if (name == "intadd")
        return Benchmark::IpfwdIntAdd;
    if (name == "intmul")
        return Benchmark::IpfwdIntMul;
    std::fprintf(stderr, "unknown benchmark '%s' (ipfwd-l1, "
                 "ipfwd-mem, analyzer, aho, stateful, intadd, "
                 "intmul)\n", name.c_str());
    std::exit(2);
}

/** Parses the command's options or exits with its usage text. */
void
parseOrDie(OptionParser &parser, const std::string &command, int argc,
           char **argv)
{
    if (!parser.parse(argc, argv, 2)) {
        std::fprintf(stderr, "%s: %s\noptions:\n%s", command.c_str(),
                     parser.error().c_str(), parser.usage().c_str());
        std::exit(2);
    }
}

/**
 * Reads a numeric option that must be strictly positive (sample
 * sizes, task counts); exits with a parse-style error otherwise, so
 * "--samples 0" fails at the command line instead of deep in the
 * estimator.
 */
long
positiveOrDie(const OptionParser &parser, const std::string &command,
              const std::string &name)
{
    const long value = parser.getInt(name);
    if (value <= 0) {
        std::fprintf(stderr, "%s: '--%s' must be positive (got %s)\n",
                     command.c_str(), name.c_str(),
                     parser.get(name).c_str());
        std::exit(2);
    }
    return value;
}

/** Declares the options shared by every measurement command. */
void
addEngineOptions(OptionParser &parser)
{
    parser.addOption("benchmark", "ipfwd-l1", "workload kernel");
    parser.addOption("instances", "8", "pipeline instances");
    parser.addOption("threads", "0",
                     "measurement threads (0 = hardware)");
    parser.addFlag("no-memoize",
                   "measure duplicate assignments afresh");
    parser.addOption("fault-rate", "0",
                     "injected transient failure percent");
    parser.addOption("fault-garbage", "0",
                     "injected NaN reading percent");
    parser.addOption("fault-outlier", "0",
                     "injected silent outlier percent");
    parser.addOption("fault-hang", "0",
                     "injected modeled hang percent");
    parser.addOption("fault-seed", "1024023",
                     "fault injection seed");
    parser.addOption("retries", "3",
                     "retry attempts per failed measurement");
}

/**
 * The standard measurement stack (performance_engine.hh ordering):
 * Metered(Memoizing?(Resilient?(Parallel(FaultInjecting?(Sim))))).
 * Fault injection (when any --fault-* rate is set) corrupts
 * measurements deterministically; the pool fans batches out; the
 * resilient layer retries and quarantines; memoization dedups each
 * batch; the meter on top sees every requested measurement.
 */
struct EngineStack
{
    std::unique_ptr<sim::SimulatedEngine> simulated;
    std::unique_ptr<core::FaultInjectingEngine> faulty;
    std::unique_ptr<core::ParallelEngine> parallel;
    std::unique_ptr<core::ResilientEngine> resilient;
    std::unique_ptr<core::MemoizingEngine> memoizing;
    std::unique_ptr<core::MeteredEngine> metered;

    core::PerformanceEngine &top() { return *metered; }
    const sim::SimulatedEngine &sim() const { return *simulated; }

    /** The below-journal substrate (Parallel(Fault?(Sim))) for
     *  commands that let core::runCampaign own the upper layers. */
    core::PerformanceEngine &substrate() { return *parallel; }
};

/**
 * @param withUpperLayers false builds only the measurement substrate
 *        (sim + faults + pool); the campaign runner then adds the
 *        resilient/memoizing/metered layers itself, above its
 *        journal.
 */
EngineStack
makeEngineStack(const OptionParser &args, bool withUpperLayers = true)
{
    const long instances = positiveOrDie(args, "engine", "instances");
    const long threads = args.getInt("threads");
    if (threads < 0) {
        std::fprintf(stderr,
                     "engine: '--threads' must be >= 0 (got %s)\n",
                     args.get("threads").c_str());
        std::exit(2);
    }

    core::FaultOptions faults;
    faults.transientRate = args.getDouble("fault-rate") / 100.0;
    faults.garbageRate = args.getDouble("fault-garbage") / 100.0;
    faults.outlierRate = args.getDouble("fault-outlier") / 100.0;
    faults.hangRate = args.getDouble("fault-hang") / 100.0;
    faults.seed =
        static_cast<std::uint64_t>(args.getInt("fault-seed"));
    if (faults.totalRate() > 1.0) {
        std::fprintf(stderr, "engine: fault rates add up to more "
                     "than 100%%\n");
        std::exit(2);
    }
    const long retries = args.getInt("retries");
    if (retries < 0) {
        std::fprintf(stderr,
                     "engine: '--retries' must be >= 0 (got %s)\n",
                     args.get("retries").c_str());
        std::exit(2);
    }

    EngineStack stack;
    stack.simulated = std::make_unique<sim::SimulatedEngine>(
        sim::makeWorkload(parseBenchmark(args.get("benchmark")),
                          static_cast<std::uint32_t>(instances)));
    core::PerformanceEngine *below = stack.simulated.get();
    if (faults.totalRate() > 0.0) {
        stack.faulty = std::make_unique<core::FaultInjectingEngine>(
            *below, faults);
        below = stack.faulty.get();
    }
    stack.parallel = std::make_unique<core::ParallelEngine>(
        *below, static_cast<unsigned>(threads));
    below = stack.parallel.get();
    if (!withUpperLayers)
        return stack;
    if (stack.faulty) {
        core::ResilientOptions resilience;
        resilience.maxAttempts =
            static_cast<std::uint32_t>(retries) + 1;
        stack.resilient = std::make_unique<core::ResilientEngine>(
            *below, resilience);
        below = stack.resilient.get();
    }
    if (!args.flag("no-memoize")) {
        stack.memoizing =
            std::make_unique<core::MemoizingEngine>(*below);
        below = stack.memoizing.get();
    }
    stack.metered = std::make_unique<core::MeteredEngine>(*below);
    return stack;
}

void
printEngineStats(std::FILE *out, const EngineStack &stack,
                 const core::EngineStats &stats, bool memoize)
{
    std::fprintf(out, "engine: %u thread(s), memoize %s\n",
                 stack.parallel->threads(), memoize ? "on" : "off");
    std::fprintf(out, "measurements:       %12llu in %llu batches\n",
                 static_cast<unsigned long long>(stats.measurements),
                 static_cast<unsigned long long>(stats.batches));
    if (memoize) {
        std::fprintf(out,
                     "cache hit rate:     %11.2f%%  "
                     "(%llu of %llu served from cache)\n",
                     100.0 * stats.cacheHitRate(),
                     static_cast<unsigned long long>(stats.cacheHits),
                     static_cast<unsigned long long>(
                         stats.cacheHits + stats.cacheMisses));
    }
    if (stack.faulty || stats.failures != 0 || stats.retries != 0 ||
        stats.quarantined != 0) {
        std::fprintf(out,
                     "failed attempts:    %12llu  (retried %llu, "
                     "quarantined %llu)\n",
                     static_cast<unsigned long long>(stats.failures),
                     static_cast<unsigned long long>(stats.retries),
                     static_cast<unsigned long long>(
                         stats.quarantined));
    }
    if (stats.shardedMeasurements != 0 || stats.shardFailures != 0 ||
        stats.shardReissues != 0 || stats.shardRespawns != 0 ||
        stats.shardsQuarantined != 0 ||
        stats.shardDegradedBatches != 0) {
        std::fprintf(out,
                     "shard workers:      %12llu measurements "
                     "served remotely\n",
                     static_cast<unsigned long long>(
                         stats.shardedMeasurements));
        std::fprintf(out,
                     "shard health:       %12llu failures  "
                     "(%llu re-issued, %llu respawned, "
                     "%llu quarantined)\n",
                     static_cast<unsigned long long>(
                         stats.shardFailures),
                     static_cast<unsigned long long>(
                         stats.shardReissues),
                     static_cast<unsigned long long>(
                         stats.shardRespawns),
                     static_cast<unsigned long long>(
                         stats.shardsQuarantined));
        if (stats.shardDegradedBatches != 0) {
            std::fprintf(out,
                         "shard degraded:     %12llu batches served "
                         "in-process\n",
                         static_cast<unsigned long long>(
                             stats.shardDegradedBatches));
        }
    }
    if (stats.shardAudits != 0) {
        std::fprintf(out,
                     "shard audits:       %12llu duplicated  "
                     "(%llu mismatches, %llu convictions)\n",
                     static_cast<unsigned long long>(
                         stats.shardAudits),
                     static_cast<unsigned long long>(
                         stats.shardAuditMismatches),
                     static_cast<unsigned long long>(
                         stats.shardConvictions));
    }
    if (stats.solves != 0) {
        std::fprintf(out,
                     "solver:             %12llu solves, "
                     "%.1f fixed-point iterations each\n",
                     static_cast<unsigned long long>(stats.solves),
                     stats.solverIterationsPerSolve());
        std::fprintf(out,
                     "scratch workspaces: %12llu reused  "
                     "(%llu pool-exhausted fallbacks)\n",
                     static_cast<unsigned long long>(
                         stats.scratchReuses),
                     static_cast<unsigned long long>(
                         stats.scratchFallbacks));
    }
    std::fprintf(out,
                 "modeled time:       %11.1f min "
                 "(at %.1f s per real measurement)\n",
                 stats.modeledSeconds / 60.0,
                 stack.sim().secondsPerMeasurement());
}

void
printEngineReport(const EngineStack &stack)
{
    printEngineStats(stdout, stack, stack.metered->stats(),
                     stack.memoizing != nullptr);
}

int
cmdCount(int argc, char **argv)
{
    OptionParser args;
    args.addOption("topology", "8x2x4", "processor shape CxPxS");
    args.addOption("tasks", "24", "workload size");
    parseOrDie(args, "count", argc, argv);

    const core::Topology topo = parseTopology(args.get("topology"));
    const long tasks = args.getInt("tasks");
    if (tasks < 1 ||
        tasks > static_cast<long>(topo.contexts())) {
        std::fprintf(stderr, "tasks out of range for %s\n",
                     topo.shapeString().c_str());
        return 2;
    }
    const core::AssignmentSpace space(topo);
    const auto count =
        space.countAssignments(static_cast<std::uint32_t>(tasks));
    std::printf("topology %s (%u contexts), %ld tasks\n",
                topo.shapeString().c_str(), topo.contexts(), tasks);
    std::printf("assignments: %s", count.toScientific(4).c_str());
    if (count.fitsUint64())
        std::printf(" (exactly %s)", count.toString().c_str());
    std::printf("\n");
    std::printf("run all at 1 s each:     %s\n",
                num::Duration::fromSeconds(count).toString().c_str());
    std::printf("predict all at 1 us:     %s\n",
                num::Duration::fromMicroseconds(count)
                    .toString().c_str());
    return 0;
}

int
cmdCapture(int argc, char **argv)
{
    OptionParser args;
    args.addOption("percent", "1.0", "top-percent band");
    args.addOption("target", "0.99", "capture probability wanted");
    args.addOption("samples", "0", "draws (0: solve for draws)");
    parseOrDie(args, "capture", argc, argv);

    const double percent = args.getDouble("percent");
    const double target = args.getDouble("target");
    const long n = args.getInt("samples");
    if (n > 0) {
        std::printf("P(capture top %.2f%% in %ld draws) = %.6f\n",
                    percent, n,
                    core::captureProbability(
                        percent, static_cast<std::uint64_t>(n)));
    } else {
        std::printf("draws for P(capture top %.2f%%) >= %.4f: "
                    "%llu\n", percent, target,
                    static_cast<unsigned long long>(
                        core::requiredSampleSize(percent, target)));
    }
    return 0;
}

int
cmdEnumerate(int argc, char **argv)
{
    OptionParser args;
    args.addOption("topology", "8x2x4", "processor shape CxPxS");
    args.addOption("tasks", "3", "workload size (1..8)");
    args.addOption("limit", "50", "listing length cap");
    parseOrDie(args, "enumerate", argc, argv);

    const core::Topology topo = parseTopology(args.get("topology"));
    const long tasks = args.getInt("tasks");
    const long limit = args.getInt("limit");
    if (tasks < 1 || tasks > 8) {
        std::fprintf(stderr,
                     "enumerate supports 1..8 tasks (space grows "
                     "as Table 1 shows)\n");
        return 2;
    }
    core::AssignmentEnumerator enumerator(
        topo, static_cast<std::uint32_t>(tasks));
    long shown = 0;
    const std::uint64_t total = enumerator.forEach(
        [&shown, limit](const core::Assignment &a) {
            if (shown < limit) {
                std::printf("%6ld  %s\n", shown + 1,
                            a.toString().c_str());
            }
            ++shown;
            return true;
        });
    std::printf("total canonical assignments: %llu%s\n",
                static_cast<unsigned long long>(total),
                total > static_cast<std::uint64_t>(limit)
                    ? " (listing truncated; use --limit)" : "");
    return 0;
}

int
cmdBaselines(int argc, char **argv)
{
    OptionParser args;
    addEngineOptions(args);
    args.addOption("seed", "1", "sampler seed");
    args.addOption("draws", "1000", "random draws for the mean");
    parseOrDie(args, "baselines", argc, argv);

    const core::Topology topo = core::Topology::ultraSparcT2();
    EngineStack stack = makeEngineStack(args);
    const std::uint32_t tasks = stack.sim().workload().taskCount();

    const double naive = core::naiveExpectedPerformance(
        stack.top(), topo, tasks,
        static_cast<std::size_t>(
            positiveOrDie(args, "baselines", "draws")),
        static_cast<std::uint64_t>(args.getInt("seed")));
    const double linux_like = stack.top().measure(
        core::linuxLikeAssignment(topo, tasks));
    const double packed = stack.top().measure(
        core::packedAssignment(topo, tasks));
    std::printf("%s, %ld instances (%u tasks) on %s\n",
                sim::benchmarkName(
                    parseBenchmark(args.get("benchmark"))).c_str(),
                args.getInt("instances"), tasks,
                topo.shapeString().c_str());
    std::printf("naive (random mean):  %12.0f PPS\n", naive);
    std::printf("Linux-like balanced:  %12.0f PPS\n", linux_like);
    std::printf("packed (pessimal):    %12.0f PPS\n", packed);
    printEngineReport(stack);
    return 0;
}

int
cmdEstimate(int argc, char **argv)
{
    OptionParser args;
    addEngineOptions(args);
    args.addOption("samples", "2000", "random assignments to draw");
    args.addOption("seed", "42", "sampler seed");
    args.addFlag("cold-fits",
                 "restart every GPD fit from the moment estimate "
                 "(bit-identical to from-scratch estimation)");
    parseOrDie(args, "estimate", argc, argv);

    const long samples = positiveOrDie(args, "estimate", "samples");
    const long seed = args.getInt("seed");
    const core::Topology topo = core::Topology::ultraSparcT2();

    EngineStack stack = makeEngineStack(args);
    core::OptimalPerformanceEstimator estimator(
        stack.top(), topo, stack.sim().workload().taskCount(),
        static_cast<std::uint64_t>(seed), {}, !args.flag("cold-fits"));
    const auto result =
        estimator.extend(static_cast<std::size_t>(samples));

    std::printf("%s: %ld random assignments (seed %ld)\n",
                stack.top().name().c_str(), samples, seed);
    std::printf("best observed:      %12.0f PPS\n",
                result.bestObserved);
    if (result.pot.valid) {
        std::printf("estimated optimum:  %12.0f PPS  "
                    "[%.0f, %.0f] @ 0.95\n", result.pot.upb,
                    result.pot.upbLower, result.pot.upbUpper);
        std::printf("tail shape xi-hat:  %12.3f\n",
                    result.pot.fit.xi);
        std::printf("headroom:           %11.2f%%\n",
                    100.0 * result.estimatedLoss());
    } else {
        std::printf("tail estimate invalid (%s)\n",
                    result.pot.invalidReason.c_str());
    }
    if (result.failed != 0) {
        std::printf("failed measurements:%12zu of %zu attempted\n",
                    result.failed, result.attempted);
    }
    if (result.bestAssignment) {
        std::printf("best assignment:    %s\n",
                    result.bestAssignment->toString().c_str());
    }
    printEngineReport(stack);
    return 0;
}

/** FNV-1a of the canonical campaign-configuration string. */
std::uint64_t
hashConfigString(const std::string &config)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : config) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Exit-code map of the iterate command (documented in cmdHelp and
 * README): a campaign that did not deliver its target must not exit
 * 0, and the distinct codes let scripts distinguish "search gave up"
 * from "operator/budget stopped it".
 */
int
campaignExitCode(const core::CampaignResult &result)
{
    if (!result.ran || !result.journalError.empty())
        return 2; // unusable/mismatched/diverged journal
    switch (result.search.abortKind) {
      case core::AbortKind::None:
        break;
      case core::AbortKind::EngineFailure:
        return 4; // dead engine / everything quarantined
      case core::AbortKind::Interrupted:
        return 5; // SIGINT/SIGTERM, checkpointed
      case core::AbortKind::DeadlineExceeded:
      case core::AbortKind::BudgetExhausted:
      case core::AbortKind::RoundLimit:
        return 6; // budget stop, checkpointed
    }
    return result.search.satisfied ? 0 : 3; // 3: hit the sample cap
}

int
cmdIterate(int argc, char **argv)
{
    OptionParser args;
    addEngineOptions(args);
    args.addOption("loss", "2.5", "acceptable loss percent");
    args.addOption("seed", "7", "sampler seed");
    args.addOption("ninit", "1000", "initial sample size");
    args.addOption("ndelta", "100", "per-iteration increment");
    args.addOption("max", "20000", "total sample cap");
    args.addFlag("confident",
                 "stop against the upper CI bound of the UPB");
    args.addFlag("cold-fits",
                 "restart every GPD fit from the moment estimate "
                 "(bit-identical to from-scratch estimation)");
    args.addOption("journal", "",
                   "crash-safe measurement journal path");
    args.addFlag("resume",
                 "resume a campaign from its --journal file");
    args.addOption("journal-on-error", "abort",
                   "journal media failure policy: abort | degrade "
                   "(drop to memory-only recording)");
    args.addOption("journal-segment-bytes", "0",
                   "rotate journal segments at this size "
                   "(0 = single file)");
    args.addOption("journal-fault-at", "0",
                   "chaos: fail journal writes after N bytes "
                   "(0 = off)");
    args.addOption("audit-fraction", "0",
                   "fraction of sharded measurements duplicated to a "
                   "second worker for Byzantine auditing (0..1)");
    args.addOption("chaos-garbage-shard", "-1",
                   "chaos: give this shard slot a value-corrupting "
                   "worker (-1 = none)");
    args.addOption("deadline-s", "0",
                   "wall-clock budget in seconds (0 = none)");
    args.addOption("max-measurements", "0",
                   "measurement budget (0 = none)");
    args.addOption("max-rounds", "0", "round budget (0 = none)");
    args.addOption("shards", "0",
                   "measurement worker processes (0 = in-process)");
    args.addOption("shard-deadline-s", "30",
                   "per-request worker deadline in seconds");
    args.addOption("worker", "",
                   "worker binary (default: statsched_worker next "
                   "to this binary)");
    parseOrDie(args, "iterate", argc, argv);

    const double loss = args.getDouble("loss");
    const core::Topology topo = core::Topology::ultraSparcT2();

    if (args.flag("resume") && args.get("journal").empty()) {
        std::fprintf(stderr,
                     "iterate: '--resume' requires '--journal'\n");
        return 2;
    }
    const double deadline = args.getDouble("deadline-s");
    const long maxMeasurements = args.getInt("max-measurements");
    const long maxRounds = args.getInt("max-rounds");
    if (deadline < 0 || maxMeasurements < 0 || maxRounds < 0) {
        std::fprintf(stderr, "iterate: budgets must be >= 0\n");
        return 2;
    }
    const long shards = args.getInt("shards");
    const double shardDeadline = args.getDouble("shard-deadline-s");
    if (shards < 0 || shardDeadline <= 0) {
        std::fprintf(stderr, "iterate: '--shards' must be >= 0 and "
                     "'--shard-deadline-s' positive\n");
        return 2;
    }
    const std::string onErrorName = args.get("journal-on-error");
    core::JournalErrorPolicy onError;
    if (onErrorName == "abort") {
        onError = core::JournalErrorPolicy::Abort;
    } else if (onErrorName == "degrade") {
        onError = core::JournalErrorPolicy::Degrade;
    } else {
        std::fprintf(stderr, "iterate: '--journal-on-error' must be "
                     "'abort' or 'degrade' (got %s)\n",
                     onErrorName.c_str());
        return 2;
    }
    const long segmentBytes = args.getInt("journal-segment-bytes");
    const long journalFaultAt = args.getInt("journal-fault-at");
    if (segmentBytes < 0 || journalFaultAt < 0) {
        std::fprintf(stderr, "iterate: journal sizes must be >= 0\n");
        return 2;
    }
    const double auditFraction = args.getDouble("audit-fraction");
    if (auditFraction < 0.0 || auditFraction > 1.0) {
        std::fprintf(stderr, "iterate: '--audit-fraction' must be "
                     "in [0, 1]\n");
        return 2;
    }
    const long garbageShard = args.getInt("chaos-garbage-shard");
    if (garbageShard >= shards) {
        std::fprintf(stderr, "iterate: '--chaos-garbage-shard' must "
                     "name a slot below '--shards'\n");
        return 2;
    }

    // The campaign runner owns the upper decorators (so its journal
    // can sit between them and the measurement substrate); the CLI
    // only builds Parallel(Fault?(Sim)).
    EngineStack stack =
        makeEngineStack(args, /*withUpperLayers=*/false);

    core::CampaignOptions campaign;
    campaign.iterative.acceptableLoss = loss / 100.0;
    campaign.iterative.initialSample = static_cast<std::size_t>(
        positiveOrDie(args, "iterate", "ninit"));
    campaign.iterative.incrementSample = static_cast<std::size_t>(
        positiveOrDie(args, "iterate", "ndelta"));
    campaign.iterative.maxSample = static_cast<std::size_t>(
        positiveOrDie(args, "iterate", "max"));
    campaign.iterative.useUpperConfidenceBound =
        args.flag("confident");
    campaign.iterative.warmStartFits = !args.flag("cold-fits");

    campaign.journalPath = args.get("journal");
    campaign.resume = args.flag("resume");
    // Failure-domain knobs: operational only, deliberately OUT of the
    // campaign identity hash — a resumed run may change its error
    // policy, segmentation or auditing without losing its journal.
    campaign.journalOnError = onError;
    campaign.journalSegmentBytes =
        static_cast<std::uint64_t>(segmentBytes);
    if (journalFaultAt > 0) {
        auto plan = std::make_shared<base::io::FaultPlan>();
        plan->failAfterBytes =
            static_cast<std::uint64_t>(journalFaultAt);
        campaign.journalSinkFactory =
            base::io::faultInjectingFileSinkFactory(std::move(plan));
    }
    campaign.deadlineSeconds = deadline;
    campaign.maxMeasurements =
        static_cast<std::uint64_t>(maxMeasurements);
    campaign.maxRounds = static_cast<std::size_t>(maxRounds);
    campaign.memoize = !args.flag("no-memoize");
    campaign.resilient = stack.faulty != nullptr;
    campaign.resilience.maxAttempts =
        static_cast<std::uint32_t>(args.getInt("retries")) + 1;

    // Identity hash: everything that steers measurement results or
    // the search trajectory (threads deliberately excluded — the
    // results are bit-identical under any thread count; budgets and
    // deadlines excluded — tightening or dropping them across a
    // resume is legitimate).
    campaign.configHash = hashConfigString(
        args.get("benchmark") + "|" + args.get("instances") + "|" +
        args.get("fault-rate") + "|" + args.get("fault-garbage") +
        "|" + args.get("fault-outlier") + "|" +
        args.get("fault-hang") + "|" + args.get("fault-seed") + "|" +
        args.get("retries") + "|" + args.get("loss") + "|" +
        args.get("ninit") + "|" + args.get("ndelta") + "|" +
        args.get("max") + "|" +
        (args.flag("confident") ? "c1" : "c0") + "|" +
        (args.flag("cold-fits") ? "f1" : "f0") + "|" +
        (args.flag("no-memoize") ? "m0" : "m1"));

    // Wall clock and signals are injected here, at the edge: src/core
    // stays deterministic (see the statsched-wallclock lint rule).
    base::SteadyClock clock;
    campaign.clock = &clock;
    base::installShutdownHandlers();
    campaign.stopRequested = [] { return base::shutdownRequested(); };

    // Health aggregate: every component transition prints to stderr
    // the moment it happens, and the worst level at exit decides
    // between 0 and the "completed degraded" code 7.
    core::Health health([](const core::HealthTransition &change) {
        std::fprintf(stderr, "health: %s %s -> %s (%s)\n",
                     change.component.c_str(),
                     core::healthLevelName(change.from),
                     core::healthLevelName(change.to),
                     change.detail.c_str());
    });
    campaign.health = &health;

    // --shards N fans measurement batches out to N statsched_worker
    // subprocesses below the journal (Sharded over the substrate);
    // results are bit-identical for every N, so the shard flags stay
    // out of the campaign identity hash, and a journal written
    // sharded resumes unsharded (and vice versa).
    const std::uint32_t tasks = stack.sim().workload().taskCount();
    std::unique_ptr<core::ShardedEngine> sharded;
    if (shards > 0) {
        std::string workerPath = args.get("worker");
        if (workerPath.empty()) {
            workerPath = (std::filesystem::path(argv[0])
                              .parent_path() /
                          "statsched_worker")
                             .string();
        }
        const std::string engineConfig = args.get("benchmark") + "|" +
            args.get("instances") + "|" + args.get("fault-rate") +
            "|" + args.get("fault-garbage") + "|" +
            args.get("fault-outlier") + "|" +
            args.get("fault-hang") + "|" + args.get("fault-seed");
        const std::uint64_t fingerprint =
            core::shardConfigFingerprint(engineConfig);
        const std::vector<std::string> workerArgv = {
            workerPath,
            "--benchmark", args.get("benchmark"),
            "--instances", args.get("instances"),
            "--fault-rate", args.get("fault-rate"),
            "--fault-garbage", args.get("fault-garbage"),
            "--fault-outlier", args.get("fault-outlier"),
            "--fault-hang", args.get("fault-hang"),
            "--fault-seed", args.get("fault-seed"),
            "--config-hash", std::to_string(fingerprint),
        };
        core::ShardedOptions sharding;
        sharding.shards = static_cast<std::size_t>(shards);
        sharding.requestDeadlineSeconds = shardDeadline;
        sharding.expected.configHash = fingerprint;
        sharding.expected.cores = topo.cores;
        sharding.expected.pipesPerCore = topo.pipesPerCore;
        sharding.expected.strandsPerPipe = topo.strandsPerPipe;
        sharding.expected.tasks = tasks;
        sharding.clock = &clock;
        sharding.auditFraction = auditFraction;
        sharding.auditSeed =
            static_cast<std::uint64_t>(args.getInt("seed"));
        sharding.health = &health;
        core::ShardBackendFactory backendFactory;
        if (garbageShard >= 0) {
            // Chaos: one slot gets a Byzantine worker. Its corrupted
            // values carry valid frames and CRCs — only the audit
            // layer can tell it from an honest one.
            backendFactory = core::makeProcessShardFactory(
                [workerArgv, garbageShard](std::size_t index) {
                    std::vector<std::string> argv = workerArgv;
                    if (index ==
                        static_cast<std::size_t>(garbageShard))
                        argv.push_back("--garbage-values");
                    return argv;
                },
                clock, shardDeadline);
        } else {
            backendFactory = core::makeProcessShardFactory(
                workerArgv, clock, shardDeadline);
        }
        sharded = std::make_unique<core::ShardedEngine>(
            stack.substrate(), std::move(backendFactory), sharding);
    }
    core::PerformanceEngine &substrate =
        sharded ? *sharded : stack.substrate();

    const core::CampaignResult result = core::runCampaign(
        substrate, topo, tasks,
        static_cast<std::uint64_t>(args.getInt("seed")), campaign);

    if (!result.ran) {
        std::fprintf(stderr, "iterate: %s\n",
                     result.journalError.c_str());
        return campaignExitCode(result);
    }

    // stdout carries only the deterministic campaign outcome — the
    // fields that must be bit-identical between an uninterrupted run
    // and a killed-and-resumed one (the CI journal-resume job diffs
    // them). Operational detail (engine stats, journal accounting,
    // abort reasons) goes to stderr.
    const core::IterativeResult &run = result.search;
    std::printf("target loss %.2f%%: %s after %zu assignments "
                "(%zu iterations)\n", loss,
                run.satisfied ? "met" : "NOT met",
                run.totalSampled, run.steps.size());
    if (run.totalFailed != 0) {
        std::printf("failed measurements: %zu of %zu attempted\n",
                    run.totalFailed, run.totalAttempted);
    }
    if (!run.steps.empty()) {
        std::printf("final: best %.0f PPS, UPB %.0f PPS, "
                    "loss %.2f%%\n",
                    run.final.bestObserved, run.final.pot.upb,
                    100.0 * run.steps.back().loss);
    }
    if (run.final.bestAssignment) {
        std::printf("best assignment:    %s\n",
                    run.final.bestAssignment->toString().c_str());
    }

    if (!run.abortReason.empty())
        std::fprintf(stderr, "aborted (%s): %s\n",
                     core::abortKindName(run.abortKind),
                     run.abortReason.c_str());
    if (!result.journalError.empty())
        std::fprintf(stderr, "journal: %s\n",
                     result.journalError.c_str());
    if (!campaign.journalPath.empty()) {
        std::fprintf(stderr, "journal: %s%llu replayed, "
                     "%llu recorded",
                     result.resumed ? "resumed; " : "",
                     static_cast<unsigned long long>(
                         result.replayedMeasurements),
                     static_cast<unsigned long long>(
                         result.recordedMeasurements));
        if (result.journalTruncatedBytes != 0)
            std::fprintf(stderr, " (%llu bytes of torn tail dropped)",
                         static_cast<unsigned long long>(
                             result.journalTruncatedBytes));
        if (result.journalSegmentsRotated != 0)
            std::fprintf(stderr, " (%llu segment rotations, "
                         "%llu bytes compacted)",
                         static_cast<unsigned long long>(
                             result.journalSegmentsRotated),
                         static_cast<unsigned long long>(
                             result.journalCompactedBytes));
        if (result.journalDegraded)
            std::fprintf(stderr, "; DEGRADED to memory-only "
                         "(%llu measurements unjournaled)",
                         static_cast<unsigned long long>(
                             result.unjournaledMeasurements));
        std::fprintf(stderr, "\n");
    }
    printEngineStats(stderr, stack, result.engineStats,
                     campaign.memoize);

    int code = campaignExitCode(result);
    if (code == 0 && health.worst() != core::HealthLevel::Ok) {
        // The search met its target, but some component ran degraded
        // (journal on memory only, shards quarantined/convicted, weak
        // final estimate). The results are exact; the distinct code
        // tells scripts the environment was not.
        std::fprintf(stderr, "health: completed DEGRADED —");
        for (const core::Health::Component &component :
             health.components()) {
            if (component.level != core::HealthLevel::Ok)
                std::fprintf(stderr, " %s=%s",
                             component.name.c_str(),
                             core::healthLevelName(component.level));
        }
        std::fprintf(stderr, "\n");
        code = 7;
    }
    return code;
}

int
cmdHelp()
{
    std::printf(
        "statsched — statistical task-assignment toolkit "
        "(ASPLOS'12 reproduction)\n\n"
        "usage: statsched_cli <command> [--option value | "
        "--option=value | --flag ...]\n\n"
        "commands:\n"
        "  count      --tasks N [--topology CxPxS]\n"
        "  capture    --percent P [--samples N | --target T]\n"
        "  enumerate  --tasks N [--topology CxPxS] [--limit K]\n"
        "  baselines  --benchmark B [--instances K] [--seed S] "
        "[--draws N]\n"
        "  estimate   --benchmark B [--instances K] [--samples N] "
        "[--seed S]\n"
        "             [--cold-fits]\n"
        "  iterate    --benchmark B [--loss PCT] [--ninit N] "
        "[--ndelta N]\n"
        "             [--max N] [--confident] [--cold-fits]\n"
        "             [--journal PATH [--resume]] [--deadline-s S]\n"
        "             [--max-measurements N] [--max-rounds N]\n"
        "             [--shards N [--worker PATH] "
        "[--shard-deadline-s S]]\n"
        "  help\n\n"
        "measurement commands also take --threads N (0 = hardware "
        "concurrency)\nand --no-memoize (measure duplicate "
        "assignments afresh).\n\n"
        "fault tolerance: --fault-rate / --fault-garbage / "
        "--fault-outlier /\n--fault-hang PCT inject deterministic "
        "measurement faults (seeded by\n--fault-seed); --retries N "
        "bounds the recovery attempts per failed\nmeasurement "
        "(default 3).\n\n"
        "durability: --journal PATH write-ahead-logs every "
        "measurement; after a\ncrash, the same command with --resume "
        "replays the journal and continues\nbit-identically. "
        "--deadline-s / --max-measurements / --max-rounds stop\nthe "
        "campaign gracefully at a round boundary with a final "
        "checkpoint;\nso do SIGINT and SIGTERM. "
        "--journal-segment-bytes N rotates segments\nand compacts "
        "sealed ones; --journal-on-error degrade completes the\nrun "
        "on memory-only recording after ENOSPC/EIO instead of "
        "aborting.\n\n"
        "sharding: --shards N fans measurement batches out to N "
        "statsched_worker\nprocesses (bit-identical results for any "
        "N, including 0). Dead or hung\nworkers are re-issued, "
        "respawned with backoff, then quarantined; with\nevery "
        "worker quarantined the campaign degrades to in-process "
        "measuring.\n--audit-fraction F duplicates a seeded F of "
        "indices to a second worker\nand convicts backends returning "
        "corrupt values. Worker exit codes:\n0 clean stop, 2 usage, "
        "3 protocol error.\n\n"
        "iterate exit codes: 0 target met, 2 usage or journal "
        "error,\n3 sample cap reached, 4 engine failure, "
        "5 interrupted,\n6 deadline or budget exhausted, 7 completed "
        "with degraded health\n(results exact; journal or shards "
        "impaired).\n\n"
        "benchmarks: ipfwd-l1 ipfwd-mem analyzer aho stateful "
        "intadd intmul\n");
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return cmdHelp();
    const std::string command = argv[1];

    if (command == "count")
        return cmdCount(argc, argv);
    if (command == "capture")
        return cmdCapture(argc, argv);
    if (command == "enumerate")
        return cmdEnumerate(argc, argv);
    if (command == "baselines")
        return cmdBaselines(argc, argv);
    if (command == "estimate")
        return cmdEstimate(argc, argv);
    if (command == "iterate")
        return cmdIterate(argc, argv);
    if (command == "help" || command == "--help")
        return cmdHelp();

    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    cmdHelp();
    return 2;
}
