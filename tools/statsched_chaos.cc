/**
 * @file
 * statsched_chaos — environment-hostility orchestrator.
 *
 * The robustness claims of the measurement stack (journal recovery,
 * shard re-issue, Byzantine conviction, graceful drain) are easy to
 * state and easy to silently regress, because none of the unit tests
 * exercise real processes dying at real syscall boundaries. This tool
 * closes that gap: it runs full statsched_cli campaigns as
 * subprocesses, injects one calamity per scenario — SIGKILL mid-
 * campaign, SIGSTOP of a shard worker, a disk that fills mid-journal,
 * a worker that lies about its values — and asserts the one property
 * every layer promises: the final stdout report is byte-identical to
 * the undisturbed run, and the exit code tells the truth about how
 * the campaign got there (0/3 clean, 7 completed degraded).
 *
 * Scenarios (one per ctest entry, label "chaos"):
 *
 *   disk-full      journal sink fails at a byte offset; degrade
 *                  policy completes bit-identically with exit 7 and a
 *                  "health: journal" transition, abort policy exits 2,
 *                  and a resume against the latched journal finishes
 *                  clean.
 *   garbage-shard  one of two shard workers corrupts every value;
 *                  audit duplication convicts it, the run stays
 *                  bit-identical, exit 7, "health: shards".
 *   kill-resume    SIGKILL the coordinator mid-campaign (exit 137),
 *                  resume from the torn journal, same final report.
 *   stop-hang      SIGSTOP one shard worker; the request deadline
 *                  declares it hung, work is re-issued, the campaign
 *                  completes bit-identically.
 *   term-drain     SIGTERM an idle worker directly; it drains and
 *                  exits 0 instead of dying mid-protocol.
 *   all            every scenario above, in order.
 *
 * Children are spawned through base::Subprocess (via `/bin/sh -c
 * "exec ..."` so stderr can be captured to a file while stdout stays
 * on the pipe for the bit-identity diff). Raw ::kill appears here for
 * SIGSTOP of a scanned /proc pid — the worker is a grandchild, so
 * Subprocess::signalChild cannot reach it.
 *
 * Exit codes: 0 all expectations held, 1 at least one failed,
 * 2 usage error.
 */

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <time.h>

#include "base/cli.hh"
#include "base/io.hh"
#include "base/subprocess.hh"

namespace
{

using namespace statsched;

void
sleepMs(long ms)
{
    struct timespec ts;
    ts.tv_sec = ms / 1000;
    ts.tv_nsec = (ms % 1000) * 1000000L;
    ::nanosleep(&ts, nullptr);
}

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** @return the file's size in bytes, or -1 when it does not exist. */
long
fileSize(const std::string &path)
{
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<long>(st.st_size);
}

std::string
readWholeFile(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    base::io::readFileBytes(path, bytes);
    return std::string(bytes.begin(), bytes.end());
}

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

/** Single-quotes `arg` for /bin/sh. */
std::string
shellQuote(const std::string &arg)
{
    std::string quoted = "'";
    for (const char c : arg) {
        if (c == '\'')
            quoted += "'\\''";
        else
            quoted += c;
    }
    quoted += "'";
    return quoted;
}

/**
 * One campaign process. The command is wrapped in `/bin/sh -c
 * "exec ..."` — exec keeps the child's pid equal to the campaign's
 * pid (so signals and /proc ppid scans hit the right process) while
 * the shell redirects stderr to a file the scenarios can grep for
 * health transitions. stdout stays on the Subprocess pipe, captured
 * byte-exactly for the identity diffs.
 */
class CliProcess
{
  public:
    bool
    start(const std::vector<std::string> &argv,
          const std::string &stderrPath, std::string &error)
    {
        std::string cmd = "exec";
        for (const std::string &arg : argv) {
            cmd += ' ';
            cmd += shellQuote(arg);
        }
        if (!stderrPath.empty()) {
            cmd += " 2> ";
            cmd += shellQuote(stderrPath);
        }
        return child_.spawn({"/bin/sh", "-c", cmd}, error);
    }

    pid_t pid() const { return child_.pid(); }

    base::Subprocess &proc() { return child_; }

    /** Drains stdout into `out` until EOF, then reaps.
     *  @return the exit code (128 + N for death by signal N). */
    int
    finish(std::string &out)
    {
        char buffer[4096];
        while (true) {
            const base::Subprocess::ReadResult r =
                child_.read(buffer, sizeof buffer, 1000);
            switch (r.status) {
              case base::Subprocess::ReadStatus::Data:
                out.append(buffer, r.bytes);
                break;
              case base::Subprocess::ReadStatus::Eof:
                return child_.wait();
              case base::Subprocess::ReadStatus::Timeout:
              case base::Subprocess::ReadStatus::Interrupted:
                break; // child still running (or signal); keep going
              case base::Subprocess::ReadStatus::Error:
                return child_.wait();
            }
        }
    }

  private:
    base::Subprocess child_;
};

struct RunResult
{
    int exitCode = -1;
    std::string out;
};

/** Paths and scoreboard shared by every scenario. */
struct Context
{
    std::string cli;
    std::string worker;
    std::string workdir;
    int failures = 0;

    void
    expect(bool ok, const std::string &what)
    {
        std::fprintf(stderr, "chaos: %s  %s\n", ok ? "ok  " : "FAIL",
                     what.c_str());
        if (!ok)
            ++failures;
    }

    std::string
    path(const std::string &name) const
    {
        return workdir + "/" + name;
    }
};

/** Runs a campaign to completion. */
RunResult
runCli(Context &ctx, const std::vector<std::string> &args,
       const std::string &stderrPath)
{
    std::vector<std::string> argv;
    argv.push_back(ctx.cli);
    argv.insert(argv.end(), args.begin(), args.end());
    CliProcess p;
    std::string error;
    RunResult result;
    if (!p.start(argv, stderrPath, error)) {
        std::fprintf(stderr, "chaos: spawn failed: %s\n",
                     error.c_str());
        return result;
    }
    result.exitCode = p.finish(result.out);
    return result;
}

/** The fast campaign: deterministic, target met (exit 0), one
 *  ninit batch — small enough to run several times per scenario. */
std::vector<std::string>
fastCampaign()
{
    return {"iterate",  "--benchmark", "aho",   "--loss",
            "10",       "--ninit",     "300",   "--ndelta",
            "100",      "--max",       "2000",  "--threads", "2"};
}

/** The long campaign: deterministically runs to its sample cap
 *  (documented exit 3) over a couple of seconds — wide enough a
 *  window for mid-campaign signal injection. */
std::vector<std::string>
longCampaign()
{
    return {"iterate",      "--benchmark", "ipfwd-l1", "--ninit",
            "2000",         "--ndelta",    "500",      "--max",
            "20000",        "--loss",      "0.1",      "--fault-rate",
            "10",           "--threads",   "2"};
}

std::vector<std::string>
withArgs(std::vector<std::string> base,
         const std::vector<std::string> &extra)
{
    base.insert(base.end(), extra.begin(), extra.end());
    return base;
}

/** @return pids of live statsched_worker processes whose parent is
 *  `parent`, scanned from /proc (the workers are grandchildren of
 *  this tool, so Subprocess cannot name them). */
std::vector<pid_t>
workerChildrenOf(pid_t parent)
{
    std::vector<pid_t> pids;
    DIR *dir = ::opendir("/proc");
    if (dir == nullptr)
        return pids;
    while (struct dirent *entry = ::readdir(dir)) {
        const char *name = entry->d_name;
        if (name[0] < '0' || name[0] > '9')
            continue;
        const std::string stat =
            readWholeFile(std::string("/proc/") + name + "/stat");
        // Format: pid (comm) state ppid ... — comm may itself
        // contain parentheses, so parse from the LAST ')'.
        const std::size_t open = stat.find('(');
        const std::size_t close = stat.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
            continue;
        const std::string comm =
            stat.substr(open + 1, close - open - 1);
        // /proc truncates comm to 15 characters.
        if (comm.rfind("statsched_work", 0) != 0)
            continue;
        int ppid = -1;
        char state = '?';
        if (std::sscanf(stat.c_str() + close + 1, " %c %d", &state,
                        &ppid) != 2)
            continue;
        if (ppid == parent)
            pids.push_back(
                static_cast<pid_t>(std::atol(name)));
    }
    ::closedir(dir);
    return pids;
}

// --- scenarios ------------------------------------------------------

/**
 * The journal's medium fills mid-campaign. Degrade policy: the run
 * completes bit-identically, exits 7 and reports the journal health
 * transition; a later resume against the latched (valid-prefix)
 * journal completes clean. Abort policy: the same fault is fatal,
 * documented exit 2.
 */
void
scenarioDiskFull(Context &ctx)
{
    std::fprintf(stderr, "chaos: --- disk-full ---\n");
    const RunResult baseline =
        runCli(ctx, fastCampaign(), ctx.path("baseline.err"));
    ctx.expect(baseline.exitCode == 0, "baseline campaign exits 0");

    base::io::removeFile(ctx.path("degrade.journal"));
    const RunResult degraded = runCli(
        ctx,
        withArgs(fastCampaign(),
                 {"--journal", ctx.path("degrade.journal"),
                  "--journal-fault-at", "2048", "--journal-on-error",
                  "degrade"}),
        ctx.path("degrade.err"));
    ctx.expect(degraded.exitCode == 7,
               "disk-full under degrade policy exits 7 "
               "(completed degraded)");
    ctx.expect(degraded.out == baseline.out,
               "degraded run's report is byte-identical to the "
               "baseline");
    const std::string degradeErr =
        readWholeFile(ctx.path("degrade.err"));
    ctx.expect(contains(degradeErr, "health: journal"),
               "stderr reports the journal health transition");
    ctx.expect(contains(degradeErr, "DEGRADED"),
               "stderr reports the degraded completion summary");

    const RunResult resumed = runCli(
        ctx,
        withArgs(fastCampaign(),
                 {"--journal", ctx.path("degrade.journal"),
                  "--resume"}),
        ctx.path("resume.err"));
    ctx.expect(resumed.exitCode == 0,
               "resume against the latched journal exits 0");
    ctx.expect(resumed.out == baseline.out,
               "resumed run's report matches the baseline");

    base::io::removeFile(ctx.path("abort.journal"));
    const RunResult aborted = runCli(
        ctx,
        withArgs(fastCampaign(),
                 {"--journal", ctx.path("abort.journal"),
                  "--journal-fault-at", "2048", "--journal-on-error",
                  "abort"}),
        ctx.path("abort.err"));
    ctx.expect(aborted.exitCode == 2,
               "disk-full under abort policy exits 2");
}

/**
 * One of two shard workers computes honestly, then corrupts every
 * value's bits before replying — valid frames, valid CRCs, wrong
 * VALUES. Audit duplication must convict it and the final report
 * must match the unsharded baseline bit for bit.
 */
void
scenarioGarbageShard(Context &ctx)
{
    std::fprintf(stderr, "chaos: --- garbage-shard ---\n");
    const RunResult baseline =
        runCli(ctx, fastCampaign(), ctx.path("baseline.err"));
    ctx.expect(baseline.exitCode == 0, "baseline campaign exits 0");

    const RunResult garbage = runCli(
        ctx,
        withArgs(fastCampaign(),
                 {"--shards", "2", "--worker", ctx.worker,
                  "--audit-fraction", "0.25", "--chaos-garbage-shard",
                  "1"}),
        ctx.path("garbage.err"));
    ctx.expect(garbage.exitCode == 7,
               "campaign with a Byzantine shard exits 7 "
               "(completed degraded)");
    ctx.expect(garbage.out == baseline.out,
               "report with a convicted Byzantine shard is "
               "byte-identical to the baseline");
    const std::string garbageErr =
        readWholeFile(ctx.path("garbage.err"));
    ctx.expect(contains(garbageErr, "health: shards"),
               "stderr reports the shards health transition");
}

/**
 * SIGKILL lands mid-campaign (no warning, no flush — the journal is
 * torn at an arbitrary byte). Resume must replay the durable prefix
 * and finish with the exact report of the undisturbed run.
 */
void
scenarioKillResume(Context &ctx)
{
    std::fprintf(stderr, "chaos: --- kill-resume ---\n");
    base::io::removeFile(ctx.path("full.journal"));
    const RunResult full = runCli(
        ctx,
        withArgs(longCampaign(),
                 {"--journal", ctx.path("full.journal")}),
        ctx.path("full.err"));
    ctx.expect(full.exitCode == 3,
               "uninterrupted long campaign exits 3 (sample cap)");

    base::io::removeFile(ctx.path("torn.journal"));
    CliProcess victim;
    std::string error;
    std::vector<std::string> argv;
    argv.push_back(ctx.cli);
    for (const std::string &arg :
         withArgs(longCampaign(),
                  {"--journal", ctx.path("torn.journal")}))
        argv.push_back(arg);
    if (!victim.start(argv, ctx.path("torn.err"), error)) {
        ctx.expect(false, "spawn victim campaign: " + error);
        return;
    }
    // Kill only once the journal proves the campaign is mid-flight;
    // the budget below is far beyond the campaign's normal runtime,
    // so a miss means the journal never grew — itself a failure.
    const std::int64_t deadline = nowMs() + 30000;
    bool midFlight = false;
    while (nowMs() < deadline) {
        if (fileSize(ctx.path("torn.journal")) >= 16384) {
            midFlight = true;
            break;
        }
        sleepMs(5);
    }
    ctx.expect(midFlight, "journal grew past the kill threshold "
                          "while the campaign ran");
    victim.proc().kill();
    std::string tornOut;
    const int tornExit = victim.finish(tornOut);
    ctx.expect(tornExit == 137,
               "SIGKILLed campaign reports death by signal 9");

    const RunResult resumed = runCli(
        ctx,
        withArgs(longCampaign(),
                 {"--journal", ctx.path("torn.journal"), "--resume"}),
        ctx.path("resumed.err"));
    ctx.expect(resumed.exitCode == 3,
               "resumed campaign exits 3 (sample cap)");
    ctx.expect(resumed.out == full.out,
               "resumed report is byte-identical to the "
               "uninterrupted run");
    ctx.expect(contains(readWholeFile(ctx.path("resumed.err")),
                        "journal: resumed"),
               "stderr confirms measurements were replayed");
}

/**
 * SIGSTOP freezes one shard worker without killing it — the nastiest
 * failure mode, because the process exists but never answers. The
 * coordinator's request deadline must declare it hung, re-issue its
 * work and finish bit-identically.
 */
void
scenarioStopHang(Context &ctx)
{
    std::fprintf(stderr, "chaos: --- stop-hang ---\n");
    const RunResult full =
        runCli(ctx, longCampaign(), ctx.path("full.err"));
    ctx.expect(full.exitCode == 3,
               "uninterrupted long campaign exits 3 (sample cap)");

    CliProcess victim;
    std::string error;
    std::vector<std::string> argv;
    argv.push_back(ctx.cli);
    for (const std::string &arg :
         withArgs(longCampaign(),
                  {"--shards", "2", "--worker", ctx.worker,
                   "--shard-deadline-s", "2"}))
        argv.push_back(arg);
    if (!victim.start(argv, ctx.path("stopped.err"), error)) {
        ctx.expect(false, "spawn sharded campaign: " + error);
        return;
    }
    // Find a live worker grandchild and freeze it. The worker is
    // not our child, so raw ::kill is the only reach.
    const std::int64_t deadline = nowMs() + 10000;
    pid_t frozen = -1;
    while (nowMs() < deadline) {
        const std::vector<pid_t> workers =
            workerChildrenOf(victim.pid());
        if (!workers.empty()) {
            frozen = workers.front();
            break;
        }
        sleepMs(5);
    }
    ctx.expect(frozen > 0, "found a shard worker to freeze");
    if (frozen > 0)
        ::kill(frozen, SIGSTOP);
    std::string out;
    const int exitCode = victim.finish(out);
    ctx.expect(exitCode == 3,
               "campaign with a frozen worker exits 3 (sample cap)");
    ctx.expect(out == full.out,
               "report with a frozen worker is byte-identical to "
               "the unsharded run");
    // The coordinator SIGKILLs the hung slot's process on teardown
    // (SIGKILL acts on stopped processes), so nothing leaks; this
    // just documents the expectation.
    if (frozen > 0)
        ::kill(frozen, SIGCONT);
}

/**
 * SIGTERM to an idle worker: it must drain (no half-written frame)
 * and exit 0 — the shutdown path the coordinator relies on when the
 * operator Ctrl-C's a foreground campaign.
 */
void
scenarioTermDrain(Context &ctx)
{
    std::fprintf(stderr, "chaos: --- term-drain ---\n");
    base::Subprocess worker;
    std::string error;
    if (!worker.spawn({ctx.worker, "--benchmark", "aho"}, error)) {
        ctx.expect(false, "spawn worker: " + error);
        return;
    }
    // Wait for the Hello so the signal lands on a serving, idle
    // worker rather than one still constructing its engine.
    char buffer[512];
    bool hello = false;
    const std::int64_t deadline = nowMs() + 10000;
    while (nowMs() < deadline) {
        const base::Subprocess::ReadResult r =
            worker.read(buffer, sizeof buffer, 500);
        if (r.status == base::Subprocess::ReadStatus::Data) {
            hello = true;
            break;
        }
        if (r.status == base::Subprocess::ReadStatus::Eof)
            break;
    }
    ctx.expect(hello, "worker sent its Hello");
    ctx.expect(worker.signalChild(SIGTERM),
               "SIGTERM delivered to the worker");
    // Drain to EOF; the worker owes nothing, so this is quick.
    while (true) {
        const base::Subprocess::ReadResult r =
            worker.read(buffer, sizeof buffer, 1000);
        if (r.status == base::Subprocess::ReadStatus::Data)
            continue;
        if (r.status == base::Subprocess::ReadStatus::Timeout ||
            r.status == base::Subprocess::ReadStatus::Interrupted)
            continue;
        break; // Eof or Error: the worker is gone
    }
    ctx.expect(worker.wait() == 0,
               "worker drained and exited 0 on SIGTERM");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    base::OptionParser args;
    args.addOption("cli", "", "path to the statsched_cli binary");
    args.addOption("worker", "",
                   "path to the statsched_worker binary");
    args.addOption("workdir", "",
                   "scratch directory for journals and captures");
    args.addOption("scenario", "all",
                   "disk-full | garbage-shard | kill-resume | "
                   "stop-hang | term-drain | all");
    if (!args.parse(argc, argv, 1)) {
        std::fprintf(stderr, "statsched_chaos: %s\noptions:\n%s",
                     args.error().c_str(), args.usage().c_str());
        return 2;
    }

    Context ctx;
    ctx.cli = args.get("cli");
    ctx.worker = args.get("worker");
    ctx.workdir = args.get("workdir");
    const std::string scenario = args.get("scenario");
    if (ctx.cli.empty() || ctx.worker.empty() ||
        ctx.workdir.empty()) {
        std::fprintf(stderr, "statsched_chaos: --cli, --worker and "
                             "--workdir are required\n");
        return 2;
    }
    if (::mkdir(ctx.workdir.c_str(), 0755) != 0 && errno != EEXIST) {
        std::fprintf(stderr,
                     "statsched_chaos: cannot create workdir '%s'\n",
                     ctx.workdir.c_str());
        return 2;
    }

    bool known = false;
    if (scenario == "disk-full" || scenario == "all") {
        scenarioDiskFull(ctx);
        known = true;
    }
    if (scenario == "garbage-shard" || scenario == "all") {
        scenarioGarbageShard(ctx);
        known = true;
    }
    if (scenario == "kill-resume" || scenario == "all") {
        scenarioKillResume(ctx);
        known = true;
    }
    if (scenario == "stop-hang" || scenario == "all") {
        scenarioStopHang(ctx);
        known = true;
    }
    if (scenario == "term-drain" || scenario == "all") {
        scenarioTermDrain(ctx);
        known = true;
    }
    if (!known) {
        std::fprintf(stderr,
                     "statsched_chaos: unknown scenario '%s'\n",
                     scenario.c_str());
        return 2;
    }

    if (ctx.failures > 0) {
        std::fprintf(stderr, "chaos: %d expectation(s) FAILED\n",
                     ctx.failures);
        return 1;
    }
    std::fprintf(stderr, "chaos: all expectations held\n");
    return 0;
}
