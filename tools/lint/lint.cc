/**
 * @file
 * statsched_lint rule engine implementation.
 *
 * Matching is token/regex-level over comment- and string-stripped
 * lines: precise enough for the repo's own conventions, with no
 * libclang dependency. Each rule documents what it matches and why
 * the convention exists; see lint.hh for the catalogue overview.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "lexer.hh"

namespace statsched
{
namespace lint
{

namespace
{

/** Rule ids, in catalogue order. */
const char *const kWallclock = "statsched-wallclock";
const char *const kAmbientRng = "statsched-ambient-rng";
const char *const kUnorderedIteration = "statsched-unordered-iteration";
const char *const kRawAssert = "statsched-raw-assert";
const char *const kStdout = "statsched-stdout";
const char *const kIncludeGuard = "statsched-include-guard";
const char *const kIncludeOwnFirst = "statsched-include-own-first";
const char *const kNolintReason = "statsched-nolint-reason";
const char *const kSimHotAlloc = "statsched-sim-hot-alloc";
const char *const kNoRawProcess = "statsched-no-raw-process";
const char *const kRawFileIo = "statsched-raw-file-io";
const char *const kRawSyncPrimitive = "statsched-raw-sync-primitive";
const char *const kUnguardedMember = "statsched-unguarded-member";
const char *const kDetachedThread = "statsched-detached-thread";
const char *const kFloatReductionOrder =
    "statsched-float-reduction-order";

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(),
                  suffix) == 0;
}

/** Modules whose code must be a pure function of its seeds. */
bool
isDeterministicModule(const std::string &path)
{
    return startsWith(path, "src/core/") ||
        startsWith(path, "src/stats/") ||
        startsWith(path, "src/sim/") || startsWith(path, "src/num/");
}

/**
 * The simulator measurement hot path: the contention solver and the
 * engine that drives it, where per-measurement heap allocation is
 * banned (sim/contention.hh documents the Scratch discipline). The
 * frozen reference solver is deliberately out of scope — its
 * allocations are the baseline being beaten.
 */
bool
isSimHotPath(const std::string &path)
{
    return startsWith(path, "src/sim/contention.") ||
        startsWith(path, "src/sim/engine.");
}

/** Library code: everything under src/. */
bool
isLibrary(const std::string &path)
{
    return startsWith(path, "src/");
}

/**
 * Modules allowed to read wall clocks directly. src/base owns the
 * base::Clock abstraction itself; src/hw drives real hardware where
 * elapsed time IS the measurement. Everything else in src/ must go
 * through an injected base::Clock so runs stay replayable.
 */
bool
isClockExempt(const std::string &path)
{
    return startsWith(path, "src/base/") ||
        startsWith(path, "src/hw/");
}

/**
 * Splits content into lines with comments and string/char literals
 * blanked out (replaced by spaces, so column positions survive).
 * Block comments may span lines; the line count is preserved.
 */
std::vector<std::string>
stripCommentsAndStrings(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    bool in_block_comment = false;

    std::istringstream stream(content);
    while (std::getline(stream, line)) {
        std::string out(line.size(), ' ');
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (in_block_comment) {
                if (line[i] == '*' && i + 1 < line.size() &&
                    line[i + 1] == '/') {
                    in_block_comment = false;
                    ++i;
                }
                continue;
            }
            const char c = line[i];
            if (c == '/' && i + 1 < line.size()) {
                if (line[i + 1] == '/')
                    break; // rest of the line is a comment
                if (line[i + 1] == '*') {
                    in_block_comment = true;
                    ++i;
                    continue;
                }
            }
            if (c == '"' || c == '\'') {
                const char quote = c;
                out[i] = quote;
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        ++i;
                    } else if (line[i] == quote) {
                        out[i] = quote;
                        break;
                    }
                    ++i;
                }
                continue;
            }
            out[i] = c;
        }
        lines.push_back(std::move(out));
    }
    return lines;
}

/** Raw (unstripped) lines, for NOLINT directive parsing. */
std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream stream(content);
    while (std::getline(stream, line))
        lines.push_back(std::move(line));
    return lines;
}

/**
 * Lines with string/char literals blanked but comments kept — the
 * view NOLINT directives are parsed from. Directives live in
 * comments; directive-shaped text inside a string literal (a lint
 * test fixture, a help message) must stay inert.
 */
std::vector<std::string>
stripStringsOnly(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    bool in_block_comment = false;

    std::istringstream stream(content);
    while (std::getline(stream, line)) {
        std::string out(line.size(), ' ');
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (in_block_comment) {
                out[i] = line[i];
                if (line[i] == '*' && i + 1 < line.size() &&
                    line[i + 1] == '/') {
                    out[i + 1] = '/';
                    in_block_comment = false;
                    ++i;
                }
                continue;
            }
            const char c = line[i];
            if (c == '/' && i + 1 < line.size()) {
                if (line[i + 1] == '/') {
                    // Copy the comment verbatim to the end.
                    for (std::size_t j = i; j < line.size(); ++j)
                        out[j] = line[j];
                    break;
                }
                if (line[i + 1] == '*') {
                    out[i] = '/';
                    out[i + 1] = '*';
                    in_block_comment = true;
                    ++i;
                    continue;
                }
            }
            if (c == '"' || c == '\'') {
                const char quote = c;
                out[i] = quote;
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        ++i;
                    } else if (line[i] == quote) {
                        out[i] = quote;
                        break;
                    }
                    ++i;
                }
                continue;
            }
            out[i] = c;
        }
        lines.push_back(std::move(out));
    }
    return lines;
}

/**
 * Per-line suppression state parsed from NOLINT directives.
 */
struct Suppression
{
    std::set<std::string> rules; //!< suppressed rule ids on this line
    bool missingReason = false;  //!< directive present, reason absent
};

Suppression
parseNolint(const std::string &raw_line)
{
    Suppression sup;
    static const std::regex directive(
        R"(//\s*NOLINT\(([^)]*)\)(.*))");
    std::smatch m;
    if (!std::regex_search(raw_line, m, directive))
        return sup;

    std::string rule;
    std::istringstream rules(m[1].str());
    while (std::getline(rules, rule, ',')) {
        rule.erase(0, rule.find_first_not_of(" \t"));
        rule.erase(rule.find_last_not_of(" \t") + 1);
        if (!rule.empty())
            sup.rules.insert(rule);
    }

    // The reason is mandatory: "): <non-empty text>".
    static const std::regex reason(R"(^\s*:\s*\S)");
    if (!std::regex_search(m[2].str(), reason))
        sup.missingReason = true;
    return sup;
}

/** Collects names of variables declared as unordered containers. */
std::vector<std::string>
unorderedContainerNames(const std::vector<std::string> &stripped)
{
    std::vector<std::string> names;
    for (const std::string &line : stripped) {
        std::size_t pos = 0;
        while (true) {
            const std::size_t map_pos =
                line.find("unordered_map<", pos);
            const std::size_t set_pos =
                line.find("unordered_set<", pos);
            std::size_t at = std::min(map_pos, set_pos);
            if (at == std::string::npos)
                break;
            // Walk past the template argument list, balancing <>.
            std::size_t i = line.find('<', at);
            int depth = 0;
            for (; i < line.size(); ++i) {
                if (line[i] == '<')
                    ++depth;
                else if (line[i] == '>' && --depth == 0)
                    break;
            }
            pos = at + 1;
            if (i >= line.size())
                continue; // declaration spans lines; next line's
                          // name capture will not match — rare, and
                          // the iteration regex still needs the name
            ++i;
            while (i < line.size() &&
                   (std::isspace(static_cast<unsigned char>(
                        line[i])) ||
                    line[i] == '&'))
                ++i;
            std::size_t name_begin = i;
            while (i < line.size() &&
                   (std::isalnum(static_cast<unsigned char>(
                        line[i])) ||
                    line[i] == '_'))
                ++i;
            if (i > name_begin)
                names.push_back(
                    line.substr(name_begin, i - name_begin));
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()),
                names.end());
    return names;
}

/** @return the canonical include guard for a header path
 *  ("src/base/check.hh" -> "STATSCHED_BASE_CHECK_HH"). */
std::string
canonicalGuard(std::string path)
{
    if (startsWith(path, "src/"))
        path = path.substr(4);
    std::string guard = "STATSCHED_";
    for (const char c : path) {
        guard += std::isalnum(static_cast<unsigned char>(c))
            ? static_cast<char>(
                  std::toupper(static_cast<unsigned char>(c)))
            : '_';
    }
    return guard;
}

/** Where a line rule applies. */
enum class RuleScope
{
    Library,       //!< all of src/
    Deterministic, //!< src/core, src/stats, src/sim, src/num
    ClockManaged,  //!< src/ minus the clock-exempt modules
    SimHotPath,    //!< src/sim/contention.*, src/sim/engine.*
    Process,       //!< every scanned file except the sanctioned
                   //!< process wrapper (src/base/subprocess.hh)
    CoreIo,        //!< src/core/ — file I/O routes through base::io
};

/** Rules that match single stripped lines with a regex. */
struct LineRule
{
    const char *id;
    std::regex pattern;
    const char *message;
    RuleScope scope;
};

bool
ruleApplies(RuleScope scope, const std::string &path)
{
    switch (scope) {
    case RuleScope::Library:
        return isLibrary(path);
    case RuleScope::Deterministic:
        return isDeterministicModule(path);
    case RuleScope::ClockManaged:
        return isLibrary(path) && !isClockExempt(path);
    case RuleScope::SimHotPath:
        return isSimHotPath(path);
    case RuleScope::Process:
        return !startsWith(path, "src/base/subprocess.");
    case RuleScope::CoreIo:
        return startsWith(path, "src/core/");
    }
    return true;
}

const std::vector<LineRule> &
lineRules()
{
    static const std::vector<LineRule> rules = [] {
        std::vector<LineRule> r;
        r.push_back(
            {kWallclock,
             std::regex(
                 R"((\bchrono::(steady_clock|system_clock|high_resolution_clock)\b)|(\b(steady_clock|system_clock|high_resolution_clock)::now\s*\()|(\btime\s*\(\s*(NULL|nullptr|0)?\s*\))|(\bgettimeofday\b)|(\bclock_gettime\b)|(\bclock\s*\(\s*\)))"),
             "direct wall-clock read; base::Clock is the only "
             "sanctioned time source outside src/base and src/hw",
             RuleScope::ClockManaged});
        r.push_back(
            {kAmbientRng,
             std::regex(
                 R"((\brand\s*\(\s*\))|(\bsrand\s*\()|(\brandom_device\b)|(\bdrand48\s*\()|(\brandom\s*\(\s*\)))"),
             "ambient randomness in a deterministic module; draw from "
             "an explicitly seeded stats::Rng",
             RuleScope::Deterministic});
        r.push_back(
            {kRawAssert,
             std::regex(
                 R"((\bassert\s*\()|(\bSTATSCHED_ASSERT\s*\()|(#\s*include\s*<cassert>)|(#\s*include\s*<assert\.h>))"),
             "raw assert in library code; use the base/check.hh "
             "contracts (SCHED_REQUIRE/SCHED_ENSURE/SCHED_INVARIANT)",
             RuleScope::Library});
        r.push_back(
            {kStdout,
             std::regex(
                 R"((\bstd::cout\b)|(\bprintf\s*\()|(\bputs\s*\())"),
             "stdout write in library code; report through return "
             "values or stderr logging (base/logging.hh)",
             RuleScope::Library});
        r.push_back(
            {kSimHotAlloc,
             std::regex(
                 R"((\bstd::map\s*<)|(\bstd::multimap\s*<)|(\bstd::unordered_map\s*<)|(\bstd::unordered_set\s*<)|(\bnew\s+[A-Za-z_])|(\b(malloc|calloc|realloc)\s*\()|(\bstd::vector\s*<[^;=]*>\s+[A-Za-z_]\w*\s*[({=]))"),
             "allocation on the simulator hot path; use the "
             "preallocated Scratch buffers (sim/contention.hh), or "
             "suppress with a reason if this is construction-time or "
             "off the solve path",
             RuleScope::SimHotPath});
        r.push_back(
            {kNoRawProcess,
             std::regex(
                 R"((\bfork\s*\()|(\bvfork\s*\()|(\bexec[lv]p?e?\s*\()|(\bexecvpe\s*\()|(\bposix_spawnp?\s*\()|(\bwaitpid\s*\()|(\bwait3\s*\()|(\bwait4\s*\()|(\bpipe2?\s*\(\s*[A-Za-z_&])|(\bpopen\s*\()|(\bsystem\s*\())"),
             "raw process-control call; spawn and manage children "
             "through base::Subprocess (src/base/subprocess.hh), the "
             "one audited home for fork/exec/pipe/waitpid lifecycle "
             "bugs",
             RuleScope::Process});
        r.push_back(
            {kRawFileIo,
             std::regex(
                 R"((\bFILE\s*\*)|(\bf(open|reopen|dopen|write|read|flush|close|sync|datasync|ileno|seeko?|tello?|gets|getc|putc|puts)\s*\()|(\bstd::(ofstream|ifstream|fstream|filebuf)\b)|(::(write|read|open|close|pwrite|pread|truncate|ftruncate|unlink|rename)\s*\())"),
             "raw file I/O in src/core; route writes through the "
             "base::io sink layer (src/base/io.hh), where the "
             "EINTR/short-write/fsync discipline and fault injection "
             "live",
             RuleScope::CoreIo});
        return r;
    }();
    return rules;
}

void
applyLineRules(const std::string &path,
               const std::vector<std::string> &stripped,
               const std::vector<std::string> &directives,
               std::vector<Finding> &findings)
{
    // Process-scoped rules reach every scanned file (tools, tests
    // and benches spawn workers too); the rest of the machinery only
    // looks at src/.
    const bool deterministic = isDeterministicModule(path);

    // Iteration over unordered containers is only detectable with
    // the declared names in hand.
    std::regex iteration_pattern;
    bool have_names = false;
    if (deterministic) {
        const std::vector<std::string> names =
            unorderedContainerNames(stripped);
        if (!names.empty()) {
            std::string alternation;
            for (const std::string &name : names) {
                if (!alternation.empty())
                    alternation += '|';
                alternation += name;
            }
            iteration_pattern = std::regex(
                "(for\\s*\\([^;)]*:\\s*(this->)?(" + alternation +
                ")\\s*\\))|(\\b(" + alternation +
                ")\\s*\\.\\s*(begin|cbegin|rbegin)\\s*\\()");
            have_names = true;
        }
    }

    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const Suppression sup = parseNolint(directives[i]);
        if (sup.missingReason) {
            findings.push_back(
                {path, i + 1, kNolintReason,
                 "NOLINT suppression without a reason; write "
                 "NOLINT(statsched-<rule>): <why this is safe>"});
        }
        for (const LineRule &rule : lineRules()) {
            if (!ruleApplies(rule.scope, path))
                continue;
            if (sup.rules.count(rule.id) != 0)
                continue;
            if (std::regex_search(stripped[i], rule.pattern))
                findings.push_back(
                    {path, i + 1, rule.id, rule.message});
        }
        if (have_names &&
            sup.rules.count(kUnorderedIteration) == 0 &&
            std::regex_search(stripped[i], iteration_pattern)) {
            findings.push_back(
                {path, i + 1, kUnorderedIteration,
                 "iteration over an unordered container in a "
                 "deterministic module; hash order is not part of "
                 "the determinism contract"});
        }
    }
}

void
applyHeaderGuardRule(const std::string &path,
                     const std::vector<std::string> &stripped,
                     const std::vector<std::string> &directives,
                     std::vector<Finding> &findings)
{
    if (!endsWith(path, ".hh"))
        return;

    const std::string guard = canonicalGuard(path);
    std::size_t ifndef_line = 0;
    bool has_ifndef = false;
    bool has_define = false;
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const std::string &line = stripped[i];
        if (!has_ifndef &&
            line.find("#ifndef " + guard) != std::string::npos) {
            has_ifndef = true;
            ifndef_line = i;
        }
        if (line.find("#define " + guard) != std::string::npos)
            has_define = true;
    }
    if (!has_ifndef || !has_define) {
        if (!parseNolint(directives.empty() ? std::string()
                                            : directives[0])
                 .rules.count(kIncludeGuard)) {
            findings.push_back(
                {path, has_ifndef ? ifndef_line + 1 : 1,
                 kIncludeGuard,
                 "missing or non-canonical include guard; expected "
                 "#ifndef/#define " +
                     guard});
        }
    }
}

void
applyOwnHeaderFirstRule(const std::string &path,
                        const std::vector<std::string> &raw,
                        const std::vector<std::string> &directives,
                        std::vector<Finding> &findings)
{
    if (!endsWith(path, ".cc") || !isLibrary(path))
        return;

    // src/core/foo.cc must include "core/foo.hh" before any other
    // include, so every public header is proven self-contained.
    std::string expected = path.substr(4);
    expected = expected.substr(0, expected.size() - 3) + ".hh";

    // Matched against the raw lines: include paths are string-like
    // tokens, which the stripped view blanks out.
    static const std::regex include_pattern(
        "^\\s*#\\s*include\\s*[\"<]([^\">]+)[\">]");
    for (std::size_t i = 0; i < raw.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(raw[i], m, include_pattern))
            continue;
        if (m[1].str() != expected &&
            parseNolint(directives[i]).rules.count(kIncludeOwnFirst) ==
                0) {
            findings.push_back(
                {path, i + 1, kIncludeOwnFirst,
                 "first include must be this file's own header \"" +
                     expected + "\""});
        }
        return; // only the first include matters
    }
}

// ==== Token-stream rules ===========================================
//
// The rules below consume the lexer.hh token stream instead of single
// stripped lines, so they can follow structure the line rules cannot:
// statements spanning lines, class-member ownership, lambda bodies.
// They are heuristics over tokens, not a C++ parser; each documents
// the shapes it deliberately does not chase.

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokenKind::Identifier && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokenKind::Punct && t.text == text;
}

/** Emits a finding unless a same-line NOLINT suppresses the rule. */
void
emitToken(const std::string &path, std::size_t line, const char *rule,
          std::string message,
          const std::vector<std::string> &directives,
          std::vector<Finding> &findings)
{
    if (line >= 1 && line <= directives.size() &&
        parseNolint(directives[line - 1]).rules.count(rule) != 0)
        return;
    findings.push_back({path, line, rule, std::move(message)});
}

/** @return the index just past the closer matching toks[open].
 *  Unbalanced input yields toks.size(), which every caller treats as
 *  "statement runs to end of file" — safe on malformed sources. */
std::size_t
skipBalanced(const std::vector<Token> &toks, std::size_t open,
             const char *opener, const char *closer)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks[i], opener))
            ++depth;
        else if (isPunct(toks[i], closer) && --depth == 0)
            return i + 1;
    }
    return toks.size();
}

/** Skips a template parameter list (`i` at the `template` keyword) so
 *  `template <class T>` never looks like a class definition. */
std::size_t
skipTemplateParams(const std::vector<Token> &toks, std::size_t i)
{
    std::size_t j = i + 1;
    if (j >= toks.size() || !isPunct(toks[j], "<"))
        return j;
    int depth = 0;
    for (; j < toks.size(); ++j) {
        if (isPunct(toks[j], "<")) {
            ++depth;
        } else if (isPunct(toks[j], "<<")) {
            depth += 2;
        } else if (isPunct(toks[j], ">")) {
            if (--depth <= 0)
                return j + 1;
        } else if (isPunct(toks[j], ">>")) {
            depth -= 2;
            if (depth <= 0)
                return j + 1;
        }
    }
    return j;
}

/** ALL_CAPS identifiers are attribute macros to the class-name
 *  heuristic (SCHED_SCOPED_CAPABILITY and friends), not names. */
bool
isMacroCase(const std::string &text)
{
    bool has_alpha = false;
    for (const char c : text) {
        if (std::islower(static_cast<unsigned char>(c)) != 0)
            return false;
        if (std::isupper(static_cast<unsigned char>(c)) != 0)
            has_alpha = true;
    }
    return has_alpha;
}

/**
 * statsched-raw-sync-primitive: the std synchronization vocabulary —
 * mutexes, condition variables and their RAII lockers — may appear
 * only inside src/base/sync.hh, which wraps it once with lock-order
 * checking and Clang thread-safety annotations. Everything else, tests
 * and tools included, locks through base::Mutex / base::CondVar /
 * base::MutexLock.
 */
void
applyRawSyncRule(const std::string &path,
                 const std::vector<Token> &toks,
                 const std::vector<std::string> &directives,
                 std::vector<Finding> &findings)
{
    if (path == "src/base/sync.hh")
        return;
    static const std::set<std::string> primitives = {
        "mutex", "timed_mutex", "recursive_mutex",
        "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
        "condition_variable", "condition_variable_any", "lock_guard",
        "unique_lock", "scoped_lock", "shared_lock",
    };
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isIdent(toks[i], "std") && isPunct(toks[i + 1], "::") &&
            toks[i + 2].kind == TokenKind::Identifier &&
            primitives.count(toks[i + 2].text) != 0) {
            emitToken(path, toks[i].line, kRawSyncPrimitive,
                      "std::" + toks[i + 2].text +
                          " outside src/base/sync.hh; lock through "
                          "base::Mutex / base::CondVar / "
                          "base::MutexLock so the lock-order checker "
                          "and thread-safety annotations see the "
                          "acquisition",
                      directives, findings);
        }
        if (isPunct(toks[i], "#") && isIdent(toks[i + 1], "include") &&
            isPunct(toks[i + 2], "<") && i + 4 < toks.size() &&
            toks[i + 3].kind == TokenKind::Identifier &&
            (toks[i + 3].text == "mutex" ||
             toks[i + 3].text == "condition_variable" ||
             toks[i + 3].text == "shared_mutex") &&
            isPunct(toks[i + 4], ">")) {
            emitToken(path, toks[i].line, kRawSyncPrimitive,
                      "<" + toks[i + 3].text +
                          "> included outside src/base/sync.hh; "
                          "include \"base/sync.hh\" instead",
                      directives, findings);
        }
    }
}

/**
 * statsched-detached-thread: `.detach(` anywhere except src/hw, where
 * the watchdog abandons wedged measurement runs and keeps their state
 * alive through shared_ptr precisely so detaching is safe. A detached
 * thread elsewhere outlives its owner's invariants silently.
 */
void
applyDetachedThreadRule(const std::string &path,
                        const std::vector<Token> &toks,
                        const std::vector<std::string> &directives,
                        std::vector<Finding> &findings)
{
    if (startsWith(path, "src/hw/"))
        return;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isPunct(toks[i], ".") && isIdent(toks[i + 1], "detach") &&
            isPunct(toks[i + 2], "(")) {
            emitToken(path, toks[i + 1].line, kDetachedThread,
                      "thread detached outside the sanctioned src/hw "
                      "watchdog; join it, or route abandonment "
                      "through state the thread keeps alive itself "
                      "(see hw::PinnedThreadEngine)",
                      directives, findings);
        }
    }
}

/**
 * statsched-unguarded-member: inside a class that directly owns a
 * base::Mutex, every mutable data member must be tied to a protection
 * story the reader can see: SCHED_GUARDED_BY(lock), std::atomic,
 * const — or a same-line NOLINT explaining the lifecycle that makes
 * an unguarded member safe.
 *
 * Heuristic boundaries, on purpose: a member statement carrying any
 * top-level parenthesized group is skipped (that covers function
 * declarations and definitions, and every annotation macro — an
 * annotated member is by definition not a finding); references and
 * pointers are exempt (the *pointee* discipline is
 * SCHED_PT_GUARDED_BY's job, and references are bound before
 * sharing); statics live outside instance state. Anonymous-struct
 * declarators, bitfields and multi-declarator lines are not chased.
 */
class MemberGuardScanner
{
  public:
    MemberGuardScanner(const std::string &path,
                       const std::vector<Token> &toks,
                       const std::vector<std::string> &directives,
                       std::vector<Finding> &findings)
        : path_(path), toks_(toks), directives_(directives),
          findings_(findings)
    {}

    void
    run()
    {
        scanRegion(0, toks_.size());
    }

  private:
    struct Candidate
    {
        std::string name;
        std::size_t line;
    };

    /** Walks [begin, end) finding class definitions at any nesting
     *  depth outside class bodies (namespaces, functions). */
    void
    scanRegion(std::size_t begin, std::size_t end)
    {
        for (std::size_t i = begin; i < end && i < toks_.size();) {
            const Token &t = toks_[i];
            if (isIdent(t, "template")) {
                i = skipTemplateParams(toks_, i);
            } else if (isIdent(t, "enum")) {
                i = skipEnum(i);
            } else if (isIdent(t, "class") || isIdent(t, "struct") ||
                       isIdent(t, "union")) {
                i = parseClassHead(i);
            } else {
                ++i;
            }
        }
    }

    /** Skips an enum so `enum class` never looks like a class head
     *  and enumerators never look like members. */
    std::size_t
    skipEnum(std::size_t i) const
    {
        std::size_t j = i + 1;
        while (j < toks_.size() && !isPunct(toks_[j], "{") &&
               !isPunct(toks_[j], ";"))
            ++j;
        if (j < toks_.size() && isPunct(toks_[j], "{"))
            return skipBalanced(toks_, j, "{", "}");
        return j;
    }

    /** `i` at class/struct/union; returns the index just past the
     *  definition (or past `;` for a forward declaration). */
    std::size_t
    parseClassHead(std::size_t i)
    {
        const std::size_t n = toks_.size();
        std::size_t j = i + 1;
        std::string name = "(anonymous)";
        bool named = false;
        while (j < n) {
            const Token &t = toks_[j];
            if (isPunct(t, "{") || isPunct(t, ";") || isPunct(t, ":"))
                break;
            if (!named && t.kind == TokenKind::Identifier) {
                if (j + 1 < n && isPunct(toks_[j + 1], "(")) {
                    // alignas(...) or a parameterized attribute macro
                    // such as SCHED_CAPABILITY("mutex").
                    j = skipBalanced(toks_, j + 1, "(", ")");
                    continue;
                }
                if (!isMacroCase(t.text)) {
                    name = t.text;
                    named = true;
                }
            }
            ++j;
        }
        // Base clause: scan on to the body, tolerating template
        // arguments (and their parentheses) in base names.
        while (j < n && !isPunct(toks_[j], "{") &&
               !isPunct(toks_[j], ";"))
            ++j;
        if (j >= n)
            return j;
        if (isPunct(toks_[j], ";"))
            return j + 1; // forward declaration (or friend decl)
        return parseClassBody(j + 1, name);
    }

    /** `i` just past a class body's `{`; collects data members,
     *  decides mutex ownership, emits findings. Returns the index
     *  just past the closing `}`. */
    std::size_t
    parseClassBody(std::size_t i, const std::string &className)
    {
        const std::size_t n = toks_.size();
        bool ownsMutex = false;
        std::vector<Candidate> candidates;

        while (i < n && !isPunct(toks_[i], "}")) {
            const Token &t = toks_[i];
            if ((isIdent(t, "public") || isIdent(t, "private") ||
                 isIdent(t, "protected")) &&
                i + 1 < n && isPunct(toks_[i + 1], ":")) {
                i += 2;
            } else if (isIdent(t, "template")) {
                i = skipTemplateParams(toks_, i);
            } else if (isIdent(t, "enum")) {
                i = skipEnum(i);
            } else if (isIdent(t, "class") || isIdent(t, "struct") ||
                       isIdent(t, "union")) {
                i = parseClassHead(i);
                if (i < n && isPunct(toks_[i], ";"))
                    ++i; // `struct Job { ... };`
            } else if (isIdent(t, "friend") || isIdent(t, "using") ||
                       isIdent(t, "typedef") ||
                       isIdent(t, "static_assert")) {
                while (i < n && !isPunct(toks_[i], ";"))
                    ++i;
                if (i < n)
                    ++i;
            } else {
                i = parseMemberStatement(i, ownsMutex, candidates);
            }
        }
        if (i < n)
            ++i; // past '}'

        if (ownsMutex) {
            for (const Candidate &c : candidates) {
                emitToken(
                    path_, c.line, kUnguardedMember,
                    "member `" + c.name + "` of `" + className +
                        "`, which owns a base::Mutex, has no "
                        "declared protection; annotate it "
                        "SCHED_GUARDED_BY(<lock>), make it "
                        "const/atomic, or suppress with the "
                        "lifecycle reason it is safe unguarded",
                    directives_, findings_);
            }
        }
        return i;
    }

    /** Parses one member statement; updates mutex ownership and the
     *  candidate list; returns the index just past the statement. */
    std::size_t
    parseMemberStatement(std::size_t i, bool &ownsMutex,
                         std::vector<Candidate> &candidates)
    {
        const std::size_t n = toks_.size();
        const std::size_t start = i;
        bool topParens = false;
        bool functionBody = false;
        int angle = 0;

        while (i < n) {
            const Token &t = toks_[i];
            if (isPunct(t, ";"))
                break;
            if (isPunct(t, "}")) // malformed; rejoin the body loop
                return i;
            if (isPunct(t, "{")) {
                const std::size_t close =
                    skipBalanced(toks_, i, "{", "}");
                if (close < n && isPunct(toks_[close], ";")) {
                    i = close; // brace initializer: x_{0};
                    continue;
                }
                functionBody = true; // in-class definition
                i = close;
                break;
            }
            if (angle == 0 && isPunct(t, "(")) {
                topParens = true;
                i = skipBalanced(toks_, i, "(", ")");
                continue;
            }
            if (isPunct(t, "<") && i > start &&
                toks_[i - 1].kind == TokenKind::Identifier) {
                ++angle;
            } else if (isPunct(t, ">") && angle > 0) {
                --angle;
            } else if (isPunct(t, ">>") && angle > 0) {
                angle = angle >= 2 ? angle - 2 : 0;
            }
            ++i;
        }
        const std::size_t end = i; // at ';' or just past a body
        if (i < n && isPunct(toks_[i], ";"))
            ++i;
        if (end == start)
            return i; // stray ';'

        // Ownership: a by-value member whose type names Mutex. The
        // wrapper's own internals (std::mutex) spell it lowercase, so
        // sync.hh itself never registers as a lock owner.
        bool mentionsMutex = false;
        bool refOrPtr = false;
        bool exempt = false;
        for (std::size_t k = start; k < end; ++k) {
            const Token &t = toks_[k];
            if (t.kind == TokenKind::Identifier) {
                if (t.text == "Mutex")
                    mentionsMutex = true;
                if (t.text == "Mutex" || t.text == "CondVar" ||
                    t.text == "const" || t.text == "constexpr" ||
                    t.text == "atomic" || t.text == "static" ||
                    t.text == "operator")
                    exempt = true;
            } else if (isPunct(t, "&") || isPunct(t, "*") ||
                       isPunct(t, "&&")) {
                refOrPtr = true;
            }
        }
        if (mentionsMutex && !refOrPtr && !topParens && !functionBody)
            ownsMutex = true;
        if (topParens || functionBody || exempt || refOrPtr)
            return i;

        // Declared name: the identifier before the initializer or
        // the terminating ';', behind any array extent.
        std::size_t stop = end;
        for (std::size_t k = start; k < end; ++k) {
            if (isPunct(toks_[k], "=") || isPunct(toks_[k], "{")) {
                stop = k;
                break;
            }
        }
        std::size_t k = stop;
        while (k > start && isPunct(toks_[k - 1], "]")) {
            int depth = 0;
            while (k > start) {
                --k;
                if (isPunct(toks_[k], "]"))
                    ++depth;
                else if (isPunct(toks_[k], "[") && --depth == 0)
                    break;
            }
        }
        if (k <= start + 1 ||
            toks_[k - 1].kind != TokenKind::Identifier)
            return i; // no `type name` shape — not a data member
        candidates.push_back({toks_[k - 1].text, toks_[k - 1].line});
        return i;
    }

    const std::string &path_;
    const std::vector<Token> &toks_;
    const std::vector<std::string> &directives_;
    std::vector<Finding> &findings_;
};

/**
 * statsched-float-reduction-order: inside a parallel execution
 * context — the lambda a parallelKernel()/outcomeKernel() factory
 * returns, or a chunk task handed to WorkerPool::run() — a compound
 * assignment (`+=` and friends) whose target is captured from outside
 * the lambda accumulates across threads in interleaving order.
 * Floating-point addition is not associative, so the result depends
 * on the schedule; the repo's convention is per-index slots
 * (out[i] = ...) merged after the join. Indexed targets and the
 * lambda's own locals/parameters are therefore clean.
 *
 * Locals are recognized by declaration shape (`type name`, `&name`,
 * `*name`, `>name`), which over-approximates: an expression like
 * `a * b` marks `b` local. That errs toward silence, never noise.
 */
class ReductionOrderScanner
{
  public:
    ReductionOrderScanner(const std::string &path,
                          const std::vector<Token> &toks,
                          const std::vector<std::string> &directives,
                          std::vector<Finding> &findings)
        : path_(path), toks_(toks), directives_(directives),
          findings_(findings)
    {}

    void
    run()
    {
        const std::size_t n = toks_.size();
        for (std::size_t i = 0; i < n; ++i) {
            // Bodies of kernel factories: any lambda they build runs
            // under ParallelEngine's fan-out.
            if (toks_[i].kind == TokenKind::Identifier &&
                (toks_[i].text == "parallelKernel" ||
                 toks_[i].text == "outcomeKernel") &&
                i + 1 < n && isPunct(toks_[i + 1], "(")) {
                std::size_t j = skipBalanced(toks_, i + 1, "(", ")");
                while (j < n &&
                       toks_[j].kind == TokenKind::Identifier)
                    ++j; // const / override / noexcept
                if (j < n && isPunct(toks_[j], "{")) {
                    scanParallelRegion(
                        j + 1, skipBalanced(toks_, j, "{", "}") - 1);
                }
                continue;
            }
            // Chunk tasks handed straight to a worker pool.
            if (isPunct(toks_[i], ".") && i + 2 < n &&
                isIdent(toks_[i + 1], "run") &&
                isPunct(toks_[i + 2], "(")) {
                scanParallelRegion(
                    i + 3,
                    skipBalanced(toks_, i + 2, "(", ")") - 1);
            }
        }
    }

  private:
    /** Scans [begin, end) for lambda introducers. */
    void
    scanParallelRegion(std::size_t begin, std::size_t end)
    {
        for (std::size_t k = begin; k < end && k < toks_.size();) {
            if (isPunct(toks_[k], "[") && isLambdaIntro(k)) {
                std::set<std::string> locals;
                k = analyzeLambda(k, end, locals);
            } else {
                ++k;
            }
        }
    }

    /** `[` introduces a lambda when the previous token cannot end an
     *  expression (otherwise it is an index or an attribute). */
    bool
    isLambdaIntro(std::size_t k) const
    {
        if (k == 0)
            return true;
        const Token &p = toks_[k - 1];
        if (p.kind == TokenKind::Identifier)
            return p.text == "return" || p.text == "co_return";
        if (p.kind == TokenKind::Number)
            return false;
        return p.text == "(" || p.text == "," || p.text == "{" ||
            p.text == ";" || p.text == "=" || p.text == "&&" ||
            p.text == "||" || p.text == "?" || p.text == ":";
    }

    /** Analyzes one lambda; `locals` arrives with the enclosing
     *  lambda's names (by value — each lambda extends its own copy)
     *  and gains this one's parameters. Returns the index just past
     *  the body, or just past `[` when the shape is not a lambda. */
    std::size_t
    analyzeLambda(std::size_t start, std::size_t limit,
                  std::set<std::string> locals)
    {
        const std::size_t n = toks_.size();
        std::size_t j = skipBalanced(toks_, start, "[", "]");
        if (j < n && isPunct(toks_[j], "(")) {
            const std::size_t close = skipBalanced(toks_, j, "(", ")");
            collectParamNames(j, close - 1, locals);
            j = close;
        }
        while (j < n && !isPunct(toks_[j], "{")) {
            if (isIdent(toks_[j], "mutable") ||
                isIdent(toks_[j], "noexcept")) {
                ++j;
                continue;
            }
            if (isPunct(toks_[j], "->")) { // trailing return type
                while (j < n && !isPunct(toks_[j], "{"))
                    ++j;
                break;
            }
            return start + 1; // attribute or stray bracket pair
        }
        if (j >= n || j >= limit)
            return start + 1;
        const std::size_t bodyEnd = skipBalanced(toks_, j, "{", "}");
        scanBody(j + 1, bodyEnd - 1, locals);
        return bodyEnd;
    }

    /** Records the parameter names in the `(`..`)` range
     *  [open, close]: the identifier right before each top-level `,`
     *  and before `)`. */
    void
    collectParamNames(std::size_t open, std::size_t close,
                      std::set<std::string> &locals) const
    {
        int depth = 0;
        for (std::size_t k = open + 1; k <= close && k < toks_.size();
             ++k) {
            const Token &t = toks_[k];
            if (isPunct(t, "(") || isPunct(t, "[") || isPunct(t, "{"))
                ++depth;
            else if (isPunct(t, ")") || isPunct(t, "]") ||
                     isPunct(t, "}"))
                --depth;
            const bool boundary =
                (depth == 0 && isPunct(t, ",")) || k == close;
            if (boundary && k > open + 1 &&
                toks_[k - 1].kind == TokenKind::Identifier)
                locals.insert(toks_[k - 1].text);
        }
    }

    /** Walks a lambda body: grows the local set, recurses into nested
     *  lambdas, and checks every compound assignment. */
    void
    scanBody(std::size_t begin, std::size_t end,
             std::set<std::string> &locals)
    {
        for (std::size_t k = begin; k < end && k < toks_.size();) {
            const Token &t = toks_[k];
            if (isPunct(t, "[") && isLambdaIntro(k)) {
                k = analyzeLambda(k, end, locals);
                continue;
            }
            if (t.kind == TokenKind::Identifier && k > begin) {
                const Token &p = toks_[k - 1];
                const bool afterType =
                    p.kind == TokenKind::Identifier &&
                    !isStatementKeyword(p.text) &&
                    (k < begin + 2 ||
                     (!isPunct(toks_[k - 2], ".") &&
                      !isPunct(toks_[k - 2], "->")));
                if (afterType || isPunct(p, ">") || isPunct(p, "&") ||
                    isPunct(p, "*") || isPunct(p, "&&"))
                    locals.insert(t.text);
            }
            if (t.kind == TokenKind::Punct &&
                (t.text == "+=" || t.text == "-=" ||
                 t.text == "*=" || t.text == "/=")) {
                checkCompound(k, begin, locals);
            }
            ++k;
        }
    }

    static bool
    isStatementKeyword(const std::string &text)
    {
        return text == "return" || text == "co_return" ||
            text == "throw" || text == "case" || text == "goto" ||
            text == "new" || text == "delete" || text == "sizeof" ||
            text == "typeid" || text == "co_await" ||
            text == "co_yield" || text == "else";
    }

    /** Judges the left-hand side of the compound assignment at
     *  `opIdx`. */
    void
    checkCompound(std::size_t opIdx, std::size_t bodyBegin,
                  const std::set<std::string> &locals)
    {
        if (opIdx == bodyBegin)
            return;
        if (isPunct(toks_[opIdx - 1], "]"))
            return; // per-index slot: out[i] += is order-free
        std::size_t b = opIdx - 1;
        // Hop member chains (state.total, p->sum) back to the base.
        while (b > bodyBegin &&
               toks_[b].kind == TokenKind::Identifier &&
               (isPunct(toks_[b - 1], ".") ||
                isPunct(toks_[b - 1], "->"))) {
            if (b - 1 == bodyBegin)
                return;
            b -= 2;
            if (isPunct(toks_[b], "]"))
                return; // arr[i].field += is still per-index
        }
        if (toks_[b].kind != TokenKind::Identifier)
            return; // (*p) += and stranger shapes: benefit of doubt
        const std::string &base = toks_[b].text;
        if (base != "this" && locals.count(base) != 0)
            return;
        emitToken(path_, toks_[opIdx].line, kFloatReductionOrder,
                  "compound accumulation into `" + base +
                      "` shared across this parallel lambda's "
                      "threads; floating-point reduction order "
                      "follows the schedule — write per-index slots "
                      "(out[i] = ...) and merge after the join",
                  directives_, findings_);
    }

    const std::string &path_;
    const std::vector<Token> &toks_;
    const std::vector<std::string> &directives_;
    std::vector<Finding> &findings_;
};

void
applyTokenRules(const std::string &path,
                const std::vector<std::string> &stripped,
                const std::vector<std::string> &directives,
                std::vector<Finding> &findings)
{
    const std::vector<Token> toks = lexTokens(stripped);
    applyRawSyncRule(path, toks, directives, findings);
    applyDetachedThreadRule(path, toks, directives, findings);
    // The structural rules only police library code; tests routinely
    // declare scratch classes and sequential lambdas that would drown
    // the signal.
    if (isLibrary(path)) {
        MemberGuardScanner(path, toks, directives, findings).run();
        ReductionOrderScanner(path, toks, directives, findings).run();
    }
}

} // anonymous namespace

std::string
Finding::format() const
{
    return file + ":" + std::to_string(line) + ": [" + rule + "] " +
        message;
}

const std::vector<RuleInfo> &
ruleCatalogue()
{
    static const std::vector<RuleInfo> catalogue = {
        {kWallclock,
         "base::Clock is the only sanctioned time source in src/; "
         "only src/base (which implements it) and src/hw (where "
         "elapsed time is the measurement) may read wall clocks "
         "directly"},
        {kAmbientRng,
         "deterministic modules must draw randomness only from "
         "explicitly seeded stats::Rng streams"},
        {kUnorderedIteration,
         "deterministic modules must not iterate unordered "
         "containers; hash order varies across libraries and runs"},
        {kRawAssert,
         "library code reports invariant violations through "
         "base/check.hh contracts, not process-aborting asserts"},
        {kStdout,
         "library code must not write to stdout; drivers own the "
         "output stream"},
        {kIncludeGuard,
         "headers carry canonical STATSCHED_<PATH>_HH include "
         "guards"},
        {kIncludeOwnFirst,
         "a .cc file includes its own header first, proving the "
         "header self-contained"},
        {kNolintReason,
         "every NOLINT suppression names its rule and justifies "
         "itself with a reason"},
        {kSimHotAlloc,
         "the contention solver and simulated engine are the "
         "innermost loop of every campaign and must not allocate or "
         "touch node-based maps per solve; per-measurement state "
         "lives in reusable Scratch workspaces"},
        {kNoRawProcess,
         "fork/exec/waitpid/pipe and their relatives live only in "
         "the sanctioned base::Subprocess wrapper; everything else "
         "— tools and tests included — spawns children through it"},
        {kRawFileIo,
         "src/core never touches a file descriptor or FILE* "
         "directly; the journal and everything else route through "
         "base::io sinks, the one audited home for EINTR loops, "
         "short-write handling, checked fsync and fault injection"},
        {kRawSyncPrimitive,
         "std mutexes, condition variables and lockers appear only "
         "inside src/base/sync.hh; everything else locks through "
         "base::Mutex / base::CondVar / base::MutexLock so the "
         "runtime lock-order checker and Clang thread-safety "
         "analysis see every acquisition in the tree"},
        {kUnguardedMember,
         "a class owning a base::Mutex declares how each mutable "
         "member is protected — SCHED_GUARDED_BY, atomic, const — "
         "or suppresses with the lifecycle reason it is safe "
         "unguarded"},
        {kDetachedThread,
         "detached threads silently outlive their owner's "
         "invariants; only the src/hw watchdog, whose run state "
         "stays alive through shared_ptr precisely for "
         "abandonment, may detach"},
        {kFloatReductionOrder,
         "parallel kernels and worker-pool chunk tasks write "
         "per-index slots merged after the join; in-place compound "
         "accumulation makes floating-point results depend on the "
         "thread schedule, breaking the bit-identity contract"},
    };
    return catalogue;
}

std::vector<Finding>
lintContent(const std::string &path, const std::string &content)
{
    std::vector<Finding> findings;
    const std::vector<std::string> raw = splitLines(content);
    const std::vector<std::string> stripped =
        stripCommentsAndStrings(content);
    // NOLINT directives are parsed from a strings-blanked view:
    // directives live in comments, and directive-shaped text inside
    // a string literal (a lint-test fixture) must stay inert.
    const std::vector<std::string> directives =
        stripStringsOnly(content);

    applyLineRules(path, stripped, directives, findings);
    applyHeaderGuardRule(path, stripped, directives, findings);
    applyOwnHeaderFirstRule(path, raw, directives, findings);
    applyTokenRules(path, stripped, directives, findings);
    return findings;
}

std::vector<Finding>
lintTree(const std::string &root)
{
    namespace fs = std::filesystem;

    std::vector<std::string> files;
    for (const char *dir :
         {"src", "tools", "bench", "tests", "examples"}) {
        const fs::path base = fs::path(root) / dir;
        if (!fs::exists(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension();
            if (ext != ".cc" && ext != ".hh" && ext != ".cpp")
                continue;
            files.push_back(
                fs::relative(entry.path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> findings;
    for (const std::string &file : files) {
        std::ifstream in(fs::path(root) / file);
        std::ostringstream content;
        content << in.rdbuf();
        const std::vector<Finding> file_findings =
            lintContent(file, content.str());
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
    }
    return findings;
}

} // namespace lint
} // namespace statsched
