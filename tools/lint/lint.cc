/**
 * @file
 * statsched_lint rule engine implementation.
 *
 * Matching is token/regex-level over comment- and string-stripped
 * lines: precise enough for the repo's own conventions, with no
 * libclang dependency. Each rule documents what it matches and why
 * the convention exists; see lint.hh for the catalogue overview.
 */

#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace statsched
{
namespace lint
{

namespace
{

/** Rule ids, in catalogue order. */
const char *const kWallclock = "statsched-wallclock";
const char *const kAmbientRng = "statsched-ambient-rng";
const char *const kUnorderedIteration = "statsched-unordered-iteration";
const char *const kRawAssert = "statsched-raw-assert";
const char *const kStdout = "statsched-stdout";
const char *const kIncludeGuard = "statsched-include-guard";
const char *const kIncludeOwnFirst = "statsched-include-own-first";
const char *const kNolintReason = "statsched-nolint-reason";
const char *const kSimHotAlloc = "statsched-sim-hot-alloc";
const char *const kNoRawProcess = "statsched-no-raw-process";

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(),
                  suffix) == 0;
}

/** Modules whose code must be a pure function of its seeds. */
bool
isDeterministicModule(const std::string &path)
{
    return startsWith(path, "src/core/") ||
        startsWith(path, "src/stats/") ||
        startsWith(path, "src/sim/") || startsWith(path, "src/num/");
}

/**
 * The simulator measurement hot path: the contention solver and the
 * engine that drives it, where per-measurement heap allocation is
 * banned (sim/contention.hh documents the Scratch discipline). The
 * frozen reference solver is deliberately out of scope — its
 * allocations are the baseline being beaten.
 */
bool
isSimHotPath(const std::string &path)
{
    return startsWith(path, "src/sim/contention.") ||
        startsWith(path, "src/sim/engine.");
}

/** Library code: everything under src/. */
bool
isLibrary(const std::string &path)
{
    return startsWith(path, "src/");
}

/**
 * Modules allowed to read wall clocks directly. src/base owns the
 * base::Clock abstraction itself; src/hw drives real hardware where
 * elapsed time IS the measurement. Everything else in src/ must go
 * through an injected base::Clock so runs stay replayable.
 */
bool
isClockExempt(const std::string &path)
{
    return startsWith(path, "src/base/") ||
        startsWith(path, "src/hw/");
}

/**
 * Splits content into lines with comments and string/char literals
 * blanked out (replaced by spaces, so column positions survive).
 * Block comments may span lines; the line count is preserved.
 */
std::vector<std::string>
stripCommentsAndStrings(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    bool in_block_comment = false;

    std::istringstream stream(content);
    while (std::getline(stream, line)) {
        std::string out(line.size(), ' ');
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (in_block_comment) {
                if (line[i] == '*' && i + 1 < line.size() &&
                    line[i + 1] == '/') {
                    in_block_comment = false;
                    ++i;
                }
                continue;
            }
            const char c = line[i];
            if (c == '/' && i + 1 < line.size()) {
                if (line[i + 1] == '/')
                    break; // rest of the line is a comment
                if (line[i + 1] == '*') {
                    in_block_comment = true;
                    ++i;
                    continue;
                }
            }
            if (c == '"' || c == '\'') {
                const char quote = c;
                out[i] = quote;
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        ++i;
                    } else if (line[i] == quote) {
                        out[i] = quote;
                        break;
                    }
                    ++i;
                }
                continue;
            }
            out[i] = c;
        }
        lines.push_back(std::move(out));
    }
    return lines;
}

/** Raw (unstripped) lines, for NOLINT directive parsing. */
std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream stream(content);
    while (std::getline(stream, line))
        lines.push_back(std::move(line));
    return lines;
}

/**
 * Lines with string/char literals blanked but comments kept — the
 * view NOLINT directives are parsed from. Directives live in
 * comments; directive-shaped text inside a string literal (a lint
 * test fixture, a help message) must stay inert.
 */
std::vector<std::string>
stripStringsOnly(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    bool in_block_comment = false;

    std::istringstream stream(content);
    while (std::getline(stream, line)) {
        std::string out(line.size(), ' ');
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (in_block_comment) {
                out[i] = line[i];
                if (line[i] == '*' && i + 1 < line.size() &&
                    line[i + 1] == '/') {
                    out[i + 1] = '/';
                    in_block_comment = false;
                    ++i;
                }
                continue;
            }
            const char c = line[i];
            if (c == '/' && i + 1 < line.size()) {
                if (line[i + 1] == '/') {
                    // Copy the comment verbatim to the end.
                    for (std::size_t j = i; j < line.size(); ++j)
                        out[j] = line[j];
                    break;
                }
                if (line[i + 1] == '*') {
                    out[i] = '/';
                    out[i + 1] = '*';
                    in_block_comment = true;
                    ++i;
                    continue;
                }
            }
            if (c == '"' || c == '\'') {
                const char quote = c;
                out[i] = quote;
                ++i;
                while (i < line.size()) {
                    if (line[i] == '\\') {
                        ++i;
                    } else if (line[i] == quote) {
                        out[i] = quote;
                        break;
                    }
                    ++i;
                }
                continue;
            }
            out[i] = c;
        }
        lines.push_back(std::move(out));
    }
    return lines;
}

/**
 * Per-line suppression state parsed from NOLINT directives.
 */
struct Suppression
{
    std::set<std::string> rules; //!< suppressed rule ids on this line
    bool missingReason = false;  //!< directive present, reason absent
};

Suppression
parseNolint(const std::string &raw_line)
{
    Suppression sup;
    static const std::regex directive(
        R"(//\s*NOLINT\(([^)]*)\)(.*))");
    std::smatch m;
    if (!std::regex_search(raw_line, m, directive))
        return sup;

    std::string rule;
    std::istringstream rules(m[1].str());
    while (std::getline(rules, rule, ',')) {
        rule.erase(0, rule.find_first_not_of(" \t"));
        rule.erase(rule.find_last_not_of(" \t") + 1);
        if (!rule.empty())
            sup.rules.insert(rule);
    }

    // The reason is mandatory: "): <non-empty text>".
    static const std::regex reason(R"(^\s*:\s*\S)");
    if (!std::regex_search(m[2].str(), reason))
        sup.missingReason = true;
    return sup;
}

/** Collects names of variables declared as unordered containers. */
std::vector<std::string>
unorderedContainerNames(const std::vector<std::string> &stripped)
{
    std::vector<std::string> names;
    for (const std::string &line : stripped) {
        std::size_t pos = 0;
        while (true) {
            const std::size_t map_pos =
                line.find("unordered_map<", pos);
            const std::size_t set_pos =
                line.find("unordered_set<", pos);
            std::size_t at = std::min(map_pos, set_pos);
            if (at == std::string::npos)
                break;
            // Walk past the template argument list, balancing <>.
            std::size_t i = line.find('<', at);
            int depth = 0;
            for (; i < line.size(); ++i) {
                if (line[i] == '<')
                    ++depth;
                else if (line[i] == '>' && --depth == 0)
                    break;
            }
            pos = at + 1;
            if (i >= line.size())
                continue; // declaration spans lines; next line's
                          // name capture will not match — rare, and
                          // the iteration regex still needs the name
            ++i;
            while (i < line.size() &&
                   (std::isspace(static_cast<unsigned char>(
                        line[i])) ||
                    line[i] == '&'))
                ++i;
            std::size_t name_begin = i;
            while (i < line.size() &&
                   (std::isalnum(static_cast<unsigned char>(
                        line[i])) ||
                    line[i] == '_'))
                ++i;
            if (i > name_begin)
                names.push_back(
                    line.substr(name_begin, i - name_begin));
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()),
                names.end());
    return names;
}

/** @return the canonical include guard for a header path
 *  ("src/base/check.hh" -> "STATSCHED_BASE_CHECK_HH"). */
std::string
canonicalGuard(std::string path)
{
    if (startsWith(path, "src/"))
        path = path.substr(4);
    std::string guard = "STATSCHED_";
    for (const char c : path) {
        guard += std::isalnum(static_cast<unsigned char>(c))
            ? static_cast<char>(
                  std::toupper(static_cast<unsigned char>(c)))
            : '_';
    }
    return guard;
}

/** Where a line rule applies. */
enum class RuleScope
{
    Library,       //!< all of src/
    Deterministic, //!< src/core, src/stats, src/sim, src/num
    ClockManaged,  //!< src/ minus the clock-exempt modules
    SimHotPath,    //!< src/sim/contention.*, src/sim/engine.*
    Process,       //!< every scanned file except the sanctioned
                   //!< process wrapper (src/base/subprocess.hh)
};

/** Rules that match single stripped lines with a regex. */
struct LineRule
{
    const char *id;
    std::regex pattern;
    const char *message;
    RuleScope scope;
};

bool
ruleApplies(RuleScope scope, const std::string &path)
{
    switch (scope) {
    case RuleScope::Library:
        return isLibrary(path);
    case RuleScope::Deterministic:
        return isDeterministicModule(path);
    case RuleScope::ClockManaged:
        return isLibrary(path) && !isClockExempt(path);
    case RuleScope::SimHotPath:
        return isSimHotPath(path);
    case RuleScope::Process:
        return !startsWith(path, "src/base/subprocess.");
    }
    return true;
}

const std::vector<LineRule> &
lineRules()
{
    static const std::vector<LineRule> rules = [] {
        std::vector<LineRule> r;
        r.push_back(
            {kWallclock,
             std::regex(
                 R"((\bchrono::(steady_clock|system_clock|high_resolution_clock)\b)|(\b(steady_clock|system_clock|high_resolution_clock)::now\s*\()|(\btime\s*\(\s*(NULL|nullptr|0)?\s*\))|(\bgettimeofday\b)|(\bclock_gettime\b)|(\bclock\s*\(\s*\)))"),
             "direct wall-clock read; base::Clock is the only "
             "sanctioned time source outside src/base and src/hw",
             RuleScope::ClockManaged});
        r.push_back(
            {kAmbientRng,
             std::regex(
                 R"((\brand\s*\(\s*\))|(\bsrand\s*\()|(\brandom_device\b)|(\bdrand48\s*\()|(\brandom\s*\(\s*\)))"),
             "ambient randomness in a deterministic module; draw from "
             "an explicitly seeded stats::Rng",
             RuleScope::Deterministic});
        r.push_back(
            {kRawAssert,
             std::regex(
                 R"((\bassert\s*\()|(\bSTATSCHED_ASSERT\s*\()|(#\s*include\s*<cassert>)|(#\s*include\s*<assert\.h>))"),
             "raw assert in library code; use the base/check.hh "
             "contracts (SCHED_REQUIRE/SCHED_ENSURE/SCHED_INVARIANT)",
             RuleScope::Library});
        r.push_back(
            {kStdout,
             std::regex(
                 R"((\bstd::cout\b)|(\bprintf\s*\()|(\bputs\s*\())"),
             "stdout write in library code; report through return "
             "values or stderr logging (base/logging.hh)",
             RuleScope::Library});
        r.push_back(
            {kSimHotAlloc,
             std::regex(
                 R"((\bstd::map\s*<)|(\bstd::multimap\s*<)|(\bstd::unordered_map\s*<)|(\bstd::unordered_set\s*<)|(\bnew\s+[A-Za-z_])|(\b(malloc|calloc|realloc)\s*\()|(\bstd::vector\s*<[^;=]*>\s+[A-Za-z_]\w*\s*[({=]))"),
             "allocation on the simulator hot path; use the "
             "preallocated Scratch buffers (sim/contention.hh), or "
             "suppress with a reason if this is construction-time or "
             "off the solve path",
             RuleScope::SimHotPath});
        r.push_back(
            {kNoRawProcess,
             std::regex(
                 R"((\bfork\s*\()|(\bvfork\s*\()|(\bexec[lv]p?e?\s*\()|(\bexecvpe\s*\()|(\bposix_spawnp?\s*\()|(\bwaitpid\s*\()|(\bwait3\s*\()|(\bwait4\s*\()|(\bpipe2?\s*\(\s*[A-Za-z_&])|(\bpopen\s*\()|(\bsystem\s*\())"),
             "raw process-control call; spawn and manage children "
             "through base::Subprocess (src/base/subprocess.hh), the "
             "one audited home for fork/exec/pipe/waitpid lifecycle "
             "bugs",
             RuleScope::Process});
        return r;
    }();
    return rules;
}

void
applyLineRules(const std::string &path,
               const std::vector<std::string> &stripped,
               const std::vector<std::string> &directives,
               std::vector<Finding> &findings)
{
    // Process-scoped rules reach every scanned file (tools, tests
    // and benches spawn workers too); the rest of the machinery only
    // looks at src/.
    const bool deterministic = isDeterministicModule(path);

    // Iteration over unordered containers is only detectable with
    // the declared names in hand.
    std::regex iteration_pattern;
    bool have_names = false;
    if (deterministic) {
        const std::vector<std::string> names =
            unorderedContainerNames(stripped);
        if (!names.empty()) {
            std::string alternation;
            for (const std::string &name : names) {
                if (!alternation.empty())
                    alternation += '|';
                alternation += name;
            }
            iteration_pattern = std::regex(
                "(for\\s*\\([^;)]*:\\s*(this->)?(" + alternation +
                ")\\s*\\))|(\\b(" + alternation +
                ")\\s*\\.\\s*(begin|cbegin|rbegin)\\s*\\()");
            have_names = true;
        }
    }

    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const Suppression sup = parseNolint(directives[i]);
        if (sup.missingReason) {
            findings.push_back(
                {path, i + 1, kNolintReason,
                 "NOLINT suppression without a reason; write "
                 "NOLINT(statsched-<rule>): <why this is safe>"});
        }
        for (const LineRule &rule : lineRules()) {
            if (!ruleApplies(rule.scope, path))
                continue;
            if (sup.rules.count(rule.id) != 0)
                continue;
            if (std::regex_search(stripped[i], rule.pattern))
                findings.push_back(
                    {path, i + 1, rule.id, rule.message});
        }
        if (have_names &&
            sup.rules.count(kUnorderedIteration) == 0 &&
            std::regex_search(stripped[i], iteration_pattern)) {
            findings.push_back(
                {path, i + 1, kUnorderedIteration,
                 "iteration over an unordered container in a "
                 "deterministic module; hash order is not part of "
                 "the determinism contract"});
        }
    }
}

void
applyHeaderGuardRule(const std::string &path,
                     const std::vector<std::string> &stripped,
                     const std::vector<std::string> &directives,
                     std::vector<Finding> &findings)
{
    if (!endsWith(path, ".hh"))
        return;

    const std::string guard = canonicalGuard(path);
    std::size_t ifndef_line = 0;
    bool has_ifndef = false;
    bool has_define = false;
    for (std::size_t i = 0; i < stripped.size(); ++i) {
        const std::string &line = stripped[i];
        if (!has_ifndef &&
            line.find("#ifndef " + guard) != std::string::npos) {
            has_ifndef = true;
            ifndef_line = i;
        }
        if (line.find("#define " + guard) != std::string::npos)
            has_define = true;
    }
    if (!has_ifndef || !has_define) {
        if (!parseNolint(directives.empty() ? std::string()
                                            : directives[0])
                 .rules.count(kIncludeGuard)) {
            findings.push_back(
                {path, has_ifndef ? ifndef_line + 1 : 1,
                 kIncludeGuard,
                 "missing or non-canonical include guard; expected "
                 "#ifndef/#define " +
                     guard});
        }
    }
}

void
applyOwnHeaderFirstRule(const std::string &path,
                        const std::vector<std::string> &raw,
                        const std::vector<std::string> &directives,
                        std::vector<Finding> &findings)
{
    if (!endsWith(path, ".cc") || !isLibrary(path))
        return;

    // src/core/foo.cc must include "core/foo.hh" before any other
    // include, so every public header is proven self-contained.
    std::string expected = path.substr(4);
    expected = expected.substr(0, expected.size() - 3) + ".hh";

    // Matched against the raw lines: include paths are string-like
    // tokens, which the stripped view blanks out.
    static const std::regex include_pattern(
        "^\\s*#\\s*include\\s*[\"<]([^\">]+)[\">]");
    for (std::size_t i = 0; i < raw.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(raw[i], m, include_pattern))
            continue;
        if (m[1].str() != expected &&
            parseNolint(directives[i]).rules.count(kIncludeOwnFirst) ==
                0) {
            findings.push_back(
                {path, i + 1, kIncludeOwnFirst,
                 "first include must be this file's own header \"" +
                     expected + "\""});
        }
        return; // only the first include matters
    }
}

} // anonymous namespace

std::string
Finding::format() const
{
    return file + ":" + std::to_string(line) + ": [" + rule + "] " +
        message;
}

const std::vector<RuleInfo> &
ruleCatalogue()
{
    static const std::vector<RuleInfo> catalogue = {
        {kWallclock,
         "base::Clock is the only sanctioned time source in src/; "
         "only src/base (which implements it) and src/hw (where "
         "elapsed time is the measurement) may read wall clocks "
         "directly"},
        {kAmbientRng,
         "deterministic modules must draw randomness only from "
         "explicitly seeded stats::Rng streams"},
        {kUnorderedIteration,
         "deterministic modules must not iterate unordered "
         "containers; hash order varies across libraries and runs"},
        {kRawAssert,
         "library code reports invariant violations through "
         "base/check.hh contracts, not process-aborting asserts"},
        {kStdout,
         "library code must not write to stdout; drivers own the "
         "output stream"},
        {kIncludeGuard,
         "headers carry canonical STATSCHED_<PATH>_HH include "
         "guards"},
        {kIncludeOwnFirst,
         "a .cc file includes its own header first, proving the "
         "header self-contained"},
        {kNolintReason,
         "every NOLINT suppression names its rule and justifies "
         "itself with a reason"},
        {kSimHotAlloc,
         "the contention solver and simulated engine are the "
         "innermost loop of every campaign and must not allocate or "
         "touch node-based maps per solve; per-measurement state "
         "lives in reusable Scratch workspaces"},
        {kNoRawProcess,
         "fork/exec/waitpid/pipe and their relatives live only in "
         "the sanctioned base::Subprocess wrapper; everything else "
         "— tools and tests included — spawns children through it"},
    };
    return catalogue;
}

std::vector<Finding>
lintContent(const std::string &path, const std::string &content)
{
    std::vector<Finding> findings;
    const std::vector<std::string> raw = splitLines(content);
    const std::vector<std::string> stripped =
        stripCommentsAndStrings(content);
    // NOLINT directives are parsed from a strings-blanked view:
    // directives live in comments, and directive-shaped text inside
    // a string literal (a lint-test fixture) must stay inert.
    const std::vector<std::string> directives =
        stripStringsOnly(content);

    applyLineRules(path, stripped, directives, findings);
    applyHeaderGuardRule(path, stripped, directives, findings);
    applyOwnHeaderFirstRule(path, raw, directives, findings);
    return findings;
}

std::vector<Finding>
lintTree(const std::string &root)
{
    namespace fs = std::filesystem;

    std::vector<std::string> files;
    for (const char *dir :
         {"src", "tools", "bench", "tests", "examples"}) {
        const fs::path base = fs::path(root) / dir;
        if (!fs::exists(base))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension();
            if (ext != ".cc" && ext != ".hh" && ext != ".cpp")
                continue;
            files.push_back(
                fs::relative(entry.path(), root).generic_string());
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Finding> findings;
    for (const std::string &file : files) {
        std::ifstream in(fs::path(root) / file);
        std::ostringstream content;
        content << in.rdbuf();
        const std::vector<Finding> file_findings =
            lintContent(file, content.str());
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
    }
    return findings;
}

} // namespace lint
} // namespace statsched
