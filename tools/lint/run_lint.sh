#!/bin/sh
# Builds (if needed) and runs statsched_lint over the repository,
# exactly as the `lint` ctest and the CI lint job do:
#
#   tools/lint/run_lint.sh [build-dir]
#
# The build directory defaults to ./build. Exit status 0 means the
# tree is clean; 1 means findings were reported.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target statsched_lint

exec "$build_dir/tools/lint/statsched_lint" --root "$repo_root"
