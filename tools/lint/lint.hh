/**
 * @file
 * statsched_lint — repo-specific static analysis for the statsched
 * tree.
 *
 * The statistical method is only as trustworthy as the determinism of
 * its measurement stack: ParallelEngine batches, fault injection and
 * bootstrap replicates are all specified to be bit-identical across
 * thread counts, which no general-purpose linter can check for us.
 * This tool enforces the repo-specific rules mechanically (no
 * libclang dependency), so CI can prove the conventions instead of
 * trusting them. Two rule engines share the catalogue: line rules
 * regex-match single comment/string-stripped lines, and token rules
 * (lexer.hh) walk a token stream, which lets them follow statements
 * across line breaks, class-member ownership and lambda bodies.
 *
 * Line rules:
 *
 *   statsched-wallclock            no wall-clock reads in
 *                                  deterministic modules
 *   statsched-ambient-rng          no ambient randomness (rand(),
 *                                  random_device) in deterministic
 *                                  modules
 *   statsched-unordered-iteration  no iteration over unordered
 *                                  containers in deterministic
 *                                  modules
 *   statsched-raw-assert           no raw assert()/STATSCHED_ASSERT
 *                                  in library code (use base/check.hh
 *                                  contracts)
 *   statsched-stdout               no std::cout/printf in library
 *                                  code (stderr logging only)
 *   statsched-include-guard        canonical STATSCHED_* include
 *                                  guards in headers
 *   statsched-include-own-first    a .cc file includes its own header
 *                                  first
 *   statsched-nolint-reason        every NOLINT suppression carries a
 *                                  reason
 *   statsched-sim-hot-alloc        no heap allocation or node-based
 *                                  maps on the simulator measurement
 *                                  hot path (src/sim/contention.*,
 *                                  src/sim/engine.*); per-measurement
 *                                  state lives in reusable Scratch
 *                                  workspaces
 *   statsched-no-raw-process       no raw fork/exec/pipe/waitpid
 *                                  anywhere; children go through
 *                                  base::Subprocess
 *   statsched-raw-file-io          no raw file I/O (FILE*, fwrite,
 *                                  ::write/::fsync, fstreams) in
 *                                  src/core; all file bytes route
 *                                  through base::io sinks
 *
 * Token rules:
 *
 *   statsched-raw-sync-primitive   std::mutex, condition variables
 *                                  and std lockers only inside
 *                                  src/base/sync.hh; everything else
 *                                  uses base::Mutex / base::CondVar /
 *                                  base::MutexLock
 *   statsched-unguarded-member     a class owning a base::Mutex
 *                                  annotates every mutable member
 *                                  (SCHED_GUARDED_BY / atomic /
 *                                  const) or justifies it
 *   statsched-detached-thread      no thread.detach() outside the
 *                                  sanctioned src/hw watchdog
 *   statsched-float-reduction-order
 *                                  no compound accumulation into
 *                                  captured state inside parallel
 *                                  kernel / worker-pool lambdas;
 *                                  write per-index slots and merge
 *                                  after the join
 *
 * Suppression syntax, on the offending line:
 *
 *   ... // NOLINT(statsched-<rule>): <reason>
 *
 * The reason is mandatory; a bare NOLINT(statsched-...) is itself a
 * finding. Findings print as "file:line: [rule-id] message" so both
 * humans and CI annotations can consume them.
 */

#ifndef STATSCHED_TOOLS_LINT_LINT_HH
#define STATSCHED_TOOLS_LINT_LINT_HH

#include <string>
#include <vector>

namespace statsched
{
namespace lint
{

/** One rule violation at a source location. */
struct Finding
{
    std::string file;    //!< path as given to the linter
    std::size_t line;    //!< 1-based line number
    std::string rule;    //!< rule id ("statsched-wallclock", ...)
    std::string message; //!< human-readable explanation

    /** @return "file:line: [rule] message" (machine-readable). */
    std::string format() const;
};

/** One entry of the rule catalogue (for --list-rules and docs). */
struct RuleInfo
{
    std::string id;
    std::string rationale;
};

/** @return the catalogue of every rule this linter enforces. */
const std::vector<RuleInfo> &ruleCatalogue();

/**
 * Lints one in-memory file.
 *
 * @param path    Repo-relative path; selects which rules apply
 *                (deterministic-module rules fire only under
 *                src/core, src/stats, src/sim and src/num; library
 *                rules under src/).
 * @param content Full file content.
 * @return all unsuppressed findings, in line order.
 */
std::vector<Finding> lintContent(const std::string &path,
                                 const std::string &content);

/**
 * Lints every .cc/.hh file under root's src/, tools/, bench/, tests/
 * and examples/ directories (build trees are never scanned).
 *
 * @param root Repository root.
 * @return all findings, sorted by path then line.
 */
std::vector<Finding> lintTree(const std::string &root);

} // namespace lint
} // namespace statsched

#endif // STATSCHED_TOOLS_LINT_LINT_HH
