/**
 * @file
 * Token stream over the comment/string-stripped view of a source file.
 *
 * The line rules in lint.cc match one line at a time, which is fine
 * for "this call is banned" checks but useless for anything that needs
 * structure: which class a member belongs to, whether a `.detach(`
 * spans a line break, whether a compound assignment sits inside a
 * parallel kernel lambda. The token rules work on this stream instead.
 *
 * This is deliberately not a C++ parser. It is a lexer with just
 * enough fidelity for the rules that consume it:
 *
 *  - Input is the stripped view produced by lint.cc (string and
 *    comment *contents* already blanked to spaces, quote characters
 *    kept), so tokens never come from literals or prose.
 *  - Identifiers and keywords are one kind; the rules compare text.
 *  - Numbers are folded into single tokens (including `1.5e-3` and
 *    digit separators) so `1.5` is never mistaken for a member access.
 *  - Punctuation is split greedily, longest first, so `+=`, `::` and
 *    `->` arrive as single tokens and `>>` never masquerades as two
 *    template closers the rules have to reassemble.
 *
 * Every token carries the 1-based line it started on; findings point
 * at real lines and same-line NOLINT suppression keeps working.
 */

#ifndef STATSCHED_TOOLS_LINT_LEXER_HH
#define STATSCHED_TOOLS_LINT_LEXER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace statsched
{
namespace lint
{

/** Coarse token classification; the rules mostly compare text. */
enum class TokenKind
{
    Identifier, ///< Identifier or keyword: [A-Za-z_][A-Za-z0-9_]*.
    Number,     ///< Numeric literal, exponent and separators folded in.
    Punct,      ///< Operator or punctuator, longest-match.
};

/** One token of the stripped source. */
struct Token
{
    TokenKind kind;
    std::string text;
    /** 1-based source line the token starts on. */
    std::size_t line;
};

/**
 * Lexes the comment/string-stripped lines of one file into a token
 * stream. `strippedLines[i]` is line i + 1 of the file with comment
 * and string contents blanked (see stripCommentsAndStrings in
 * lint.cc); the residual quote characters lex as ordinary punctuation.
 */
std::vector<Token> lexTokens(
    const std::vector<std::string> &strippedLines);

} // namespace lint
} // namespace statsched

#endif // STATSCHED_TOOLS_LINT_LEXER_HH
