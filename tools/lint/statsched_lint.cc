/**
 * @file
 * statsched_lint driver: lints the source tree (or explicit files)
 * and reports findings as "file:line: [rule-id] message".
 *
 * Usage:
 *   statsched_lint [--root <dir>] [--list-rules] [--markdown-rules]
 *                  [file...]
 *
 * With no files, the whole tree under --root (default ".") is
 * scanned: src/, tools/, bench/, tests/ and examples/. Exit status
 * is 0 when the tree is clean and 1 when any finding is reported, so
 * the binary doubles as a ctest (`ctest -L lint`) and a CI gate.
 *
 * --markdown-rules renders the rule catalogue as the exact content of
 * docs/LINT_RULES.md; the `lint_rules_doc` ctest fails when the
 * committed file drifts from this output (see
 * cmake/check_lint_rules_doc.cmake for the regeneration command).
 */

#include "lint.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

int
lintPaths(const std::string &root,
          const std::vector<std::string> &paths)
{
    namespace fs = std::filesystem;
    namespace lint = statsched::lint;

    std::vector<lint::Finding> findings;
    if (paths.empty()) {
        findings = lint::lintTree(root);
    } else {
        for (const std::string &path : paths) {
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr,
                             "statsched_lint: cannot read %s\n",
                             path.c_str());
                return 2;
            }
            std::ostringstream content;
            content << in.rdbuf();
            // Rule applicability keys off the repo-relative path.
            std::error_code ec;
            std::string rel =
                fs::relative(path, root, ec).generic_string();
            if (ec || rel.empty() || rel.rfind("..", 0) == 0)
                rel = path;
            for (const auto &finding :
                 lint::lintContent(rel, content.str()))
                findings.push_back(finding);
        }
    }

    for (const auto &finding : findings)
        std::printf("%s\n", finding.format().c_str());
    if (!findings.empty()) {
        std::fprintf(stderr, "statsched_lint: %zu finding(s)\n",
                     findings.size());
        return 1;
    }
    return 0;
}

/** Renders the catalogue as docs/LINT_RULES.md (byte-exact). */
void
printMarkdownRules()
{
    std::printf(
        "# statsched_lint rule catalogue\n"
        "\n"
        "<!-- Generated file. Do not edit by hand: run\n"
        "     cmake -DLINT_BIN=build/tools/lint/statsched_lint"
        " -DDOC=docs/LINT_RULES.md \\\n"
        "       -DMODE=generate -P"
        " cmake/check_lint_rules_doc.cmake\n"
        "     after changing the catalogue in tools/lint/lint.cc."
        " The lint_rules_doc\n"
        "     ctest fails when this file drifts from"
        " `statsched_lint --markdown-rules`. -->\n"
        "\n"
        "Repo-specific rules enforced by `statsched_lint` (ctest"
        " label `lint`,\n"
        "CI job `statsched_lint`). Suppress a finding on its own"
        " line with\n"
        "`// NOLINT(<rule-id>): <reason>` — the reason is"
        " mandatory.\n");
    for (const auto &rule : statsched::lint::ruleCatalogue())
        std::printf("\n## `%s`\n\n%s\n", rule.id.c_str(),
                    rule.rationale.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto &rule :
                 statsched::lint::ruleCatalogue())
                std::printf("%-32s %s\n", rule.id.c_str(),
                            rule.rationale.c_str());
            return 0;
        }
        if (arg == "--markdown-rules") {
            printMarkdownRules();
            return 0;
        }
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "statsched_lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: statsched_lint [--root <dir>] "
                "[--list-rules] [--markdown-rules] [file...]\n");
            return 0;
        }
        paths.push_back(arg);
    }

    return lintPaths(root, paths);
}
