/**
 * @file
 * Lexer implementation; see lexer.hh for the contract.
 */

#include "lexer.hh"

#include <array>
#include <cctype>

namespace statsched
{
namespace lint
{

namespace
{

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/**
 * Multi-character punctuators, longest first within each tier so the
 * greedy match below never splits `<<=` into `<<` `=` or `::` into
 * `:` `:`. Single characters are the fallback, so the tables only
 * list lengths 3 and 2.
 */
constexpr std::array<const char *, 5> kPunct3 = {
    "<<=", ">>=", "->*", "...", "<=>",
};

constexpr std::array<const char *, 19> kPunct2 = {
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
};

/** @return the punctuator length at line[pos]: 3, 2 or 1. */
std::size_t
punctLengthAt(const std::string &line, std::size_t pos)
{
    const std::size_t left = line.size() - pos;
    if (left >= 3) {
        for (const char *p : kPunct3) {
            if (line.compare(pos, 3, p) == 0)
                return 3;
        }
    }
    if (left >= 2) {
        for (const char *p : kPunct2) {
            if (line.compare(pos, 2, p) == 0)
                return 2;
        }
    }
    return 1;
}

/**
 * Folds a numeric literal starting at line[pos] into one token.
 * Handles hex/binary prefixes, digit separators, a fractional dot and
 * signed exponents (`1.5e-3`, `0x1p+2`); suffixes like `u`/`f` ride
 * along as identifier characters. Over-matching inside a malformed
 * literal is harmless — no rule inspects number text.
 */
std::size_t
numberEndFrom(const std::string &line, std::size_t pos)
{
    std::size_t end = pos + 1;
    while (end < line.size()) {
        const char c = line[end];
        if (isIdentChar(c) || c == '\'') {
            ++end;
            continue;
        }
        if (c == '.' && end + 1 < line.size() &&
            isDigit(line[end + 1])) {
            ++end;
            continue;
        }
        if ((c == '+' || c == '-') && end > pos) {
            const char prev = line[end - 1];
            if (prev == 'e' || prev == 'E' || prev == 'p' ||
                prev == 'P') {
                ++end;
                continue;
            }
        }
        break;
    }
    return end;
}

} // anonymous namespace

std::vector<Token>
lexTokens(const std::vector<std::string> &strippedLines)
{
    std::vector<Token> tokens;
    for (std::size_t ln = 0; ln < strippedLines.size(); ++ln) {
        const std::string &line = strippedLines[ln];
        std::size_t pos = 0;
        while (pos < line.size()) {
            const char c = line[pos];
            if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                ++pos;
                continue;
            }
            if (isIdentStart(c)) {
                std::size_t end = pos + 1;
                while (end < line.size() && isIdentChar(line[end]))
                    ++end;
                tokens.push_back({TokenKind::Identifier,
                                  line.substr(pos, end - pos),
                                  ln + 1});
                pos = end;
                continue;
            }
            if (isDigit(c) ||
                (c == '.' && pos + 1 < line.size() &&
                 isDigit(line[pos + 1]))) {
                const std::size_t end = numberEndFrom(line, pos);
                tokens.push_back({TokenKind::Number,
                                  line.substr(pos, end - pos),
                                  ln + 1});
                pos = end;
                continue;
            }
            const std::size_t len = punctLengthAt(line, pos);
            tokens.push_back({TokenKind::Punct,
                              line.substr(pos, len), ln + 1});
            pos += len;
        }
    }
    return tokens;
}

} // namespace lint
} // namespace statsched
