/**
 * @file
 * POT threshold selection (Section 3.3.2, Step 2 of the paper).
 *
 * Two policies are provided:
 *
 *  - FixedFraction: take exactly the top `fraction` of the sample as
 *    exceedances (the paper's 5% rule: 50/100/250 exceedances for
 *    samples of 1000/2000/5000).
 *  - LinearityScan: automate the Gilli-Kellezi graphical method — scan
 *    candidate thresholds whose exceedance count stays within the 5%
 *    cap and pick the one whose tail mean-excess plot is most linear
 *    (highest least-squares R^2), subject to a minimum exceedance
 *    count so the fit remains stable.
 */

#ifndef STATSCHED_STATS_THRESHOLD_HH
#define STATSCHED_STATS_THRESHOLD_HH

#include <cstddef>
#include <vector>

namespace statsched
{
namespace stats
{

/**
 * Threshold selection policy.
 */
enum class ThresholdPolicy
{
    FixedFraction,  //!< top `maxExceedanceFraction` of the sample
    LinearityScan   //!< most linear tail within the 5% cap
};

/**
 * Configuration of the threshold selection.
 */
struct ThresholdOptions
{
    ThresholdPolicy policy = ThresholdPolicy::FixedFraction;
    /** Upper limit on exceedances as a fraction of the sample (the
     *  "no more than 5%" rule of the paper). */
    double maxExceedanceFraction = 0.05;
    /** Minimum number of exceedances a candidate must keep (scan
     *  mode); also the floor for fixed-fraction mode. */
    std::size_t minExceedances = 20;
    /** Number of candidate thresholds evaluated in scan mode. */
    std::size_t scanCandidates = 25;
};

/**
 * A selected threshold and the exceedances above it.
 */
struct ThresholdSelection
{
    double threshold = 0.0;            //!< u
    std::vector<double> exceedances;   //!< y_i = x_i - u, all > 0
    double tailLinearity = 0.0;        //!< mean-excess R^2 above u
};

/**
 * Selects the POT threshold for a sample of performance observations.
 *
 * @param sample  Raw observations (any order); must contain at least
 *                2 * minExceedances values.
 * @param options Selection policy and limits.
 */
ThresholdSelection
selectThreshold(const std::vector<double> &sample,
                const ThresholdOptions &options = {});

class MeanExcess;

/**
 * Same selection as selectThreshold(), but over a pre-built MeanExcess
 * (which owns the sorted sample), skipping the O(n log n) sort. Callers
 * that keep the sample sorted incrementally use this; the result is
 * bit-identical to selectThreshold() on the same sample because
 * selectThreshold() merely delegates here.
 *
 * @param me      Mean-excess function over the sample; me.sorted() must
 *                contain at least 2 * minExceedances values.
 * @param options Selection policy and limits.
 */
ThresholdSelection
selectThresholdFromMeanExcess(const MeanExcess &me,
                              const ThresholdOptions &options = {});

/**
 * Exceedance-count cap the selection applies for a sample of size n:
 * max(minExceedances, floor(maxExceedanceFraction * n)). Exposed so
 * incremental callers can detect that growing the sample cannot change
 * the selected tail.
 */
std::size_t exceedanceCap(std::size_t sample_size,
                          const ThresholdOptions &options);

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_THRESHOLD_HH
