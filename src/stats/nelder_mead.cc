/**
 * @file
 * Nelder-Mead implementation (Lagarias et al. 1998 formulation, the
 * algorithm behind Matlab's fminsearch).
 */

#include "stats/nelder_mead.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.hh"

namespace statsched
{
namespace stats
{

namespace
{

/** A simplex vertex: point plus cached objective value. */
struct Vertex
{
    std::vector<double> x;
    double f;
};

std::vector<double>
centroidExcludingWorst(const std::vector<Vertex> &simplex)
{
    const std::size_t n = simplex[0].x.size();
    std::vector<double> c(n, 0.0);
    for (std::size_t v = 0; v + 1 < simplex.size(); ++v) {
        for (std::size_t i = 0; i < n; ++i)
            c[i] += simplex[v].x[i];
    }
    for (std::size_t i = 0; i < n; ++i)
        c[i] /= static_cast<double>(simplex.size() - 1);
    return c;
}

std::vector<double>
affine(const std::vector<double> &base, const std::vector<double> &dir,
       double t)
{
    std::vector<double> out(base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        out[i] = base[i] + t * (dir[i] - base[i]);
    return out;
}

} // anonymous namespace

NelderMeadResult
nelderMeadMinimize(const std::function<double(
                       const std::vector<double> &)> &objective,
                   const std::vector<double> &start,
                   const NelderMeadOptions &options)
{
    SCHED_REQUIRE(!start.empty(), "empty starting point");
    const std::size_t n = start.size();

    // fminsearch-style initial simplex: perturb each coordinate by
    // initialPerturbation (5% by default), or by zeroPerturbation when
    // the coordinate is zero.
    std::vector<Vertex> simplex;
    simplex.reserve(n + 1);
    simplex.push_back({start, objective(start)});
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> p(start);
        if (p[i] != 0.0)
            p[i] *= 1.0 + options.initialPerturbation;
        else
            p[i] = options.zeroPerturbation;
        simplex.push_back({p, objective(p)});
    }

    auto by_value = [](const Vertex &a, const Vertex &b) {
        return a.f < b.f;
    };

    NelderMeadResult result;
    for (std::size_t iter = 0; iter < options.maxIterations; ++iter) {
        std::sort(simplex.begin(), simplex.end(), by_value);

        // Convergence: max coordinate spread and value spread.
        double max_dx = 0.0;
        for (std::size_t v = 1; v < simplex.size(); ++v) {
            for (std::size_t i = 0; i < n; ++i) {
                max_dx = std::max(
                    max_dx,
                    std::fabs(simplex[v].x[i] - simplex[0].x[i]));
            }
        }
        const double df = std::fabs(simplex.back().f - simplex.front().f);
        if (max_dx <= options.tolX && df <= options.tolF) {
            result.converged = true;
            result.iterations = iter;
            break;
        }
        result.iterations = iter + 1;

        const auto centroid = centroidExcludingWorst(simplex);
        Vertex &worst = simplex.back();
        const double f_best = simplex.front().f;
        const double f_second_worst = simplex[simplex.size() - 2].f;

        // Reflection.
        auto xr = affine(centroid, worst.x, -options.reflection);
        const double fr = objective(xr);

        if (fr < f_best) {
            // Expansion.
            auto xe = affine(centroid, worst.x,
                             -options.reflection * options.expansion);
            const double fe = objective(xe);
            if (fe < fr)
                worst = {std::move(xe), fe};
            else
                worst = {std::move(xr), fr};
            continue;
        }
        if (fr < f_second_worst) {
            worst = {std::move(xr), fr};
            continue;
        }

        // Contraction (outside if the reflected point improved on the
        // worst vertex, inside otherwise).
        if (fr < worst.f) {
            auto xc = affine(centroid, xr, options.contraction);
            const double fc = objective(xc);
            if (fc <= fr) {
                worst = {std::move(xc), fc};
                continue;
            }
        } else {
            auto xc = affine(centroid, worst.x, options.contraction);
            const double fc = objective(xc);
            if (fc < worst.f) {
                worst = {std::move(xc), fc};
                continue;
            }
        }

        // Shrink towards the best vertex.
        for (std::size_t v = 1; v < simplex.size(); ++v) {
            simplex[v].x = affine(simplex[0].x, simplex[v].x,
                                  options.shrink);
            simplex[v].f = objective(simplex[v].x);
        }
    }

    std::sort(simplex.begin(), simplex.end(), by_value);
    result.point = simplex.front().x;
    result.value = simplex.front().f;
    return result;
}

} // namespace stats
} // namespace statsched
