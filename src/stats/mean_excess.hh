/**
 * @file
 * Sample mean-excess function (Section 3.3.2, Step 2 of the paper).
 *
 * For a sorted sample x_1 <= ... <= x_n and a candidate threshold u, the
 * sample mean excess is
 *
 *     e_n(u) = sum_{i>=k} (x_i - u) / (n - k + 1),
 *     k = min{ i | x_i > u },
 *
 * i.e. the average overshoot of the observations above u. A Generalized
 * Pareto upper tail with shape xi < 0 has a *linear decreasing* mean
 * excess function, so the threshold is chosen where the plot turns
 * roughly linear (Gilli & Kellezi's graphical method), and linearity of
 * the tail doubles as a GPD goodness-of-fit check.
 */

#ifndef STATSCHED_STATS_MEAN_EXCESS_HH
#define STATSCHED_STATS_MEAN_EXCESS_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace statsched
{
namespace stats
{

/**
 * Sample mean-excess function over a sorted sample.
 */
class MeanExcess
{
  public:
    /**
     * @param sample Observations; copied and sorted internally.
     */
    explicit MeanExcess(std::vector<double> sample);

    /**
     * Builds the mean-excess function from an already ascending-sorted
     * sample, skipping the O(n log n) sort. Used by incremental callers
     * that maintain the sorted order across sample extensions.
     *
     * @param sorted Observations in ascending order.
     */
    static MeanExcess fromSorted(std::vector<double> sorted);

    /** @return the sorted underlying sample. */
    const std::vector<double> &sorted() const { return sorted_; }

    /**
     * Evaluates e_n(u). Returns 0 when no observation exceeds u.
     */
    double evaluate(double u) const;

    /**
     * The mean-excess plot: points (x_i, e_n(x_i)) for every distinct
     * sample value except the maximum (above which no exceedances
     * exist).
     */
    std::vector<std::pair<double, double>> plot() const;

    /**
     * Plot restricted to thresholds at or above the q-th sample
     * quantile — the upper-tail region inspected for linearity.
     *
     * @param q Quantile level in [0, 1).
     */
    std::vector<std::pair<double, double>> upperPlot(double q) const;

    /**
     * R-squared of a straight line fitted through the mean-excess plot
     * restricted to thresholds in [u, max). Values near 1 indicate the
     * tail above u is GPD-like.
     *
     * @param u Threshold; at least two plot points must lie above it.
     * @return R-squared in [0, 1], or 0 when fewer than two points
     *         remain.
     */
    double tailLinearity(double u) const;

  private:
    MeanExcess() = default;

    /** Fills suffixSum_ from sorted_. */
    void buildSuffixSums();

    std::vector<double> sorted_;
    /** Suffix sums of the sorted sample, for O(log n) evaluation. */
    std::vector<double> suffixSum_;
};

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_MEAN_EXCESS_HH
