/**
 * @file
 * PotAccumulator implementation.
 */

#include "stats/pot_accumulator.hh"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "base/check.hh"
#include "base/logging.hh"
#include "stats/mean_excess.hh"

namespace statsched
{
namespace stats
{

PotAccumulator::PotAccumulator(const PotOptions &options,
                               bool warmStartFits)
    : options_(options), warmStartFits_(warmStartFits)
{
    SCHED_REQUIRE(options.confidenceLevel > 0.0 &&
                  options.confidenceLevel < 1.0,
                  "confidence level out of (0,1)");
}

void
PotAccumulator::extend(const std::vector<double> &values)
{
    if (values.empty())
        return;

    // Non-finite values (failed measurements leaking through the
    // double channel) would corrupt the maintained order and every
    // later fit; reject them here with a diagnostic instead of
    // poisoning the sample. Callers measuring through the engine
    // outcome channel never hit this path.
    const std::size_t bad = static_cast<std::size_t>(
        std::count_if(values.begin(), values.end(), [](double v) {
            return !std::isfinite(v);
        }));
    std::vector<double> finite;
    const std::vector<double> *batch = &values;
    if (bad != 0) {
        if (rejectedNonFinite_ == 0) {
            warn("PotAccumulator: rejecting non-finite sample "
                 "value(s); exclude failed measurements before "
                 "extending");
        }
        rejectedNonFinite_ += bad;
        finite.reserve(values.size() - bad);
        std::copy_if(values.begin(), values.end(),
                     std::back_inserter(finite), [](double v) {
                         return std::isfinite(v);
                     });
        batch = &finite;
    }
    if (batch->empty())
        return;

    const double batch_max =
        *std::max_element(batch->begin(), batch->end());
    pendingMax_ = havePending_ ? std::max(pendingMax_, batch_max)
                               : batch_max;
    havePending_ = true;

    // Sort the k new values, then merge into the n already sorted:
    // O(k log k + n) instead of the O((n + k) log (n + k)) full
    // re-sort. Equal values are indistinguishable, so the merged
    // sequence is exactly what sorting the cumulative sample produces.
    const auto old_n =
        static_cast<std::vector<double>::difference_type>(sorted_.size());
    sorted_.insert(sorted_.end(), batch->begin(), batch->end());
    std::sort(sorted_.begin() + old_n, sorted_.end());
    std::inplace_merge(sorted_.begin(), sorted_.begin() + old_n,
                       sorted_.end());
}

PotEstimate
PotAccumulator::estimate()
{
    SCHED_REQUIRE(!sorted_.empty(), "estimate over an empty sample");

    PotEstimate est;
    est.confidenceLevel = options_.confidenceLevel;
    est.maxObserved = sorted_.back();

    const std::size_t n = sorted_.size();
    if (n < 2 * options_.threshold.minExceedances) {
        // Too small for threshold selection; keep accumulating. The
        // pending batch stays pending — no tail has been selected yet
        // for it to be compared against.
        detail::markPotEstimateInvalid(
            est, "sample too small for threshold selection");
        return est;
    }

    const std::size_t cap = exceedanceCap(n, options_.threshold);

    // Tail-unchanged shortcut: under the fixed-fraction policy, if the
    // exceedance cap did not grow and every value added since the last
    // estimate sits at or below the previous threshold, then the top
    // cap + 1 order statistics — and with them the threshold, the
    // strict exceedances and the tail mean-excess plot — are exactly
    // what they were. The previous estimate is still the answer; only
    // the exceedance rate (denominator n) moved.
    if (havePrevious_ &&
        options_.threshold.policy == ThresholdPolicy::FixedFraction &&
        cap == previousCap_ &&
        (!havePending_ || pendingMax_ <= previous_.threshold)) {
        ++shortcutHits_;
        havePending_ = false;
        previous_.exceedanceRate =
            static_cast<double>(previous_.exceedanceCount) /
            static_cast<double>(n);
        return previous_;
    }

    // Full path: threshold selection over the maintained sorted sample
    // (no re-sort), then the shared fit + CI pipeline.
    auto me = MeanExcess::fromSorted(sorted_);
    auto selection =
        selectThresholdFromMeanExcess(me, options_.threshold);
    est.threshold = selection.threshold;
    est.exceedanceCount = selection.exceedances.size();
    est.exceedanceRate =
        static_cast<double>(selection.exceedances.size()) /
        static_cast<double>(n);
    est.tailLinearity = selection.tailLinearity;
    const std::vector<double> &ys = selection.exceedances;

    havePrevious_ = true;
    previousCap_ = cap;
    havePending_ = false;

    if (ys.size() < options_.threshold.minExceedances) {
        detail::markPotEstimateInvalid(
            est, "too few strict exceedances above the threshold");
        previous_ = est;
        return est;
    }

    const GpdFit *warm =
        (warmStartFits_ && haveLastFit_) ? &lastFit_ : nullptr;
    detail::finishPotEstimate(est, ys, options_, warm);
    if (est.fit.converged) {
        lastFit_ = est.fit;
        haveLastFit_ = true;
    }
    previous_ = est;
    return est;
}

} // namespace stats
} // namespace statsched
