/**
 * @file
 * Incremental Peaks-Over-Threshold estimation over a growing sample.
 *
 * The paper's iterative algorithm (Section 4) repeatedly extends the
 * measurement sample and re-estimates the UPB. Re-running
 * estimateOptimalPerformance() from scratch on every round costs an
 * O(n log n) sort plus a cold GPD fit each time, even though each
 * round only appends a small batch. PotAccumulator maintains the
 * sorted sample across extensions (O(k log k + n) merge per batch of
 * k), reuses the previous round's estimate outright when the new batch
 * provably cannot change the selected tail, and can warm-start the MLE
 * search from the previous round's fit.
 *
 * Identity contract (exercised by tests/stats/test_pot_accumulator):
 *
 *  - With warm starts disabled, estimate() is bit-identical to
 *    estimateOptimalPerformance() on the same cumulative sample: the
 *    two run the same threshold selection and the shared
 *    detail::finishPotEstimate() pipeline on the same sorted data.
 *  - With warm starts enabled (the default), the fitted likelihood
 *    matches the cold fit to ~1e-9; the Nelder-Mead search simply
 *    starts closer to the optimum.
 */

#ifndef STATSCHED_STATS_POT_ACCUMULATOR_HH
#define STATSCHED_STATS_POT_ACCUMULATOR_HH

#include <cstddef>
#include <vector>

#include "stats/pot.hh"

namespace statsched
{
namespace stats
{

/**
 * Incrementally maintained POT estimator state.
 */
class PotAccumulator
{
  public:
    /**
     * @param options       POT configuration (threshold, estimator,
     *                      confidence level).
     * @param warmStartFits Seed each round's MLE search from the
     *                      previous round's fit. Disable to make
     *                      estimate() bit-identical to the from-scratch
     *                      pipeline.
     */
    explicit PotAccumulator(const PotOptions &options = {},
                            bool warmStartFits = true);

    /**
     * Appends a batch of measurements, keeping the internal sample
     * sorted (O(k log k + n) for a batch of k into a sample of n).
     */
    void extend(const std::vector<double> &values);

    /**
     * POT estimate over everything extended so far. Equivalent to
     * estimateOptimalPerformance(cumulative sample, options) — see the
     * identity contract above.
     */
    PotEstimate estimate();

    /** @return the cumulative sample in ascending order. */
    const std::vector<double> &sorted() const { return sorted_; }

    /** @return total measurements accumulated. */
    std::size_t size() const { return sorted_.size(); }

    /**
     * @return number of estimate() calls served by the tail-unchanged
     *         shortcut (no re-fit, no CI reconstruction).
     */
    std::size_t shortcutHits() const { return shortcutHits_; }

    /** @return non-finite values rejected by extend(). */
    std::size_t rejectedNonFinite() const { return rejectedNonFinite_; }

  private:
    PotOptions options_;
    bool warmStartFits_;

    std::vector<double> sorted_;

    /** State of the last full estimate, for the shortcut + warm start. */
    bool havePrevious_ = false;
    PotEstimate previous_;
    std::size_t previousCap_ = 0;
    GpdFit lastFit_;
    bool haveLastFit_ = false;

    /** Largest value appended since the last estimate() call. */
    double pendingMax_ = 0.0;
    bool havePending_ = false;

    std::size_t shortcutHits_ = 0;
    /** Non-finite values rejected by extend(). */
    std::size_t rejectedNonFinite_ = 0;
};

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_POT_ACCUMULATOR_HH
