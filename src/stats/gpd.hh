/**
 * @file
 * Generalized Pareto Distribution (Theorem 1 of the paper).
 *
 * The Pickands–Balkema–de Haan theorem states that for a large class of
 * distributions F, the conditional excess distribution above a high
 * threshold is well approximated by the GPD
 *
 *     G(y) = 1 - (1 + xi*y/sigma)^(-1/xi)   (xi != 0)
 *     G(y) = 1 - exp(-y/sigma)              (xi == 0)
 *
 * with shape xi and scale sigma > 0. For xi < 0 the support is the
 * finite interval [0, -sigma/xi], which is what makes the upper
 * performance bound u - sigma/xi estimable. The paper only needs the
 * xi < 0 branch for estimation; the full distribution (including
 * xi == 0 and xi > 0) is implemented here for completeness and testing.
 */

#ifndef STATSCHED_STATS_GPD_HH
#define STATSCHED_STATS_GPD_HH

#include <cstdint>
#include <vector>

namespace statsched
{
namespace stats
{

/**
 * A Generalized Pareto Distribution with fixed parameters.
 */
class Gpd
{
  public:
    /**
     * @param xi    Shape parameter (any real).
     * @param sigma Scale parameter, must be > 0.
     */
    Gpd(double xi, double sigma);

    double xi() const { return xi_; }
    double sigma() const { return sigma_; }

    /**
     * Upper end of the support: -sigma/xi for xi < 0, +infinity
     * otherwise.
     */
    double supportUpper() const;

    /** Cumulative distribution function G(y); 0 below the support. */
    double cdf(double y) const;

    /** Probability density g(y); 0 outside the support. */
    double pdf(double y) const;

    /**
     * Natural log of the density. Returns -infinity outside the
     * support (used directly by the likelihood code).
     */
    double logPdf(double y) const;

    /**
     * Quantile function: y with G(y) = p.
     *
     * @param p Probability in [0, 1).
     */
    double quantile(double p) const;

    /** Theoretical mean; defined for xi < 1. */
    double meanValue() const;

    /**
     * Draws one sample by inversion.
     *
     * @param unit_uniform A value in [0, 1).
     */
    double sampleFromUniform(double unit_uniform) const;

    /**
     * Joint log-likelihood of a set of exceedances under this
     * distribution. -infinity if any observation is outside the
     * support.
     */
    double logLikelihood(const std::vector<double> &ys) const;

  private:
    double xi_;
    double sigma_;
};

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_GPD_HH
