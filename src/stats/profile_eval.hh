/**
 * @file
 * Fused, memoized evaluation of the UPB profile log-likelihood.
 *
 * The POT confidence-interval construction (stats/pot) evaluates the
 * profile log-likelihood L*(b), b = UPB - u, hundreds of times per
 * estimate: branch location needs the unconstrained inner maximizer
 * xi(b), the golden-section outer search and the two Wilks-root
 * bisections need L*(b) itself. All of these derive from the single
 * exceedance pass
 *
 *     sum_log(b) = sum_i log(1 - y_i / b) ,
 *
 * so evaluating them separately — as the original implementation did —
 * doubles (or worse) the number of O(m) log-loops. ProfileEvaluator
 * computes the pass once per distinct b and derives every quantity
 * from it; repeated requests for a recent b (the root bisections
 * re-probe their endpoints, the maximizer is re-evaluated after the
 * search) are served from a small exact-key ring cache — small and
 * linear-probed on purpose: repeats always target a recent b, and a
 * hash table's per-lookup overhead would rival the fused pass itself
 * at realistic exceedance counts.
 *
 * All arithmetic matches profileLogLikelihoodUpb() operation for
 * operation, so results are bit-identical to unfused evaluation.
 */

#ifndef STATSCHED_STATS_PROFILE_EVAL_HH
#define STATSCHED_STATS_PROFILE_EVAL_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace statsched
{
namespace stats
{

/** Clamp range for the profiled shape: the GPD likelihood is unbounded
 *  for xi < -1, so the profile restricts xi to [-1, 0). */
constexpr double profileXiFloor = -1.0;
constexpr double profileXiCeil = -1e-10;

/**
 * One-pass-per-b profile likelihood evaluator over a fixed exceedance
 * set.
 */
class ProfileEvaluator
{
  public:
    /** Everything derivable from one exceedance pass at a given b. */
    struct Point
    {
        double sumLog = 0.0; //!< sum log(1 - y_i/b); -inf if infeasible
        double xiRaw = 0.0;  //!< unclamped inner maximizer sum_log / m
        double xiStar = 0.0; //!< xiRaw clamped to [-1, 0)
        double logLik = 0.0; //!< L*(b); -inf if b <= max y
    };

    /**
     * @param ys Exceedances; referenced, not copied — must outlive
     *           the evaluator.
     */
    explicit ProfileEvaluator(const std::vector<double> &ys);

    /** Evaluates (or recalls) the profile quantities at b. */
    const Point &evaluate(double b);

    /** @return L*(b). */
    double profile(double b) { return evaluate(b).logLik; }

    /** @return the unclamped inner maximizer xi(b) = mean log term. */
    double xiRaw(double b) { return evaluate(b).xiRaw; }

    /** @return total evaluate() calls. */
    std::size_t evaluations() const { return evaluations_; }

    /** @return O(m) exceedance passes actually executed. */
    std::size_t passes() const { return passes_; }

  private:
    static constexpr std::size_t cacheSlots = 8;

    const std::vector<double> &ys_;
    double m_;
    /** Ring of the most recent distinct evaluations, keyed by the bit
     *  pattern of b (slots start at an impossible NaN key). */
    std::array<std::uint64_t, cacheSlots> keys_;
    std::array<Point, cacheSlots> points_;
    std::size_t nextSlot_ = 0;
    std::size_t evaluations_ = 0;
    std::size_t passes_ = 0;
};

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_PROFILE_EVAL_HH
