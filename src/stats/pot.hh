/**
 * @file
 * Peaks-Over-Threshold estimation of the optimal system performance
 * (Section 3.3 of the paper).
 *
 * Given the measured performance of a sample of iid random task
 * assignments, the four steps of the paper are:
 *
 *  1. (Done by the caller / core::Sampler) collect the sample.
 *  2. Select a threshold u — see stats/threshold.hh.
 *  3. Fit a GPD to the exceedances y_i = x_i - u by maximum
 *     likelihood — see stats/gpd_fit.hh.
 *  4. Estimate the Upper Performance Bound UPB = u - sigma/xi (valid
 *     for xi < 0) and its confidence interval via the likelihood-ratio
 *     test: reparametrize the GPD in (xi, UPB), profile the
 *     log-likelihood over xi, and apply Wilks' theorem — the interval
 *     is { UPB : L*(UPB) > Lmax - chi2(1-alpha, 1)/2 }.
 *
 * The inner profile maximization has the closed form
 * xi*(UPB) = mean_i log(1 - y_i/(UPB - u)), clamped to [-1, 0) where
 * the GPD likelihood is bounded; the outer maximization and the two
 * CI roots are found numerically (golden section + bisection), which
 * mirrors the paper's iterative fminsearch procedure.
 */

#ifndef STATSCHED_STATS_POT_HH
#define STATSCHED_STATS_POT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stats/gpd_fit.hh"
#include "stats/threshold.hh"

namespace statsched
{
namespace stats
{

/**
 * Options for the POT estimation.
 */
struct PotOptions
{
    ThresholdOptions threshold;
    GpdEstimator estimator = GpdEstimator::MaximumLikelihood;
    /** Confidence level for the UPB interval, e.g. 0.95. */
    double confidenceLevel = 0.95;
};

/**
 * Usability grade of a POT estimate.
 *
 * The split matters to long campaigns: an Invalid estimate carries no
 * tail information (keep sampling against an infinite target), while a
 * Degraded one fell back to the best-observed performance as the UPB
 * point estimate with the sample maximum as the only lower bound —
 * usable for reporting, deliberately useless as a stopping target.
 */
enum class EstimateStatus : std::uint8_t
{
    Ok = 0,   //!< bounded tail, converged fit, trustworthy CI
    Degraded, //!< fit/CI failed; best-observed + sample-max fallback
    Invalid,  //!< no tail estimate at all (too few points, xi >= 0...)
};

/** @return a short lowercase name ("ok", "degraded", "invalid"). */
inline const char *
estimateStatusName(EstimateStatus status)
{
    switch (status) {
      case EstimateStatus::Ok:       return "ok";
      case EstimateStatus::Degraded: return "degraded";
      case EstimateStatus::Invalid:  return "invalid";
    }
    return "unknown";
}

/**
 * Result of the POT estimation of the optimal performance.
 */
struct PotEstimate
{
    double threshold = 0.0;        //!< selected u
    std::size_t exceedanceCount = 0;
    GpdFit fit;                    //!< fitted (xi, sigma)
    double maxObserved = 0.0;      //!< best assignment in the sample

    double upb = 0.0;              //!< point estimate u - sigma/xi
    double upbLower = 0.0;         //!< CI lower bound (>= maxObserved)
    double upbUpper = 0.0;         //!< CI upper bound (may be +inf)
    double confidenceLevel = 0.95;

    double profileMaxLogLik = 0.0; //!< L(xi-hat, UPB-hat)
    double tailLinearity = 0.0;    //!< mean-excess R^2 above u
    bool valid = false;            //!< xi-hat < 0 and fit converged
    /** Structured grade of the estimate; valid iff status == Ok. */
    EstimateStatus status = EstimateStatus::Invalid;
    /** Structured reason when !valid ("sample too small", "tail not
     *  bounded (xi >= 0)", "non-finite sample values", ...); empty
     *  for valid estimates. */
    std::string invalidReason;

    /**
     * Relative headroom of the best observed assignment:
     * (upb - maxObserved) / upb. This is the "estimated possible
     * performance improvement" of Figure 12.
     */
    double improvementHeadroom() const
    { return upb > 0.0 ? (upb - maxObserved) / upb : 0.0; }

    /** Fraction of the sample above the threshold (zeta_u). */
    double exceedanceRate = 0.0;

    /**
     * Estimated performance of the best `population_fraction` of all
     * assignments (e.g. 0.01 = the top 1% boundary), from the fitted
     * tail: the (1 - fraction) population quantile
     *
     *   x_f = u + (sigma/xi) ((fraction/zeta_u)^(-xi) - 1) .
     *
     * Section 3.2 of the paper derives these boundaries from the
     * exhaustive CDF; the fitted tail provides them from a sample.
     *
     * @param population_fraction Tail fraction in (0, exceedanceRate].
     */
    double tailQuantile(double population_fraction) const;
};

/**
 * Log-likelihood of exceedances in the (xi, UPB) parametrization of
 * the paper (Step 4(iii)):
 *
 *   L(xi, UPB | y) = -m log(-xi (UPB - u))
 *                    - (1 + 1/xi) sum log(1 - y_i / (UPB - u))
 *
 * Returns -infinity outside the feasible region (xi >= 0 or
 * UPB - u <= max y).
 *
 * @param xi          Shape, must be < 0 for a finite result.
 * @param upb_minus_u UPB - u, must exceed every exceedance.
 * @param ys          Exceedances.
 */
double gpdLogLikelihoodUpb(double xi, double upb_minus_u,
                           const std::vector<double> &ys);

/**
 * Profile log-likelihood L*(UPB) = max_xi L(xi, UPB | y), with xi
 * restricted to [-1, 0) where the likelihood is bounded.
 *
 * @param upb_minus_u UPB - u, must exceed every exceedance.
 * @param ys          Exceedances.
 * @return the pair (L*, argmax xi).
 */
std::pair<double, double>
profileLogLikelihoodUpb(double upb_minus_u, const std::vector<double> &ys);

/**
 * Runs steps 2-4 of the POT method on a raw performance sample.
 *
 * @param sample  Measured performance of the random task assignments.
 * @param options Threshold / estimator / confidence configuration.
 */
PotEstimate estimateOptimalPerformance(const std::vector<double> &sample,
                                       const PotOptions &options = {});

namespace detail
{

/**
 * Marks an estimate as unusable (no bounded tail): valid = false, the
 * point estimate and upper bound become +inf and the lower bound falls
 * back to the best observation. maxObserved must already be set.
 *
 * @param reason Short structured diagnostic recorded in
 *               PotEstimate::invalidReason.
 */
void markPotEstimateInvalid(PotEstimate &est,
                            const char *reason = "tail estimate "
                                                 "unusable");

/**
 * Marks an estimate as degraded: the tail machinery ran but its output
 * cannot be trusted (non-converged fit, non-finite parameters, failed
 * CI bracketing). The estimate falls back to the only numbers the raw
 * sample guarantees — the best observed performance as the UPB point
 * estimate and lower bound, an unbounded upper bound — so a campaign
 * can keep reporting and sampling instead of dying on a contract
 * violation mid-run. maxObserved must already be set.
 *
 * @param reason Short structured diagnostic recorded in
 *               PotEstimate::invalidReason.
 */
void markPotEstimateDegraded(PotEstimate &est, const char *reason);

/**
 * Steps 3-4 (GPD fit + profile-likelihood CI) on an already selected
 * exceedance set. Shared between estimateOptimalPerformance() and the
 * incremental PotAccumulator so the two paths cannot drift: given the
 * same exceedances and options they produce bit-identical estimates.
 *
 * @param est        In/out: threshold, exceedance counts, maxObserved
 *                   and confidenceLevel must already be filled in.
 * @param ys         Exceedances over est.threshold (>= 5).
 * @param options    POT configuration.
 * @param warm_start Optional previous-round fit to seed the MLE search
 *                   (nullptr = cold start from the moment estimate).
 */
void finishPotEstimate(PotEstimate &est, const std::vector<double> &ys,
                       const PotOptions &options,
                       const GpdFit *warm_start);

} // namespace detail

/**
 * Points of the profile log-likelihood curve (Figure 7): pairs
 * (UPB, L*(UPB)) over [lo, hi].
 *
 * @param estimate A previously computed POT estimate (for u and ys).
 * @param ys       The exceedances used in the estimate.
 * @param lo       Lowest UPB to evaluate (> max observed).
 * @param hi       Highest UPB to evaluate.
 * @param points   Number of curve points (>= 2).
 */
std::vector<std::pair<double, double>>
profileCurve(const PotEstimate &estimate, const std::vector<double> &ys,
             double lo, double hi, std::size_t points);

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_POT_HH
