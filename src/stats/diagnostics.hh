/**
 * @file
 * GPD goodness-of-fit diagnostics (Section 3.3.2 of the paper).
 *
 * The paper uses two graphical checks before trusting a GPD model:
 * the (rough) linearity of the upper mean-excess plot, and the
 * quantile plot of sample quantiles against fitted GPD quantiles —
 * "in all experiments, the form of quantile plots strongly suggest
 * that samples of observations follow a Generalized Pareto
 * Distribution". These helpers compute both plots and scalar
 * summaries suitable for automated pass/fail checks.
 */

#ifndef STATSCHED_STATS_DIAGNOSTICS_HH
#define STATSCHED_STATS_DIAGNOSTICS_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "stats/gpd.hh"

namespace statsched
{
namespace stats
{

/**
 * Quantile plot of exceedances against a fitted GPD.
 */
struct QuantilePlot
{
    /** Points (model quantile, sample quantile), ascending. */
    std::vector<std::pair<double, double>> points;
    /** Pearson correlation of the points; near 1 for a good fit. */
    double correlation = 0.0;
    /** R^2 of the identity-line regression through the points. */
    double rSquared = 0.0;
};

/**
 * Builds the quantile plot of exceedances vs. a GPD.
 *
 * Sample order statistics y_(i) are plotted against the model
 * quantiles G^{-1}(q_i) with plotting positions q_i = (i-0.5)/m.
 *
 * @param exceedances Exceedances over the threshold (any order).
 * @param model       Fitted GPD.
 */
QuantilePlot gpdQuantilePlot(const std::vector<double> &exceedances,
                             const Gpd &model);

/**
 * One-sample Kolmogorov-Smirnov statistic of exceedances against a
 * GPD: sup |F_n(y) - G(y)|. Used by tests as a fit-quality scalar
 * (no p-value machinery; thresholds are calibrated per test).
 */
double ksStatistic(const std::vector<double> &exceedances,
                   const Gpd &model);

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_DIAGNOSTICS_HH
