/**
 * @file
 * Special function implementations.
 *
 * The incomplete gamma function uses the classic split: a power series
 * for x < a + 1 and a Lentz continued fraction otherwise (Numerical
 * Recipes style). The inverse uses a Wilson-Hilferty starting guess
 * refined by Newton iterations on P(a, x).
 */

#include "stats/special_functions.hh"

#include <cmath>
#include <limits>

#include "base/check.hh"

namespace statsched
{
namespace stats
{

namespace
{

constexpr int maxIterations = 500;
constexpr double epsilon = 1e-15;
constexpr double tiny = 1e-300;

/**
 * Thread-safe log-gamma. C lgamma() stores the sign of Gamma(x) in the
 * global `signgam`, which is a data race when estimates run
 * concurrently (the parallel bootstrap does); lgamma_r returns the
 * exact same value and writes the sign to an out-parameter instead.
 */
double
logGamma(double x)
{
#if defined(__GLIBC__) || defined(__APPLE__)
    int sign = 0;
    return ::lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

/**
 * Lower incomplete gamma by power series; valid and fast for x < a + 1.
 */
double
gammaPSeries(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double term = sum;
    for (int i = 0; i < maxIterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * epsilon)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - logGamma(a));
}

/**
 * Upper incomplete gamma by modified Lentz continued fraction; valid for
 * x >= a + 1.
 */
double
gammaQContinuedFraction(double a, double x)
{
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= maxIterations; ++i) {
        double an = -i * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < epsilon)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - logGamma(a));
}

} // anonymous namespace

double
regularizedGammaP(double a, double x)
{
    SCHED_REQUIRE(a > 0.0, "gamma shape must be positive");
    SCHED_REQUIRE(x >= 0.0, "gamma argument must be non-negative");
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
regularizedGammaQ(double a, double x)
{
    SCHED_REQUIRE(a > 0.0, "gamma shape must be positive");
    SCHED_REQUIRE(x >= 0.0, "gamma argument must be non-negative");
    if (x == 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - gammaPSeries(a, x);
    return gammaQContinuedFraction(a, x);
}

double
inverseGammaP(double a, double p)
{
    SCHED_REQUIRE(a > 0.0, "gamma shape must be positive");
    SCHED_REQUIRE(p >= 0.0 && p < 1.0, "probability out of [0,1)");
    if (p == 0.0)
        return 0.0;

    // Wilson-Hilferty approximation as a starting point.
    double g = logGamma(a);
    double x;
    if (a > 1.0) {
        double z = normalQuantile(p);
        double t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * std::sqrt(a));
        x = a * t * t * t;
        if (x <= 0.0)
            x = 1e-8;
    } else {
        double t = 1.0 - a * (0.253 + a * 0.12);
        if (p < t)
            x = std::pow(p / t, 1.0 / a);
        else
            x = 1.0 - std::log(1.0 - (p - t) / (1.0 - t));
    }

    // Newton refinement on P(a, x) - p = 0; the derivative is the gamma
    // density. Halve the step when it would leave the domain.
    for (int i = 0; i < 60; ++i) {
        if (x <= 0.0)
            x = 0.5 * (x + 1e-12);
        double err = regularizedGammaP(a, x) - p;
        double density =
            std::exp(-x + (a - 1.0) * std::log(x) - g);
        if (density <= 0.0)
            break;
        double step = err / density;
        double next = x - step;
        if (next <= 0.0)
            next = 0.5 * x;
        if (std::fabs(next - x) < 1e-14 * (x + 1e-14)) {
            x = next;
            break;
        }
        x = next;
    }
    return x;
}

double
chiSquaredCdf(double x, double df)
{
    SCHED_REQUIRE(df > 0.0, "degrees of freedom must be positive");
    if (x <= 0.0)
        return 0.0;
    return regularizedGammaP(0.5 * df, 0.5 * x);
}

double
chiSquaredQuantile(double p, double df)
{
    SCHED_REQUIRE(df > 0.0, "degrees of freedom must be positive");
    return 2.0 * inverseGammaP(0.5 * df, p);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    SCHED_REQUIRE(p > 0.0 && p < 1.0, "probability out of (0,1)");

    // Acklam's rational approximation.
    static const double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00
    };
    static const double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01
    };
    static const double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00, 2.938163982698783e+00
    };
    static const double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00
    };
    const double plow = 0.02425;
    const double phigh = 1.0 - plow;

    double x;
    if (p < plow) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
             + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= phigh) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
             + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r
             + 1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
              + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step using the normal CDF.
    double e = normalCdf(x) - p;
    double u = e * std::sqrt(2.0 * M_PI) * std::exp(0.5 * x * x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

} // namespace stats
} // namespace statsched
