/**
 * @file
 * GPD fitting implementation.
 */

#include "stats/gpd_fit.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.hh"
#include "stats/descriptive.hh"
#include "stats/nelder_mead.hh"

namespace statsched
{
namespace stats
{

namespace
{

constexpr double infinity = std::numeric_limits<double>::infinity();

/**
 * Moment-based starting point for the MLE search; also the method-of-
 * moments estimator itself. Matching mean m and variance v of
 * GPD(xi, sigma):
 *     xi    = (1 - m^2 / v) / 2
 *     sigma = m (1 + m^2 / v) / 2
 */
GpdFit
momentEstimate(const std::vector<double> &ys)
{
    GpdFit fit;
    const double m = mean(ys);
    const double v = variance(ys);
    if (m <= 0.0 || v <= 0.0) {
        fit.converged = false;
        fit.xi = -0.1;
        fit.sigma = std::max(m, 1e-12);
        return fit;
    }
    const double ratio = m * m / v;
    fit.xi = 0.5 * (1.0 - ratio);
    fit.sigma = 0.5 * m * (1.0 + ratio);
    fit.converged = fit.sigma > 0.0;
    return fit;
}

/**
 * Probability-weighted moments estimator (Hosking & Wallis 1987).
 * With b0 the sample mean and b1 = sum (1 - p_i) y_(i) / n using
 * plotting positions p_i = (i - 0.35) / n over the ascending order
 * statistics:
 *     xi    = 2 - b0 / (b0 - 2 b1)    ... in the (paper's) sign
 *     sigma = 2 b0 b1 / (b0 - 2 b1)
 *
 * Hosking & Wallis use the k = -xi convention; the formulas below are
 * already translated to the xi convention used throughout this library.
 */
GpdFit
pwmEstimate(const std::vector<double> &ys)
{
    GpdFit fit;
    std::vector<double> sorted = sortedCopy(ys);
    const double n = static_cast<double>(sorted.size());
    double b0 = 0.0;
    double b1 = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double p = (static_cast<double>(i) + 1.0 - 0.35) / n;
        b0 += sorted[i];
        b1 += (1.0 - p) * sorted[i];
    }
    b0 /= n;
    b1 /= n;
    const double denom = b0 - 2.0 * b1;
    if (denom <= 0.0 || b0 <= 0.0) {
        fit.converged = false;
        fit.xi = -0.1;
        fit.sigma = std::max(b0, 1e-12);
        return fit;
    }
    fit.xi = 2.0 - b0 / denom;
    fit.sigma = 2.0 * b0 * b1 / denom;
    fit.converged = fit.sigma > 0.0;
    return fit;
}

} // anonymous namespace

double
gpdNegativeLogLikelihood(double xi, double sigma,
                         const std::vector<double> &exceedances)
{
    if (sigma <= 0.0 || !std::isfinite(xi) || !std::isfinite(sigma))
        return infinity;

    // Fused single-log form of -sum log pdf: the -log(sigma) term is
    // loop invariant, so the per-observation work is one log instead
    // of the two Gpd::logPdf pays. This is the innermost loop of the
    // MLE search. The |xi| < 1e-9 exponential fallback matches Gpd's.
    const double m = static_cast<double>(exceedances.size());
    if (std::fabs(xi) < 1e-9) {
        double sum_y = 0.0;
        for (double y : exceedances) {
            if (y < 0.0)
                return infinity;
            sum_y += y;
        }
        return m * std::log(sigma) + sum_y / sigma;
    }
    const double shape_term = 1.0 / xi + 1.0;
    double sum_log = 0.0;
    for (double y : exceedances) {
        if (y < 0.0)
            return infinity;
        const double z = 1.0 + xi * y / sigma;
        if (z <= 0.0)
            return infinity;
        sum_log += std::log(z);
    }
    return m * std::log(sigma) + shape_term * sum_log;
}

GpdFit
fitGpd(const std::vector<double> &exceedances, GpdEstimator method,
       const GpdFit *warm_start)
{
    SCHED_REQUIRE(exceedances.size() >= 5,
                  "GPD fit needs at least 5 exceedances");
    for (double y : exceedances)
        SCHED_REQUIRE(y > 0.0, "exceedances must be positive");

    if (method == GpdEstimator::MethodOfMoments)
        return momentEstimate(exceedances);
    if (method == GpdEstimator::ProbabilityWeightedMoments)
        return pwmEstimate(exceedances);

    // Maximum likelihood: Nelder-Mead from the moment starting point,
    // or from a caller-provided warm start (typically the previous
    // round's fit in the iterative algorithm). The feasibility
    // constraints (sigma > 0 and, for xi < 0, all observations below
    // -sigma/xi) are enforced by returning +inf.
    NelderMeadOptions options;
    options.maxIterations = 4000;
    // The search runs in nondimensional coordinates (xi, sigma/y_max)
    // — see below — so both are O(1) and the absolute simplex-spread
    // tolerance is effectively relative. The statistical error of the
    // fitted (xi, sigma) is O(1/sqrt(m)) — percent scale for realistic
    // exceedance counts — and the likelihood is locally quadratic with
    // curvature O(m), so stopping at a 1e-6 spread leaves the
    // log-likelihood within ~1e-9 of the optimum while saving the long
    // final contraction phase a tighter tolerance would spend.
    options.tolX = 1e-6;
    options.tolF = 1e-9;

    GpdFit start;
    const bool warm = warm_start != nullptr &&
        warm_start->converged &&
        std::isfinite(warm_start->xi) &&
        std::isfinite(warm_start->sigma) && warm_start->sigma > 0.0;
    if (warm) {
        start = *warm_start;
        // A converged previous-round fit is within sampling drift of
        // the new optimum. The simplex must still be large enough to
        // step across that drift (O(1/sqrt(m)) relative) in a few
        // reflections — a near-zero simplex would crawl — so use 2%
        // instead of the cold 5%.
        options.initialPerturbation = 0.02;
    } else {
        start = momentEstimate(exceedances);
    }

    const double y_max = maximum(exceedances);
    // Ensure the starting point is feasible: for xi < 0 we need
    // -sigma/xi > y_max.
    if (start.xi < 0.0 && -start.sigma / start.xi <= y_max)
        start.sigma = -start.xi * y_max * 1.05;
    if (start.sigma <= 0.0)
        start.sigma = y_max;

    // Nondimensionalize: sigma is O(y_max) while xi is O(1), and the
    // optimizer's convergence test uses one absolute spread across
    // both coordinates, so searching (xi, sigma) directly would force
    // the simplex to contract to a tolerance that is relative ~1e-12
    // on sigma for large-magnitude samples. Searching (xi, sigma/y_max)
    // makes both coordinates the same scale.
    auto objective = [&exceedances, y_max](const std::vector<double> &p) {
        return gpdNegativeLogLikelihood(p[0], p[1] * y_max,
                                        exceedances);
    };

    auto result = nelderMeadMinimize(
        objective, {start.xi, start.sigma / y_max}, options);

    GpdFit fit;
    fit.xi = result.point[0];
    fit.sigma = result.point[1] * y_max;
    fit.logLikelihood = -result.value;
    fit.converged = result.converged && std::isfinite(result.value);
    return fit;
}

} // namespace stats
} // namespace statsched
