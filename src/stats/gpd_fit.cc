/**
 * @file
 * GPD fitting implementation.
 */

#include "stats/gpd_fit.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "stats/descriptive.hh"
#include "stats/nelder_mead.hh"

namespace statsched
{
namespace stats
{

namespace
{

constexpr double infinity = std::numeric_limits<double>::infinity();

/**
 * Moment-based starting point for the MLE search; also the method-of-
 * moments estimator itself. Matching mean m and variance v of
 * GPD(xi, sigma):
 *     xi    = (1 - m^2 / v) / 2
 *     sigma = m (1 + m^2 / v) / 2
 */
GpdFit
momentEstimate(const std::vector<double> &ys)
{
    GpdFit fit;
    const double m = mean(ys);
    const double v = variance(ys);
    if (m <= 0.0 || v <= 0.0) {
        fit.converged = false;
        fit.xi = -0.1;
        fit.sigma = std::max(m, 1e-12);
        return fit;
    }
    const double ratio = m * m / v;
    fit.xi = 0.5 * (1.0 - ratio);
    fit.sigma = 0.5 * m * (1.0 + ratio);
    fit.converged = fit.sigma > 0.0;
    return fit;
}

/**
 * Probability-weighted moments estimator (Hosking & Wallis 1987).
 * With b0 the sample mean and b1 = sum (1 - p_i) y_(i) / n using
 * plotting positions p_i = (i - 0.35) / n over the ascending order
 * statistics:
 *     xi    = 2 - b0 / (b0 - 2 b1)    ... in the (paper's) sign
 *     sigma = 2 b0 b1 / (b0 - 2 b1)
 *
 * Hosking & Wallis use the k = -xi convention; the formulas below are
 * already translated to the xi convention used throughout this library.
 */
GpdFit
pwmEstimate(const std::vector<double> &ys)
{
    GpdFit fit;
    std::vector<double> sorted = sortedCopy(ys);
    const double n = static_cast<double>(sorted.size());
    double b0 = 0.0;
    double b1 = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double p = (static_cast<double>(i) + 1.0 - 0.35) / n;
        b0 += sorted[i];
        b1 += (1.0 - p) * sorted[i];
    }
    b0 /= n;
    b1 /= n;
    const double denom = b0 - 2.0 * b1;
    if (denom <= 0.0 || b0 <= 0.0) {
        fit.converged = false;
        fit.xi = -0.1;
        fit.sigma = std::max(b0, 1e-12);
        return fit;
    }
    fit.xi = 2.0 - b0 / denom;
    fit.sigma = 2.0 * b0 * b1 / denom;
    fit.converged = fit.sigma > 0.0;
    return fit;
}

} // anonymous namespace

double
gpdNegativeLogLikelihood(double xi, double sigma,
                         const std::vector<double> &exceedances)
{
    if (sigma <= 0.0 || !std::isfinite(xi) || !std::isfinite(sigma))
        return infinity;
    const Gpd gpd(xi, sigma);
    const double ll = gpd.logLikelihood(exceedances);
    if (!std::isfinite(ll))
        return infinity;
    return -ll;
}

GpdFit
fitGpd(const std::vector<double> &exceedances, GpdEstimator method)
{
    STATSCHED_ASSERT(exceedances.size() >= 5,
                     "GPD fit needs at least 5 exceedances");
    for (double y : exceedances)
        STATSCHED_ASSERT(y > 0.0, "exceedances must be positive");

    if (method == GpdEstimator::MethodOfMoments)
        return momentEstimate(exceedances);
    if (method == GpdEstimator::ProbabilityWeightedMoments)
        return pwmEstimate(exceedances);

    // Maximum likelihood: Nelder-Mead from the moment starting point.
    // The feasibility constraints (sigma > 0 and, for xi < 0, all
    // observations below -sigma/xi) are enforced by returning +inf.
    GpdFit start = momentEstimate(exceedances);
    const double y_max = maximum(exceedances);
    // Ensure the starting point is feasible: for xi < 0 we need
    // -sigma/xi > y_max.
    if (start.xi < 0.0 && -start.sigma / start.xi <= y_max)
        start.sigma = -start.xi * y_max * 1.05;
    if (start.sigma <= 0.0)
        start.sigma = y_max;

    auto objective = [&exceedances](const std::vector<double> &p) {
        return gpdNegativeLogLikelihood(p[0], p[1], exceedances);
    };

    NelderMeadOptions options;
    options.maxIterations = 4000;
    auto result = nelderMeadMinimize(objective,
                                     {start.xi, start.sigma}, options);

    GpdFit fit;
    fit.xi = result.point[0];
    fit.sigma = result.point[1];
    fit.logLikelihood = -result.value;
    fit.converged = result.converged && std::isfinite(result.value);
    return fit;
}

} // namespace stats
} // namespace statsched
