/**
 * @file
 * Descriptive statistics over samples of doubles.
 *
 * Small free functions shared by the EVT machinery, the diagnostics and
 * the benchmark harnesses: moments, extrema, order statistics and linear
 * least squares (used for mean-excess linearity checks).
 */

#ifndef STATSCHED_STATS_DESCRIPTIVE_HH
#define STATSCHED_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace statsched
{
namespace stats
{

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Unbiased sample variance (n-1 denominator); 0 for n < 2. */
double variance(const std::vector<double> &xs);

/** Unbiased sample standard deviation. */
double stddev(const std::vector<double> &xs);

/** Minimum element. @pre non-empty. */
double minimum(const std::vector<double> &xs);

/** Maximum element. @pre non-empty. */
double maximum(const std::vector<double> &xs);

/**
 * Quantile by linear interpolation of the order statistics (type-7,
 * the R/NumPy default).
 *
 * @param sorted_xs Sample sorted in non-decreasing order.
 * @param q         Quantile level in [0, 1].
 * @pre non-empty, sorted.
 */
double quantileSorted(const std::vector<double> &sorted_xs, double q);

/** Returns a sorted copy of the sample. */
std::vector<double> sortedCopy(std::vector<double> xs);

/**
 * Result of a simple linear least-squares fit y ~ a + b x.
 */
struct LinearFit
{
    double intercept = 0.0;   //!< a
    double slope = 0.0;       //!< b
    double rSquared = 0.0;    //!< coefficient of determination
};

/**
 * Ordinary least squares fit of y against x.
 *
 * @pre xs.size() == ys.size() and size >= 2.
 */
LinearFit linearLeastSquares(const std::vector<double> &xs,
                             const std::vector<double> &ys);

/**
 * Pearson correlation coefficient of two equally sized samples.
 *
 * @pre sizes match and are >= 2.
 */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_DESCRIPTIVE_HH
