/**
 * @file
 * Cholesky solve and ridge regression implementation.
 */

#include "stats/linear_solve.hh"

#include <cmath>

#include "base/check.hh"

namespace statsched
{
namespace stats
{

std::vector<double>
choleskySolve(const Matrix &a, const std::vector<double> &b)
{
    const std::size_t n = a.size();
    SCHED_REQUIRE(b.size() == n, "dimension mismatch");

    // Factor A = L L^T.
    Matrix l(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a.at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l.at(i, k) * l.at(j, k);
            if (i == j) {
                SCHED_INVARIANT(sum > 0.0,
                                "matrix not positive definite");
                l.at(i, i) = std::sqrt(sum);
            } else {
                l.at(i, j) = sum / l.at(j, j);
            }
        }
    }

    // Forward substitution L z = b.
    std::vector<double> z(n);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= l.at(i, k) * z[k];
        z[i] = sum / l.at(i, i);
    }

    // Back substitution L^T x = z.
    std::vector<double> x(n);
    for (std::size_t i = n; i-- > 0;) {
        double sum = z[i];
        for (std::size_t k = i + 1; k < n; ++k)
            sum -= l.at(k, i) * x[k];
        x[i] = sum / l.at(i, i);
    }
    return x;
}

std::vector<double>
ridgeRegression(const std::vector<std::vector<double>> &rows,
                const std::vector<double> &targets, double lambda)
{
    SCHED_REQUIRE(!rows.empty(), "no training rows");
    SCHED_REQUIRE(rows.size() == targets.size(),
                  "row/target count mismatch");
    SCHED_REQUIRE(lambda > 0.0, "ridge strength must be positive");

    const std::size_t d = rows.front().size();
    Matrix gram(d);
    std::vector<double> rhs(d, 0.0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        SCHED_REQUIRE(rows[r].size() == d,
                      "ragged feature rows");
        for (std::size_t i = 0; i < d; ++i) {
            rhs[i] += rows[r][i] * targets[r];
            for (std::size_t j = 0; j <= i; ++j)
                gram.at(i, j) += rows[r][i] * rows[r][j];
        }
    }
    for (std::size_t i = 0; i < d; ++i) {
        gram.at(i, i) += lambda;
        // Mirror for the (unused) upper triangle, keeping the matrix
        // honest for any future reader.
        for (std::size_t j = 0; j < i; ++j)
            gram.at(j, i) = gram.at(i, j);
    }
    return choleskySolve(gram, rhs);
}

} // namespace stats
} // namespace statsched
