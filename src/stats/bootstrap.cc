/**
 * @file
 * Bootstrap implementation.
 */

#include "stats/bootstrap.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "stats/descriptive.hh"
#include "stats/rng.hh"

namespace statsched
{
namespace stats
{

BootstrapInterval
bootstrapUpbInterval(const std::vector<double> &sample,
                     const PotOptions &options, std::size_t replicates,
                     std::uint64_t seed)
{
    STATSCHED_ASSERT(replicates >= 50,
                     "too few bootstrap replicates");
    STATSCHED_ASSERT(!sample.empty(), "empty sample");

    Rng rng(seed);
    std::vector<double> upbs;
    upbs.reserve(replicates);
    std::vector<double> resample(sample.size());
    BootstrapInterval out;

    for (std::size_t b = 0; b < replicates; ++b) {
        for (auto &x : resample)
            x = sample[rng.uniformInt(sample.size())];
        const auto est =
            estimateOptimalPerformance(resample, options);
        if (est.valid && std::isfinite(est.upb))
            upbs.push_back(est.upb);
        else
            ++out.failed;
    }

    STATSCHED_ASSERT(upbs.size() >= replicates / 2,
                     "bootstrap: too many invalid replicates");
    std::sort(upbs.begin(), upbs.end());
    const double alpha = 1.0 - options.confidenceLevel;
    out.lower = quantileSorted(upbs, alpha / 2.0);
    out.upper = quantileSorted(upbs, 1.0 - alpha / 2.0);
    out.median = quantileSorted(upbs, 0.5);
    out.replicates = upbs.size();
    return out;
}

} // namespace stats
} // namespace statsched
