/**
 * @file
 * Bootstrap implementation.
 */

#include "stats/bootstrap.hh"

#include <algorithm>
#include <cmath>

#include "base/check.hh"
#include "base/worker_pool.hh"
#include "stats/descriptive.hh"
#include "stats/rng.hh"

namespace statsched
{
namespace stats
{

BootstrapInterval
bootstrapUpbInterval(const std::vector<double> &sample,
                     const PotOptions &options, std::size_t replicates,
                     std::uint64_t seed, unsigned threads)
{
    SCHED_REQUIRE(replicates >= 50,
                  "too few bootstrap replicates");
    SCHED_REQUIRE(!sample.empty(), "empty sample");

    // Pre-generate one independent seed per replicate: replicate b's
    // resampling stream is a pure function of (seed, b), never of the
    // order in which replicates execute.
    Rng master(seed);
    std::vector<std::uint64_t> replicate_seeds(replicates);
    for (auto &s : replicate_seeds)
        s = master.next();

    std::vector<double> replicate_upb(replicates, 0.0);
    std::vector<std::uint8_t> replicate_ok(replicates, 0);

    base::WorkerPool pool(threads == 0 ? 0 : threads);
    pool.run(replicates, 1,
             [&](std::size_t begin, std::size_t end) {
                 std::vector<double> resample(sample.size());
                 for (std::size_t b = begin; b < end; ++b) {
                     Rng rng(replicate_seeds[b]);
                     for (auto &x : resample)
                         x = sample[rng.uniformInt(sample.size())];
                     const auto est =
                         estimateOptimalPerformance(resample, options);
                     if (est.valid && std::isfinite(est.upb)) {
                         replicate_upb[b] = est.upb;
                         replicate_ok[b] = 1;
                     }
                 }
             });

    BootstrapInterval out;
    std::vector<double> upbs;
    upbs.reserve(replicates);
    for (std::size_t b = 0; b < replicates; ++b) {
        if (replicate_ok[b])
            upbs.push_back(replicate_upb[b]);
        else
            ++out.failed;
    }

    SCHED_ENSURE(upbs.size() >= replicates / 2,
                 "bootstrap: too many invalid replicates");
    std::sort(upbs.begin(), upbs.end());
    const double alpha = 1.0 - options.confidenceLevel;
    out.lower = quantileSorted(upbs, alpha / 2.0);
    out.upper = quantileSorted(upbs, 1.0 - alpha / 2.0);
    out.median = quantileSorted(upbs, 0.5);
    out.replicates = upbs.size();
    return out;
}

} // namespace stats
} // namespace statsched
