/**
 * @file
 * Ecdf implementation.
 */

#include "stats/ecdf.hh"

#include <algorithm>

#include "base/check.hh"
#include "stats/descriptive.hh"

namespace statsched
{
namespace stats
{

Ecdf::Ecdf(std::vector<double> sample)
    : sorted_(std::move(sample))
{
    SCHED_REQUIRE(!sorted_.empty(), "ECDF of empty sample");
    std::sort(sorted_.begin(), sorted_.end());
}

double
Ecdf::evaluate(double x) const
{
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
        static_cast<double>(sorted_.size());
}

double
Ecdf::quantile(double q) const
{
    return quantileSorted(sorted_, q);
}

double
Ecdf::relativeSpread() const
{
    if (max() == 0.0)
        return 0.0;
    return (max() - min()) / max();
}

double
Ecdf::topFractionSpread(double fraction) const
{
    SCHED_REQUIRE(fraction > 0.0 && fraction < 1.0,
                  "tail fraction out of (0,1)");
    if (max() == 0.0)
        return 0.0;
    const double lower = quantile(1.0 - fraction);
    return (max() - lower) / max();
}

std::vector<std::pair<double, double>>
Ecdf::curve(std::size_t points) const
{
    SCHED_REQUIRE(points >= 2, "need at least two curve points");
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    const double lo = min();
    const double hi = max();
    for (std::size_t i = 0; i < points; ++i) {
        const double x = lo + (hi - lo) * static_cast<double>(i) /
            static_cast<double>(points - 1);
        out.emplace_back(x, evaluate(x));
    }
    return out;
}

} // namespace stats
} // namespace statsched
