/**
 * @file
 * Nelder-Mead downhill simplex minimizer.
 *
 * The paper estimates the GPD parameters and the UPB confidence
 * interval with Matlab R2007a's fminsearch(), which is a Nelder-Mead
 * simplex search. This is a faithful re-implementation with the same
 * default coefficients (reflection 1, expansion 2, contraction 0.5,
 * shrink 0.5) and fminsearch's initial simplex construction (5%
 * perturbation per coordinate, 0.00025 for zero coordinates).
 */

#ifndef STATSCHED_STATS_NELDER_MEAD_HH
#define STATSCHED_STATS_NELDER_MEAD_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace statsched
{
namespace stats
{

/**
 * Options controlling the simplex search.
 */
struct NelderMeadOptions
{
    double tolX = 1e-10;          //!< simplex size tolerance
    double tolF = 1e-10;          //!< function value spread tolerance
    std::size_t maxIterations = 2000;
    double reflection = 1.0;
    double expansion = 2.0;
    double contraction = 0.5;
    double shrink = 0.5;
    /** Relative per-coordinate perturbation of the initial simplex
     *  (fminsearch uses 5%). Warm-started searches that begin near the
     *  optimum shrink this so iterations go into contraction instead
     *  of re-walking a too-large simplex. */
    double initialPerturbation = 0.05;
    /** Absolute perturbation used for zero coordinates. */
    double zeroPerturbation = 0.00025;
};

/**
 * Result of a minimization run.
 */
struct NelderMeadResult
{
    std::vector<double> point;    //!< best point found
    double value = 0.0;           //!< objective at the best point
    std::size_t iterations = 0;   //!< iterations performed
    bool converged = false;       //!< tolerances reached before maxIter
};

/**
 * Minimizes an objective over R^n with the Nelder-Mead simplex.
 *
 * The objective may return +infinity to signal an infeasible point;
 * the simplex then contracts away from it, which is how the GPD
 * likelihood enforces its domain constraints.
 *
 * @param objective Function R^n -> R (may return +inf).
 * @param start     Starting point (defines n; n >= 1).
 * @param options   Tolerances and coefficients.
 */
NelderMeadResult
nelderMeadMinimize(const std::function<double(
                       const std::vector<double> &)> &objective,
                   const std::vector<double> &start,
                   const NelderMeadOptions &options = {});

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_NELDER_MEAD_HH
