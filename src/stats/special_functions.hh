/**
 * @file
 * Special mathematical functions needed by the statistical machinery.
 *
 * The profile-likelihood confidence interval of the paper (Section 3.3.2,
 * Step 4) cuts the profile log-likelihood at half the (1-alpha) quantile
 * of a chi-squared distribution with one degree of freedom (Wilks'
 * theorem). These routines provide the regularized incomplete gamma
 * function and its inverse, from which chi-squared CDF/quantiles follow,
 * plus the standard normal CDF/quantile used by tests and diagnostics.
 *
 * Implemented from scratch (series + continued fraction + Newton), no
 * external statistics dependencies.
 */

#ifndef STATSCHED_STATS_SPECIAL_FUNCTIONS_HH
#define STATSCHED_STATS_SPECIAL_FUNCTIONS_HH

namespace statsched
{
namespace stats
{

/**
 * Regularized lower incomplete gamma function P(a, x).
 *
 * @param a Shape parameter, a > 0.
 * @param x Evaluation point, x >= 0.
 * @return P(a, x) in [0, 1].
 */
double regularizedGammaP(double a, double x);

/**
 * Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
 */
double regularizedGammaQ(double a, double x);

/**
 * Inverse of P(a, .): returns x such that P(a, x) = p.
 *
 * @param a Shape parameter, a > 0.
 * @param p Probability in [0, 1).
 */
double inverseGammaP(double a, double p);

/**
 * Chi-squared cumulative distribution function.
 *
 * @param x  Evaluation point, x >= 0.
 * @param df Degrees of freedom, df > 0.
 */
double chiSquaredCdf(double x, double df);

/**
 * Chi-squared quantile function (inverse CDF).
 *
 * chiSquaredQuantile(0.95, 1) == 3.8414588... is the cut level used for
 * the paper's 0.95 UPB confidence intervals.
 *
 * @param p  Probability in [0, 1).
 * @param df Degrees of freedom, df > 0.
 */
double chiSquaredQuantile(double p, double df);

/** Standard normal cumulative distribution function. */
double normalCdf(double x);

/**
 * Standard normal quantile function (inverse CDF), Acklam/Newton
 * refined to near machine precision.
 *
 * @param p Probability in (0, 1).
 */
double normalQuantile(double p);

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_SPECIAL_FUNCTIONS_HH
