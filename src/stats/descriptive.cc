/**
 * @file
 * Descriptive statistics implementation.
 */

#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

#include "base/check.hh"

namespace statsched
{
namespace stats
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
minimum(const std::vector<double> &xs)
{
    SCHED_REQUIRE(!xs.empty(), "minimum of empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
maximum(const std::vector<double> &xs)
{
    SCHED_REQUIRE(!xs.empty(), "maximum of empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

double
quantileSorted(const std::vector<double> &sorted_xs, double q)
{
    SCHED_REQUIRE(!sorted_xs.empty(), "quantile of empty sample");
    SCHED_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level out of [0,1]");
    if (sorted_xs.size() == 1)
        return sorted_xs[0];
    const double pos = q * static_cast<double>(sorted_xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted_xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted_xs[lo] + frac * (sorted_xs[hi] - sorted_xs[lo]);
}

std::vector<double>
sortedCopy(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return xs;
}

LinearFit
linearLeastSquares(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    SCHED_REQUIRE(xs.size() == ys.size(), "size mismatch in OLS");
    SCHED_REQUIRE(xs.size() >= 2, "OLS needs at least two points");

    const double n = static_cast<double>(xs.size());
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxx = 0.0;
    double sxy = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }

    LinearFit fit;
    if (sxx <= 0.0) {
        // Degenerate vertical data: report a flat line, zero R^2.
        fit.intercept = my;
        return fit;
    }
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    if (syy <= 0.0) {
        // All y identical: a horizontal line fits perfectly.
        fit.rSquared = 1.0;
    } else {
        fit.rSquared = (sxy * sxy) / (sxx * syy);
    }
    (void)n;
    return fit;
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    SCHED_REQUIRE(xs.size() == ys.size(),
                  "size mismatch in correlation");
    SCHED_REQUIRE(xs.size() >= 2, "correlation needs >= 2 points");
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxx = 0.0;
    double sxy = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace stats
} // namespace statsched
