/**
 * @file
 * Gpd implementation.
 *
 * The |xi| < 1e-9 neighbourhood falls back to the exponential (xi = 0)
 * formulas to avoid catastrophic cancellation in (1 + xi y / sigma)
 * powers.
 */

#include "stats/gpd.hh"

#include <cmath>
#include <limits>

#include "base/check.hh"

namespace statsched
{
namespace stats
{

namespace
{

constexpr double xiZeroTolerance = 1e-9;

} // anonymous namespace

Gpd::Gpd(double xi, double sigma)
    : xi_(xi), sigma_(sigma)
{
    SCHED_REQUIRE(sigma > 0.0, "GPD scale must be positive");
    SCHED_REQUIRE(std::isfinite(xi), "GPD shape must be finite");
}

double
Gpd::supportUpper() const
{
    if (xi_ < -xiZeroTolerance)
        return -sigma_ / xi_;
    return std::numeric_limits<double>::infinity();
}

double
Gpd::cdf(double y) const
{
    if (y <= 0.0)
        return 0.0;
    if (std::fabs(xi_) < xiZeroTolerance)
        return 1.0 - std::exp(-y / sigma_);
    const double z = 1.0 + xi_ * y / sigma_;
    if (z <= 0.0)
        return 1.0;   // beyond the finite upper endpoint (xi < 0)
    return 1.0 - std::pow(z, -1.0 / xi_);
}

double
Gpd::pdf(double y) const
{
    if (y < 0.0)
        return 0.0;
    if (std::fabs(xi_) < xiZeroTolerance)
        return std::exp(-y / sigma_) / sigma_;
    const double z = 1.0 + xi_ * y / sigma_;
    if (z <= 0.0)
        return 0.0;
    return std::pow(z, -1.0 / xi_ - 1.0) / sigma_;
}

double
Gpd::logPdf(double y) const
{
    if (y < 0.0)
        return -std::numeric_limits<double>::infinity();
    if (std::fabs(xi_) < xiZeroTolerance)
        return -std::log(sigma_) - y / sigma_;
    const double z = 1.0 + xi_ * y / sigma_;
    if (z <= 0.0)
        return -std::numeric_limits<double>::infinity();
    return -std::log(sigma_) - (1.0 / xi_ + 1.0) * std::log(z);
}

double
Gpd::quantile(double p) const
{
    SCHED_REQUIRE(p >= 0.0 && p < 1.0, "probability out of [0,1)");
    if (p == 0.0)
        return 0.0;
    if (std::fabs(xi_) < xiZeroTolerance)
        return -sigma_ * std::log(1.0 - p);
    return sigma_ / xi_ * (std::pow(1.0 - p, -xi_) - 1.0);
}

double
Gpd::meanValue() const
{
    SCHED_REQUIRE(xi_ < 1.0, "GPD mean undefined for xi >= 1");
    return sigma_ / (1.0 - xi_);
}

double
Gpd::sampleFromUniform(double unit_uniform) const
{
    SCHED_REQUIRE(unit_uniform >= 0.0 && unit_uniform < 1.0,
                  "uniform draw out of [0,1)");
    return quantile(unit_uniform);
}

double
Gpd::logLikelihood(const std::vector<double> &ys) const
{
    double acc = 0.0;
    for (double y : ys) {
        const double lp = logPdf(y);
        if (!std::isfinite(lp))
            return -std::numeric_limits<double>::infinity();
        acc += lp;
    }
    return acc;
}

} // namespace stats
} // namespace statsched
