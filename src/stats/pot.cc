/**
 * @file
 * POT estimation implementation.
 *
 * The post-selection pipeline (GPD fit + profile-likelihood CI) is
 * shared between the from-scratch entry point
 * estimateOptimalPerformance() and the incremental PotAccumulator
 * (stats/pot_accumulator), so the two are bit-identical by
 * construction on the same exceedance set.
 */

#include "stats/pot.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"
#include "stats/descriptive.hh"
#include "stats/profile_eval.hh"
#include "stats/special_functions.hh"

namespace statsched
{
namespace stats
{

namespace
{

constexpr double infinity = std::numeric_limits<double>::infinity();
constexpr double xiFloor = profileXiFloor;
constexpr double xiCeil = profileXiCeil;

/**
 * Numerical tolerances of the CI construction, relative to the largest
 * exceedance. The statistical error of the UPB interval is O(1/sqrt(m))
 * — percent scale, and the interval itself is O(y_max) wide — so
 * locating the profile maximizer and the Wilks roots to 1e-5 relative
 * leaves the numerical error three-plus orders of magnitude below the
 * statistical one (the likelihood is locally quadratic, so the induced
 * error in L* is ~1e-9) while roughly halving the number of O(m)
 * profile evaluations per estimate compared to the original
 * 1e-12/1e-10/1e-9 settings.
 */
constexpr double branchTol = 1e-7;  //!< xi = -1 branch-switch bisection
constexpr double goldenTol = 1e-5;  //!< golden-section bracket width
constexpr double rootTol = 1e-5;    //!< Wilks-cut root bisections

/**
 * Golden-section maximization of a unimodal function on [lo, hi].
 */
template <typename F>
double
goldenSectionMax(F f, double lo, double hi, double tol, int max_iter)
{
    const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
    double a = lo;
    double b = hi;
    double c = b - phi * (b - a);
    double d = a + phi * (b - a);
    double fc = f(c);
    double fd = f(d);
    for (int i = 0; i < max_iter && (b - a) > tol; ++i) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
    }
    return 0.5 * (a + b);
}

/**
 * Illinois-accelerated false position for f(x) = 0 on [lo, hi] with
 * f(lo), f(hi) of opposite sign. On the smooth likelihood crossings
 * this pipeline solves, the secant proposal converges in a handful of
 * O(m) evaluations where plain bisection needs ~20 to reach a 1e-5
 * relative tolerance; the maintained bracket and the half-weighting of
 * the retained endpoint keep bisection's robustness (a degenerate or
 * non-finite proposal falls back to the midpoint).
 */
template <typename F>
double
illinoisRoot(F f, double lo, double hi, double tol, int max_iter)
{
    double flo = f(lo);
    double fhi = f(hi);
    for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
        double mid = (lo * fhi - hi * flo) / (fhi - flo);
        if (!(mid > lo && mid < hi))
            mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if ((flo <= 0.0) == (fmid <= 0.0)) {
            lo = mid;
            flo = fmid;
            fhi *= 0.5;
        } else {
            hi = mid;
            fhi = fmid;
            flo *= 0.5;
        }
    }
    return 0.5 * (lo + hi);
}

} // anonymous namespace

namespace detail
{

void
markPotEstimateInvalid(PotEstimate &est, const char *reason)
{
    est.valid = false;
    est.status = EstimateStatus::Invalid;
    est.invalidReason = reason;
    est.upb = infinity;
    est.upbLower = est.maxObserved;
    est.upbUpper = infinity;
}

void
markPotEstimateDegraded(PotEstimate &est, const char *reason)
{
    est.valid = false;
    est.status = EstimateStatus::Degraded;
    est.invalidReason = reason;
    // Best-observed fallback: the sample maximum is the one bound the
    // data guarantees without any tail model.
    est.upb = est.maxObserved;
    est.upbLower = est.maxObserved;
    est.upbUpper = infinity;
}

} // namespace detail

double
gpdLogLikelihoodUpb(double xi, double upb_minus_u,
                    const std::vector<double> &ys)
{
    if (xi >= 0.0 || upb_minus_u <= 0.0)
        return -infinity;
    const double m = static_cast<double>(ys.size());
    double sum_log = 0.0;
    for (double y : ys) {
        const double z = 1.0 - y / upb_minus_u;
        if (z <= 0.0)
            return -infinity;
        sum_log += std::log(z);
    }
    return -m * std::log(-xi * upb_minus_u)
        - (1.0 + 1.0 / xi) * sum_log;
}

std::pair<double, double>
profileLogLikelihoodUpb(double upb_minus_u, const std::vector<double> &ys)
{
    const double m = static_cast<double>(ys.size());
    double sum_log = 0.0;
    for (double y : ys) {
        const double z = 1.0 - y / upb_minus_u;
        if (z <= 0.0)
            return {-infinity, xiFloor};
        sum_log += std::log(z);
    }
    // Unconstrained inner maximizer: xi* = mean log(1 - y_i/b).
    double xi_star = sum_log / m;
    xi_star = std::clamp(xi_star, xiFloor, xiCeil);
    const double ll = -m * std::log(-xi_star * upb_minus_u)
        - (1.0 + 1.0 / xi_star) * sum_log;
    return {ll, xi_star};
}

double
PotEstimate::tailQuantile(double population_fraction) const
{
    SCHED_REQUIRE(population_fraction > 0.0 &&
                  population_fraction <= exceedanceRate,
                  "fraction must be within the fitted tail");
    SCHED_REQUIRE(valid, "no valid tail fit");
    const double ratio = population_fraction / exceedanceRate;
    return threshold + fit.sigma / fit.xi *
        (std::pow(ratio, -fit.xi) - 1.0);
}

namespace detail
{

void
finishPotEstimate(PotEstimate &est, const std::vector<double> &ys,
                  const PotOptions &options, const GpdFit *warm_start)
{
    // Step 3: GPD fit.
    est.fit = fitGpd(ys, options.estimator, warm_start);

    // Step 4: UPB point estimate and profile-likelihood CI.
    const double y_max = maximum(ys);

    // A fit that did not converge, or converged to unusable
    // parameters, cannot support the UPB algebra below: report a
    // degraded estimate (best-observed fallback) instead of computing
    // garbage or tripping a contract check mid-campaign.
    if (!est.fit.converged || !std::isfinite(est.fit.xi) ||
        !std::isfinite(est.fit.sigma) || est.fit.sigma <= 0.0) {
        markPotEstimateDegraded(est, "GPD fit did not converge");
        return;
    }

    if (est.fit.xi >= 0.0) {
        // The performance of a real system is bounded; a non-negative
        // shape means the tail did not look bounded to the estimator.
        // Report the estimate as invalid; the caller may enlarge the
        // sample or change the threshold.
        markPotEstimateInvalid(est, "tail not bounded (xi >= 0)");
        return;
    }

    est.upb = est.threshold - est.fit.sigma / est.fit.xi;
    if (!std::isfinite(est.upb) || est.upb <= est.threshold) {
        markPotEstimateDegraded(est, "UPB point estimate not finite");
        return;
    }
    est.valid = true;
    est.status = EstimateStatus::Ok;

    // Profile maximization over b = UPB - u. The profile consists of a
    // clamped branch near b = y_max (inner xi pinned at -1, where
    // L* = -m log b decreases) followed by the interior stationary
    // branch that carries the regular maximum, so the search is
    // restricted to the interior branch: first locate the branch
    // switch b0 where the unconstrained inner maximizer
    // xi*(b) = mean log(1 - y_i/b) crosses -1 (xi* increases with b),
    // then golden-section on [b0, b_hi]. One fused pass per distinct b
    // serves the branch check, the search and the root bisections.
    ProfileEvaluator prof(ys);
    auto profile = [&prof](double b) { return prof.profile(b); };
    const double b_point = est.upb - est.threshold;
    const double b_lo = y_max * (1.0 + 1e-9);
    const double b_hi = std::max(b_point * 8.0, y_max * 16.0);

    double b_interior = b_lo;
    if (prof.xiRaw(b_lo) < xiFloor) {
        b_interior = illinoisRoot(
            [&prof](double b) { return prof.xiRaw(b) - xiFloor; },
            b_lo, b_hi, y_max * branchTol, 200);
    }
    const double b_hat = goldenSectionMax(profile, b_interior, b_hi,
                                          y_max * goldenTol, 400);
    est.profileMaxLogLik = profile(b_hat);
    if (!std::isfinite(est.profileMaxLogLik)) {
        // The bracketing never found a finite profile maximum; the CI
        // roots below would chase -inf. Keep the run alive instead.
        markPotEstimateDegraded(
            est, "profile-likelihood bracketing failed");
        return;
    }

    // Wilks cut: L*(UPB) >= Lmax - chi2(1-alpha, 1) / 2.
    const double cut = est.profileMaxLogLik -
        0.5 * chiSquaredQuantile(options.confidenceLevel, 1.0);
    auto above_cut = [&profile, cut](double b) {
        return profile(b) - cut;
    };

    // Lower bound: between the best observation and b_hat. The UPB can
    // never undershoot the best observed assignment.
    if (above_cut(b_lo) >= 0.0) {
        est.upbLower = est.maxObserved;
    } else {
        const double b_root = illinoisRoot(above_cut, b_lo, b_hat,
                                           y_max * rootTol, 200);
        est.upbLower = std::max(est.threshold + b_root,
                                est.maxObserved);
    }

    // Upper bound: expand geometrically until the profile drops below
    // the cut; it converges to the exponential-model likelihood, so it
    // may stay above the cut forever (unbounded CI).
    double b_up = std::max(b_hat * 2.0, y_max * 2.0);
    bool bounded = false;
    for (int i = 0; i < 60; ++i) {
        if (above_cut(b_up) < 0.0) {
            bounded = true;
            break;
        }
        b_up *= 2.0;
    }
    if (bounded) {
        const double b_root = illinoisRoot(above_cut, b_hat, b_up,
                                           y_max * rootTol, 200);
        est.upbUpper = est.threshold + b_root;
    } else {
        est.upbUpper = infinity;
    }
}

} // namespace detail

PotEstimate
estimateOptimalPerformance(const std::vector<double> &sample,
                           const PotOptions &options)
{
    SCHED_REQUIRE(options.confidenceLevel > 0.0 &&
                  options.confidenceLevel < 1.0,
                  "confidence level out of (0,1)");

    PotEstimate est;
    est.confidenceLevel = options.confidenceLevel;

    // Non-finite values (a failed measurement leaking through as NaN
    // or inf) would poison the sort, the threshold selection and the
    // likelihood; report a structured failure instead of propagating.
    for (const double x : sample) {
        if (!std::isfinite(x)) {
            warn("estimateOptimalPerformance: non-finite sample "
                 "value; use the engine outcome channel to exclude "
                 "failed measurements");
            detail::markPotEstimateInvalid(
                est, "non-finite sample values");
            return est;
        }
    }
    est.maxObserved = maximum(sample);

    // A sample too small for threshold selection cannot support a
    // tail estimate; report it as invalid instead of failing, so
    // iterative callers can simply keep sampling.
    if (sample.size() < 2 * options.threshold.minExceedances) {
        detail::markPotEstimateInvalid(
            est, "sample too small for threshold selection");
        return est;
    }

    // Step 2: threshold.
    auto selection = selectThreshold(sample, options.threshold);
    est.threshold = selection.threshold;
    est.exceedanceCount = selection.exceedances.size();
    est.exceedanceRate = static_cast<double>(
        selection.exceedances.size()) /
        static_cast<double>(sample.size());
    est.tailLinearity = selection.tailLinearity;
    const std::vector<double> &ys = selection.exceedances;

    // Ties at the threshold (e.g. a memoized engine replaying cached
    // values over a tiny assignment space) can leave fewer strict
    // exceedances than the count the threshold targeted; too few
    // cannot support a fit, so report invalid rather than fail.
    if (ys.size() < options.threshold.minExceedances) {
        detail::markPotEstimateInvalid(
            est, "too few strict exceedances above the threshold");
        return est;
    }

    detail::finishPotEstimate(est, ys, options, nullptr);
    return est;
}

std::vector<std::pair<double, double>>
profileCurve(const PotEstimate &estimate, const std::vector<double> &ys,
             double lo, double hi, std::size_t points)
{
    SCHED_REQUIRE(points >= 2, "need at least two curve points");
    SCHED_REQUIRE(hi > lo, "empty curve range");
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double upb = lo + (hi - lo) * static_cast<double>(i) /
            static_cast<double>(points - 1);
        const double b = upb - estimate.threshold;
        out.emplace_back(upb, profileLogLikelihoodUpb(b, ys).first);
    }
    return out;
}

} // namespace stats
} // namespace statsched
