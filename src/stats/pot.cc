/**
 * @file
 * POT estimation implementation.
 */

#include "stats/pot.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "stats/descriptive.hh"
#include "stats/special_functions.hh"

namespace statsched
{
namespace stats
{

namespace
{

constexpr double infinity = std::numeric_limits<double>::infinity();
/** Clamp range for the profiled shape: the GPD likelihood is unbounded
 *  for xi < -1, so the profile restricts xi to [-1, 0). */
constexpr double xiFloor = -1.0;
constexpr double xiCeil = -1e-10;

/**
 * Golden-section maximization of a unimodal function on [lo, hi].
 */
template <typename F>
double
goldenSectionMax(F f, double lo, double hi, double tol, int max_iter)
{
    const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
    double a = lo;
    double b = hi;
    double c = b - phi * (b - a);
    double d = a + phi * (b - a);
    double fc = f(c);
    double fd = f(d);
    for (int i = 0; i < max_iter && (b - a) > tol; ++i) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = f(d);
        }
    }
    return 0.5 * (a + b);
}

/**
 * Bisection for f(x) = 0 on [lo, hi] with f(lo), f(hi) of opposite
 * sign.
 */
template <typename F>
double
bisect(F f, double lo, double hi, double tol, int max_iter)
{
    double flo = f(lo);
    for (int i = 0; i < max_iter && (hi - lo) > tol; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if ((flo <= 0.0) == (fmid <= 0.0)) {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

} // anonymous namespace

double
gpdLogLikelihoodUpb(double xi, double upb_minus_u,
                    const std::vector<double> &ys)
{
    if (xi >= 0.0 || upb_minus_u <= 0.0)
        return -infinity;
    const double m = static_cast<double>(ys.size());
    double sum_log = 0.0;
    for (double y : ys) {
        const double z = 1.0 - y / upb_minus_u;
        if (z <= 0.0)
            return -infinity;
        sum_log += std::log(z);
    }
    return -m * std::log(-xi * upb_minus_u)
        - (1.0 + 1.0 / xi) * sum_log;
}

std::pair<double, double>
profileLogLikelihoodUpb(double upb_minus_u, const std::vector<double> &ys)
{
    const double m = static_cast<double>(ys.size());
    double sum_log = 0.0;
    for (double y : ys) {
        const double z = 1.0 - y / upb_minus_u;
        if (z <= 0.0)
            return {-infinity, xiFloor};
        sum_log += std::log(z);
    }
    // Unconstrained inner maximizer: xi* = mean log(1 - y_i/b).
    double xi_star = sum_log / m;
    xi_star = std::clamp(xi_star, xiFloor, xiCeil);
    const double ll = -m * std::log(-xi_star * upb_minus_u)
        - (1.0 + 1.0 / xi_star) * sum_log;
    return {ll, xi_star};
}

double
PotEstimate::tailQuantile(double population_fraction) const
{
    STATSCHED_ASSERT(population_fraction > 0.0 &&
                     population_fraction <= exceedanceRate,
                     "fraction must be within the fitted tail");
    STATSCHED_ASSERT(valid, "no valid tail fit");
    const double ratio = population_fraction / exceedanceRate;
    return threshold + fit.sigma / fit.xi *
        (std::pow(ratio, -fit.xi) - 1.0);
}

PotEstimate
estimateOptimalPerformance(const std::vector<double> &sample,
                           const PotOptions &options)
{
    STATSCHED_ASSERT(options.confidenceLevel > 0.0 &&
                     options.confidenceLevel < 1.0,
                     "confidence level out of (0,1)");

    PotEstimate est;
    est.confidenceLevel = options.confidenceLevel;
    est.maxObserved = maximum(sample);

    // A sample too small for threshold selection cannot support a
    // tail estimate; report it as invalid instead of failing, so
    // iterative callers can simply keep sampling.
    if (sample.size() < 2 * options.threshold.minExceedances) {
        est.valid = false;
        est.upb = infinity;
        est.upbLower = est.maxObserved;
        est.upbUpper = infinity;
        return est;
    }

    // Step 2: threshold.
    auto selection = selectThreshold(sample, options.threshold);
    est.threshold = selection.threshold;
    est.exceedanceCount = selection.exceedances.size();
    est.exceedanceRate = static_cast<double>(
        selection.exceedances.size()) /
        static_cast<double>(sample.size());
    est.tailLinearity = selection.tailLinearity;
    const std::vector<double> &ys = selection.exceedances;

    // Ties at the threshold (e.g. a memoized engine replaying cached
    // values over a tiny assignment space) can leave fewer strict
    // exceedances than the count the threshold targeted; too few
    // cannot support a fit, so report invalid rather than fail.
    if (ys.size() < options.threshold.minExceedances) {
        est.valid = false;
        est.upb = infinity;
        est.upbLower = est.maxObserved;
        est.upbUpper = infinity;
        return est;
    }

    // Step 3: GPD fit.
    est.fit = fitGpd(ys, options.estimator);

    // Step 4: UPB point estimate and profile-likelihood CI.
    const double y_max = maximum(ys);

    if (est.fit.xi >= 0.0) {
        // The performance of a real system is bounded; a non-negative
        // shape means the tail did not look bounded to the estimator.
        // Report the estimate as invalid; the caller may enlarge the
        // sample or change the threshold.
        est.valid = false;
        est.upb = infinity;
        est.upbLower = est.maxObserved;
        est.upbUpper = infinity;
        return est;
    }

    est.upb = est.threshold - est.fit.sigma / est.fit.xi;
    est.valid = true;

    // Profile maximization over b = UPB - u. The profile consists of a
    // clamped branch near b = y_max (inner xi pinned at -1, where
    // L* = -m log b decreases) followed by the interior stationary
    // branch that carries the regular maximum, so the search is
    // restricted to the interior branch: first locate the branch
    // switch b0 where the unconstrained inner maximizer
    // xi*(b) = mean log(1 - y_i/b) crosses -1 (xi* increases with b),
    // then golden-section on [b0, b_hi].
    auto profile = [&ys](double b) {
        return profileLogLikelihoodUpb(b, ys).first;
    };
    auto xi_unconstrained = [&ys](double b) {
        double s = 0.0;
        for (double y : ys)
            s += std::log(1.0 - y / b);
        return s / static_cast<double>(ys.size());
    };
    const double b_point = est.upb - est.threshold;
    const double b_lo = y_max * (1.0 + 1e-9);
    const double b_hi = std::max(b_point * 8.0, y_max * 16.0);

    double b_interior = b_lo;
    if (xi_unconstrained(b_lo) < xiFloor) {
        b_interior = bisect(
            [&xi_unconstrained](double b) {
                return xi_unconstrained(b) - xiFloor;
            },
            b_lo, b_hi, y_max * 1e-12, 200);
    }
    const double b_hat = goldenSectionMax(profile, b_interior, b_hi,
                                          y_max * 1e-10, 400);
    est.profileMaxLogLik = profile(b_hat);

    // Wilks cut: L*(UPB) >= Lmax - chi2(1-alpha, 1) / 2.
    const double cut = est.profileMaxLogLik -
        0.5 * chiSquaredQuantile(options.confidenceLevel, 1.0);
    auto above_cut = [&profile, cut](double b) {
        return profile(b) - cut;
    };

    // Lower bound: between the best observation and b_hat. The UPB can
    // never undershoot the best observed assignment.
    if (above_cut(b_lo) >= 0.0) {
        est.upbLower = est.maxObserved;
    } else {
        const double b_root = bisect(above_cut, b_lo, b_hat,
                                     y_max * 1e-9, 200);
        est.upbLower = std::max(est.threshold + b_root,
                                est.maxObserved);
    }

    // Upper bound: expand geometrically until the profile drops below
    // the cut; it converges to the exponential-model likelihood, so it
    // may stay above the cut forever (unbounded CI).
    double b_up = std::max(b_hat * 2.0, y_max * 2.0);
    bool bounded = false;
    for (int i = 0; i < 60; ++i) {
        if (above_cut(b_up) < 0.0) {
            bounded = true;
            break;
        }
        b_up *= 2.0;
    }
    if (bounded) {
        const double b_root = bisect(above_cut, b_hat, b_up,
                                     y_max * 1e-9, 200);
        est.upbUpper = est.threshold + b_root;
    } else {
        est.upbUpper = infinity;
    }

    return est;
}

std::vector<std::pair<double, double>>
profileCurve(const PotEstimate &estimate, const std::vector<double> &ys,
             double lo, double hi, std::size_t points)
{
    STATSCHED_ASSERT(points >= 2, "need at least two curve points");
    STATSCHED_ASSERT(hi > lo, "empty curve range");
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double upb = lo + (hi - lo) * static_cast<double>(i) /
            static_cast<double>(points - 1);
        const double b = upb - estimate.threshold;
        out.emplace_back(upb, profileLogLikelihoodUpb(b, ys).first);
    }
    return out;
}

} // namespace stats
} // namespace statsched
