/**
 * @file
 * Bootstrap confidence intervals for the UPB estimate.
 *
 * An alternative to the paper's profile-likelihood interval: resample
 * the performance sample with replacement, re-run the whole POT
 * estimation on each replicate, and take percentile bounds of the
 * replicated UPB point estimates. Heavier (B full re-fits) but makes
 * no likelihood-curvature assumptions — used by the ablation suite to
 * sanity check the paper's interval construction.
 */

#ifndef STATSCHED_STATS_BOOTSTRAP_HH
#define STATSCHED_STATS_BOOTSTRAP_HH

#include <cstdint>
#include <vector>

#include "stats/pot.hh"

namespace statsched
{
namespace stats
{

/**
 * Result of a bootstrap run.
 */
struct BootstrapInterval
{
    double lower = 0.0;          //!< percentile lower bound
    double upper = 0.0;          //!< percentile upper bound
    double median = 0.0;         //!< median replicate UPB
    std::size_t replicates = 0;  //!< valid replicates used
    std::size_t failed = 0;      //!< replicates with invalid fits
};

/**
 * Percentile-bootstrap confidence interval of the UPB.
 *
 * Each replicate resamples with its own RNG, seeded from a SplitMix
 * stream derived from `seed` before any work is dispatched, so the
 * result is bit-identical for every thread count (including 1): the
 * replicate streams never depend on execution order.
 *
 * @param sample     Raw performance sample.
 * @param options    POT options (confidenceLevel sets the percentile
 *                   coverage).
 * @param replicates Number of bootstrap replicates (>= 50).
 * @param seed       Resampling RNG seed.
 * @param threads    Threads used for the replicate fits, including the
 *                   caller; 0 selects the hardware concurrency.
 */
BootstrapInterval
bootstrapUpbInterval(const std::vector<double> &sample,
                     const PotOptions &options, std::size_t replicates,
                     std::uint64_t seed, unsigned threads = 1);

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_BOOTSTRAP_HH
