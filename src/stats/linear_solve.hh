/**
 * @file
 * Dense symmetric positive-definite linear solves (Cholesky).
 *
 * Small helper used by the ridge-regression performance predictor
 * (core/predictor.hh): factor A = L Lᵀ and solve A w = b. Matrices in
 * this library are tiny (tens of features), so a simple dense
 * implementation is appropriate.
 */

#ifndef STATSCHED_STATS_LINEAR_SOLVE_HH
#define STATSCHED_STATS_LINEAR_SOLVE_HH

#include <cstddef>
#include <vector>

namespace statsched
{
namespace stats
{

/**
 * Dense row-major square matrix.
 */
class Matrix
{
  public:
    /** Builds an n x n zero matrix. */
    explicit Matrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

    std::size_t size() const { return n_; }

    double &
    at(std::size_t r, std::size_t c)
    {
        return data_[r * n_ + c];
    }

    double
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * n_ + c];
    }

  private:
    std::size_t n_;
    std::vector<double> data_;
};

/**
 * Solves A x = b for symmetric positive-definite A via Cholesky.
 *
 * @param a Symmetric positive-definite matrix (only the lower
 *          triangle is read).
 * @param b Right-hand side, size a.size().
 * @return the solution x.
 * @note panics if the matrix is not positive definite (callers add a
 *       ridge term to guarantee it).
 */
std::vector<double> choleskySolve(const Matrix &a,
                                  const std::vector<double> &b);

/**
 * Ridge regression: w = (XᵀX + lambda I)⁻¹ Xᵀ y.
 *
 * @param rows    Feature vectors (equal lengths).
 * @param targets One target per row.
 * @param lambda  Ridge strength, > 0.
 * @return the weight vector.
 */
std::vector<double>
ridgeRegression(const std::vector<std::vector<double>> &rows,
                const std::vector<double> &targets, double lambda);

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_LINEAR_SOLVE_HH
