/**
 * @file
 * ProfileEvaluator implementation.
 */

#include "stats/profile_eval.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace statsched
{
namespace stats
{

namespace
{

constexpr double infinity = std::numeric_limits<double>::infinity();

} // anonymous namespace

ProfileEvaluator::ProfileEvaluator(const std::vector<double> &ys)
    : ys_(ys), m_(static_cast<double>(ys.size()))
{
    // b is never NaN, so a NaN bit pattern marks an empty slot.
    keys_.fill(std::bit_cast<std::uint64_t>(
        std::numeric_limits<double>::quiet_NaN()));
}

const ProfileEvaluator::Point &
ProfileEvaluator::evaluate(double b)
{
    ++evaluations_;
    const std::uint64_t key = std::bit_cast<std::uint64_t>(b);
    for (std::size_t s = 0; s < cacheSlots; ++s) {
        if (keys_[s] == key)
            return points_[s];
    }

    const std::size_t slot = nextSlot_;
    nextSlot_ = (nextSlot_ + 1) % cacheSlots;
    keys_[slot] = key;
    Point &point = points_[slot];
    point = Point{};

    ++passes_;
    double sum_log = 0.0;
    for (double y : ys_) {
        const double z = 1.0 - y / b;
        if (z <= 0.0) {
            point.sumLog = -infinity;
            point.xiRaw = -infinity;
            point.xiStar = profileXiFloor;
            point.logLik = -infinity;
            return point;
        }
        sum_log += std::log(z);
    }
    point.sumLog = sum_log;
    point.xiRaw = sum_log / m_;
    point.xiStar = std::clamp(point.xiRaw, profileXiFloor,
                              profileXiCeil);
    point.logLik = -m_ * std::log(-point.xiStar * b) -
        (1.0 + 1.0 / point.xiStar) * sum_log;
    return point;
}

} // namespace stats
} // namespace statsched
