/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic component of the library (assignment sampler,
 * measurement noise, traffic generator) draws from an explicitly
 * seeded Rng so that all experiments are exactly reproducible. The
 * engine is xoshiro256** — fast, high quality, and trivially
 * splittable via SplitMix64-seeded streams.
 */

#ifndef STATSCHED_STATS_RNG_HH
#define STATSCHED_STATS_RNG_HH

#include <cmath>
#include <cstdint>

namespace statsched
{
namespace stats
{

/**
 * xoshiro256** PRNG with SplitMix64 seeding.
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result =
            rotl(state_[1] * 5ull, 7) * 9ull;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return a uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /**
     * @return a uniform integer in [0, bound) using Lemire's unbiased
     *         multiply-shift rejection method.
     * @pre bound > 0
     */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        // Lemire (2019): multiply and reject the biased low zone.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            const std::uint64_t t = (0ull - bound) % bound;
            while (l < t) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return a standard normal deviate (Box-Muller). */
    double
    normal()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = uniform();
        while (u1 <= 0.0)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        spare_ = r * std::sin(theta);
        haveSpare_ = true;
        return r * std::cos(theta);
    }

    /** @return a normal deviate with the given mean and stddev. */
    double
    normal(double mu, double sd)
    {
        return mu + sd * normal();
    }

    /**
     * @return an independent generator derived from this one (for
     *         per-task or per-assignment substreams).
     */
    Rng
    split()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ull);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    double spare_ = 0.0;
    bool haveSpare_ = false;
};

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_RNG_HH
