/**
 * @file
 * Parameter estimation for the Generalized Pareto Distribution
 * (Section 3.3.2, Step 3 of the paper).
 *
 * The paper estimates (xi, sigma) by maximizing the joint
 * log-likelihood of the exceedances with a Nelder-Mead search
 * (Matlab fminsearch). That estimator is implemented here, together
 * with two classic alternatives used by the estimator-comparison
 * ablation: the method of moments and probability-weighted moments
 * (Hosking & Wallis 1987).
 */

#ifndef STATSCHED_STATS_GPD_FIT_HH
#define STATSCHED_STATS_GPD_FIT_HH

#include <vector>

#include "stats/gpd.hh"

namespace statsched
{
namespace stats
{

/**
 * Estimation method selector.
 */
enum class GpdEstimator
{
    MaximumLikelihood,          //!< Nelder-Mead MLE (the paper's choice)
    MethodOfMoments,            //!< matches sample mean and variance
    ProbabilityWeightedMoments  //!< Hosking-Wallis PWM
};

/**
 * Result of fitting a GPD to a set of exceedances.
 */
struct GpdFit
{
    double xi = 0.0;            //!< estimated shape
    double sigma = 1.0;         //!< estimated scale
    double logLikelihood = 0.0; //!< log-likelihood at the estimate
    bool converged = false;     //!< optimizer / estimator succeeded

    /** @return the fitted distribution object. */
    Gpd distribution() const { return Gpd(xi, sigma); }
};

/**
 * Negative joint log-likelihood of exceedances under GPD(xi, sigma);
 * +infinity outside the feasible region. Exposed for tests and for the
 * profile-likelihood code.
 */
double gpdNegativeLogLikelihood(double xi, double sigma,
                                const std::vector<double> &exceedances);

/**
 * Fits a GPD to positive exceedances over a threshold.
 *
 * @param exceedances Values y_i = x_i - u > 0; at least 5 required.
 * @param method      Estimation method.
 * @param warmStart   Optional starting point for the MLE search,
 *                    typically the previous round's fit when the sample
 *                    is grown iteratively. Only used when it converged
 *                    with finite parameters and sigma > 0; the search
 *                    then starts from a smaller simplex than the cold
 *                    moment-estimate start. Ignored by the closed-form
 *                    estimators.
 * @return the fit; `converged` is false when the search failed (e.g.
 *         degenerate data), in which case the parameters hold the best
 *         point found.
 */
GpdFit fitGpd(const std::vector<double> &exceedances,
              GpdEstimator method = GpdEstimator::MaximumLikelihood,
              const GpdFit *warmStart = nullptr);

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_GPD_FIT_HH
