/**
 * @file
 * Diagnostics implementation.
 */

#include "stats/diagnostics.hh"

#include <algorithm>
#include <cmath>

#include "base/check.hh"
#include "stats/descriptive.hh"

namespace statsched
{
namespace stats
{

QuantilePlot
gpdQuantilePlot(const std::vector<double> &exceedances, const Gpd &model)
{
    SCHED_REQUIRE(exceedances.size() >= 2,
                  "quantile plot needs >= 2 points");
    std::vector<double> sorted = sortedCopy(exceedances);
    const double m = static_cast<double>(sorted.size());

    QuantilePlot plot;
    std::vector<double> model_q;
    std::vector<double> sample_q;
    model_q.reserve(sorted.size());
    sample_q.reserve(sorted.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double q = (static_cast<double>(i) + 0.5) / m;
        const double mq = model.quantile(q);
        model_q.push_back(mq);
        sample_q.push_back(sorted[i]);
        plot.points.emplace_back(mq, sorted[i]);
    }
    plot.correlation = pearsonCorrelation(model_q, sample_q);
    plot.rSquared = linearLeastSquares(model_q, sample_q).rSquared;
    return plot;
}

double
ksStatistic(const std::vector<double> &exceedances, const Gpd &model)
{
    SCHED_REQUIRE(!exceedances.empty(), "KS of empty sample");
    std::vector<double> sorted = sortedCopy(exceedances);
    const double m = static_cast<double>(sorted.size());
    double d = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const double g = model.cdf(sorted[i]);
        const double lo = static_cast<double>(i) / m;
        const double hi = static_cast<double>(i + 1) / m;
        d = std::max(d, std::max(std::fabs(g - lo), std::fabs(hi - g)));
    }
    return d;
}

} // namespace stats
} // namespace statsched
