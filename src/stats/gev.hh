/**
 * @file
 * Generalized Extreme Value distribution and block-maxima estimation.
 *
 * The paper uses the Peaks-Over-Threshold branch of EVT; the other
 * classical branch is the block-maxima method: partition the sample
 * into blocks, take each block's maximum, and fit the GEV
 *
 *     H(x) = exp(-(1 + xi (x-mu)/sigma)^(-1/xi))    (xi != 0)
 *     H(x) = exp(-exp(-(x-mu)/sigma))               (xi == 0)
 *
 * by maximum likelihood (Fisher-Tippett-Gnedenko). For xi < 0 the
 * upper endpoint mu - sigma/xi estimates the same optimal-performance
 * bound as the POT method, which makes block maxima a natural
 * cross-check ablation (bench/abl_gev_vs_pot).
 */

#ifndef STATSCHED_STATS_GEV_HH
#define STATSCHED_STATS_GEV_HH

#include <cstddef>
#include <vector>

namespace statsched
{
namespace stats
{

/**
 * A Generalized Extreme Value distribution with fixed parameters.
 */
class Gev
{
  public:
    /**
     * @param xi    Shape parameter.
     * @param mu    Location parameter.
     * @param sigma Scale parameter, > 0.
     */
    Gev(double xi, double mu, double sigma);

    double xi() const { return xi_; }
    double mu() const { return mu_; }
    double sigma() const { return sigma_; }

    /** Upper endpoint: mu - sigma/xi for xi < 0, else +infinity. */
    double supportUpper() const;

    /** Cumulative distribution function. */
    double cdf(double x) const;

    /** Probability density. */
    double pdf(double x) const;

    /** Log density; -infinity outside the support. */
    double logPdf(double x) const;

    /**
     * Quantile function.
     *
     * @param p Probability in (0, 1).
     */
    double quantile(double p) const;

    /** Draws one sample by inversion from a uniform in (0, 1). */
    double sampleFromUniform(double unit_uniform) const;

  private:
    double xi_;
    double mu_;
    double sigma_;
};

/**
 * Result of a GEV maximum-likelihood fit.
 */
struct GevFit
{
    double xi = 0.0;
    double mu = 0.0;
    double sigma = 1.0;
    double logLikelihood = 0.0;
    bool converged = false;

    /** @return the fitted distribution. */
    Gev distribution() const { return Gev(xi, mu, sigma); }

    /** Upper endpoint estimate (finite only for xi < 0). */
    double upperEndpoint() const;
};

/**
 * Fits a GEV to block maxima by Nelder-Mead maximum likelihood.
 *
 * @param maxima At least 10 block maxima.
 */
GevFit fitGev(const std::vector<double> &maxima);

/**
 * Block-maxima estimate of the optimal performance: splits the
 * sample into `blocks` contiguous blocks, takes each maximum, fits a
 * GEV, and returns the fit (upper endpoint = UPB estimate when
 * xi-hat < 0).
 *
 * @param sample Raw performance sample (order is irrelevant for iid
 *               data).
 * @param blocks Number of blocks (>= 10; sample.size()/blocks >= 2).
 */
GevFit blockMaximaEstimate(const std::vector<double> &sample,
                           std::size_t blocks);

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_GEV_HH
