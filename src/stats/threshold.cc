/**
 * @file
 * Threshold selection implementation.
 */

#include "stats/threshold.hh"

#include <algorithm>
#include <cmath>

#include "base/check.hh"
#include "stats/mean_excess.hh"

namespace statsched
{
namespace stats
{

namespace
{

/**
 * Builds a selection whose exceedances are the top `count` order
 * statistics; the threshold is placed at the highest excluded value so
 * exactly `count` observations lie strictly above it (ties reduce the
 * count, which keeps the iid exceedance definition exact).
 */
ThresholdSelection
selectionFromCount(const std::vector<double> &sorted, std::size_t count,
                   const MeanExcess &me)
{
    ThresholdSelection sel;
    SCHED_REQUIRE(count >= 1 && count < sorted.size(),
                  "invalid exceedance count");
    const std::size_t cut = sorted.size() - count;
    sel.threshold = sorted[cut - 1];
    for (std::size_t i = cut; i < sorted.size(); ++i) {
        const double y = sorted[i] - sel.threshold;
        if (y > 0.0)
            sel.exceedances.push_back(y);
    }
    sel.tailLinearity = me.tailLinearity(sel.threshold);
    return sel;
}

} // anonymous namespace

std::size_t
exceedanceCap(std::size_t sample_size, const ThresholdOptions &options)
{
    return std::max<std::size_t>(
        options.minExceedances,
        static_cast<std::size_t>(
            std::floor(options.maxExceedanceFraction *
                       static_cast<double>(sample_size))));
}

ThresholdSelection
selectThreshold(const std::vector<double> &sample,
                const ThresholdOptions &options)
{
    return selectThresholdFromMeanExcess(MeanExcess{sample}, options);
}

ThresholdSelection
selectThresholdFromMeanExcess(const MeanExcess &me,
                              const ThresholdOptions &options)
{
    SCHED_REQUIRE(options.maxExceedanceFraction > 0.0 &&
                  options.maxExceedanceFraction < 1.0,
                  "exceedance fraction out of (0,1)");
    SCHED_REQUIRE(options.minExceedances >= 5,
                  "need at least 5 exceedances for a GPD fit");
    const std::vector<double> &sorted = me.sorted();
    SCHED_REQUIRE(sorted.size() >= 2 * options.minExceedances,
                  "sample too small for threshold selection");

    const std::size_t cap = exceedanceCap(sorted.size(), options);

    if (options.policy == ThresholdPolicy::FixedFraction)
        return selectionFromCount(sorted, cap, me);

    // Linearity scan: evaluate candidate exceedance counts between the
    // minimum and the cap, keep the most linear tail. Ties favour more
    // exceedances (tighter estimates).
    ThresholdSelection best;
    bool have_best = false;
    const std::size_t lo = options.minExceedances;
    const std::size_t hi = cap;
    const std::size_t steps =
        std::max<std::size_t>(2, options.scanCandidates);
    for (std::size_t s = 0; s < steps; ++s) {
        const std::size_t count = lo +
            (hi - lo) * s / (steps - 1);
        if (count < options.minExceedances || count > cap)
            continue;
        auto sel = selectionFromCount(sorted, count, me);
        if (sel.exceedances.size() < options.minExceedances)
            continue;
        if (!have_best || sel.tailLinearity > best.tailLinearity ||
            (sel.tailLinearity == best.tailLinearity &&
             sel.exceedances.size() > best.exceedances.size())) {
            best = std::move(sel);
            have_best = true;
        }
    }
    if (!have_best)
        return selectionFromCount(sorted, cap, me);
    return best;
}

} // namespace stats
} // namespace statsched
