/**
 * @file
 * GEV implementation.
 */

#include "stats/gev.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.hh"
#include "stats/descriptive.hh"
#include "stats/nelder_mead.hh"

namespace statsched
{
namespace stats
{

namespace
{

constexpr double xiZeroTolerance = 1e-9;
constexpr double infinity = std::numeric_limits<double>::infinity();

} // anonymous namespace

Gev::Gev(double xi, double mu, double sigma)
    : xi_(xi), mu_(mu), sigma_(sigma)
{
    SCHED_REQUIRE(sigma > 0.0, "GEV scale must be positive");
    SCHED_REQUIRE(std::isfinite(xi) && std::isfinite(mu),
                  "GEV parameters must be finite");
}

double
Gev::supportUpper() const
{
    if (xi_ < -xiZeroTolerance)
        return mu_ - sigma_ / xi_;
    return infinity;
}

double
Gev::cdf(double x) const
{
    const double z = (x - mu_) / sigma_;
    if (std::fabs(xi_) < xiZeroTolerance)
        return std::exp(-std::exp(-z));
    const double t = 1.0 + xi_ * z;
    if (t <= 0.0)
        return xi_ > 0.0 ? 0.0 : 1.0;
    return std::exp(-std::pow(t, -1.0 / xi_));
}

double
Gev::pdf(double x) const
{
    const double z = (x - mu_) / sigma_;
    if (std::fabs(xi_) < xiZeroTolerance) {
        const double e = std::exp(-z);
        return e * std::exp(-e) / sigma_;
    }
    const double t = 1.0 + xi_ * z;
    if (t <= 0.0)
        return 0.0;
    const double tp = std::pow(t, -1.0 / xi_);
    return tp / t * std::exp(-tp) / sigma_;
}

double
Gev::logPdf(double x) const
{
    const double p = pdf(x);
    if (p <= 0.0)
        return -infinity;
    return std::log(p);
}

double
Gev::quantile(double p) const
{
    SCHED_REQUIRE(p > 0.0 && p < 1.0, "probability out of (0,1)");
    const double l = -std::log(p);
    if (std::fabs(xi_) < xiZeroTolerance)
        return mu_ - sigma_ * std::log(l);
    return mu_ + sigma_ / xi_ * (std::pow(l, -xi_) - 1.0);
}

double
Gev::sampleFromUniform(double unit_uniform) const
{
    SCHED_REQUIRE(unit_uniform > 0.0 && unit_uniform < 1.0,
                  "uniform draw out of (0,1)");
    return quantile(unit_uniform);
}

double
GevFit::upperEndpoint() const
{
    return Gev(xi, mu, sigma).supportUpper();
}

GevFit
fitGev(const std::vector<double> &maxima)
{
    SCHED_REQUIRE(maxima.size() >= 10,
                  "GEV fit needs at least 10 block maxima");

    // Moment-based starting point (Gumbel approximation):
    // sigma0 = sqrt(6) s / pi, mu0 = mean - 0.5772 sigma0.
    const double m = mean(maxima);
    const double s = stddev(maxima);
    const double sigma0 = std::max(1e-12,
                                   std::sqrt(6.0) * s / M_PI);
    const double mu0 = m - 0.57721566 * sigma0;

    auto negloglik = [&maxima](const std::vector<double> &p) {
        const double xi = p[0];
        const double mu = p[1];
        const double sigma = p[2];
        if (sigma <= 0.0)
            return infinity;
        const Gev gev(xi, mu, sigma);
        double acc = 0.0;
        for (double x : maxima) {
            const double lp = gev.logPdf(x);
            if (!std::isfinite(lp))
                return infinity;
            acc -= lp;
        }
        return acc;
    };

    NelderMeadOptions options;
    options.maxIterations = 6000;
    const auto result =
        nelderMeadMinimize(negloglik, {-0.1, mu0, sigma0}, options);

    GevFit fit;
    fit.xi = result.point[0];
    fit.mu = result.point[1];
    fit.sigma = result.point[2];
    fit.logLikelihood = -result.value;
    fit.converged = result.converged && std::isfinite(result.value);
    return fit;
}

GevFit
blockMaximaEstimate(const std::vector<double> &sample,
                    std::size_t blocks)
{
    SCHED_REQUIRE(blocks >= 10, "need at least 10 blocks");
    SCHED_REQUIRE(sample.size() >= 2 * blocks,
                  "blocks must hold at least 2 observations");

    const std::size_t block_size = sample.size() / blocks;
    std::vector<double> maxima;
    maxima.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t begin = b * block_size;
        const std::size_t end = (b + 1 == blocks)
            ? sample.size() : begin + block_size;
        maxima.push_back(*std::max_element(sample.begin() + begin,
                                           sample.begin() + end));
    }
    return fitGev(maxima);
}

} // namespace stats
} // namespace statsched
