/**
 * @file
 * MeanExcess implementation.
 */

#include "stats/mean_excess.hh"

#include <algorithm>

#include "base/check.hh"
#include "stats/descriptive.hh"

namespace statsched
{
namespace stats
{

MeanExcess::MeanExcess(std::vector<double> sample)
    : sorted_(std::move(sample))
{
    SCHED_REQUIRE(!sorted_.empty(), "mean excess of empty sample");
    std::sort(sorted_.begin(), sorted_.end());
    buildSuffixSums();
}

MeanExcess
MeanExcess::fromSorted(std::vector<double> sorted)
{
    SCHED_REQUIRE(!sorted.empty(), "mean excess of empty sample");
    SCHED_REQUIRE(std::is_sorted(sorted.begin(), sorted.end()),
                  "fromSorted() requires ascending order");
    MeanExcess me;
    me.sorted_ = std::move(sorted);
    me.buildSuffixSums();
    return me;
}

void
MeanExcess::buildSuffixSums()
{
    suffixSum_.assign(sorted_.size() + 1, 0.0);
    for (std::size_t i = sorted_.size(); i-- > 0;)
        suffixSum_[i] = suffixSum_[i + 1] + sorted_[i];
}

double
MeanExcess::evaluate(double u) const
{
    // k = index of the first observation strictly above u.
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), u);
    const std::size_t k = static_cast<std::size_t>(it - sorted_.begin());
    const std::size_t m = sorted_.size() - k;
    if (m == 0)
        return 0.0;
    const double excess_sum =
        suffixSum_[k] - u * static_cast<double>(m);
    return excess_sum / static_cast<double>(m);
}

std::vector<std::pair<double, double>>
MeanExcess::plot() const
{
    std::vector<std::pair<double, double>> out;
    out.reserve(sorted_.size());
    for (std::size_t i = 0; i + 1 < sorted_.size(); ++i) {
        // Skip duplicate thresholds: e_n is a function of the value.
        if (i > 0 && sorted_[i] == sorted_[i - 1])
            continue;
        out.emplace_back(sorted_[i], evaluate(sorted_[i]));
    }
    return out;
}

std::vector<std::pair<double, double>>
MeanExcess::upperPlot(double q) const
{
    SCHED_REQUIRE(q >= 0.0 && q < 1.0, "quantile out of [0,1)");
    const double cut = quantileSorted(sorted_, q);
    auto full = plot();
    std::vector<std::pair<double, double>> out;
    for (const auto &p : full) {
        if (p.first >= cut)
            out.push_back(p);
    }
    return out;
}

double
MeanExcess::tailLinearity(double u) const
{
    // Walk only the tail of the sorted sample instead of materializing
    // the full plot and filtering: lower_bound lands on the first
    // occurrence of the first value >= u, so the duplicate-skipping
    // below visits exactly the plot points that the full plot would
    // have kept, in the same order.
    const auto begin = std::lower_bound(sorted_.begin(), sorted_.end(), u);
    std::vector<double> xs;
    std::vector<double> ys;
    for (auto it = begin; it != sorted_.end(); ++it) {
        const std::size_t i =
            static_cast<std::size_t>(it - sorted_.begin());
        if (i + 1 >= sorted_.size())
            break;  // the maximum has no exceedances, never plotted
        if (it != begin && *it == *(it - 1))
            continue;
        xs.push_back(*it);
        ys.push_back(evaluate(*it));
    }
    if (xs.size() < 2)
        return 0.0;
    return linearLeastSquares(xs, ys).rSquared;
}

} // namespace stats
} // namespace statsched
