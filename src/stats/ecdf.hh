/**
 * @file
 * Empirical cumulative distribution function (Section 3.2 of the paper).
 *
 * The paper uses the CDF of all ~1500 assignments of a 6-thread workload
 * (Figure 3) to show the assignment-induced performance spread, and
 * notes that an ECDF built from a sample estimates the median part of
 * the population CDF well but cannot infer the extreme upper tail —
 * which is why EVT is needed. Ecdf implements evaluation, inversion and
 * the tail-spread query used by the Figure 3 harness.
 */

#ifndef STATSCHED_STATS_ECDF_HH
#define STATSCHED_STATS_ECDF_HH

#include <cstddef>
#include <vector>

namespace statsched
{
namespace stats
{

/**
 * Empirical CDF of a sample of observations.
 */
class Ecdf
{
  public:
    /**
     * Builds the ECDF; the sample is copied and sorted.
     *
     * @param sample Non-empty vector of observations.
     */
    explicit Ecdf(std::vector<double> sample);

    /** @return number of observations. */
    std::size_t size() const { return sorted_.size(); }

    /** @return F(x): the fraction of observations <= x. */
    double evaluate(double x) const;

    /**
     * @return the empirical quantile at level q in [0, 1]
     *         (type-7 interpolation).
     */
    double quantile(double q) const;

    /** @return smallest observation. */
    double min() const { return sorted_.front(); }

    /** @return largest observation. */
    double max() const { return sorted_.back(); }

    /**
     * Relative performance spread of the whole population:
     * (max - min) / max. Figure 3 reports 58% for the 6-thread IPFwd
     * workload.
     */
    double relativeSpread() const;

    /**
     * Relative spread within the best-performing fraction of the
     * population: (max - q_{1-fraction}) / max. Figure 3 reports ~0.6%
     * for the top 1%.
     *
     * @param fraction Tail fraction in (0, 1).
     */
    double topFractionSpread(double fraction) const;

    /** @return the sorted observations (non-decreasing). */
    const std::vector<double> &sorted() const { return sorted_; }

    /**
     * Evenly spaced plot points (x, F(x)) suitable for rendering the
     * CDF curve.
     *
     * @param points Number of points, >= 2.
     */
    std::vector<std::pair<double, double>> curve(std::size_t points) const;

  private:
    std::vector<double> sorted_;
};

} // namespace stats
} // namespace statsched

#endif // STATSCHED_STATS_ECDF_HH
