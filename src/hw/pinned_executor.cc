/**
 * @file
 * PinnedThreadEngine implementation.
 */

#include "hw/pinned_executor.hh"

#include <pthread.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "base/check.hh"
#include "base/logging.hh"
#include "base/sync.hh"
#include "net/aho_corasick.hh"
#include "net/analyzer.hh"
#include "net/flow_table.hh"
#include "net/ipfwd.hh"
#include "net/keywords.hh"
#include "net/pipeline.hh"

namespace statsched
{
namespace hw
{

namespace
{

/**
 * Builds the P-stage kernel for a benchmark. The returned callable
 * owns its state (table/automaton/...) via shared_ptr so it can be
 * copied into the pipeline.
 */
net::ProcessFn
makeProcessKernel(sim::Benchmark benchmark, std::uint32_t instance)
{
    using sim::Benchmark;
    switch (benchmark) {
      case Benchmark::IpfwdL1:
      case Benchmark::IpfwdIntAdd:
      case Benchmark::IpfwdIntMul:
        {
            auto table = std::make_shared<net::Ipv4ForwardingTable>(
                net::IpfwdMode::L1Resident, 16, 0xf02d + instance);
            return [table](net::Packet &p) {
                return table->forward(p);
            };
        }
      case Benchmark::IpfwdMem:
        {
            auto table = std::make_shared<net::Ipv4ForwardingTable>(
                net::IpfwdMode::MemoryBound, 16, 0xf02d + instance);
            return [table](net::Packet &p) {
                return table->forward(p);
            };
        }
      case Benchmark::PacketAnalyzer:
        {
            auto analyzer = std::make_shared<net::PacketAnalyzer>();
            return [analyzer](net::Packet &p) {
                analyzer->process(p);
                return true;
            };
        }
      case Benchmark::AhoCorasick:
        {
            // One automaton per engine would be shared; per instance
            // mirrors the paper (same keyword set for all).
            static const auto automaton =
                std::make_shared<net::AhoCorasick>(
                    net::dosKeywordSet());
            return [](net::Packet &p) {
                automaton->countMatches(p.payload(), p.payloadSize());
                return true;
            };
        }
      case Benchmark::IpsecEsp:
        {
            // A stand-in stream cipher: XOR keystream over the
            // payload plus the forwarding fast path.
            auto table = std::make_shared<net::Ipv4ForwardingTable>(
                net::IpfwdMode::L1Resident, 16, 0xe5b + instance);
            return [table](net::Packet &p) {
                std::uint8_t key = 0x5a;
                std::uint8_t *body = p.payload();
                for (std::size_t i = 0; i < p.payloadSize(); ++i) {
                    body[i] ^= key;
                    key = static_cast<std::uint8_t>(key * 73 + 11);
                }
                return table->forward(p);
            };
        }
      case Benchmark::Stateful:
        {
            auto table = std::make_shared<net::FlowTable>();
            auto seq = std::make_shared<std::uint64_t>(0);
            return [table, seq](net::Packet &p) {
                table->update(p, (*seq)++);
                return true;
            };
        }
    }
    SCHED_UNREACHABLE("unknown benchmark");
}

/** Pins the calling thread to one CPU; warns once on failure. */
void
pinSelfTo(unsigned cpu)
{
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu, &set);
    const int rc = pthread_setaffinity_np(pthread_self(),
                                          sizeof(set), &set);
    if (rc != 0) {
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("pthread_setaffinity_np failed; running unpinned");
        }
    }
}

/**
 * State shared between a measurement run and its stage threads. Held
 * through a shared_ptr captured by every thread, so when the watchdog
 * abandons a wedged run the pipelines stay alive until the last stage
 * thread — including the wedged one — eventually exits.
 */
struct RunState
{
    std::vector<std::unique_ptr<net::Pipeline>> pipelines; // NOLINT(statsched-unguarded-member): filled before the stage threads spawn and read after join/abandon; the threads only touch the raw Pipeline* they were handed
    std::atomic<std::size_t> active{0};
    base::Mutex mutex{"hw::RunState::mutex"};
    base::CondVar cv;

    /** Called by each stage thread on exit. */
    void
    stageDone()
    {
        if (active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Pair the notification with the mutex so the watchdog
            // cannot miss it between its predicate check and sleep.
            { base::MutexLock lock(mutex); }
            cv.notifyAll();
        }
    }
};

} // anonymous namespace

PinnedThreadEngine::PinnedThreadEngine(sim::Benchmark benchmark,
                                       std::uint32_t instances,
                                       const PinnedOptions &options)
    : benchmark_(benchmark), instances_(instances), options_(options)
{
    SCHED_REQUIRE(instances >= 1, "need at least one instance");
    SCHED_REQUIRE(options.measureMillis >= 10,
                  "measurement window too short");
}

unsigned
PinnedThreadEngine::hostCpuOf(core::ContextId context)
{
    const unsigned n = std::max(1u,
                                std::thread::hardware_concurrency());
    return context % n;
}

double
PinnedThreadEngine::measure(const core::Assignment &assignment)
{
    return measureOutcome(assignment).valueOrNaN();
}

core::MeasurementOutcome
PinnedThreadEngine::measureOutcome(const core::Assignment &assignment)
{
    SCHED_REQUIRE(assignment.size() == 3u * instances_,
                  "assignment size must be 3 x instances");

    auto state = std::make_shared<RunState>();
    state->pipelines.reserve(instances_);
    for (std::uint32_t i = 0; i < instances_; ++i) {
        net::TrafficConfig traffic;
        traffic.seed = 0x7a11 + i;
        state->pipelines.push_back(std::make_unique<net::Pipeline>(
            traffic, makeProcessKernel(benchmark_, i),
            options_.queueDepth));
    }
    state->active.store(3 * instances_, std::memory_order_relaxed);

    std::vector<std::thread> threads;
    threads.reserve(3 * instances_);
    const bool pin = options_.pinThreads;

    for (std::uint32_t i = 0; i < instances_; ++i) {
        net::Pipeline *pipe = state->pipelines[i].get();
        const core::TaskId base = 3 * i;
        const unsigned cpu_r = hostCpuOf(assignment.contextOf(base));
        const unsigned cpu_p =
            hostCpuOf(assignment.contextOf(base + 1));
        const unsigned cpu_t =
            hostCpuOf(assignment.contextOf(base + 2));
        const auto hang =
            i == 0 ? options_.testHangRelease : nullptr;

        threads.emplace_back([state, pipe, cpu_r, pin]() {
            if (pin)
                pinSelfTo(cpu_r);
            while (!pipe->stopRequested())
                pipe->receiveStep(64);
            state->stageDone();
        });
        threads.emplace_back([state, pipe, cpu_p, pin, hang]() {
            if (pin)
                pinSelfTo(cpu_p);
            while (!pipe->stopRequested())
                pipe->processStep(64);
            // Test hook: simulate a wedged stage that ignores the
            // stop request until released.
            if (hang) {
                while (!hang->load(std::memory_order_acquire))
                    std::this_thread::yield();
            }
            state->stageDone();
        });
        threads.emplace_back([state, pipe, cpu_t, pin]() {
            if (pin)
                pinSelfTo(cpu_t);
            while (!pipe->stopRequested())
                pipe->transmitStep(64);
            state->stageDone();
        });
    }

    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.measureMillis));
    for (auto &pipe : state->pipelines)
        pipe->requestStop();

    if (options_.watchdogMillis > 0) {
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(options_.watchdogMillis);
        bool reaped = true;
        {
            base::MutexLock lock(state->mutex);
            while (state->active.load(std::memory_order_acquire) !=
                   0) {
                if (state->cv.waitUntil(state->mutex, deadline) ==
                    std::cv_status::timeout) {
                    reaped = state->active.load(
                                 std::memory_order_acquire) == 0;
                    break;
                }
            }
        }
        if (!reaped) {
            // A stage is wedged. Abandon the run: the threads keep
            // the pipelines alive through `state`, so detaching is
            // safe, and the caller gets a failed measurement instead
            // of a hung experiment.
            for (auto &thread : threads)
                thread.detach();
            timeouts_.fetch_add(1, std::memory_order_relaxed);
            warn("PinnedThreadEngine: watchdog expired; abandoning "
                 "a wedged measurement run");
            return core::MeasurementOutcome::failure(
                core::MeasureStatus::TimedOut);
        }
    }
    for (auto &thread : threads)
        thread.join();
    const auto end = std::chrono::steady_clock::now();

    std::uint64_t transmitted = 0;
    for (const auto &pipe : state->pipelines)
        transmitted += pipe->stats().transmitted;

    const double seconds =
        std::chrono::duration<double>(end - start).count();
    return core::MeasurementOutcome::classify(
        static_cast<double>(transmitted) / seconds);
}

void
PinnedThreadEngine::collectStats(core::EngineStats &stats) const
{
    const std::uint64_t timeouts =
        timeouts_.load(std::memory_order_relaxed);
    stats.failures += timeouts;
    // A reaped run occupied the testbed for the watchdog grace period
    // on top of the measurement window the meter already charged.
    stats.modeledSeconds += static_cast<double>(timeouts) *
        options_.watchdogMillis / 1000.0;
}

std::string
PinnedThreadEngine::name() const
{
    return "hw:" + sim::benchmarkName(benchmark_) + "(" +
        std::to_string(instances_) + "x3)";
}

} // namespace hw
} // namespace statsched
