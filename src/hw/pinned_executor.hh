/**
 * @file
 * Real-thread pinned execution engine.
 *
 * The Netra DPS runtime binds each task to a hardware context at
 * compile time and lets it run to completion without interruption
 * (Section 4.2). PinnedThreadEngine demonstrates the same end-to-end
 * flow on the host machine: it instantiates the real src/net packet
 * kernels as three-stage pipelines, pins every stage thread to the
 * CPU corresponding to its assigned hardware context (modulo the
 * host's CPU count), runs for a fixed wall-clock window, and reports
 * the aggregate packets-per-second.
 *
 * On a machine that is not an UltraSPARC T2 the absolute numbers are
 * only illustrative — the deterministic simulator (sim/engine.hh) is
 * the reproduction backbone — but the engine exercises the identical
 * statistical pipeline against genuinely measured performance.
 */

#ifndef STATSCHED_HW_PINNED_EXECUTOR_HH
#define STATSCHED_HW_PINNED_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/performance_engine.hh"
#include "sim/benchmarks.hh"

namespace statsched
{
namespace hw
{

/**
 * Options of the pinned execution.
 */
struct PinnedOptions
{
    /** Wall-clock measurement window per assignment in
     *  milliseconds. */
    std::uint32_t measureMillis = 200;
    /** Queue depth of the stage queues. */
    std::size_t queueDepth = 2048;
    /** When false, threads run unpinned (for hosts where affinity
     *  calls are not permitted). */
    bool pinThreads = true;
    /**
     * Watchdog grace period after the stop request, in milliseconds.
     * A stage thread that has not exited by then is presumed wedged:
     * the run's threads are abandoned (they keep their pipelines
     * alive and are reaped by the OS on exit) and the measurement is
     * reported as MeasureStatus::TimedOut instead of blocking the
     * whole experiment. 0 restores the unconditional join.
     */
    std::uint32_t watchdogMillis = 2000;
    /**
     * Test hook: when set, the P stage of instance 0 spins after the
     * stop request until the flag becomes true, simulating a wedged
     * stage. Tests release the flag afterwards so the abandoned
     * thread exits promptly. Never set in production use.
     */
    std::shared_ptr<std::atomic<bool>> testHangRelease;
};

/**
 * PerformanceEngine that really executes assignments with pinned
 * threads.
 */
class PinnedThreadEngine : public core::PerformanceEngine
{
  public:
    /**
     * @param benchmark Which net kernel drives the P stages.
     * @param instances Number of 3-thread pipeline instances.
     * @param options   Execution options.
     */
    PinnedThreadEngine(sim::Benchmark benchmark,
                       std::uint32_t instances,
                       const PinnedOptions &options = {});

    /** @return measured packets per second of the assignment, or NaN
     *  when the run timed out. */
    double measure(const core::Assignment &assignment) override;

    /**
     * Measures with watchdog supervision: a run whose stage threads
     * do not exit within watchdogMillis of the stop request yields
     * MeasureStatus::TimedOut rather than wedging the caller.
     */
    core::MeasurementOutcome
    measureOutcome(const core::Assignment &assignment) override;

    std::string name() const override;

    double
    secondsPerMeasurement() const override
    {
        return options_.measureMillis / 1000.0;
    }

    /** Contributes watchdog timeouts as failures plus the modeled
     *  time the wedged runs occupied the testbed. */
    void collectStats(core::EngineStats &stats) const override;

    /** @return runs reaped by the watchdog. */
    std::uint64_t
    timeoutCount() const
    {
        return timeouts_.load(std::memory_order_relaxed);
    }

    /** @return the host CPU a context maps to. */
    static unsigned hostCpuOf(core::ContextId context);

  private:
    sim::Benchmark benchmark_;
    std::uint32_t instances_;
    PinnedOptions options_;
    std::atomic<std::uint64_t> timeouts_{0};
};

} // namespace hw
} // namespace statsched

#endif // STATSCHED_HW_PINNED_EXECUTOR_HH
