/**
 * @file
 * Real-thread pinned execution engine.
 *
 * The Netra DPS runtime binds each task to a hardware context at
 * compile time and lets it run to completion without interruption
 * (Section 4.2). PinnedThreadEngine demonstrates the same end-to-end
 * flow on the host machine: it instantiates the real src/net packet
 * kernels as three-stage pipelines, pins every stage thread to the
 * CPU corresponding to its assigned hardware context (modulo the
 * host's CPU count), runs for a fixed wall-clock window, and reports
 * the aggregate packets-per-second.
 *
 * On a machine that is not an UltraSPARC T2 the absolute numbers are
 * only illustrative — the deterministic simulator (sim/engine.hh) is
 * the reproduction backbone — but the engine exercises the identical
 * statistical pipeline against genuinely measured performance.
 */

#ifndef STATSCHED_HW_PINNED_EXECUTOR_HH
#define STATSCHED_HW_PINNED_EXECUTOR_HH

#include <cstdint>
#include <string>

#include "core/performance_engine.hh"
#include "sim/benchmarks.hh"

namespace statsched
{
namespace hw
{

/**
 * Options of the pinned execution.
 */
struct PinnedOptions
{
    /** Wall-clock measurement window per assignment in
     *  milliseconds. */
    std::uint32_t measureMillis = 200;
    /** Queue depth of the stage queues. */
    std::size_t queueDepth = 2048;
    /** When false, threads run unpinned (for hosts where affinity
     *  calls are not permitted). */
    bool pinThreads = true;
};

/**
 * PerformanceEngine that really executes assignments with pinned
 * threads.
 */
class PinnedThreadEngine : public core::PerformanceEngine
{
  public:
    /**
     * @param benchmark Which net kernel drives the P stages.
     * @param instances Number of 3-thread pipeline instances.
     * @param options   Execution options.
     */
    PinnedThreadEngine(sim::Benchmark benchmark,
                       std::uint32_t instances,
                       const PinnedOptions &options = {});

    /** @return measured packets per second of the assignment. */
    double measure(const core::Assignment &assignment) override;

    std::string name() const override;

    double
    secondsPerMeasurement() const override
    {
        return options_.measureMillis / 1000.0;
    }

    /** @return the host CPU a context maps to. */
    static unsigned hostCpuOf(core::ContextId context);

  private:
    sim::Benchmark benchmark_;
    std::uint32_t instances_;
    PinnedOptions options_;
};

} // namespace hw
} // namespace statsched

#endif // STATSCHED_HW_PINNED_EXECUTOR_HH
