/**
 * @file
 * BigUint implementation: schoolbook arithmetic over 32-bit limbs.
 *
 * Operand sizes in this library stay below a few hundred limbs (the
 * largest values are ~10^60), so the O(n^2) schoolbook algorithms are
 * both simple and fast enough; no Karatsuba/FFT machinery is needed.
 */

#include "num/big_uint.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.hh"

namespace statsched
{
namespace num
{

namespace
{

constexpr std::uint64_t limbBase = 1ull << 32;

} // anonymous namespace

BigUint::BigUint(std::uint64_t value)
{
    if (value) {
        limbs_.push_back(static_cast<std::uint32_t>(value));
        if (value >> 32)
            limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
    }
}

BigUint::BigUint(const std::string &decimal)
{
    SCHED_REQUIRE(!decimal.empty(), "empty decimal string");
    for (char c : decimal) {
        SCHED_REQUIRE(c >= '0' && c <= '9',
                      "non-digit in decimal string");
        // this = this * 10 + digit
        std::uint64_t carry = static_cast<std::uint64_t>(c - '0');
        for (auto &limb : limbs_) {
            std::uint64_t v = static_cast<std::uint64_t>(limb) * 10 + carry;
            limb = static_cast<std::uint32_t>(v);
            carry = v >> 32;
        }
        while (carry) {
            limbs_.push_back(static_cast<std::uint32_t>(carry));
            carry >>= 32;
        }
    }
    trim();
}

void
BigUint::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

std::size_t
BigUint::bitLength() const
{
    if (limbs_.empty())
        return 0;
    std::size_t bits = (limbs_.size() - 1) * 32;
    std::uint32_t top = limbs_.back();
    while (top) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

std::size_t
BigUint::digitCount() const
{
    return toString().size();
}

std::uint64_t
BigUint::toUint64() const
{
    SCHED_REQUIRE(fitsUint64(), "BigUint does not fit in 64 bits");
    std::uint64_t v = 0;
    if (limbs_.size() > 1)
        v = static_cast<std::uint64_t>(limbs_[1]) << 32;
    if (!limbs_.empty())
        v |= limbs_[0];
    return v;
}

double
BigUint::toDouble() const
{
    double v = 0.0;
    for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it)
        v = v * static_cast<double>(limbBase) + static_cast<double>(*it);
    return v;
}

std::string
BigUint::toString() const
{
    if (limbs_.empty())
        return "0";

    // Repeatedly divide by 10^9 to peel off 9-digit decimal chunks.
    std::vector<std::uint32_t> work(limbs_);
    std::vector<std::uint32_t> chunks;
    constexpr std::uint64_t chunk = 1000000000ull;
    while (!work.empty()) {
        std::uint64_t rem = 0;
        for (std::size_t i = work.size(); i-- > 0;) {
            std::uint64_t cur = (rem << 32) | work[i];
            work[i] = static_cast<std::uint32_t>(cur / chunk);
            rem = cur % chunk;
        }
        while (!work.empty() && work.back() == 0)
            work.pop_back();
        chunks.push_back(static_cast<std::uint32_t>(rem));
    }

    // The most significant chunk prints without zero padding; all others
    // are zero padded to the full nine digits.
    std::string out = std::to_string(chunks.back());
    for (std::size_t i = chunks.size() - 1; i-- > 0;) {
        std::string part = std::to_string(chunks[i]);
        out.append(9 - part.size(), '0');
        out += part;
    }
    return out;
}

std::string
BigUint::toScientific(int precision) const
{
    SCHED_REQUIRE(precision >= 0, "negative precision");
    std::string digits = toString();
    if (digits == "0")
        return "0";

    std::size_t exponent = digits.size() - 1;
    std::string mantissa;
    mantissa.push_back(digits[0]);
    if (precision > 0) {
        mantissa.push_back('.');
        for (int i = 0; i < precision; ++i) {
            char c = (static_cast<std::size_t>(i) + 1 < digits.size())
                ? digits[i + 1] : '0';
            mantissa.push_back(c);
        }
    }
    return mantissa + "e" + std::to_string(exponent);
}

int
BigUint::compare(const BigUint &other) const
{
    if (limbs_.size() != other.limbs_.size())
        return limbs_.size() < other.limbs_.size() ? -1 : 1;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != other.limbs_[i])
            return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
    return 0;
}

BigUint &
BigUint::operator+=(const BigUint &rhs)
{
    const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
    limbs_.resize(n, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = carry + limbs_[i];
        if (i < rhs.limbs_.size())
            sum += rhs.limbs_[i];
        limbs_[i] = static_cast<std::uint32_t>(sum);
        carry = sum >> 32;
    }
    if (carry)
        limbs_.push_back(static_cast<std::uint32_t>(carry));
    return *this;
}

BigUint &
BigUint::operator-=(const BigUint &rhs)
{
    SCHED_REQUIRE(compare(rhs) >= 0, "BigUint subtraction underflow");
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
        if (i < rhs.limbs_.size())
            diff -= rhs.limbs_[i];
        if (diff < 0) {
            diff += static_cast<std::int64_t>(limbBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        limbs_[i] = static_cast<std::uint32_t>(diff);
    }
    trim();
    return *this;
}

BigUint &
BigUint::operator*=(const BigUint &rhs)
{
    if (isZero() || rhs.isZero()) {
        limbs_.clear();
        return *this;
    }
    std::vector<std::uint32_t> out(limbs_.size() + rhs.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        const std::uint64_t a = limbs_[i];
        for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
            std::uint64_t cur =
                out[i + j] + a * rhs.limbs_[j] + carry;
            out[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::size_t k = i + rhs.limbs_.size();
        while (carry) {
            std::uint64_t cur = out[k] + carry;
            out[k] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    limbs_ = std::move(out);
    trim();
    return *this;
}

BigUint
BigUint::divMod(const BigUint &dividend, const BigUint &divisor,
                BigUint &remainder_out)
{
    SCHED_REQUIRE(!divisor.isZero(), "BigUint division by zero");

    if (dividend.compare(divisor) < 0) {
        remainder_out = dividend;
        return BigUint();
    }

    // Simple bit-by-bit long division: shift the remainder left one bit
    // at a time and subtract the divisor when possible. O(bits * limbs),
    // fully adequate for the operand sizes in this library.
    BigUint quotient;
    BigUint remainder;
    const std::size_t bits = dividend.bitLength();
    quotient.limbs_.assign((bits + 31) / 32, 0);

    for (std::size_t i = bits; i-- > 0;) {
        // remainder <<= 1
        std::uint32_t carry = 0;
        for (auto &limb : remainder.limbs_) {
            std::uint32_t next = limb >> 31;
            limb = (limb << 1) | carry;
            carry = next;
        }
        if (carry)
            remainder.limbs_.push_back(carry);

        // remainder |= bit i of dividend
        if ((dividend.limbs_[i / 32] >> (i % 32)) & 1u) {
            if (remainder.limbs_.empty())
                remainder.limbs_.push_back(0);
            remainder.limbs_[0] |= 1u;
        }

        if (remainder.compare(divisor) >= 0) {
            remainder -= divisor;
            quotient.limbs_[i / 32] |= (1u << (i % 32));
        }
    }

    quotient.trim();
    remainder.trim();
    remainder_out = std::move(remainder);
    return quotient;
}

BigUint &
BigUint::operator/=(const BigUint &rhs)
{
    BigUint rem;
    *this = divMod(*this, rhs, rem);
    return *this;
}

BigUint &
BigUint::operator%=(const BigUint &rhs)
{
    BigUint rem;
    divMod(*this, rhs, rem);
    *this = std::move(rem);
    return *this;
}

BigUint
BigUint::pow(const BigUint &base, unsigned exponent)
{
    BigUint result(1);
    BigUint acc(base);
    while (exponent) {
        if (exponent & 1u)
            result *= acc;
        exponent >>= 1;
        if (exponent)
            acc *= acc;
    }
    return result;
}

BigUint
BigUint::factorial(unsigned n)
{
    BigUint result(1);
    for (unsigned i = 2; i <= n; ++i)
        result *= BigUint(i);
    return result;
}

BigUint
BigUint::binomial(unsigned n, unsigned k)
{
    if (k > n)
        return BigUint();
    if (k > n - k)
        k = n - k;
    BigUint result(1);
    for (unsigned i = 1; i <= k; ++i) {
        result *= BigUint(n - k + i);
        result /= BigUint(i);
    }
    return result;
}

} // namespace num
} // namespace statsched
