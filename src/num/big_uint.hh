/**
 * @file
 * Arbitrary-precision unsigned integer arithmetic.
 *
 * The assignment-space counts reproduced in Table 1 of the paper reach
 * roughly 10^58 for 60-task workloads on an UltraSPARC T2, far beyond any
 * built-in integer type. BigUint provides exact addition, subtraction,
 * multiplication, division, exponentiation, comparison and decimal /
 * scientific formatting on magnitudes of that order.
 *
 * The representation is a little-endian vector of 32-bit limbs with no
 * leading zero limbs (zero is the empty vector). All operations are
 * value-semantic and never throw on overflow (the number simply grows);
 * subtraction below zero and division by zero abort via panic().
 */

#ifndef STATSCHED_NUM_BIG_UINT_HH
#define STATSCHED_NUM_BIG_UINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace statsched
{
namespace num
{

/**
 * Arbitrary-precision unsigned integer.
 */
class BigUint
{
  public:
    /** Constructs zero. */
    BigUint() = default;

    /** Constructs from a built-in unsigned value. */
    BigUint(std::uint64_t value);

    /**
     * Constructs from a decimal string.
     *
     * @param decimal Non-empty string of ASCII digits. Leading zeros are
     *                permitted and ignored.
     */
    explicit BigUint(const std::string &decimal);

    /** @return true iff the value is zero. */
    bool isZero() const { return limbs_.empty(); }

    /** @return the number of significant bits (0 for zero). */
    std::size_t bitLength() const;

    /** @return the number of decimal digits (1 for zero). */
    std::size_t digitCount() const;

    /**
     * Converts to a built-in unsigned integer.
     *
     * @pre fitsUint64()
     */
    std::uint64_t toUint64() const;

    /** @return true iff the value fits in 64 bits. */
    bool fitsUint64() const { return limbs_.size() <= 2; }

    /**
     * Converts to the nearest double. Values above the double range
     * return +infinity.
     */
    double toDouble() const;

    /** @return the full decimal representation. */
    std::string toString() const;

    /**
     * Formats as scientific notation, e.g. "1.75e51".
     *
     * @param precision Number of digits after the decimal point.
     */
    std::string toScientific(int precision = 2) const;

    /** Three-way comparison: -1, 0 or +1. */
    int compare(const BigUint &other) const;

    BigUint &operator+=(const BigUint &rhs);
    BigUint &operator-=(const BigUint &rhs);
    BigUint &operator*=(const BigUint &rhs);
    BigUint &operator/=(const BigUint &rhs);
    BigUint &operator%=(const BigUint &rhs);

    friend BigUint operator+(BigUint lhs, const BigUint &rhs)
    { lhs += rhs; return lhs; }
    friend BigUint operator-(BigUint lhs, const BigUint &rhs)
    { lhs -= rhs; return lhs; }
    friend BigUint operator*(BigUint lhs, const BigUint &rhs)
    { lhs *= rhs; return lhs; }
    friend BigUint operator/(BigUint lhs, const BigUint &rhs)
    { lhs /= rhs; return lhs; }
    friend BigUint operator%(BigUint lhs, const BigUint &rhs)
    { lhs %= rhs; return lhs; }

    friend bool operator==(const BigUint &a, const BigUint &b)
    { return a.compare(b) == 0; }
    friend bool operator!=(const BigUint &a, const BigUint &b)
    { return a.compare(b) != 0; }
    friend bool operator<(const BigUint &a, const BigUint &b)
    { return a.compare(b) < 0; }
    friend bool operator<=(const BigUint &a, const BigUint &b)
    { return a.compare(b) <= 0; }
    friend bool operator>(const BigUint &a, const BigUint &b)
    { return a.compare(b) > 0; }
    friend bool operator>=(const BigUint &a, const BigUint &b)
    { return a.compare(b) >= 0; }

    /**
     * Quotient and remainder in one pass.
     *
     * @param dividend The value to divide.
     * @param divisor  Non-zero divisor.
     * @param remainder_out Receives dividend mod divisor.
     * @return dividend / divisor (floor).
     */
    static BigUint divMod(const BigUint &dividend, const BigUint &divisor,
                          BigUint &remainder_out);

    /** @return base raised to the exponent (0^0 == 1). */
    static BigUint pow(const BigUint &base, unsigned exponent);

    /** @return n! as an exact integer. */
    static BigUint factorial(unsigned n);

    /** @return the binomial coefficient C(n, k) exactly (0 if k > n). */
    static BigUint binomial(unsigned n, unsigned k);

  private:
    /** Drops leading zero limbs so the representation stays canonical. */
    void trim();

    /** Little-endian 32-bit limbs; empty means zero. */
    std::vector<std::uint32_t> limbs_;
};

} // namespace num
} // namespace statsched

#endif // STATSCHED_NUM_BIG_UINT_HH
