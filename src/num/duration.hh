/**
 * @file
 * Human-readable formatting of huge time spans.
 *
 * Table 1 of the paper converts assignment counts into "time to execute
 * all assignments" (1 second each) and "time to predict all assignments"
 * (1 microsecond each), reporting values from minutes up to 1.75e51
 * years. Duration renders an exact BigUint number of microseconds in the
 * same style: the largest sensible unit with a compact mantissa.
 */

#ifndef STATSCHED_NUM_DURATION_HH
#define STATSCHED_NUM_DURATION_HH

#include <string>

#include "num/big_uint.hh"

namespace statsched
{
namespace num
{

/**
 * An exact duration held as an integral number of microseconds.
 */
class Duration
{
  public:
    /** Constructs a zero duration. */
    Duration() = default;

    /** @return a duration of the given number of microseconds. */
    static Duration fromMicroseconds(BigUint us);

    /** @return a duration of the given number of seconds. */
    static Duration fromSeconds(const BigUint &seconds);

    /** @return the exact microsecond count. */
    const BigUint &microseconds() const { return micros_; }

    /** @return whole seconds (floor). */
    BigUint seconds() const;

    /** @return whole Julian years of 365.25 days (floor). */
    BigUint years() const;

    /**
     * Renders with the largest unit whose count is at least one:
     * e.g. "42 s", "7.0 days", "15.6 years", "1.75e51 years".
     * Values of 10^7 years or more use scientific notation.
     */
    std::string toString() const;

  private:
    BigUint micros_;
};

} // namespace num
} // namespace statsched

#endif // STATSCHED_NUM_DURATION_HH
