/**
 * @file
 * Duration implementation.
 */

#include "num/duration.hh"

#include <array>
#include <cstdio>

namespace statsched
{
namespace num
{

namespace
{

const BigUint microsPerSecond(1000000ull);
const BigUint microsPerMinute(60ull * 1000000ull);
const BigUint microsPerHour(3600ull * 1000000ull);
const BigUint microsPerDay(86400ull * 1000000ull);
// Julian year: 365.25 days.
const BigUint microsPerYear(31557600ull * 1000000ull);

/**
 * Formats count/unit with one decimal digit, e.g. 7.5.
 */
std::string
formatRatio(const BigUint &micros, const BigUint &unit)
{
    BigUint scaled = micros * BigUint(10u);
    BigUint rem;
    BigUint tenths = BigUint::divMod(scaled, unit, rem);
    std::uint64_t t = tenths.toUint64();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu.%llu",
                  static_cast<unsigned long long>(t / 10),
                  static_cast<unsigned long long>(t % 10));
    return buf;
}

} // anonymous namespace

Duration
Duration::fromMicroseconds(BigUint us)
{
    Duration d;
    d.micros_ = std::move(us);
    return d;
}

Duration
Duration::fromSeconds(const BigUint &seconds)
{
    Duration d;
    d.micros_ = seconds * microsPerSecond;
    return d;
}

BigUint
Duration::seconds() const
{
    return micros_ / microsPerSecond;
}

BigUint
Duration::years() const
{
    return micros_ / microsPerYear;
}

std::string
Duration::toString() const
{
    const BigUint yrs = years();
    if (!yrs.isZero()) {
        // 10^7 years or more: scientific notation.
        if (yrs.digitCount() > 7)
            return yrs.toScientific(2) + " years";
        if (yrs.fitsUint64() && yrs.toUint64() >= 2)
            return formatRatio(micros_, microsPerYear) + " years";
        return formatRatio(micros_, microsPerYear) + " year";
    }
    if (micros_ >= microsPerDay)
        return formatRatio(micros_, microsPerDay) + " days";
    if (micros_ >= microsPerHour)
        return formatRatio(micros_, microsPerHour) + " hours";
    if (micros_ >= microsPerMinute)
        return formatRatio(micros_, microsPerMinute) + " min";
    if (micros_ >= microsPerSecond)
        return formatRatio(micros_, microsPerSecond) + " s";
    if (micros_.isZero())
        return "0 us";
    return micros_.toString() + " us";
}

} // namespace num
} // namespace statsched
