/**
 * @file
 * Design-by-contract macros for the statsched library.
 *
 * The statistical guarantees of the method rest on invariants that
 * plain C `assert` can neither name nor report: POT samples must stay
 * sorted, GPD parameters must stay in their admissible ranges, batch
 * spans must agree in size, engines must never observe a negative
 * retry budget. This header turns those conventions into an enforced
 * contract vocabulary:
 *
 *  - SCHED_REQUIRE(cond, msg)   — precondition on the caller. A
 *    violation means the *caller* passed arguments outside the
 *    documented domain.
 *  - SCHED_ENSURE(cond, msg)    — postcondition on the callee. A
 *    violation means *this* function failed to deliver what it
 *    promised.
 *  - SCHED_INVARIANT(cond, msg) — internal consistency condition that
 *    must hold at the annotated point regardless of inputs.
 *  - SCHED_UNREACHABLE(msg)     — control flow that must never be
 *    taken (exhaustive switches, closed enums).
 *
 * Three build levels, selected with -DSTATSCHED_CHECK_LEVEL=<n>
 * (CMake option STATSCHED_CHECK_LEVEL):
 *
 *  0  off    — conditions are not evaluated (they are still parsed,
 *              so they cannot bit-rot). SCHED_UNREACHABLE degrades to
 *              __builtin_unreachable().
 *  1  report — the default. A violation throws ContractViolation, a
 *              structured error carrying the contract kind, condition
 *              text, message and source location. Measurement-path
 *              layers (core::ResilientEngine, core::ParallelEngine)
 *              catch it and surface the failure as a
 *              MeasureStatus::Errored outcome instead of aborting the
 *              whole experiment.
 *  2  trap   — a violation prints the same structured report to
 *              stderr and calls std::abort() so a debugger or core
 *              dump captures the state. Use for fuzzing and sanitizer
 *              runs where unwinding would hide the faulting frame.
 */

#ifndef STATSCHED_BASE_CHECK_HH
#define STATSCHED_BASE_CHECK_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#ifndef STATSCHED_CHECK_LEVEL
#define STATSCHED_CHECK_LEVEL 1
#endif

namespace statsched
{

/** Which contract a violation broke. */
enum class ContractKind
{
    Require,     //!< precondition (caller's fault)
    Ensure,      //!< postcondition (callee's fault)
    Invariant,   //!< internal consistency condition
    Unreachable, //!< control flow that must never execute
};

/** @return the macro-style name of a contract kind ("REQUIRE"...). */
inline const char *
contractKindName(ContractKind kind)
{
    switch (kind) {
      case ContractKind::Require:     return "REQUIRE";
      case ContractKind::Ensure:      return "ENSURE";
      case ContractKind::Invariant:   return "INVARIANT";
      case ContractKind::Unreachable: return "UNREACHABLE";
    }
    return "CONTRACT";
}

/**
 * Structured report of a broken contract. Thrown at check level 1;
 * the what() string carries the full formatted report so even an
 * uncaught violation terminates with a useful message.
 */
class ContractViolation : public std::logic_error
{
  public:
    ContractViolation(ContractKind kind, const char *condition,
                      const std::string &message, const char *file,
                      int line)
        : std::logic_error(format(kind, condition, message, file,
                                  line)),
          kind_(kind), condition_(condition), message_(message),
          file_(file), line_(line)
    {}

    ContractKind kind() const { return kind_; }
    /** Stringified condition text ("batch.size() == out.size()"). */
    const char *condition() const { return condition_; }
    const std::string &message() const { return message_; }
    const char *file() const { return file_; }
    int line() const { return line_; }

  private:
    static std::string
    format(ContractKind kind, const char *condition,
           const std::string &message, const char *file, int line)
    {
        std::string text(contractKindName(kind));
        text += " violated: ";
        text += message;
        text += " [";
        text += condition;
        text += "] @ ";
        text += file;
        text += ":";
        text += std::to_string(line);
        return text;
    }

    ContractKind kind_;
    const char *condition_;
    std::string message_;
    const char *file_;
    int line_;
};

/** Level-1 failure path: raise the structured error. */
[[noreturn]] inline void
contractThrow(ContractKind kind, const char *condition,
              const std::string &message, const char *file, int line)
{
    throw ContractViolation(kind, condition, message, file, line);
}

/** Level-2 failure path: report and trap in the faulting frame. */
[[noreturn]] inline void
contractTrap(ContractKind kind, const char *condition,
             const std::string &message, const char *file, int line)
{
    std::fprintf(stderr, "%s violated: %s [%s]\n  @ %s:%d\n",
                 contractKindName(kind), message.c_str(), condition,
                 file, line);
    std::abort();
}

} // namespace statsched

#if STATSCHED_CHECK_LEVEL >= 2

#define SCHED_CONTRACT_FAIL_(kind, cond_text, msg) \
    ::statsched::contractTrap((kind), (cond_text), (msg), __FILE__, \
                              __LINE__)

#elif STATSCHED_CHECK_LEVEL == 1

#define SCHED_CONTRACT_FAIL_(kind, cond_text, msg) \
    ::statsched::contractThrow((kind), (cond_text), (msg), __FILE__, \
                               __LINE__)

#endif

#if STATSCHED_CHECK_LEVEL >= 1

#define SCHED_CONTRACT_CHECK_(kind, cond, msg) \
    do { \
        if (!(cond)) \
            SCHED_CONTRACT_FAIL_((kind), #cond, (msg)); \
    } while (0)

/** Precondition: the caller must establish `cond`. */
#define SCHED_REQUIRE(cond, msg) \
    SCHED_CONTRACT_CHECK_(::statsched::ContractKind::Require, cond, \
                          (msg))

/** Postcondition: this function promises `cond` on exit. */
#define SCHED_ENSURE(cond, msg) \
    SCHED_CONTRACT_CHECK_(::statsched::ContractKind::Ensure, cond, \
                          (msg))

/** Internal consistency condition at this program point. */
#define SCHED_INVARIANT(cond, msg) \
    SCHED_CONTRACT_CHECK_(::statsched::ContractKind::Invariant, cond, \
                          (msg))

/** Control flow that must never execute. */
#define SCHED_UNREACHABLE(msg) \
    SCHED_CONTRACT_FAIL_(::statsched::ContractKind::Unreachable, \
                         "reached unreachable code", (msg))

#else // STATSCHED_CHECK_LEVEL == 0

// Conditions stay parsed (sizeof) but are never evaluated, so
// disabled contracts cannot bit-rot and carry no runtime cost.
#define SCHED_CONTRACT_IGNORE_(cond) \
    static_cast<void>(sizeof((cond) ? 1 : 0))

#define SCHED_REQUIRE(cond, msg) SCHED_CONTRACT_IGNORE_(cond)
#define SCHED_ENSURE(cond, msg) SCHED_CONTRACT_IGNORE_(cond)
#define SCHED_INVARIANT(cond, msg) SCHED_CONTRACT_IGNORE_(cond)
#define SCHED_UNREACHABLE(msg) __builtin_unreachable()

#endif // STATSCHED_CHECK_LEVEL

#endif // STATSCHED_BASE_CHECK_HH
