/**
 * @file
 * Synchronization capability layer: annotated mutex/condvar wrappers
 * plus a runtime lock-order checker.
 *
 * Every mutex and condition variable in the library goes through this
 * header — the linter (statsched-raw-sync-primitive) rejects raw
 * std::mutex / std::condition_variable anywhere else — so that two
 * complementary checkers see the whole concurrent surface:
 *
 *  1. Clang thread-safety analysis (compile time). base::Mutex is a
 *     CAPABILITY, base::MutexLock a SCOPED_CAPABILITY, and shared
 *     members carry SCHED_GUARDED_BY(mutex_); Clang builds run with
 *     -Werror=thread-safety, so a guarded member touched without its
 *     lock, or a SCHED_REQUIRES function called lock-free, fails the
 *     build. The SCHED_* macros expand to nothing on non-Clang
 *     compilers. Convention: condition-variable waits are
 *     predicate-free — callers loop `while (!ready_) cv_.wait(mu_);`
 *     so every guarded access stays lexically inside a region the
 *     analysis can see (lambda bodies are analyzed as separate,
 *     unannotated functions and would leak accesses past it).
 *
 *  2. A process-wide lock-order graph (run time, STATSCHED_CHECK_LEVEL
 *     >= 1). Each thread keeps a stack of the base::Mutex objects it
 *     holds; every acquisition records "held before acquired" edges in
 *     a global directed graph, and the first acquisition that would
 *     close a cycle — the signature of a potential deadlock, even if
 *     this interleaving did not deadlock — raises a structured
 *     ContractViolation naming both locks. Recursive acquisition of a
 *     non-reentrant base::Mutex is reported the same way instead of
 *     deadlocking silently. At level 0 the bookkeeping compiles away
 *     and Mutex is a zero-overhead std::mutex wrapper.
 *
 * The order graph only ever grows edges while a Mutex lives (a
 * destroyed Mutex retires its node, so id reuse across short-lived
 * engines cannot fabricate cycles), and known edges are re-checked
 * only against a hash set — the DFS runs once per NEW edge, so steady
 * state costs one small critical section per nested acquisition.
 */

#ifndef STATSCHED_BASE_SYNC_HH
#define STATSCHED_BASE_SYNC_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "base/check.hh"

#if STATSCHED_CHECK_LEVEL >= 1
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>
#endif

// --- Thread-safety annotation macros ------------------------------
//
// Thin names over Clang's capability attributes; they expand to
// nothing elsewhere, so annotated code stays portable. See
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
// attribute semantics.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SCHED_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SCHED_THREAD_ANNOTATION_
#define SCHED_THREAD_ANNOTATION_(x)
#endif

/** Marks a class as a lockable capability (mutex-like). */
#define SCHED_CAPABILITY(x) SCHED_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII class whose lifetime holds a capability. */
#define SCHED_SCOPED_CAPABILITY \
    SCHED_THREAD_ANNOTATION_(scoped_lockable)

/** Declares that a member may only be touched while `x` is held. */
#define SCHED_GUARDED_BY(x) SCHED_THREAD_ANNOTATION_(guarded_by(x))

/** Declares that the pointee of a pointer member is guarded by `x`. */
#define SCHED_PT_GUARDED_BY(x) \
    SCHED_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function precondition: the listed capabilities must be held. */
#define SCHED_REQUIRES(...) \
    SCHED_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (defaults to `this`). */
#define SCHED_ACQUIRE(...) \
    SCHED_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities (defaults to `this`). */
#define SCHED_RELEASE(...) \
    SCHED_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function must be called with the listed capabilities NOT held. */
#define SCHED_EXCLUDES(...) \
    SCHED_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Escape hatch for code the analysis cannot follow; every use needs
 *  a comment explaining why the access is safe. */
#define SCHED_NO_THREAD_SAFETY_ANALYSIS \
    SCHED_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace statsched
{
namespace base
{

#if STATSCHED_CHECK_LEVEL >= 1

namespace detail
{

/** One entry of a thread's lock-acquisition stack. */
struct HeldLock
{
    const void *mutex;  //!< identity of the held base::Mutex
    std::uint32_t id;   //!< its node id in the order graph
    const char *name;   //!< its diagnostic name (owner outlives hold)
};

/** @return the calling thread's stack of held base::Mutex locks. */
inline std::vector<HeldLock> &
heldLocks()
{
    thread_local std::vector<HeldLock> held;
    return held;
}

/**
 * Process-wide "must be acquired before" graph over live Mutex
 * objects. An edge a -> b means some thread held a while acquiring b;
 * the first edge that would make the graph cyclic is refused with a
 * ContractViolation, because two threads replaying the two recorded
 * orders can deadlock.
 */
class LockOrderGraph
{
  public:
    /** The graph is intentionally leaked: function-static Mutexes may
     *  unregister during teardown, after a destructor-managed graph
     *  would already be gone. */
    static LockOrderGraph &
    instance()
    {
        static LockOrderGraph *graph = new LockOrderGraph;
        return *graph;
    }

    /** @return a fresh node id for a newly constructed Mutex. */
    std::uint32_t
    registerNode()
    {
        return nextId_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Retires a destroyed Mutex: its node and every edge touching it
     *  disappear, so a reused id cannot inherit stale constraints. */
    void
    unregisterNode(std::uint32_t id)
    {
        std::lock_guard<std::mutex> lock(m_);
        edges_.erase(id);
        for (auto &entry : edges_)
            entry.second.erase(id);
    }

    /**
     * Records the constraint heldId -> acquiringId. Raises a
     * ContractViolation naming both locks if the new edge closes a
     * cycle; an already-known edge was vetted when first recorded and
     * returns after one hash probe.
     */
    void
    checkEdge(std::uint32_t heldId, const char *heldName,
              std::uint32_t acquiringId, const char *acquiringName)
    {
        std::lock_guard<std::mutex> lock(m_);
        std::unordered_set<std::uint32_t> &successors =
            edges_[heldId];
        if (successors.count(acquiringId) != 0)
            return;
        if (reaches(acquiringId, heldId)) {
            std::string message("lock-order inversion: acquiring \"");
            message += acquiringName;
            message += "\" while holding \"";
            message += heldName;
            message += "\" contradicts the recorded \"";
            message += acquiringName;
            message += "\" before \"";
            message += heldName;
            message += "\" order; threads replaying both orders can "
                       "deadlock";
            failCheck(message);
        }
        successors.insert(acquiringId);
    }

    /** Reports a recursive acquisition (base::Mutex is non-reentrant:
     *  std::mutex would deadlock or worse). */
    [[noreturn]] static void
    failRecursive(const char *name)
    {
        std::string message("recursive acquisition of \"");
        message += name;
        message += "\": base::Mutex is not reentrant";
        failCheck(message);
    }

  private:
    /** Routes the violation through the active contract policy:
     *  throw at level 1, report-and-trap at level 2. */
    [[noreturn]] static void
    failCheck(const std::string &message)
    {
#if STATSCHED_CHECK_LEVEL >= 2
        contractTrap(ContractKind::Invariant,
                     "lock acquisitions keep the order graph acyclic",
                     message, __FILE__, __LINE__);
#else
        contractThrow(ContractKind::Invariant,
                      "lock acquisitions keep the order graph acyclic",
                      message, __FILE__, __LINE__);
#endif
    }

    /** DFS: is `to` reachable from `from`? Caller holds m_. */
    bool
    reaches(std::uint32_t from, std::uint32_t to) const
    {
        std::vector<std::uint32_t> stack{from};
        std::unordered_set<std::uint32_t> visited;
        while (!stack.empty()) {
            const std::uint32_t node = stack.back();
            stack.pop_back();
            if (node == to)
                return true;
            if (!visited.insert(node).second)
                continue;
            const auto it = edges_.find(node);
            if (it == edges_.end())
                continue;
            for (const std::uint32_t next : it->second)
                stack.push_back(next);
        }
        return false;
    }

    /** Raw by design: the graph's own lock cannot track itself. */
    std::mutex m_;
    std::atomic<std::uint32_t> nextId_{1};
    std::unordered_map<std::uint32_t,
                       std::unordered_set<std::uint32_t>>
        edges_;
};

/** Pre-acquisition hook: rejects recursion, then vets one order edge
 *  per currently held lock. Runs BEFORE the underlying lock, so a
 *  refused acquisition leaves nothing to unwind. */
inline void
noteAcquire(const void *self, std::uint32_t id, const char *name)
{
    const std::vector<HeldLock> &held = heldLocks();
    for (const HeldLock &entry : held) {
        if (entry.mutex == self)
            LockOrderGraph::failRecursive(name);
    }
    for (const HeldLock &entry : held)
        LockOrderGraph::instance().checkEdge(entry.id, entry.name, id,
                                             name);
}

/** Post-acquisition hook: pushes onto the thread's held stack. */
inline void
notePush(const void *self, std::uint32_t id, const char *name)
{
    heldLocks().push_back(HeldLock{self, id, name});
}

/** Pre-release hook: pops the most recent entry for this mutex (locks
 *  are not required to be released in LIFO order). */
inline void
notePop(const void *self)
{
    std::vector<HeldLock> &held = heldLocks();
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (it->mutex == self) {
            held.erase(std::next(it).base());
            return;
        }
    }
}

} // namespace detail

#endif // STATSCHED_CHECK_LEVEL >= 1

/**
 * Non-reentrant mutual-exclusion capability. Exactly std::mutex plus
 * (a) a capability annotation the Clang analysis enforces and (b) the
 * lock-order bookkeeping described in the file comment. Give every
 * instance a name — it is what the deadlock diagnostic prints.
 */
class SCHED_CAPABILITY("mutex") Mutex
{
  public:
    explicit Mutex(const char *name = "base::Mutex") : name_(name)
#if STATSCHED_CHECK_LEVEL >= 1
        , id_(detail::LockOrderGraph::instance().registerNode())
#endif
    {
    }

#if STATSCHED_CHECK_LEVEL >= 1
    ~Mutex()
    {
        detail::LockOrderGraph::instance().unregisterNode(id_);
    }
#else
    ~Mutex() = default;
#endif

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() SCHED_ACQUIRE()
    {
#if STATSCHED_CHECK_LEVEL >= 1
        detail::noteAcquire(this, id_, name_);
#endif
        m_.lock();
#if STATSCHED_CHECK_LEVEL >= 1
        detail::notePush(this, id_, name_);
#endif
    }

    void
    unlock() SCHED_RELEASE()
    {
#if STATSCHED_CHECK_LEVEL >= 1
        detail::notePop(this);
#endif
        m_.unlock();
    }

    /** Diagnostic name, as printed by the lock-order checker. */
    const char *name() const { return name_; }

  private:
    std::mutex m_;
    const char *name_;
#if STATSCHED_CHECK_LEVEL >= 1
    const std::uint32_t id_;
#endif
};

/**
 * RAII scope holding a Mutex; the only sanctioned way to lock one
 * outside of sync-layer internals.
 */
class SCHED_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) SCHED_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() SCHED_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable waiting on a base::Mutex. Waits are
 * predicate-free by convention (see the file comment): call inside a
 * `while (!condition)` loop with the mutex held. The wait releases
 * and reacquires through Mutex::unlock()/lock(), so the held-stack
 * and order-graph bookkeeping stay exact across the sleep.
 */
class CondVar
{
  public:
    CondVar() = default;

    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically releases `mutex`, sleeps until notified (or
     *  spuriously woken), and reacquires before returning. */
    void
    wait(Mutex &mutex) SCHED_REQUIRES(mutex)
    {
        cv_.wait(mutex);
    }

    /** wait() bounded by a timeout. */
    template <typename Rep, typename Period>
    std::cv_status
    waitFor(Mutex &mutex,
            const std::chrono::duration<Rep, Period> &timeout)
        SCHED_REQUIRES(mutex)
    {
        return cv_.wait_for(mutex, timeout);
    }

    /** wait() bounded by an absolute deadline. */
    template <typename Clock, typename Duration>
    std::cv_status
    waitUntil(Mutex &mutex,
              const std::chrono::time_point<Clock, Duration> &deadline)
        SCHED_REQUIRES(mutex)
    {
        return cv_.wait_until(mutex, deadline);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace base
} // namespace statsched

#endif // STATSCHED_BASE_SYNC_HH
