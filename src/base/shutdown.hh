/**
 * @file
 * Process-wide graceful-shutdown flag.
 *
 * A production campaign must survive operator interruption: SIGINT /
 * SIGTERM set a flag, in-flight measurement batches drain, and the
 * campaign runner emits a final checkpoint and a partial report
 * instead of dying mid-write. The flag lives here, in src/base,
 * because signal disposition is process state: core code never reads
 * it directly — the campaign runner receives it as an injected
 * `stopRequested` callback (see core/campaign.hh), so tests can
 * script interruption deterministically without touching signals.
 */

#ifndef STATSCHED_BASE_SHUTDOWN_HH
#define STATSCHED_BASE_SHUTDOWN_HH

#include <csignal>

namespace statsched
{
namespace base
{

namespace detail
{
/** The only state a signal handler may touch. */
inline volatile std::sig_atomic_t g_shutdownRequested = 0;

extern "C" inline void
shutdownSignalHandler(int)
{
    g_shutdownRequested = 1;
}
} // namespace detail

/** @return true once a shutdown was requested (signal or manual). */
inline bool
shutdownRequested()
{
    return detail::g_shutdownRequested != 0;
}

/** Requests a shutdown programmatically (tests, embedders). */
inline void
requestShutdown()
{
    detail::g_shutdownRequested = 1;
}

/** Clears the flag (tests re-using one process). */
inline void
resetShutdown()
{
    detail::g_shutdownRequested = 0;
}

/**
 * Routes SIGINT and SIGTERM to the shutdown flag. Call once from the
 * driver before starting a campaign; the second signal of the same
 * kind falls back to the default disposition is NOT installed — the
 * handler stays armed, so a stuck drain still requires SIGKILL.
 */
inline void
installShutdownHandlers()
{
    std::signal(SIGINT, detail::shutdownSignalHandler);
    std::signal(SIGTERM, detail::shutdownSignalHandler);
}

} // namespace base
} // namespace statsched

#endif // STATSCHED_BASE_SHUTDOWN_HH
