/**
 * @file
 * Process-wide graceful-shutdown flag.
 *
 * A production campaign must survive operator interruption: SIGINT /
 * SIGTERM set a flag, in-flight measurement batches drain, and the
 * campaign runner emits a final checkpoint and a partial report
 * instead of dying mid-write. The flag lives here, in src/base,
 * because signal disposition is process state: core code never reads
 * it directly — the campaign runner receives it as an injected
 * `stopRequested` callback (see core/campaign.hh), so tests can
 * script interruption deterministically without touching signals.
 *
 * Handlers are installed with sigaction() and deliberately WITHOUT
 * SA_RESTART: a coordinator blocked in a pipe read on a shard worker
 * (core/sharded_engine.hh) must observe Ctrl-C as an EINTR return
 * from the read, not sleep through it until the worker happens to
 * produce bytes. Every blocking syscall in the process therefore has
 * explicit EINTR semantics: base::Subprocess reads report
 * ReadStatus::Interrupted and their callers re-check
 * shutdownRequested() before retrying.
 *
 * Escalation: the FIRST signal of a kind requests the graceful drain.
 * The SECOND signal of the same kind restores the default disposition
 * and re-raises itself, so the process dies immediately with the
 * conventional signal exit status — an operator whose drain is stuck
 * never needs SIGKILL.
 */

#ifndef STATSCHED_BASE_SHUTDOWN_HH
#define STATSCHED_BASE_SHUTDOWN_HH

#include <csignal>

namespace statsched
{
namespace base
{

namespace detail
{
/** The only state a signal handler may touch. */
inline volatile std::sig_atomic_t g_shutdownRequested = 0;
/** Per-kind second-signal escalation state. */
inline volatile std::sig_atomic_t g_sigintSeen = 0;
inline volatile std::sig_atomic_t g_sigtermSeen = 0;

extern "C" inline void
shutdownSignalHandler(int sig)
{
    volatile std::sig_atomic_t &seen =
        sig == SIGINT ? g_sigintSeen : g_sigtermSeen;
    if (seen) {
        // Second request of this kind: the operator wants out NOW.
        // Restore the default disposition and re-raise, so the
        // process reports the conventional killed-by-signal status.
        // std::signal and std::raise are async-signal-safe.
        std::signal(sig, SIG_DFL);
        std::raise(sig);
        return;
    }
    seen = 1;
    g_shutdownRequested = 1;
}
} // namespace detail

/** @return true once a shutdown was requested (signal or manual). */
inline bool
shutdownRequested()
{
    return detail::g_shutdownRequested != 0;
}

/** Requests a shutdown programmatically (tests, embedders). */
inline void
requestShutdown()
{
    detail::g_shutdownRequested = 1;
}

/** Clears the flag and the escalation state (tests re-using one
 *  process). */
inline void
resetShutdown()
{
    detail::g_shutdownRequested = 0;
    detail::g_sigintSeen = 0;
    detail::g_sigtermSeen = 0;
}

/**
 * Routes SIGINT and SIGTERM to the shutdown flag via sigaction(),
 * explicitly WITHOUT SA_RESTART: blocking reads return EINTR when a
 * shutdown signal lands, so a coordinator waiting on a silent shard
 * worker reacts to Ctrl-C immediately. Call once from the driver
 * before starting a campaign. The second signal of the same kind
 * hard-exits (see file comment); a mixed pair (SIGINT then SIGTERM)
 * keeps draining until either kind repeats.
 */
inline void
installShutdownHandlers()
{
    struct sigaction action = {};
    action.sa_handler = detail::shutdownSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // no SA_RESTART: reads must see EINTR
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

} // namespace base
} // namespace statsched

#endif // STATSCHED_BASE_SHUTDOWN_HH
