/**
 * @file
 * Minimal gem5-style logging and error-termination helpers.
 *
 * Two failure modes are distinguished, following the gem5 convention:
 *
 *  - panic():  an internal invariant was violated — a bug in this library.
 *              Prints the message and calls std::abort() so a core dump or
 *              debugger can capture the state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid argument). Prints the message
 *              and exits with status 1.
 *
 * warn() and inform() print status messages without terminating.
 */

#ifndef STATSCHED_BASE_LOGGING_HH
#define STATSCHED_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace statsched
{

[[noreturn]] inline void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  @ %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace statsched

/** Terminate on an internal library bug. */
#define STATSCHED_PANIC(msg) \
    ::statsched::panicImpl(__FILE__, __LINE__, (msg))

/** Terminate on an unrecoverable user error. */
#define STATSCHED_FATAL(msg) \
    ::statsched::fatalImpl(__FILE__, __LINE__, (msg))

// Invariant checking lives in base/check.hh (SCHED_REQUIRE /
// SCHED_ENSURE / SCHED_INVARIANT / SCHED_UNREACHABLE); the old
// STATSCHED_ASSERT macro is gone and the lint forbids reintroducing
// it.

#endif // STATSCHED_BASE_LOGGING_HH
