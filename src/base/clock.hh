/**
 * @file
 * Injectable time source.
 *
 * The deterministic modules (src/core, src/stats, src/sim, src/num)
 * must be pure functions of their seeds — the project lint forbids
 * direct wall-clock reads there, because replicated runs must be
 * bit-identical. Yet a production campaign needs wall-clock deadlines
 * ("stop after two hours of testbed time"). Clock reconciles the two:
 * core code receives time through this interface, the CLI injects
 * SteadyClock (the only place outside src/hw that reads a real
 * clock), and tests inject ManualClock to script time deterministically.
 *
 * The lint rule `statsched-wallclock` enforces that this header (and
 * src/hw, which owns real measurement timing) are the only sanctioned
 * time sources; see tools/lint.
 */

#ifndef STATSCHED_BASE_CLOCK_HH
#define STATSCHED_BASE_CLOCK_HH

#include <chrono>

namespace statsched
{
namespace base
{

/**
 * Monotonic time source, in seconds from an arbitrary origin.
 */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** @return monotonic seconds; only differences are meaningful. */
    virtual double nowSeconds() = 0;
};

/**
 * Real monotonic clock (std::chrono::steady_clock). Inject into
 * production campaigns; never construct one inside src/core.
 */
class SteadyClock : public Clock
{
  public:
    double
    nowSeconds() override
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now()
                       .time_since_epoch())
            .count();
    }
};

/**
 * Scriptable clock for tests: time moves only when advance() is
 * called, so deadline logic is exercised deterministically.
 */
class ManualClock : public Clock
{
  public:
    /** @param start Initial reading in seconds. */
    explicit ManualClock(double start = 0.0) : now_(start) {}

    double nowSeconds() override { return now_; }

    /** Moves time forward by `seconds` (must be >= 0). */
    void advance(double seconds) { now_ += seconds; }

    /** Jumps to an absolute reading. */
    void set(double seconds) { now_ = seconds; }

  private:
    double now_;
};

} // namespace base
} // namespace statsched

#endif // STATSCHED_BASE_CLOCK_HH
