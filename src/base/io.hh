/**
 * @file
 * Checked, injectable byte-sink I/O.
 *
 * The measurement journal (core/journal.hh) is the one place the
 * deterministic stack touches a disk, and the paper's statistical
 * guarantees survive a crash only if that touch is honest: a short
 * write that silently truncates a record, an EINTR that drops bytes,
 * or an fsync whose failure is ignored all turn "durable prefix" into
 * a lie. base::io centralizes the discipline once:
 *
 *  - Sink is the write abstraction: every write() loops over EINTR
 *    and short writes, every sync() retries EINTR, and both report
 *    failures as structured IoResults (ENOSPC is distinguished from
 *    other errors because callers degrade differently on a full disk
 *    than on a dying one).
 *
 *  - FileSink is the production implementation over a plain fd.
 *
 *  - MemorySink captures bytes for tests.
 *
 *  - FaultInjectingSink wraps any sink and fails deterministically
 *    once a cumulative byte budget is exhausted — the write that
 *    crosses the budget is split exactly at the boundary, which is
 *    what a real disk filling up mid-record looks like. The shared
 *    FaultPlan carries the budget across segment rotations.
 *
 * src/core is linted (statsched-raw-file-io) to route all file I/O
 * through this layer; the raw syscalls live here, in src/base, where
 * the EINTR/short-write discipline is enforced in one audited place.
 */

#ifndef STATSCHED_BASE_IO_HH
#define STATSCHED_BASE_IO_HH

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

namespace statsched
{
namespace base
{
namespace io
{

/** How an I/O operation ended. */
enum class IoStatus : std::uint8_t
{
    Ok = 0,  //!< completed fully
    NoSpace, //!< ENOSPC/EDQUOT: the medium is full
    Error,   //!< any other failure (EIO, EBADF, ...)
};

/** Structured outcome of one I/O operation. */
struct IoResult
{
    IoStatus status = IoStatus::Ok;
    /** errno of the failure; 0 on success or synthetic faults. */
    int error = 0;
    /** Bytes actually transferred before the failure (writes). */
    std::size_t bytesWritten = 0;
    /** Human-readable failure description; empty on success. */
    std::string detail;

    bool ok() const { return status == IoStatus::Ok; }

    /** @return a failure result classified from `err` (errno). */
    static IoResult
    failure(int err, const std::string &operation)
    {
        IoResult r;
        r.status = (err == ENOSPC || err == EDQUOT)
            ? IoStatus::NoSpace
            : IoStatus::Error;
        r.error = err;
        r.detail = operation + ": " +
            (err != 0 ? std::strerror(err) : "failed");
        return r;
    }
};

/**
 * Append-only byte sink with checked writes and durability points.
 */
class Sink
{
  public:
    virtual ~Sink() = default;

    /**
     * Writes all `size` bytes, looping over EINTR and short writes.
     * On failure, IoResult::bytesWritten reports how much of this
     * call reached the sink before the error — the tail of the
     * stream may therefore hold a torn record, which downstream
     * framing (CRCs) must detect.
     */
    virtual IoResult write(const void *data, std::size_t size) = 0;

    /** Flushes written bytes to the durable medium (fsync). */
    virtual IoResult sync() = 0;
};

/**
 * Sink over a plain file descriptor. Open through the factory
 * functions; the constructor is for an already-owned fd.
 */
class FileSink : public Sink
{
  public:
    /** Takes ownership of `fd`. */
    explicit FileSink(int fd) : fd_(fd) {}

    FileSink(const FileSink &) = delete;
    FileSink &operator=(const FileSink &) = delete;

    ~FileSink() override
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    /**
     * Opens `path` for appending; `truncate` first empties (or
     * creates) the file. @return nullptr with `result` set on
     * failure.
     */
    static std::unique_ptr<FileSink>
    open(const std::string &path, bool truncate, IoResult &result)
    {
        const int flags = O_WRONLY | O_CREAT | O_APPEND |
            (truncate ? O_TRUNC : 0);
        int fd = -1;
        do {
            fd = ::open(path.c_str(), flags, 0644);
        } while (fd < 0 && errno == EINTR);
        if (fd < 0) {
            result = IoResult::failure(errno, "open " + path);
            return nullptr;
        }
        result = IoResult();
        return std::make_unique<FileSink>(fd);
    }

    IoResult
    write(const void *data, std::size_t size) override
    {
        const std::uint8_t *p =
            static_cast<const std::uint8_t *>(data);
        std::size_t left = size;
        while (left > 0) {
            const ::ssize_t n = ::write(fd_, p, left);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                IoResult r = IoResult::failure(errno, "write");
                r.bytesWritten = size - left;
                return r;
            }
            p += n;
            left -= static_cast<std::size_t>(n);
        }
        IoResult r;
        r.bytesWritten = size;
        return r;
    }

    IoResult
    sync() override
    {
        int rc = 0;
        do {
            rc = ::fsync(fd_);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0)
            return IoResult::failure(errno, "fsync");
        return IoResult();
    }

  private:
    int fd_;
};

/** Sink capturing everything in memory, for tests. */
class MemorySink : public Sink
{
  public:
    IoResult
    write(const void *data, std::size_t size) override
    {
        const std::uint8_t *p =
            static_cast<const std::uint8_t *>(data);
        data_.insert(data_.end(), p, p + size);
        ++writes_;
        IoResult r;
        r.bytesWritten = size;
        return r;
    }

    IoResult
    sync() override
    {
        ++syncs_;
        return IoResult();
    }

    const std::vector<std::uint8_t> &data() const { return data_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t syncs() const { return syncs_; }

  private:
    std::vector<std::uint8_t> data_;
    std::uint64_t writes_ = 0;
    std::uint64_t syncs_ = 0;
};

/**
 * Deterministic failure budget shared by every FaultInjectingSink of
 * one scenario. Cumulative across sinks, so a journal that rotates
 * segments still hits the fault at the same global byte offset.
 */
struct FaultPlan
{
    /** Total bytes allowed across all wrapped sinks before writes
     *  start failing with NoSpace. */
    std::uint64_t failAfterBytes = ~std::uint64_t{0};
    /** Bytes accepted so far (all wrapped sinks combined). */
    std::uint64_t written = 0;
    /** Latched once the budget was exceeded; syncs fail too, like a
     *  real full disk. */
    bool triggered = false;
};

/**
 * Sink decorator failing deterministically at a byte offset: the
 * write crossing the budget transfers exactly the bytes that fit
 * (a torn record, as on a really-full disk), then reports NoSpace.
 */
class FaultInjectingSink : public Sink
{
  public:
    FaultInjectingSink(std::unique_ptr<Sink> inner,
                       std::shared_ptr<FaultPlan> plan)
        : inner_(std::move(inner)), plan_(std::move(plan))
    {
    }

    IoResult
    write(const void *data, std::size_t size) override
    {
        if (plan_->triggered)
            return IoResult::failure(ENOSPC, "write (injected)");
        if (plan_->written + size > plan_->failAfterBytes) {
            const std::size_t fits = static_cast<std::size_t>(
                plan_->failAfterBytes - plan_->written);
            if (fits > 0)
                inner_->write(data, fits);
            plan_->written += fits;
            plan_->triggered = true;
            IoResult r =
                IoResult::failure(ENOSPC, "write (injected)");
            r.bytesWritten = fits;
            return r;
        }
        const IoResult r = inner_->write(data, size);
        plan_->written += r.bytesWritten;
        return r;
    }

    IoResult
    sync() override
    {
        if (plan_->triggered)
            return IoResult::failure(ENOSPC, "fsync (injected)");
        return inner_->sync();
    }

  private:
    std::unique_ptr<Sink> inner_;
    std::shared_ptr<FaultPlan> plan_;
};

/**
 * Creates the sink for a (possibly new) file. `truncate` empties an
 * existing file first; append otherwise. Used by the journal for the
 * main file and each rotated segment, so a factory injected here
 * reaches every byte the journal ever writes.
 */
using SinkFactory = std::function<std::unique_ptr<Sink>(
    const std::string &path, bool truncate, IoResult &result)>;

/** @return the production factory (plain FileSinks). */
inline SinkFactory
fileSinkFactory()
{
    return [](const std::string &path, bool truncate,
              IoResult &result) -> std::unique_ptr<Sink> {
        return FileSink::open(path, truncate, result);
    };
}

/** @return a factory wrapping file sinks in a shared fault plan. */
inline SinkFactory
faultInjectingFileSinkFactory(std::shared_ptr<FaultPlan> plan)
{
    return [plan](const std::string &path, bool truncate,
                  IoResult &result) -> std::unique_ptr<Sink> {
        std::unique_ptr<FileSink> inner =
            FileSink::open(path, truncate, result);
        if (!inner)
            return nullptr;
        return std::make_unique<FaultInjectingSink>(std::move(inner),
                                                    plan);
    };
}

/**
 * Reads the whole file into `out` (replacing its contents), looping
 * over EINTR. @return failure with errno ENOENT when missing.
 */
inline IoResult
readFileBytes(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    int fd = -1;
    do {
        fd = ::open(path.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return IoResult::failure(errno, "open " + path);
    std::uint8_t chunk[1 << 16];
    while (true) {
        const ::ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const IoResult r =
                IoResult::failure(errno, "read " + path);
            ::close(fd);
            return r;
        }
        if (n == 0)
            break;
        out.insert(out.end(), chunk,
                   chunk + static_cast<std::size_t>(n));
    }
    ::close(fd);
    return IoResult();
}

/** @return true when `path` exists (any file type). */
inline bool
fileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

/** Truncates `path` to `bytes` in place. */
inline IoResult
truncateFile(const std::string &path, std::uint64_t bytes)
{
    int rc = 0;
    do {
        rc = ::truncate(path.c_str(),
                        static_cast<::off_t>(bytes));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0)
        return IoResult::failure(errno, "truncate " + path);
    return IoResult();
}

/** Removes `path`; missing files are not an error. */
inline IoResult
removeFile(const std::string &path)
{
    if (::unlink(path.c_str()) < 0 && errno != ENOENT)
        return IoResult::failure(errno, "unlink " + path);
    return IoResult();
}

/** Atomically replaces `to` with `from` (same filesystem). */
inline IoResult
renameFile(const std::string &from, const std::string &to)
{
    if (::rename(from.c_str(), to.c_str()) < 0)
        return IoResult::failure(errno,
                                 "rename " + from + " -> " + to);
    return IoResult();
}

} // namespace io
} // namespace base
} // namespace statsched

#endif // STATSCHED_BASE_IO_HH
