/**
 * @file
 * The sanctioned child-process wrapper.
 *
 * Subprocess owns the raw POSIX process plumbing — fork/execvp, the
 * stdin/stdout pipe pair, non-blocking polled reads, SIGKILL and
 * waitpid — behind an interface the rest of the tree can use without
 * touching those calls directly. The statsched-no-raw-process lint
 * rule enforces the boundary: this header is the only place outside
 * NOLINT suppressions where the raw calls may appear, so process
 * lifecycle bugs (leaked fds, unreaped zombies, missed EINTR) have
 * exactly one home.
 *
 * EINTR discipline (the reason src/base/shutdown.hh installs its
 * handlers without SA_RESTART): read() returns ReadStatus::Interrupted
 * when a signal lands mid-wait instead of silently retrying, so a
 * caller blocked on a silent worker observes Ctrl-C deterministically
 * and can re-check base::shutdownRequested() before waiting again.
 * writeAll() retries EINTR internally — a partial frame write is never
 * useful to abandon — and reports EPIPE as failure instead of letting
 * SIGPIPE kill the process.
 *
 * The wrapper is header-only because src/base is a header-only
 * library; everything here is thin glue over the syscalls.
 */

#ifndef STATSCHED_BASE_SUBPROCESS_HH
#define STATSCHED_BASE_SUBPROCESS_HH

#include <cerrno>
#include <csignal>
#include <cstddef>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace statsched
{
namespace base
{

/**
 * One spawned child process with piped stdin/stdout (stderr is
 * inherited, so worker diagnostics reach the operator's terminal).
 * Movable, not copyable; the destructor SIGKILLs and reaps anything
 * still running so a coordinator can never leak workers.
 */
class Subprocess
{
  public:
    /** How a read() attempt ended. */
    enum class ReadStatus
    {
        Data,        //!< bytes were read (see ReadResult::bytes)
        Eof,         //!< child closed its stdout (usually: it died)
        Timeout,     //!< no bytes within the allotted wait
        Interrupted, //!< a signal landed (EINTR); caller re-checks
                     //!< shutdown state and decides whether to retry
        Error,       //!< unrecoverable pipe error
    };

    struct ReadResult
    {
        ReadStatus status = ReadStatus::Error;
        std::size_t bytes = 0;
    };

    Subprocess() = default;
    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;

    Subprocess(Subprocess &&other) noexcept { moveFrom(other); }

    Subprocess &
    operator=(Subprocess &&other) noexcept
    {
        if (this != &other) {
            kill();
            wait();
            moveFrom(other);
        }
        return *this;
    }

    ~Subprocess()
    {
        kill();
        wait();
    }

    /**
     * Forks and execs `argv` (argv[0] resolved through PATH) with
     * this object's pipes as the child's stdin/stdout.
     *
     * @param argv  Program and arguments; must be non-empty.
     * @param error Receives a description on failure.
     * @return true when the child is running.
     */
    bool
    spawn(const std::vector<std::string> &argv, std::string &error)
    {
        if (running()) {
            error = "subprocess already running";
            return false;
        }
        if (argv.empty()) {
            error = "empty argv";
            return false;
        }
        // Writing into a pipe whose reader died must surface as an
        // EPIPE error from write(), not a process-killing SIGPIPE.
        std::signal(SIGPIPE, SIG_IGN);

        int toChild[2] = {-1, -1};
        int fromChild[2] = {-1, -1};
        if (::pipe(toChild) != 0) {
            error = "pipe() failed";
            return false;
        }
        if (::pipe(fromChild) != 0) {
            ::close(toChild[0]);
            ::close(toChild[1]);
            error = "pipe() failed";
            return false;
        }
        // The parent ends must not leak into other children: a
        // sibling worker holding a copy of this worker's stdin write
        // end would keep its stdin open forever after we close ours.
        ::fcntl(toChild[1], F_SETFD, FD_CLOEXEC);
        ::fcntl(fromChild[0], F_SETFD, FD_CLOEXEC);

        std::vector<char *> cargv;
        cargv.reserve(argv.size() + 1);
        for (const std::string &arg : argv)
            cargv.push_back(const_cast<char *>(arg.c_str()));
        cargv.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(toChild[0]);
            ::close(toChild[1]);
            ::close(fromChild[0]);
            ::close(fromChild[1]);
            error = "fork() failed";
            return false;
        }
        if (pid == 0) {
            // Child: wire the pipe ends to stdin/stdout and exec.
            ::dup2(toChild[0], STDIN_FILENO);
            ::dup2(fromChild[1], STDOUT_FILENO);
            ::close(toChild[0]);
            ::close(toChild[1]);
            ::close(fromChild[0]);
            ::close(fromChild[1]);
            ::execvp(cargv[0], cargv.data());
            _exit(127); // exec failed; 127 is the shell convention
        }
        ::close(toChild[0]);
        ::close(fromChild[1]);
        pid_ = pid;
        stdinFd_ = toChild[1];
        stdoutFd_ = fromChild[0];
        exitStatus_ = -1;
        reaped_ = false;
        return true;
    }

    /** @return true while the child exists and was not reaped. */
    bool running() const { return pid_ > 0 && !reaped_; }

    /** @return the child pid, or -1 when none. */
    pid_t pid() const { return pid_; }

    /**
     * Writes all `size` bytes to the child's stdin, retrying EINTR
     * and short writes. @return false on any pipe error (EPIPE when
     * the child died).
     */
    bool
    writeAll(const void *data, std::size_t size)
    {
        if (stdinFd_ < 0)
            return false;
        const char *p = static_cast<const char *>(data);
        while (size > 0) {
            const ssize_t n = ::write(stdinFd_, p, size);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            p += n;
            size -= static_cast<std::size_t>(n);
        }
        return true;
    }

    /**
     * Bounded variant of writeAll(): writes all `size` bytes, but
     * gives up when the pipe accepts no byte for `stallTimeoutMs`
     * milliseconds. A SIGSTOPped or wedged child stops draining its
     * stdin; once the pipe buffer fills, the unbounded writeAll()
     * blocks the parent forever — the one hole a receive deadline
     * cannot cover. The budget is per-progress (it resets whenever
     * a byte lands), so a slow-but-live reader is never failed.
     *
     * The fd is switched to O_NONBLOCK for the duration and restored
     * after: poll(POLLOUT) on a pipe only promises room for SOME
     * bytes, so a blocking write() past that room would re-wedge.
     *
     * @return false on timeout or any pipe error.
     */
    bool
    writeAll(const void *data, std::size_t size, int stallTimeoutMs)
    {
        if (stdinFd_ < 0)
            return false;
        const int flags = ::fcntl(stdinFd_, F_GETFL);
        if (flags < 0)
            return false;
        ::fcntl(stdinFd_, F_SETFL, flags | O_NONBLOCK);
        const char *p = static_cast<const char *>(data);
        bool ok = true;
        while (size > 0) {
            struct pollfd pfd = {};
            pfd.fd = stdinFd_;
            pfd.events = POLLOUT;
            const int ready = ::poll(&pfd, 1, stallTimeoutMs);
            if (ready < 0 && errno == EINTR)
                continue;
            if (ready <= 0) {
                ok = false; // stalled out (or poll error)
                break;
            }
            const ssize_t n = ::write(stdinFd_, p, size);
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)
                    continue;
                ok = false;
                break;
            }
            p += n;
            size -= static_cast<std::size_t>(n);
        }
        ::fcntl(stdinFd_, F_SETFL, flags);
        return ok;
    }

    /**
     * Reads up to `capacity` bytes from the child's stdout, waiting
     * at most `timeoutMs` milliseconds for the first byte.
     *
     * EINTR (from either poll or read) reports Interrupted without
     * retrying — see the file comment.
     */
    ReadResult
    read(void *buffer, std::size_t capacity, int timeoutMs)
    {
        if (stdoutFd_ < 0)
            return {ReadStatus::Error, 0};
        struct pollfd pfd = {};
        pfd.fd = stdoutFd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, timeoutMs);
        if (ready < 0) {
            return {errno == EINTR ? ReadStatus::Interrupted
                                   : ReadStatus::Error,
                    0};
        }
        if (ready == 0)
            return {ReadStatus::Timeout, 0};
        const ssize_t n = ::read(stdoutFd_, buffer, capacity);
        if (n < 0) {
            return {errno == EINTR ? ReadStatus::Interrupted
                                   : ReadStatus::Error,
                    0};
        }
        if (n == 0)
            return {ReadStatus::Eof, 0};
        return {ReadStatus::Data, static_cast<std::size_t>(n)};
    }

    /** Closes the child's stdin (EOF to a well-behaved worker). */
    void
    closeStdin()
    {
        if (stdinFd_ >= 0) {
            ::close(stdinFd_);
            stdinFd_ = -1;
        }
    }

    /** SIGKILLs the child (no-op when not running). */
    void
    kill()
    {
        if (running())
            ::kill(pid_, SIGKILL);
    }

    /** Sends `sig` to the child without reaping it — the chaos
     *  harness uses this for SIGTERM/SIGSTOP/SIGCONT injection.
     *  @return false when there is no live child or kill failed. */
    bool
    signalChild(int sig)
    {
        if (!running())
            return false;
        return ::kill(pid_, sig) == 0;
    }

    /**
     * Reaps the child (blocking, EINTR-retried — the child is either
     * dead or dying, so the wait is bounded).
     *
     * @return the exit code; 128 + N for death by signal N; -1 when
     *         nothing was spawned. Idempotent after the first reap.
     */
    int
    wait()
    {
        if (pid_ <= 0)
            return -1;
        if (!reaped_) {
            int status = 0;
            pid_t r;
            do {
                r = ::waitpid(pid_, &status, 0);
            } while (r < 0 && errno == EINTR);
            if (r == pid_) {
                exitStatus_ = WIFEXITED(status)
                    ? WEXITSTATUS(status)
                    : WIFSIGNALED(status) ? 128 + WTERMSIG(status)
                                          : -1;
            }
            reaped_ = true;
            closeStdin();
            if (stdoutFd_ >= 0) {
                ::close(stdoutFd_);
                stdoutFd_ = -1;
            }
        }
        return exitStatus_;
    }

  private:
    void
    moveFrom(Subprocess &other)
    {
        pid_ = other.pid_;
        stdinFd_ = other.stdinFd_;
        stdoutFd_ = other.stdoutFd_;
        exitStatus_ = other.exitStatus_;
        reaped_ = other.reaped_;
        other.pid_ = -1;
        other.stdinFd_ = -1;
        other.stdoutFd_ = -1;
        other.reaped_ = true;
    }

    pid_t pid_ = -1;
    int stdinFd_ = -1;
    int stdoutFd_ = -1;
    int exitStatus_ = -1;
    bool reaped_ = true;
};

} // namespace base
} // namespace statsched

#endif // STATSCHED_BASE_SUBPROCESS_HH
