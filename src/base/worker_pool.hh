/**
 * @file
 * Persistent worker pool for embarrassingly parallel index ranges.
 *
 * Extracted from core::ParallelEngine so other fan-out sites (the
 * bootstrap resampler, benchmarks) can share the same machinery: a
 * fixed set of std::thread workers pulling fixed-size chunks of an
 * index range from an atomic claim counter. The calling thread
 * participates in every run, so a pool constructed with `threads == 1`
 * has no workers and degenerates to a serial loop — callers never need
 * a separate serial code path.
 *
 * Determinism: run() invokes task(begin, end) over disjoint chunks
 * covering [0, n) exactly once each. Which thread runs a chunk is
 * scheduling-dependent, but as long as the task writes only to
 * per-index slots the overall result is independent of thread count
 * and interleaving.
 */

#ifndef STATSCHED_BASE_WORKER_POOL_HH
#define STATSCHED_BASE_WORKER_POOL_HH

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "base/sync.hh"

namespace statsched
{
namespace base
{

/**
 * Pool of persistent workers executing chunked index ranges.
 */
class WorkerPool
{
  public:
    /** Task over a half-open index chunk [begin, end). */
    using ChunkTask = std::function<void(std::size_t, std::size_t)>;

    /** Maps 0 to the hardware concurrency (at least 1). */
    static unsigned
    resolveThreads(unsigned requested)
    {
        if (requested != 0)
            return requested;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }

    /**
     * Chunks small enough to balance uneven item costs, large enough
     * to amortize the atomic claim.
     */
    static std::size_t
    defaultChunk(std::size_t n, unsigned threads)
    {
        const std::size_t target =
            n / (static_cast<std::size_t>(threads) * 4);
        return std::clamp<std::size_t>(target, 1, 64);
    }

    /**
     * @param threads Total threads participating in each run including
     *                the caller; 0 selects the hardware concurrency.
     */
    explicit WorkerPool(unsigned threads = 0)
        : threads_(resolveThreads(threads))
    {
        // The calling thread participates in every run, so the pool
        // holds threads_ - 1 workers.
        for (unsigned i = 1; i < threads_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~WorkerPool()
    {
        {
            MutexLock lock(mutex_);
            stopping_ = true;
        }
        wake_.notifyAll();
        for (auto &worker : workers_)
            worker.join();
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** @return threads participating per run (caller + workers). */
    unsigned threads() const { return threads_; }

    /**
     * Runs task over every chunk of [0, n) and returns once all n
     * indices are done. The caller participates; with no workers this
     * is a plain serial loop.
     *
     * @param n     Number of indices.
     * @param chunk Chunk size (>= 1); use defaultChunk() if unsure.
     * @param task  Chunk body; must only touch per-index state.
     */
    void
    run(std::size_t n, std::size_t chunk, const ChunkTask &task)
    {
        if (n == 0)
            return;
        if (workers_.empty() || n == 1) {
            task(0, n);
            return;
        }

        auto job = std::make_shared<Job>();
        job->n = n;
        job->chunk = std::max<std::size_t>(chunk, 1);
        job->task = &task;

        {
            MutexLock lock(mutex_);
            job_ = job;
        }
        wake_.notifyAll();

        runChunks(*job);

        MutexLock lock(mutex_);
        while (job->done.load(std::memory_order_acquire) != job->n)
            finished_.wait(mutex_);
        // Clear the published job so destruction cannot race a worker
        // that never woke for it.
        job_.reset();
    }

  private:
    /**
     * One run in flight. Workers take a shared_ptr snapshot of the
     * current job under the pool mutex, so a late worker from a
     * previous run can never touch the fields of the next one.
     */
    struct Job
    {
        std::size_t n = 0;
        std::size_t chunk = 1;
        const ChunkTask *task = nullptr;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
    };

    /** Claims and evaluates chunks until the job is drained. */
    void
    runChunks(Job &job)
    {
        for (;;) {
            const std::size_t begin =
                job.next.fetch_add(job.chunk,
                                   std::memory_order_relaxed);
            if (begin >= job.n)
                return;
            const std::size_t end = std::min(begin + job.chunk, job.n);
            (*job.task)(begin, end);
            const std::size_t finished =
                job.done.fetch_add(end - begin,
                                   std::memory_order_acq_rel) +
                (end - begin);
            if (finished == job.n) {
                // Pair the notification with the mutex so the waiter
                // cannot miss it between predicate check and sleep.
                { MutexLock lock(mutex_); }
                finished_.notifyAll();
            }
        }
    }

    void
    workerLoop()
    {
        std::shared_ptr<Job> seen;
        for (;;) {
            std::shared_ptr<Job> job;
            {
                MutexLock lock(mutex_);
                while (!stopping_ && (!job_ || job_ == seen))
                    wake_.wait(mutex_);
                if (stopping_)
                    return;
                job = job_;
                seen = job;
            }
            runChunks(*job);
        }
    }

    const unsigned threads_;

    Mutex mutex_{"base::WorkerPool::mutex_"};
    CondVar wake_;
    CondVar finished_;
    /** Current job; workers snapshot it under the lock. */
    std::shared_ptr<Job> job_ SCHED_GUARDED_BY(mutex_);
    bool stopping_ SCHED_GUARDED_BY(mutex_) = false;
    std::vector<std::thread> workers_; // NOLINT(statsched-unguarded-member): populated by the constructor before any worker can observe it, joined by the destructor after every worker stopped; never mutated while shared
};

} // namespace base
} // namespace statsched

#endif // STATSCHED_BASE_WORKER_POOL_HH
