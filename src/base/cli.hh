/**
 * @file
 * Small shared command-line option parser.
 *
 * Replaces the ad-hoc `--key value` pair scanner the CLI grew up
 * with, which silently dropped a trailing odd token and accepted any
 * unknown option. OptionParser requires options to be declared up
 * front, supports boolean flags and both `--key value` and
 * `--key=value` spellings, and reports unknown options, missing
 * values and malformed numbers as errors instead of guessing.
 *
 * Header-only; no dependencies beyond the standard library.
 */

#ifndef STATSCHED_BASE_CLI_HH
#define STATSCHED_BASE_CLI_HH

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace statsched
{
namespace base
{

/**
 * Declared-options command-line parser.
 *
 * Usage:
 *     OptionParser parser;
 *     parser.addOption("samples", "2000", "sample size");
 *     parser.addFlag("no-memoize", "disable the measurement cache");
 *     if (!parser.parse(argc, argv, 2)) {
 *         fprintf(stderr, "%s\n", parser.error().c_str());
 *         return 2;
 *     }
 *     long n = parser.getInt("samples");
 */
class OptionParser
{
  public:
    /**
     * Declares a value-taking option.
     *
     * @param name     Option name without the leading "--".
     * @param fallback Value reported when the option is absent.
     * @param help     One-line description for usage text.
     */
    OptionParser &
    addOption(const std::string &name, const std::string &fallback,
              const std::string &help = "")
    {
        specs_[name] = Spec{false, fallback, help};
        return *this;
    }

    /**
     * Declares a boolean flag: present means true, no value is
     * consumed (`--flag` or `--flag=1` / `--flag=0`).
     */
    OptionParser &
    addFlag(const std::string &name, const std::string &help = "")
    {
        specs_[name] = Spec{true, "0", help};
        return *this;
    }

    /**
     * Parses argv[first..argc). On failure returns false and leaves
     * the reason in error().
     */
    bool
    parse(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string token = argv[i];
            if (token.rfind("--", 0) != 0) {
                error_ = "expected --option, got '" + token + "'";
                return false;
            }
            token.erase(0, 2);

            std::string value;
            bool has_inline = false;
            const auto eq = token.find('=');
            if (eq != std::string::npos) {
                value = token.substr(eq + 1);
                token.resize(eq);
                has_inline = true;
            }

            const auto spec = specs_.find(token);
            if (spec == specs_.end()) {
                error_ = "unknown option '--" + token + "'";
                return false;
            }
            if (spec->second.isFlag) {
                values_[token] = has_inline ? value : "1";
                continue;
            }
            if (!has_inline) {
                if (i + 1 >= argc) {
                    error_ = "missing value for '--" + token + "'";
                    return false;
                }
                value = argv[++i];
            }
            if (value.empty()) {
                error_ = "empty value for '--" + token + "'";
                return false;
            }
            values_[token] = value;
        }
        return true;
    }

    /** @return the failure reason after parse() returned false. */
    const std::string &error() const { return error_; }

    /** @return true if the option appeared on the command line. */
    bool
    given(const std::string &name) const
    {
        return values_.count(name) != 0;
    }

    /** @return the option's value, or its declared fallback. */
    std::string
    get(const std::string &name) const
    {
        const auto it = values_.find(name);
        if (it != values_.end())
            return it->second;
        const auto spec = specs_.find(name);
        return spec == specs_.end() ? "" : spec->second.fallback;
    }

    /** @return a declared flag's state. */
    bool
    flag(const std::string &name) const
    {
        const std::string v = get(name);
        return !v.empty() && v != "0" && v != "false";
    }

    /** @return the option parsed as a long (fallback on absence). */
    long
    getInt(const std::string &name) const
    {
        return std::strtol(get(name).c_str(), nullptr, 10);
    }

    /** @return the option parsed as a double (fallback on
     *  absence). */
    double
    getDouble(const std::string &name) const
    {
        return std::strtod(get(name).c_str(), nullptr);
    }

    /** @return "  --name VALUE  help" lines for usage text. */
    std::string
    usage() const
    {
        std::string text;
        for (const auto &[name, spec] : specs_) {
            text += "  --" + name;
            if (!spec.isFlag)
                text += " <" + spec.fallback + ">";
            if (!spec.help.empty())
                text += "  " + spec.help;
            text += "\n";
        }
        return text;
    }

  private:
    struct Spec
    {
        bool isFlag = false;
        std::string fallback;
        std::string help;
    };

    std::map<std::string, Spec> specs_;
    std::map<std::string, std::string> values_;
    std::string error_;
};

} // namespace base
} // namespace statsched

#endif // STATSCHED_BASE_CLI_HH
