/**
 * @file
 * Packet analyzer (Section 4.3).
 *
 * "The packet analyzer captures each packet that passes through the
 * NIU, decodes the packet, and analyzes its content according to the
 * appropriate RFC specifications. ... In the experiments we used the
 * packet analyzer to log MAC source and destination address, time to
 * live field, Layer 3 protocol, source and destination IP address,
 * and source and destination port number of all packets."
 *
 * PacketAnalyzer decodes L2/L3/L4, evaluates user-defined filters,
 * and appends fixed-size log records to a bounded ring, exactly the
 * field set the paper logs.
 */

#ifndef STATSCHED_NET_ANALYZER_HH
#define STATSCHED_NET_ANALYZER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hh"

namespace statsched
{
namespace net
{

/**
 * The per-packet log record (the paper's logged field set).
 */
struct LogRecord
{
    MacAddress macSource{};
    MacAddress macDestination{};
    std::uint8_t timeToLive = 0;
    std::uint8_t l3Protocol = 0;
    Ipv4Address ipSource = 0;
    Ipv4Address ipDestination = 0;
    std::uint16_t sourcePort = 0;
    std::uint16_t destinationPort = 0;
};

/**
 * Filter criteria; unset fields match everything.
 */
struct PacketFilter
{
    std::optional<std::uint8_t> protocol;
    std::optional<std::uint16_t> destinationPort;
    std::optional<std::uint16_t> sourcePort;
    /** Prefix match on the destination address. */
    std::optional<std::pair<Ipv4Address, int>> destinationPrefix;

    /** @return true iff the packet satisfies all set criteria. */
    bool matches(const Packet &packet) const;
};

/**
 * Counters accumulated by the analyzer.
 */
struct AnalyzerStats
{
    std::uint64_t captured = 0;    //!< packets seen
    std::uint64_t decoded = 0;     //!< valid IPv4+L4 packets
    std::uint64_t malformed = 0;   //!< undecodable packets
    std::uint64_t filtered = 0;    //!< matched the filter set
    std::uint64_t logged = 0;      //!< records written
    std::uint64_t tcp = 0;
    std::uint64_t udp = 0;
    std::uint64_t bytes = 0;
};

/**
 * The analyzer kernel.
 */
class PacketAnalyzer
{
  public:
    /**
     * @param log_capacity Ring capacity in records (oldest records
     *                     are overwritten once full).
     */
    explicit PacketAnalyzer(std::size_t log_capacity = 65536);

    /** Adds a filter; a packet is "filtered" if ANY filter matches
     *  (or always, when no filters are installed). */
    void addFilter(PacketFilter filter);

    /**
     * Processes one packet: decode, filter, log.
     *
     * @return the log record if the packet was logged.
     */
    std::optional<LogRecord> process(const Packet &packet);

    /** @return accumulated statistics. */
    const AnalyzerStats &stats() const { return stats_; }

    /** @return the log ring contents, oldest first. */
    std::vector<LogRecord> logContents() const;

  private:
    std::vector<PacketFilter> filters_;
    std::vector<LogRecord> ring_;
    std::size_t ringNext_ = 0;
    bool ringWrapped_ = false;
    AnalyzerStats stats_;
};

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_ANALYZER_HH
