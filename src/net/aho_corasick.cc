/**
 * @file
 * AhoCorasick implementation.
 *
 * Construction follows the classic three phases:
 *  1. build the keyword trie (goto function);
 *  2. BFS from the root to compute failure links;
 *  3. convert to a dense delta function (goto + failure collapsed),
 *     so the matching loop is a single table read per input byte.
 * Output sets are represented as chains through the failure links to
 * avoid duplicating pattern lists at every state.
 */

#include "net/aho_corasick.hh"

#include <queue>

#include "base/check.hh"

namespace statsched
{
namespace net
{

AhoCorasick::AhoCorasick(const std::vector<std::string> &patterns)
    : patterns_(patterns)
{
    SCHED_REQUIRE(!patterns_.empty(), "empty pattern set");
    for (const auto &p : patterns_)
        SCHED_REQUIRE(!p.empty(), "empty pattern");

    // Phase 1: trie. State 0 is the root.
    std::vector<std::vector<std::uint32_t>> trie(1,
        std::vector<std::uint32_t>(256, npos));
    ownOutputs_.emplace_back();

    for (std::uint32_t pi = 0; pi < patterns_.size(); ++pi) {
        std::uint32_t state = 0;
        for (unsigned char c : patterns_[pi]) {
            if (trie[state][c] == npos) {
                trie[state][c] =
                    static_cast<std::uint32_t>(trie.size());
                trie.emplace_back(
                    std::vector<std::uint32_t>(256, npos));
                ownOutputs_.emplace_back();
            }
            state = trie[state][c];
        }
        ownOutputs_[state].push_back(pi);
    }

    const std::size_t states = trie.size();
    std::vector<std::uint32_t> fail(states, 0);
    outputLink_.assign(states, 0);
    outputHead_.assign(states, npos);

    for (std::size_t s = 0; s < states; ++s) {
        if (!ownOutputs_[s].empty())
            outputHead_[s] = ownOutputs_[s].front();
    }

    // Phase 2: BFS failure links; root's missing edges loop to root.
    std::queue<std::uint32_t> bfs;
    for (int c = 0; c < 256; ++c) {
        const std::uint32_t next = trie[0][c];
        if (next == npos) {
            trie[0][c] = 0;
        } else {
            fail[next] = 0;
            bfs.push(next);
        }
    }
    while (!bfs.empty()) {
        const std::uint32_t s = bfs.front();
        bfs.pop();

        // The output link points at the nearest suffix state that
        // emits something.
        const std::uint32_t f = fail[s];
        outputLink_[s] = (outputHead_[f] != npos) ? f : outputLink_[f];

        for (int c = 0; c < 256; ++c) {
            const std::uint32_t next = trie[s][c];
            if (next == npos) {
                // Phase 3 (merged): collapse failure into goto.
                trie[s][c] = trie[f][c];
            } else {
                fail[next] = trie[f][c];
                bfs.push(next);
            }
        }
    }

    // Flatten into the dense table.
    transitions_.resize(states * 256);
    for (std::size_t s = 0; s < states; ++s) {
        for (int c = 0; c < 256; ++c)
            transitions_[s * 256 + c] = trie[s][c];
    }
}

std::size_t
AhoCorasick::automatonBytes() const
{
    return transitions_.size() * sizeof(std::uint32_t) +
        outputHead_.size() * sizeof(std::uint32_t) +
        outputLink_.size() * sizeof(std::uint32_t);
}

std::vector<Match>
AhoCorasick::findAll(const std::uint8_t *data, std::size_t len) const
{
    std::vector<Match> matches;
    std::uint32_t state = 0;
    for (std::size_t i = 0; i < len; ++i) {
        state = transitions_[state * 256 + data[i]];
        // Start at this state if it emits, else at its output link;
        // state 0 (the root) never emits and doubles as "none".
        std::uint32_t s = (outputHead_[state] != npos)
            ? state : outputLink_[state];
        while (s != 0) {
            for (std::uint32_t pi : ownOutputs_[s])
                matches.push_back({pi, i + 1});
            s = outputLink_[s];
        }
    }
    return matches;
}

std::vector<Match>
AhoCorasick::findAll(const std::string &text) const
{
    return findAll(reinterpret_cast<const std::uint8_t *>(text.data()),
                   text.size());
}

std::size_t
AhoCorasick::countMatches(const std::uint8_t *data, std::size_t len)
    const
{
    std::size_t count = 0;
    std::uint32_t state = 0;
    for (std::size_t i = 0; i < len; ++i) {
        state = transitions_[state * 256 + data[i]];
        std::uint32_t s = (outputHead_[state] != npos)
            ? state : outputLink_[state];
        while (s != 0) {
            count += ownOutputs_[s].size();
            s = outputLink_[s];
        }
    }
    return count;
}

bool
AhoCorasick::containsAny(const std::uint8_t *data, std::size_t len)
    const
{
    std::uint32_t state = 0;
    for (std::size_t i = 0; i < len; ++i) {
        state = transitions_[state * 256 + data[i]];
        if (outputHead_[state] != npos || outputLink_[state] != 0)
            return true;
    }
    return false;
}

} // namespace net
} // namespace statsched
