/**
 * @file
 * FlowTable implementation.
 */

#include "net/flow_table.hh"

#include "base/check.hh"

namespace statsched
{
namespace net
{

std::optional<FlowKey>
FlowKey::fromPacket(const Packet &packet)
{
    if (!packet.hasL4())
        return std::nullopt;
    const Ipv4Header ip = packet.ipv4();
    FlowKey key;
    key.sourceIp = ip.source;
    key.destinationIp = ip.destination;
    key.protocol = ip.protocol;
    if (ip.protocol == static_cast<std::uint8_t>(IpProtocol::Tcp)) {
        const TcpHeader t = packet.tcp();
        key.sourcePort = t.sourcePort;
        key.destinationPort = t.destinationPort;
    } else {
        const UdpHeader u = packet.udp();
        key.sourcePort = u.sourcePort;
        key.destinationPort = u.destinationPort;
    }
    return key;
}

std::uint32_t
nprobeFlowHash(const FlowKey &key)
{
    // nProbe (Eckhoff et al. 2009 analysis): the flow hash is the
    // sum of the flow-key fields folded to the table width. Simple,
    // fast, and exactly what the paper's benchmark uses.
    std::uint32_t h = key.sourceIp + key.destinationIp +
        key.sourcePort + key.destinationPort + key.protocol;
    h = (h >> 16) ^ (h & 0xffff) ^ (h >> 8);
    return h;
}

FlowTable::FlowTable(std::size_t buckets, std::size_t stripes)
    : slots_(buckets), stripes_(stripes)
{
    SCHED_REQUIRE(buckets >= 1, "empty flow table");
    SCHED_REQUIRE(stripes >= 1 && (stripes & (stripes - 1)) == 0,
                  "stripes must be a power of two");
}

FlowTable::Spinlock &
FlowTable::stripeFor(std::size_t bucket) const
{
    return stripes_[bucket & (stripes_.size() - 1)];
}

std::optional<FlowState>
FlowTable::update(const Packet &packet, std::uint64_t sequence)
{
    const auto key = FlowKey::fromPacket(packet);
    if (!key) {
        ignored_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    const std::size_t bucket = nprobeFlowHash(*key) % slots_.size();
    Spinlock &lock = stripeFor(bucket);

    std::uint8_t tcp_flags = 0;
    if (key->protocol == static_cast<std::uint8_t>(IpProtocol::Tcp))
        tcp_flags = packet.tcp().flags;

    lock.lock();
    Slot &slot = slots_[bucket];
    if (!slot.occupied || !(slot.record.key == *key)) {
        // Create (or recycle on collision — the paper's fixed-size
        // table overwrites, as nProbe does under pressure).
        if (slot.occupied)
            evictions_.fetch_add(1, std::memory_order_relaxed);
        newFlows_.fetch_add(1, std::memory_order_relaxed);
        slot.occupied = true;
        slot.record = FlowRecord{};
        slot.record.key = *key;
        slot.record.firstSeen = sequence;
        slot.record.state = FlowState::New;
    }

    FlowRecord &rec = slot.record;
    rec.packets += 1;
    rec.bytes += packet.size();
    rec.lastSeen = sequence;
    rec.tcpFlagsSeen |= tcp_flags;

    // State transitions.
    if (key->protocol == static_cast<std::uint8_t>(IpProtocol::Tcp)) {
        constexpr std::uint8_t fin = 0x01;
        constexpr std::uint8_t syn = 0x02;
        constexpr std::uint8_t rst = 0x04;
        constexpr std::uint8_t ack = 0x10;
        if (tcp_flags & rst) {
            rec.state = FlowState::Closed;
        } else if (tcp_flags & fin) {
            rec.state = (rec.state == FlowState::Closing)
                ? FlowState::Closed : FlowState::Closing;
        } else if ((rec.tcpFlagsSeen & (syn | ack)) == (syn | ack) &&
                   rec.state == FlowState::New) {
            rec.state = FlowState::Established;
        }
    } else if (rec.packets > 1 && rec.state == FlowState::New) {
        rec.state = FlowState::Established;
    }

    const FlowState out = rec.state;
    lock.unlock();

    updates_.fetch_add(1, std::memory_order_relaxed);
    return out;
}

std::optional<FlowRecord>
FlowTable::find(const FlowKey &key) const
{
    const std::size_t bucket = nprobeFlowHash(key) % slots_.size();
    Spinlock &lock = stripeFor(bucket);
    lock.lock();
    std::optional<FlowRecord> out;
    const Slot &slot = slots_[bucket];
    if (slot.occupied && slot.record.key == key)
        out = slot.record;
    lock.unlock();
    return out;
}

std::size_t
FlowTable::activeFlows() const
{
    std::size_t count = 0;
    for (const auto &slot : slots_) {
        if (slot.occupied)
            ++count;
    }
    return count;
}

FlowTableStats
FlowTable::stats() const
{
    FlowTableStats s;
    s.updates = updates_.load(std::memory_order_relaxed);
    s.newFlows = newFlows_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.ignored = ignored_.load(std::memory_order_relaxed);
    return s;
}

std::size_t
FlowTable::tableBytes() const
{
    return slots_.size() * sizeof(Slot);
}

} // namespace net
} // namespace statsched
