/**
 * @file
 * TrafficGenerator implementation.
 */

#include "net/generator.hh"

#include <algorithm>
#include <cstring>

#include "base/check.hh"
#include "net/keywords.hh"

namespace statsched
{
namespace net
{

TrafficGenerator::TrafficGenerator(const TrafficConfig &config)
    : config_(config), rng_(config.seed)
{
    SCHED_REQUIRE(config_.sourceCount >= 1 &&
                  config_.destinationCount >= 1,
                  "empty address range");
    SCHED_REQUIRE(config_.payloadMin <= config_.payloadMax,
                  "inverted payload range");
    SCHED_REQUIRE(config_.tcpFraction >= 0.0 &&
                  config_.tcpFraction <= 1.0,
                  "TCP fraction out of [0,1]");
}

Packet
TrafficGenerator::next()
{
    const bool tcp = rng_.uniform() < config_.tcpFraction;
    const std::size_t l4_bytes = tcp ? tcpHeaderBytes : udpHeaderBytes;
    const std::uint32_t payload = config_.payloadMin +
        static_cast<std::uint32_t>(rng_.uniformInt(
            config_.payloadMax - config_.payloadMin + 1));
    const std::size_t frame =
        ethernetHeaderBytes + ipv4HeaderBytes + l4_bytes + payload;

    Packet pkt{std::vector<std::uint8_t>(frame, 0)};

    EthernetHeader eth;
    eth.destination = {0x00, 0x14, 0x4f, 0x01, 0x02, 0x03};
    eth.source = {0x00, 0x14, 0x4f, 0xaa, 0xbb, 0xcc};
    eth.etherType = 0x0800;
    pkt.setEthernet(eth);

    Ipv4Header ip;
    ip.totalLength = static_cast<std::uint16_t>(
        ipv4HeaderBytes + l4_bytes + payload);
    ip.identification = ipId_++;
    ip.timeToLive = 32 +
        static_cast<std::uint8_t>(rng_.uniformInt(96));
    ip.protocol = static_cast<std::uint8_t>(
        tcp ? IpProtocol::Tcp : IpProtocol::Udp);
    ip.source = config_.sourceBase + static_cast<Ipv4Address>(
        rng_.uniformInt(config_.sourceCount));
    ip.destination = config_.destinationBase + static_cast<Ipv4Address>(
        rng_.uniformInt(config_.destinationCount));
    pkt.setIpv4(ip);

    const std::uint16_t sport = config_.portBase +
        static_cast<std::uint16_t>(rng_.uniformInt(config_.portCount));
    const std::uint16_t dport = config_.portBase +
        static_cast<std::uint16_t>(rng_.uniformInt(config_.portCount));
    if (tcp) {
        TcpHeader h;
        h.sourcePort = sport;
        h.destinationPort = dport;
        h.sequence = static_cast<std::uint32_t>(rng_.next());
        h.acknowledgment = static_cast<std::uint32_t>(rng_.next());
        h.flags = 0x18;   // PSH|ACK
        h.window = 65535;
        pkt.setTcp(h);
    } else {
        UdpHeader h;
        h.sourcePort = sport;
        h.destinationPort = dport;
        h.length = static_cast<std::uint16_t>(udpHeaderBytes + payload);
        pkt.setUdp(h);
    }

    // Payload: pseudo-random printable bytes, with an embedded
    // keyword for a configurable fraction of packets.
    std::uint8_t *body = pkt.payload();
    for (std::uint32_t i = 0; i < payload; ++i)
        body[i] = static_cast<std::uint8_t>(0x20 + rng_.uniformInt(95));
    if (payload >= 48 && rng_.uniform() < config_.keywordFraction) {
        const auto &keys = dosKeywordSet();
        const std::string &kw =
            keys[rng_.uniformInt(keys.size())];
        if (kw.size() < payload) {
            const std::size_t at =
                rng_.uniformInt(payload - kw.size());
            std::memcpy(body + at, kw.data(), kw.size());
        }
    }

    ++generated_;
    return pkt;
}

std::vector<Packet>
TrafficGenerator::burst(std::size_t count)
{
    std::vector<Packet> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(next());
    return out;
}

} // namespace net
} // namespace statsched
