/**
 * @file
 * Built-in keyword set.
 */

#include "net/keywords.hh"

namespace statsched
{
namespace net
{

const std::vector<std::string> &
dosKeywordSet()
{
    static const std::vector<std::string> keywords = {
        // Protocol-abuse markers.
        "GET / HTTP/1.0", "GET / HTTP/1.1", "POST / HTTP/1.1",
        "HEAD / HTTP/1.0", "OPTIONS * HTTP/1.1",
        "User-Agent: blank", "User-Agent: -", "X-Forwarded-For: 0",
        "Host: 0.0.0.0", "Connection: keep-alive,keep-alive",
        "Content-Length: -1", "Content-Length: 99999999",
        "Range: bytes=0-,0-,0-", "Accept-Encoding: ,,,",
        // Flood / amplification payload markers.
        "\x07\x07\x07\x07flood", "udpflood", "synflood", "ackstorm",
        "smurf_echo", "fraggle", "landattack", "teardrop_frag",
        "ping_of_death", "bonk_offset", "boink", "nestea",
        // Botnet command strings.
        "!flood.start", "!flood.stop", "!udp ", "!syn ", "!icmp ",
        "!packet ", "!attack ", "ddos.start", "ddos.stop",
        ".advscan", ".asc ", ".scanall", "startflood",
        // Malformed service banners.
        "220 kaboom ftp", "USER ddos", "PASS ddos", "SITE EXEC %p",
        "RETR ../../", "STOR ../../..", "\\x90\\x90\\x90\\x90",
        // DNS/NTP/SSDP amplification queries.
        "\x13\x37\xff\x01ANY", "monlist", "get_peers",
        "M-SEARCH * HTTP/1.1", "ssdp:discover", "qtype=255",
        // Slow-rate attack markers.
        "slowloris", "X-a: b\r\n", "rudeadyet", "slowpost",
        "Transfer-Encoding: chunked\r\n0\r\n",
        // Classic shell / exploit fragments.
        "/bin/sh", "/bin/bash -i", "cmd.exe /c", "powershell -enc",
        "wget http://", "curl -s http://", "chmod 777",
        "rm -rf /", "etc/passwd", "etc/shadow",
        // Random-looking binary markers (shared prefixes).
        "\xde\xad\xbe\xef", "\xde\xad\xc0\xde", "\xca\xfe\xba\xbe",
        "\xfe\xed\xfa\xce", "\x41\x41\x41\x41\x41\x41\x41\x41",
        "\x42\x42\x42\x42\x42\x42", "\x90\x90\x90\x90\x90\x90",
    };
    return keywords;
}

} // namespace net
} // namespace statsched
