/**
 * @file
 * Three-stage software pipeline runner (Figure 9 of the paper).
 *
 * Pipeline wires a Receive stage (drains a traffic source), a
 * benchmark-specific Process stage, and a Transmit stage (counts and
 * releases packets) through SpscQueues, exactly like the Netra DPS
 * benchmarks. It can run inline (single thread, for tests) or with
 * real threads optionally pinned to CPUs (hw::PinnedThreadEngine).
 */

#ifndef STATSCHED_NET_PIPELINE_HH
#define STATSCHED_NET_PIPELINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "net/generator.hh"
#include "net/packet.hh"
#include "net/spsc_queue.hh"

namespace statsched
{
namespace net
{

/**
 * The Process-stage kernel interface: transform/inspect one packet.
 * Returns false when the packet is dropped.
 */
using ProcessFn = std::function<bool(Packet &)>;

/**
 * Counters of one pipeline run.
 */
struct PipelineStats
{
    std::uint64_t received = 0;    //!< packets entering R
    std::uint64_t processed = 0;   //!< packets surviving P
    std::uint64_t dropped = 0;     //!< packets dropped by P
    std::uint64_t transmitted = 0; //!< packets leaving T
};

/**
 * One three-thread pipeline instance.
 */
class Pipeline
{
  public:
    /**
     * @param traffic      Traffic configuration for this instance's
     *                     DMA channel.
     * @param process      The P-stage kernel.
     * @param queue_depth  Capacity of the R->P and P->T queues.
     */
    Pipeline(const TrafficConfig &traffic, ProcessFn process,
             std::size_t queue_depth = 2048);

    /**
     * Runs the three stages inline (no threads) until `packets`
     * packets have been transmitted.
     *
     * @return the run statistics.
     */
    PipelineStats runInline(std::uint64_t packets);

    /** Stage bodies, exposed so a threaded executor can drive them.
     *  Each call processes at most `batch` packets and returns the
     *  number handled; the stop flag ends the stage loops. @{ */
    std::size_t receiveStep(std::size_t batch);
    std::size_t processStep(std::size_t batch);
    std::size_t transmitStep(std::size_t batch);
    /** @} */

    /** Signals threaded stages to stop. */
    void requestStop() { stop_.store(true, std::memory_order_release); }

    /** @return true once a stop was requested. */
    bool
    stopRequested() const
    {
        return stop_.load(std::memory_order_acquire);
    }

    /** @return current statistics (exact only after stages stop). */
    PipelineStats stats() const;

  private:
    TrafficGenerator generator_;
    ProcessFn process_;
    SpscQueue<std::unique_ptr<Packet>> rToP_;
    SpscQueue<std::unique_ptr<Packet>> pToT_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> received_{0};
    std::atomic<std::uint64_t> processed_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> transmitted_{0};
};

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_PIPELINE_HH
