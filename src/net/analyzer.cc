/**
 * @file
 * PacketAnalyzer implementation.
 */

#include "net/analyzer.hh"

#include "base/check.hh"

namespace statsched
{
namespace net
{

bool
PacketFilter::matches(const Packet &packet) const
{
    if (!packet.hasIpv4())
        return false;
    const Ipv4Header ip = packet.ipv4();

    if (protocol && ip.protocol != *protocol)
        return false;
    if (destinationPrefix) {
        const auto &[prefix, bits] = *destinationPrefix;
        if (bits > 0) {
            const Ipv4Address mask = bits >= 32
                ? 0xffffffffu : ~((1u << (32 - bits)) - 1);
            if ((ip.destination & mask) != (prefix & mask))
                return false;
        }
    }
    if ((sourcePort || destinationPort) && packet.hasL4()) {
        std::uint16_t sport = 0;
        std::uint16_t dport = 0;
        if (ip.protocol ==
            static_cast<std::uint8_t>(IpProtocol::Tcp)) {
            const TcpHeader t = packet.tcp();
            sport = t.sourcePort;
            dport = t.destinationPort;
        } else {
            const UdpHeader u = packet.udp();
            sport = u.sourcePort;
            dport = u.destinationPort;
        }
        if (sourcePort && sport != *sourcePort)
            return false;
        if (destinationPort && dport != *destinationPort)
            return false;
    } else if (sourcePort || destinationPort) {
        return false;
    }
    return true;
}

PacketAnalyzer::PacketAnalyzer(std::size_t log_capacity)
{
    SCHED_REQUIRE(log_capacity >= 1, "empty log ring");
    ring_.resize(log_capacity);
}

void
PacketAnalyzer::addFilter(PacketFilter filter)
{
    filters_.push_back(std::move(filter));
}

std::optional<LogRecord>
PacketAnalyzer::process(const Packet &packet)
{
    ++stats_.captured;
    stats_.bytes += packet.size();

    if (!packet.hasIpv4() || !packet.hasL4()) {
        ++stats_.malformed;
        return std::nullopt;
    }
    ++stats_.decoded;

    const Ipv4Header ip = packet.ipv4();
    if (ip.protocol == static_cast<std::uint8_t>(IpProtocol::Tcp))
        ++stats_.tcp;
    else if (ip.protocol == static_cast<std::uint8_t>(IpProtocol::Udp))
        ++stats_.udp;

    bool selected = filters_.empty();
    for (const auto &f : filters_) {
        if (f.matches(packet)) {
            selected = true;
            break;
        }
    }
    if (!selected)
        return std::nullopt;
    ++stats_.filtered;

    LogRecord record;
    const EthernetHeader eth = packet.ethernet();
    record.macSource = eth.source;
    record.macDestination = eth.destination;
    record.timeToLive = ip.timeToLive;
    record.l3Protocol = ip.protocol;
    record.ipSource = ip.source;
    record.ipDestination = ip.destination;
    if (ip.protocol == static_cast<std::uint8_t>(IpProtocol::Tcp)) {
        const TcpHeader t = packet.tcp();
        record.sourcePort = t.sourcePort;
        record.destinationPort = t.destinationPort;
    } else {
        const UdpHeader u = packet.udp();
        record.sourcePort = u.sourcePort;
        record.destinationPort = u.destinationPort;
    }

    ring_[ringNext_] = record;
    ringNext_ = (ringNext_ + 1) % ring_.size();
    if (ringNext_ == 0)
        ringWrapped_ = true;
    ++stats_.logged;
    return record;
}

std::vector<LogRecord>
PacketAnalyzer::logContents() const
{
    std::vector<LogRecord> out;
    if (ringWrapped_) {
        out.insert(out.end(), ring_.begin() + ringNext_, ring_.end());
        out.insert(out.end(), ring_.begin(),
                   ring_.begin() + ringNext_);
    } else {
        out.insert(out.end(), ring_.begin(),
                   ring_.begin() + ringNext_);
    }
    return out;
}

} // namespace net
} // namespace statsched
