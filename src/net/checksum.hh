/**
 * @file
 * Internet checksum (RFC 1071) and incremental update (RFC 1141).
 *
 * Used by the packet kernels for IPv4 header checksums: full
 * computation when a header is (re)built, and the one's-complement
 * incremental patch on the TTL-decrement fast path of IP forwarding.
 */

#ifndef STATSCHED_NET_CHECKSUM_HH
#define STATSCHED_NET_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace statsched
{
namespace net
{

/**
 * One's-complement Internet checksum over a byte range.
 *
 * @param data Pointer to the first byte.
 * @param len  Number of bytes (odd lengths are zero-padded).
 * @return the 16-bit checksum in host order, ready to be stored in
 *         big-endian field position.
 */
std::uint16_t internetChecksum(const std::uint8_t *data,
                               std::size_t len);

/**
 * RFC 1141 incremental checksum update when one 16-bit word of the
 * covered data changes.
 *
 * @param old_checksum Previous checksum value.
 * @param old_word     The 16-bit word before the change.
 * @param new_word     The 16-bit word after the change.
 * @return the updated checksum.
 */
std::uint16_t incrementalChecksumUpdate(std::uint16_t old_checksum,
                                        std::uint16_t old_word,
                                        std::uint16_t new_word);

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_CHECKSUM_HH
