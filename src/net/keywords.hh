/**
 * @file
 * Intrusion-detection keyword set.
 *
 * The paper's Aho-Corasick benchmark searches packet payloads for the
 * keywords of the Snort Denial-of-Service rule set (v2.9, Nov 2011).
 * That rule text is licensed, so this library ships a representative
 * substitute: a set of DoS-signature-like content strings with the
 * same character: short-to-medium ASCII/byte patterns with shared
 * prefixes. The automaton's behaviour (state count, transition
 * density, match rate) — which is what the task-assignment study
 * exercises — depends only on these structural properties.
 */

#ifndef STATSCHED_NET_KEYWORDS_HH
#define STATSCHED_NET_KEYWORDS_HH

#include <string>
#include <vector>

namespace statsched
{
namespace net
{

/**
 * @return the built-in DoS-signature-like keyword set (~70 patterns).
 */
const std::vector<std::string> &dosKeywordSet();

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_KEYWORDS_HH
