/**
 * @file
 * IP forwarding lookup (the IPFwd benchmark kernel, Section 4.3).
 *
 * "IPFwd makes the decision to forward a packet to the next hop based
 * on the destination IP address." The kernel hashes the destination
 * address into a next-hop table. Two memory behaviours bound the
 * design space, mirroring the paper's two variants:
 *
 *  - L1Resident: a small table that fits in the 8 KB L1 data cache —
 *    the best case (high locality);
 *  - MemoryBound: a large table whose entries are chained through a
 *    second level initialized to defeat locality — every lookup
 *    performs dependent accesses that miss all caches, the worst
 *    case used in network processing studies.
 */

#ifndef STATSCHED_NET_IPFWD_HH
#define STATSCHED_NET_IPFWD_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"

namespace statsched
{
namespace net
{

/**
 * Memory behaviour of the forwarding table.
 */
enum class IpfwdMode
{
    L1Resident,   //!< table fits in the L1 data cache
    MemoryBound   //!< lookups chase pointers through a large array
};

/**
 * Next-hop descriptor.
 */
struct NextHop
{
    std::uint16_t egressPort = 0;
    MacAddress gatewayMac{};
};

/**
 * Hash-based IPv4 forwarding table.
 */
class Ipv4ForwardingTable
{
  public:
    /** Dependent memory accesses per MemoryBound lookup. */
    static constexpr int kLookupMemoryAccesses = 2;

    /**
     * @param mode  Memory behaviour.
     * @param ports Number of egress ports to spread next hops over.
     * @param seed  Deterministic table initialization seed.
     */
    explicit Ipv4ForwardingTable(IpfwdMode mode = IpfwdMode::L1Resident,
                                 std::uint16_t ports = 16,
                                 std::uint64_t seed = 0xf02d);

    /** @return the configured mode. */
    IpfwdMode mode() const { return mode_; }

    /** @return table size in bytes (for cache reasoning). */
    std::size_t tableBytes() const;

    /**
     * Looks up the next hop for a destination address.
     */
    NextHop lookup(Ipv4Address destination) const;

    /**
     * Forwards one packet in place: looks up the next hop, rewrites
     * the Ethernet addresses, and decrements the TTL with an
     * incremental checksum update.
     *
     * @return false when the packet must be dropped (TTL expired or
     *         not IPv4).
     */
    bool forward(Packet &packet) const;

    /** @return lookups performed (statistics). */
    std::uint64_t lookupCount() const { return lookups_; }

  private:
    IpfwdMode mode_;
    std::uint16_t ports_;

    /** Direct-mapped next-hop entries (L1Resident). */
    std::vector<NextHop> small_;

    /**
     * MemoryBound storage: a large array of chained indices ending in
     * a next-hop slot; the chain permutation is scrambled at
     * construction so consecutive lookups share no locality.
     */
    std::vector<std::uint32_t> chain_;
    std::vector<NextHop> large_;

    mutable std::uint64_t lookups_ = 0;
};

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_IPFWD_HH
