/**
 * @file
 * Longest-prefix-match IPv4 routing table (binary trie).
 *
 * The hash-based Ipv4ForwardingTable models the paper's benchmark
 * kernel; real routers forward on the longest matching prefix. This
 * is a complete path-traversing binary trie: insert CIDR prefixes
 * with next hops, look up the longest match per address, delete
 * prefixes, and enumerate the table. Used by the extended forwarding
 * example and to ground the per-lookup cost discussion in
 * net/kernel_costs.hh (an LPM walk touches up to 32 nodes versus the
 * benchmark's 1-2 hash probes).
 */

#ifndef STATSCHED_NET_LPM_TRIE_HH
#define STATSCHED_NET_LPM_TRIE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ipfwd.hh"
#include "net/packet.hh"

namespace statsched
{
namespace net
{

/**
 * An IPv4 route: prefix/length -> next hop.
 */
struct Route
{
    Ipv4Address prefix = 0;
    std::uint8_t length = 0;    //!< 0..32
    NextHop nextHop;

    /** @return "a.b.c.d/len". */
    std::string toString() const;
};

/**
 * Binary LPM trie.
 */
class LpmTrie
{
  public:
    LpmTrie();
    ~LpmTrie();
    LpmTrie(LpmTrie &&) noexcept;
    LpmTrie &operator=(LpmTrie &&) noexcept;
    LpmTrie(const LpmTrie &) = delete;
    LpmTrie &operator=(const LpmTrie &) = delete;

    /**
     * Inserts or replaces a route.
     *
     * @return true if a route with the same prefix/length existed
     *         and was replaced.
     */
    bool insert(const Route &route);

    /**
     * Removes a route.
     *
     * @return true if the exact prefix/length was present.
     */
    bool remove(Ipv4Address prefix, std::uint8_t length);

    /**
     * Longest-prefix-match lookup.
     *
     * @return the best matching route's next hop, or nullopt when no
     *         route (not even a default) matches.
     */
    std::optional<NextHop> lookup(Ipv4Address address) const;

    /** @return the exact route, if installed. */
    std::optional<Route> find(Ipv4Address prefix,
                              std::uint8_t length) const;

    /** @return the number of installed routes. */
    std::size_t size() const { return routes_; }

    /** @return all routes, sorted by (prefix, length). */
    std::vector<Route> dump() const;

  private:
    struct Node;
    std::unique_ptr<Node> root_;
    std::size_t routes_ = 0;
};

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_LPM_TRIE_HH
