/**
 * @file
 * Stateful flow tracking (Section 4.3).
 *
 * "The packets that belong to the same flow share the common
 * information called the flow-record. ... The common main components
 * of stateful packet processing are: (1) read the flow-keys of a
 * packet; (2) use a hash function to determine the corresponding
 * hash table entry; (3) access the hash table: lock, read, and
 * update the flow-record of an already-existing flow, or create a
 * flow-record for a new flow."
 *
 * FlowTable implements exactly this: the 5-tuple flow key, the nProbe
 * hash function over the flow keys, a 2^16-entry bucketed hash table
 * (the size the paper uses, sufficient for a fully utilized 10 Gb
 * link), striped spinlocks for concurrent stage threads, and flow
 * state transitions driven by TCP flags.
 */

#ifndef STATSCHED_NET_FLOW_TABLE_HH
#define STATSCHED_NET_FLOW_TABLE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hh"

namespace statsched
{
namespace net
{

/**
 * The canonical 5-tuple flow key.
 */
struct FlowKey
{
    Ipv4Address sourceIp = 0;
    Ipv4Address destinationIp = 0;
    std::uint16_t sourcePort = 0;
    std::uint16_t destinationPort = 0;
    std::uint8_t protocol = 0;

    friend bool
    operator==(const FlowKey &a, const FlowKey &b)
    {
        return a.sourceIp == b.sourceIp &&
            a.destinationIp == b.destinationIp &&
            a.sourcePort == b.sourcePort &&
            a.destinationPort == b.destinationPort &&
            a.protocol == b.protocol;
    }

    /**
     * Extracts the key from a packet.
     *
     * @return nullopt when the packet has no L4 header.
     */
    static std::optional<FlowKey> fromPacket(const Packet &packet);
};

/**
 * nProbe-style flow hash: sums the flow-key fields and folds into
 * the table index space.
 */
std::uint32_t nprobeFlowHash(const FlowKey &key);

/** Lifecycle state of a tracked flow. */
enum class FlowState : std::uint8_t
{
    New,           //!< first packet seen
    Established,   //!< TCP handshake observed or UDP active
    Closing,       //!< FIN observed
    Closed         //!< RST or both FINs
};

/**
 * Per-flow record.
 */
struct FlowRecord
{
    FlowKey key;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint8_t tcpFlagsSeen = 0;
    FlowState state = FlowState::New;
    std::uint64_t firstSeen = 0;   //!< packet sequence number
    std::uint64_t lastSeen = 0;
};

/**
 * Table update statistics.
 */
struct FlowTableStats
{
    std::uint64_t updates = 0;     //!< packets applied
    std::uint64_t newFlows = 0;    //!< records created
    std::uint64_t evictions = 0;   //!< records recycled on collision
    std::uint64_t ignored = 0;     //!< packets without L4 headers
};

/**
 * Fixed-size, striped-lock flow hash table.
 */
class FlowTable
{
  public:
    /** The paper's table size: 2^16 entries. */
    static constexpr std::size_t kEntries = 1u << 16;

    /**
     * @param buckets  Number of hash buckets (default kEntries).
     * @param stripes  Number of lock stripes (power of two).
     */
    explicit FlowTable(std::size_t buckets = kEntries,
                       std::size_t stripes = 256);

    /**
     * Applies one packet to the table (thread safe).
     *
     * @param packet   The packet.
     * @param sequence Monotonic packet sequence number (timestamp
     *                 substitute).
     * @return the state of the flow after the update, or nullopt for
     *         packets without flow keys.
     */
    std::optional<FlowState> update(const Packet &packet,
                                    std::uint64_t sequence);

    /** @return a copy of the record for a key, if present. */
    std::optional<FlowRecord> find(const FlowKey &key) const;

    /** @return number of active (non-empty) records. */
    std::size_t activeFlows() const;

    /** @return accumulated statistics (approximate under
     *  concurrency). */
    FlowTableStats stats() const;

    /** @return table footprint in bytes (for cache reasoning). */
    std::size_t tableBytes() const;

  private:
    struct Slot
    {
        bool occupied = false;
        FlowRecord record;
    };

    /** A simple test-and-set spinlock (Netra DPS style: no OS). */
    class Spinlock
    {
      public:
        void
        lock()
        {
            while (flag_.test_and_set(std::memory_order_acquire)) {
            }
        }

        void
        unlock()
        {
            flag_.clear(std::memory_order_release);
        }

      private:
        std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
    };

    Spinlock &stripeFor(std::size_t bucket) const;

    std::vector<Slot> slots_;
    mutable std::vector<Spinlock> stripes_;
    std::atomic<std::uint64_t> updates_{0};
    std::atomic<std::uint64_t> newFlows_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> ignored_{0};
};

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_FLOW_TABLE_HH
