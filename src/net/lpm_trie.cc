/**
 * @file
 * LpmTrie implementation.
 */

#include "net/lpm_trie.hh"

#include <algorithm>

#include "base/check.hh"

namespace statsched
{
namespace net
{

struct LpmTrie::Node
{
    std::unique_ptr<Node> child[2];
    std::optional<Route> route;
};

LpmTrie::LpmTrie() : root_(std::make_unique<Node>())
{
}

LpmTrie::~LpmTrie() = default;
LpmTrie::LpmTrie(LpmTrie &&) noexcept = default;
LpmTrie &LpmTrie::operator=(LpmTrie &&) noexcept = default;

namespace
{

/** @return bit `depth` (0 = MSB) of an address. */
inline int
bitAt(Ipv4Address address, std::uint8_t depth)
{
    return (address >> (31 - depth)) & 1u;
}

} // anonymous namespace

std::string
Route::toString() const
{
    return ipv4ToString(prefix) + "/" + std::to_string(length);
}

bool
LpmTrie::insert(const Route &route)
{
    SCHED_REQUIRE(route.length <= 32, "prefix length out of range");
    // Host bits must be zero for a canonical prefix.
    const Ipv4Address mask = route.length == 0
        ? 0 : (route.length >= 32
               ? 0xffffffffu : ~((1u << (32 - route.length)) - 1));
    SCHED_REQUIRE((route.prefix & ~mask) == 0,
                  "prefix has host bits set");

    Node *node = root_.get();
    for (std::uint8_t depth = 0; depth < route.length; ++depth) {
        const int b = bitAt(route.prefix, depth);
        if (!node->child[b])
            node->child[b] = std::make_unique<Node>();
        node = node->child[b].get();
    }
    const bool replaced = node->route.has_value();
    node->route = route;
    if (!replaced)
        ++routes_;
    return replaced;
}

bool
LpmTrie::remove(Ipv4Address prefix, std::uint8_t length)
{
    SCHED_REQUIRE(length <= 32, "prefix length out of range");
    Node *node = root_.get();
    for (std::uint8_t depth = 0; depth < length && node; ++depth)
        node = node->child[bitAt(prefix, depth)].get();
    if (!node || !node->route)
        return false;
    node->route.reset();
    --routes_;
    // Note: empty chains are left in place; acceptable for routing
    // tables whose prefix set churns in place.
    return true;
}

std::optional<NextHop>
LpmTrie::lookup(Ipv4Address address) const
{
    std::optional<NextHop> best;
    const Node *node = root_.get();
    std::uint8_t depth = 0;
    while (node) {
        if (node->route)
            best = node->route->nextHop;
        if (depth >= 32)
            break;
        node = node->child[bitAt(address, depth)].get();
        ++depth;
    }
    return best;
}

std::optional<Route>
LpmTrie::find(Ipv4Address prefix, std::uint8_t length) const
{
    const Node *node = root_.get();
    for (std::uint8_t depth = 0; depth < length && node; ++depth)
        node = node->child[bitAt(prefix, depth)].get();
    if (node && node->route)
        return node->route;
    return std::nullopt;
}

std::vector<Route>
LpmTrie::dump() const
{
    std::vector<Route> out;
    // Iterative DFS.
    std::vector<const Node *> stack = {root_.get()};
    while (!stack.empty()) {
        const Node *node = stack.back();
        stack.pop_back();
        if (node->route)
            out.push_back(*node->route);
        for (int b = 0; b < 2; ++b) {
            if (node->child[b])
                stack.push_back(node->child[b].get());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Route &a, const Route &b) {
                  return a.prefix != b.prefix
                      ? a.prefix < b.prefix : a.length < b.length;
              });
    return out;
}

} // namespace net
} // namespace statsched
