/**
 * @file
 * Packet implementation.
 */

#include "net/packet.hh"

#include <cstdio>

#include "base/check.hh"
#include "net/checksum.hh"

namespace statsched
{
namespace net
{

namespace
{

std::uint16_t
read16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t
read32(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
        (static_cast<std::uint32_t>(p[1]) << 16) |
        (static_cast<std::uint32_t>(p[2]) << 8) |
        static_cast<std::uint32_t>(p[3]);
}

void
write16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
}

void
write32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

} // anonymous namespace

std::string
ipv4ToString(Ipv4Address address)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u",
                  (address >> 24) & 0xff, (address >> 16) & 0xff,
                  (address >> 8) & 0xff, address & 0xff);
    return buf;
}

bool
Packet::hasIpv4() const
{
    if (size() < ethernetHeaderBytes + ipv4HeaderBytes)
        return false;
    const std::uint8_t *eth = bytes_.data();
    if (read16(eth + 12) != 0x0800)
        return false;
    // Only option-less IPv4 headers are supported by the kernels.
    return (bytes_[ethernetHeaderBytes] >> 4) == 4;
}

bool
Packet::hasL4() const
{
    if (!hasIpv4())
        return false;
    const std::uint8_t proto = bytes_[ethernetHeaderBytes + 9];
    const std::size_t l4 = ethernetHeaderBytes + ipv4HeaderBytes;
    if (proto == static_cast<std::uint8_t>(IpProtocol::Tcp))
        return size() >= l4 + tcpHeaderBytes;
    if (proto == static_cast<std::uint8_t>(IpProtocol::Udp))
        return size() >= l4 + udpHeaderBytes;
    return false;
}

EthernetHeader
Packet::ethernet() const
{
    SCHED_REQUIRE(hasEthernet(), "truncated Ethernet header");
    EthernetHeader h;
    const std::uint8_t *p = bytes_.data();
    for (int i = 0; i < 6; ++i) {
        h.destination[i] = p[i];
        h.source[i] = p[6 + i];
    }
    h.etherType = read16(p + 12);
    return h;
}

Ipv4Header
Packet::ipv4() const
{
    SCHED_REQUIRE(hasIpv4(), "truncated IPv4 header");
    const std::uint8_t *p = bytes_.data() + ethernetHeaderBytes;
    Ipv4Header h;
    h.versionIhl = p[0];
    h.dscpEcn = p[1];
    h.totalLength = read16(p + 2);
    h.identification = read16(p + 4);
    h.flagsFragment = read16(p + 6);
    h.timeToLive = p[8];
    h.protocol = p[9];
    h.headerChecksum = read16(p + 10);
    h.source = read32(p + 12);
    h.destination = read32(p + 16);
    return h;
}

TcpHeader
Packet::tcp() const
{
    SCHED_REQUIRE(hasL4() && bytes_[ethernetHeaderBytes + 9] ==
                  static_cast<std::uint8_t>(IpProtocol::Tcp),
                  "not a TCP packet");
    const std::uint8_t *p =
        bytes_.data() + ethernetHeaderBytes + ipv4HeaderBytes;
    TcpHeader h;
    h.sourcePort = read16(p);
    h.destinationPort = read16(p + 2);
    h.sequence = read32(p + 4);
    h.acknowledgment = read32(p + 8);
    h.dataOffsetFlags = p[12];
    h.flags = p[13];
    h.window = read16(p + 14);
    h.checksum = read16(p + 16);
    h.urgentPointer = read16(p + 18);
    return h;
}

UdpHeader
Packet::udp() const
{
    SCHED_REQUIRE(hasL4() && bytes_[ethernetHeaderBytes + 9] ==
                  static_cast<std::uint8_t>(IpProtocol::Udp),
                  "not a UDP packet");
    const std::uint8_t *p =
        bytes_.data() + ethernetHeaderBytes + ipv4HeaderBytes;
    UdpHeader h;
    h.sourcePort = read16(p);
    h.destinationPort = read16(p + 2);
    h.length = read16(p + 4);
    h.checksum = read16(p + 6);
    return h;
}

void
Packet::setEthernet(const EthernetHeader &header)
{
    SCHED_REQUIRE(size() >= ethernetHeaderBytes,
                  "frame too small for Ethernet");
    std::uint8_t *p = bytes_.data();
    for (int i = 0; i < 6; ++i) {
        p[i] = header.destination[i];
        p[6 + i] = header.source[i];
    }
    write16(p + 12, header.etherType);
}

void
Packet::setIpv4(Ipv4Header header)
{
    SCHED_REQUIRE(size() >= ethernetHeaderBytes + ipv4HeaderBytes,
                  "frame too small for IPv4");
    std::uint8_t *p = bytes_.data() + ethernetHeaderBytes;
    p[0] = header.versionIhl;
    p[1] = header.dscpEcn;
    write16(p + 2, header.totalLength);
    write16(p + 4, header.identification);
    write16(p + 6, header.flagsFragment);
    p[8] = header.timeToLive;
    p[9] = header.protocol;
    write16(p + 10, 0);
    write32(p + 12, header.source);
    write32(p + 16, header.destination);
    write16(p + 10, internetChecksum(p, ipv4HeaderBytes));
}

void
Packet::setTcp(const TcpHeader &header)
{
    SCHED_REQUIRE(size() >= ethernetHeaderBytes + ipv4HeaderBytes +
                  tcpHeaderBytes, "frame too small for TCP");
    std::uint8_t *p =
        bytes_.data() + ethernetHeaderBytes + ipv4HeaderBytes;
    write16(p, header.sourcePort);
    write16(p + 2, header.destinationPort);
    write32(p + 4, header.sequence);
    write32(p + 8, header.acknowledgment);
    p[12] = header.dataOffsetFlags;
    p[13] = header.flags;
    write16(p + 14, header.window);
    write16(p + 16, header.checksum);
    write16(p + 18, header.urgentPointer);
}

void
Packet::setUdp(const UdpHeader &header)
{
    SCHED_REQUIRE(size() >= ethernetHeaderBytes + ipv4HeaderBytes +
                  udpHeaderBytes, "frame too small for UDP");
    std::uint8_t *p =
        bytes_.data() + ethernetHeaderBytes + ipv4HeaderBytes;
    write16(p, header.sourcePort);
    write16(p + 2, header.destinationPort);
    write16(p + 4, header.length);
    write16(p + 6, header.checksum);
}

std::size_t
Packet::payloadOffset() const
{
    SCHED_REQUIRE(hasL4(), "no L4 header");
    const std::uint8_t proto = bytes_[ethernetHeaderBytes + 9];
    const std::size_t l4 = ethernetHeaderBytes + ipv4HeaderBytes;
    if (proto == static_cast<std::uint8_t>(IpProtocol::Tcp))
        return l4 + tcpHeaderBytes;
    return l4 + udpHeaderBytes;
}

std::size_t
Packet::payloadSize() const
{
    return size() - payloadOffset();
}

const std::uint8_t *
Packet::payload() const
{
    return bytes_.data() + payloadOffset();
}

std::uint8_t *
Packet::payload()
{
    return bytes_.data() + payloadOffset();
}

bool
Packet::decrementTtl()
{
    SCHED_REQUIRE(hasIpv4(), "no IPv4 header");
    std::uint8_t *p = bytes_.data() + ethernetHeaderBytes;
    if (p[8] == 0)
        return false;
    // RFC 1141 incremental checksum update for the TTL byte.
    const std::uint16_t old_word = read16(p + 8);
    p[8] -= 1;
    const std::uint16_t new_word = read16(p + 8);
    const std::uint16_t old_sum = read16(p + 10);
    write16(p + 10,
            incrementalChecksumUpdate(old_sum, old_word, new_word));
    return true;
}

} // namespace net
} // namespace statsched
