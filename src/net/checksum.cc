/**
 * @file
 * Checksum implementation.
 */

#include "net/checksum.hh"

namespace statsched
{
namespace net
{

std::uint16_t
internetChecksum(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
    if (i < len)
        sum += static_cast<std::uint32_t>(data[i] << 8);
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

std::uint16_t
incrementalChecksumUpdate(std::uint16_t old_checksum,
                          std::uint16_t old_word,
                          std::uint16_t new_word)
{
    // RFC 1141: HC' = ~(~HC + ~m + m') with one's-complement sums.
    std::uint32_t sum = static_cast<std::uint16_t>(~old_checksum);
    sum += static_cast<std::uint16_t>(~old_word);
    sum += new_word;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

} // namespace net
} // namespace statsched
