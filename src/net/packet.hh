/**
 * @file
 * Network packet representation and header views.
 *
 * The benchmarks of the paper process IPv4 TCP/UDP traffic generated
 * by NTGen over 10 Gb links (Section 4). Packet owns a raw byte
 * buffer; the header structs provide typed, bounds-checked access to
 * the Ethernet / IPv4 / TCP / UDP fields the kernels read and write.
 * All multi-byte fields are kept in network byte order in the buffer
 * and converted on access.
 */

#ifndef STATSCHED_NET_PACKET_HH
#define STATSCHED_NET_PACKET_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace statsched
{
namespace net
{

/** A 48-bit MAC address. */
using MacAddress = std::array<std::uint8_t, 6>;

/** IPv4 address in host byte order. */
using Ipv4Address = std::uint32_t;

/** @return dotted-quad rendering of an address. */
std::string ipv4ToString(Ipv4Address address);

/** IP protocol numbers used by the suite. */
enum class IpProtocol : std::uint8_t
{
    Tcp = 6,
    Udp = 17
};

/** Byte offsets and sizes of the supported headers. */
constexpr std::size_t ethernetHeaderBytes = 14;
constexpr std::size_t ipv4HeaderBytes = 20;     // no options
constexpr std::size_t tcpHeaderBytes = 20;      // no options
constexpr std::size_t udpHeaderBytes = 8;

/**
 * Decoded Ethernet header.
 */
struct EthernetHeader
{
    MacAddress destination{};
    MacAddress source{};
    std::uint16_t etherType = 0x0800;   //!< IPv4
};

/**
 * Decoded IPv4 header (20-byte, option-less).
 */
struct Ipv4Header
{
    std::uint8_t versionIhl = 0x45;
    std::uint8_t dscpEcn = 0;
    std::uint16_t totalLength = 0;
    std::uint16_t identification = 0;
    std::uint16_t flagsFragment = 0;
    std::uint8_t timeToLive = 64;
    std::uint8_t protocol = 17;
    std::uint16_t headerChecksum = 0;
    Ipv4Address source = 0;
    Ipv4Address destination = 0;
};

/**
 * Decoded TCP header (20-byte, option-less).
 */
struct TcpHeader
{
    std::uint16_t sourcePort = 0;
    std::uint16_t destinationPort = 0;
    std::uint32_t sequence = 0;
    std::uint32_t acknowledgment = 0;
    std::uint8_t dataOffsetFlags = 0x50;
    std::uint8_t flags = 0;
    std::uint16_t window = 0;
    std::uint16_t checksum = 0;
    std::uint16_t urgentPointer = 0;
};

/**
 * Decoded UDP header.
 */
struct UdpHeader
{
    std::uint16_t sourcePort = 0;
    std::uint16_t destinationPort = 0;
    std::uint16_t length = 0;
    std::uint16_t checksum = 0;
};

/**
 * An owned raw packet with typed accessors.
 */
class Packet
{
  public:
    Packet() = default;

    /** Wraps a raw frame (copied). */
    explicit Packet(std::vector<std::uint8_t> bytes)
        : bytes_(std::move(bytes))
    {
    }

    /** @return frame length in bytes. */
    std::size_t size() const { return bytes_.size(); }

    /** @return raw bytes. */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> &bytes() { return bytes_; }

    /** @return true iff the frame holds a complete Ethernet header. */
    bool hasEthernet() const { return size() >= ethernetHeaderBytes; }

    /** @return true iff an IPv4 header follows the Ethernet header. */
    bool hasIpv4() const;

    /** @return true iff the L4 header of the IP protocol is present. */
    bool hasL4() const;

    /** Decodes the Ethernet header. @pre hasEthernet(). */
    EthernetHeader ethernet() const;

    /** Decodes the IPv4 header. @pre hasIpv4(). */
    Ipv4Header ipv4() const;

    /** Decodes a TCP header. @pre hasL4() and protocol == TCP. */
    TcpHeader tcp() const;

    /** Decodes a UDP header. @pre hasL4() and protocol == UDP. */
    UdpHeader udp() const;

    /** Writes the Ethernet header. */
    void setEthernet(const EthernetHeader &header);

    /**
     * Writes the IPv4 header, recomputing its checksum.
     */
    void setIpv4(Ipv4Header header);

    /** Writes a TCP header. */
    void setTcp(const TcpHeader &header);

    /** Writes a UDP header. */
    void setUdp(const UdpHeader &header);

    /** @return offset of the L4 payload within the frame. */
    std::size_t payloadOffset() const;

    /** @return length of the L4 payload. */
    std::size_t payloadSize() const;

    /** @return pointer to the L4 payload. */
    const std::uint8_t *payload() const;
    std::uint8_t *payload();

    /**
     * Decrements TTL and incrementally patches the IPv4 checksum
     * (the IP-forwarding fast path).
     *
     * @return false if the TTL was already 0 (packet must be
     *         dropped).
     */
    bool decrementTtl();

  private:
    std::vector<std::uint8_t> bytes_;
};

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_PACKET_HH
