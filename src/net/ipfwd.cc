/**
 * @file
 * Ipv4ForwardingTable implementation.
 */

#include "net/ipfwd.hh"

#include "base/check.hh"
#include "stats/rng.hh"

namespace statsched
{
namespace net
{

namespace
{

/** Entries in the L1-resident table: 512 x 8 B = 4 KB. */
constexpr std::size_t smallEntries = 512;
/** Chain entries in the memory-bound table: 4 M x 4 B = 16 MB. */
constexpr std::size_t chainEntries = 4u << 20;
/** Next-hop slots behind the chain. */
constexpr std::size_t largeEntries = 65536;

/** Multiplicative hash of an IPv4 address (Knuth). */
inline std::uint32_t
hashAddress(Ipv4Address a)
{
    return a * 2654435761u;
}

} // anonymous namespace

Ipv4ForwardingTable::Ipv4ForwardingTable(IpfwdMode mode,
                                         std::uint16_t ports,
                                         std::uint64_t seed)
    : mode_(mode), ports_(ports)
{
    SCHED_REQUIRE(ports >= 1, "need at least one egress port");
    stats::Rng rng(seed);

    auto random_hop = [&rng, ports]() {
        NextHop hop;
        hop.egressPort =
            static_cast<std::uint16_t>(rng.uniformInt(ports));
        for (auto &b : hop.gatewayMac)
            b = static_cast<std::uint8_t>(rng.uniformInt(256));
        return hop;
    };

    if (mode_ == IpfwdMode::L1Resident) {
        small_.resize(smallEntries);
        for (auto &hop : small_)
            hop = random_hop();
        return;
    }

    // MemoryBound: a scrambled permutation chain. Each lookup starts
    // at hash(dst) mod chainEntries, follows kLookupMemoryAccesses-1
    // chained indices, and lands in a next-hop slot. The chain is a
    // random permutation, so successive lookups have no locality —
    // matching the paper's "lookup table entries are initialized to
    // make IPFwd continuously access the main memory".
    chain_.resize(chainEntries);
    for (std::uint32_t i = 0; i < chainEntries; ++i)
        chain_[i] = i;
    for (std::size_t i = chainEntries - 1; i > 0; --i) {
        const std::size_t j = rng.uniformInt(i + 1);
        std::swap(chain_[i], chain_[j]);
    }
    large_.resize(largeEntries);
    for (auto &hop : large_)
        hop = random_hop();
}

std::size_t
Ipv4ForwardingTable::tableBytes() const
{
    if (mode_ == IpfwdMode::L1Resident)
        return small_.size() * sizeof(NextHop);
    return chain_.size() * sizeof(std::uint32_t) +
        large_.size() * sizeof(NextHop);
}

NextHop
Ipv4ForwardingTable::lookup(Ipv4Address destination) const
{
    ++lookups_;
    const std::uint32_t h = hashAddress(destination);
    if (mode_ == IpfwdMode::L1Resident)
        return small_[h % smallEntries];

    std::uint32_t idx = h % chainEntries;
    for (int hop = 1; hop < kLookupMemoryAccesses; ++hop)
        idx = chain_[idx];
    return large_[chain_[idx] % largeEntries];
}

bool
Ipv4ForwardingTable::forward(Packet &packet) const
{
    if (!packet.hasIpv4())
        return false;
    if (!packet.decrementTtl())
        return false;

    const NextHop hop = lookup(packet.ipv4().destination);

    EthernetHeader eth = packet.ethernet();
    eth.source = eth.destination;
    eth.destination = hop.gatewayMac;
    packet.setEthernet(eth);
    return true;
}

} // namespace net
} // namespace statsched
