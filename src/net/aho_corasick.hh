/**
 * @file
 * Aho-Corasick multi-pattern string matching (Section 4.3).
 *
 * "The algorithm constructs a finite state pattern matching machine
 * from the keywords and then uses the pattern matching machine to
 * process the string of text in a single pass" — Aho & Corasick,
 * 1975. This is a complete implementation: trie (goto function),
 * BFS-built failure links, merged output sets, and a flattened
 * dense transition table for the byte-per-cycle matching loop that
 * network intrusion detection systems (Snort) rely on.
 */

#ifndef STATSCHED_NET_AHO_CORASICK_HH
#define STATSCHED_NET_AHO_CORASICK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace statsched
{
namespace net
{

/**
 * One match occurrence.
 */
struct Match
{
    std::uint32_t patternIndex = 0;  //!< index into the pattern list
    std::size_t endOffset = 0;       //!< offset one past the match end

    friend bool
    operator==(const Match &a, const Match &b)
    {
        return a.patternIndex == b.patternIndex &&
            a.endOffset == b.endOffset;
    }
};

/**
 * Aho-Corasick pattern matching machine.
 */
class AhoCorasick
{
  public:
    /**
     * Builds the automaton for a pattern set.
     *
     * @param patterns Non-empty byte strings; duplicates allowed
     *                 (each keeps its own index).
     */
    explicit AhoCorasick(const std::vector<std::string> &patterns);

    /** @return number of automaton states. */
    std::size_t stateCount() const { return transitions_.size() / 256; }

    /** @return approximate automaton memory footprint in bytes. */
    std::size_t automatonBytes() const;

    /** @return the pattern list. */
    const std::vector<std::string> &patterns() const
    { return patterns_; }

    /**
     * Finds all pattern occurrences in a text.
     *
     * @param data Text bytes.
     * @param len  Text length.
     * @return matches ordered by end offset.
     */
    std::vector<Match> findAll(const std::uint8_t *data,
                               std::size_t len) const;

    /** Convenience overload for strings. */
    std::vector<Match> findAll(const std::string &text) const;

    /**
     * Counts pattern occurrences without materializing them (the hot
     * path of the packet-scanning benchmark).
     */
    std::size_t countMatches(const std::uint8_t *data,
                             std::size_t len) const;

    /** @return true iff any pattern occurs in the text. */
    bool containsAny(const std::uint8_t *data, std::size_t len) const;

  private:
    std::vector<std::string> patterns_;
    /** Dense transition table: state * 256 + byte -> state. */
    std::vector<std::uint32_t> transitions_;
    /** First output (pattern id) per state, or npos. */
    std::vector<std::uint32_t> outputHead_;
    /** Output chains: per state, the next state in the output-link
     *  list (suffix with output), or 0 (root = none). */
    std::vector<std::uint32_t> outputLink_;
    /** Pattern ids emitted exactly at a state. */
    std::vector<std::vector<std::uint32_t>> ownOutputs_;

    static constexpr std::uint32_t npos = 0xffffffffu;
};

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_AHO_CORASICK_HH
