/**
 * @file
 * Lock-free single-producer / single-consumer ring queue.
 *
 * The paper's benchmarks connect their pipeline stages through
 * shared-memory queues: "the receiving threads write the pointers to
 * the packets into the R->P memory queues; the processing threads
 * read the pointers from the memory queues ..." (Section 4.3.1).
 * SpscQueue is that queue: a fixed-capacity power-of-two ring with
 * acquire/release indices, safe for exactly one producer thread and
 * one consumer thread, no locks, no allocation on the hot path.
 */

#ifndef STATSCHED_NET_SPSC_QUEUE_HH
#define STATSCHED_NET_SPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <vector>

#include "base/check.hh"

namespace statsched
{
namespace net
{

/**
 * Bounded SPSC ring queue.
 *
 * @tparam T Element type (moved in/out).
 */
template <typename T>
class SpscQueue
{
  public:
    /**
     * @param capacity Ring capacity; rounded up to a power of two.
     */
    explicit SpscQueue(std::size_t capacity = 1024)
    {
        SCHED_REQUIRE(capacity >= 2, "queue too small");
        std::size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        ring_.resize(cap);
        mask_ = cap - 1;
    }

    /** @return ring capacity. */
    std::size_t capacity() const { return ring_.size(); }

    /**
     * Producer side: tries to enqueue.
     *
     * @return false when the queue is full.
     */
    bool
    tryPush(T value)
    {
        const std::size_t head =
            head_.load(std::memory_order_relaxed);
        const std::size_t tail =
            tail_.load(std::memory_order_acquire);
        if (head - tail >= ring_.size())
            return false;
        ring_[head & mask_] = std::move(value);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: tries to dequeue.
     *
     * @param out Receives the element on success.
     * @return false when the queue is empty.
     */
    bool
    tryPop(T &out)
    {
        const std::size_t tail =
            tail_.load(std::memory_order_relaxed);
        const std::size_t head =
            head_.load(std::memory_order_acquire);
        if (tail == head)
            return false;
        out = std::move(ring_[tail & mask_]);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** @return approximate element count (racy by nature). */
    std::size_t
    sizeApprox() const
    {
        return head_.load(std::memory_order_acquire) -
            tail_.load(std::memory_order_acquire);
    }

    /** @return true when empty at the instant of the call. */
    bool empty() const { return sizeApprox() == 0; }

  private:
    std::vector<T> ring_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_SPSC_QUEUE_HH
