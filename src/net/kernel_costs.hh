/**
 * @file
 * Measured per-packet cost summary of the src/net kernels.
 *
 * These constants document how the simulator's TaskProfile values
 * (sim/benchmarks.cc) are grounded in the real kernels of this
 * library. They are order-of-magnitude operation counts per packet
 * observed on the reference implementations (see
 * bench/micro_library.cc for the measurable quantities), not magic
 * numbers:
 *
 *  - the Receive/Transmit stages move one descriptor through an
 *    SpscQueue and touch one packet header: a few hundred simple
 *    operations;
 *  - IPFwd performs one hash, one (L1Resident) or
 *    kLookupMemoryAccesses dependent (MemoryBound) table reads, an
 *    Ethernet rewrite and the incremental TTL/checksum patch;
 *  - the analyzer decodes three header layers and writes one
 *    28-byte log record;
 *  - Aho-Corasick reads one dense-table transition per payload byte
 *    (hundreds to ~1500 bytes per packet);
 *  - stateful processing hashes the 5-tuple, takes a stripe lock and
 *    applies a read-modify-write to a 64-byte flow record.
 */

#ifndef STATSCHED_NET_KERNEL_COSTS_HH
#define STATSCHED_NET_KERNEL_COSTS_HH

namespace statsched
{
namespace net
{

/** Approximate instructions per packet for queue+NIU handling. */
constexpr double kReceiveOpsPerPacket = 340.0;
constexpr double kTransmitOpsPerPacket = 320.0;

/** IPFwd processing, excluding table misses. */
constexpr double kIpfwdOpsPerPacket = 540.0;

/** Analyzer decode + filter + log. */
constexpr double kAnalyzerOpsPerPacket = 900.0;

/** Aho-Corasick per payload *byte* (one transition + output test). */
constexpr double kAhoCorasickOpsPerByte = 7.0;

/** Stateful flow update, excluding record misses. */
constexpr double kStatefulOpsPerPacket = 700.0;

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_KERNEL_COSTS_HH
