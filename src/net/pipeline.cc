/**
 * @file
 * Pipeline implementation.
 */

#include "net/pipeline.hh"

#include "base/check.hh"

namespace statsched
{
namespace net
{

Pipeline::Pipeline(const TrafficConfig &traffic, ProcessFn process,
                   std::size_t queue_depth)
    : generator_(traffic), process_(std::move(process)),
      rToP_(queue_depth), pToT_(queue_depth)
{
    SCHED_REQUIRE(process_ != nullptr, "null process kernel");
}

std::size_t
Pipeline::receiveStep(std::size_t batch)
{
    std::size_t handled = 0;
    for (std::size_t i = 0; i < batch; ++i) {
        auto pkt = std::make_unique<Packet>(generator_.next());
        if (!rToP_.tryPush(std::move(pkt)))
            break;
        ++handled;
    }
    received_.fetch_add(handled, std::memory_order_relaxed);
    return handled;
}

std::size_t
Pipeline::processStep(std::size_t batch)
{
    std::size_t handled = 0;
    std::unique_ptr<Packet> pkt;
    for (std::size_t i = 0; i < batch; ++i) {
        if (!rToP_.tryPop(pkt))
            break;
        ++handled;
        if (!process_(*pkt)) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        processed_.fetch_add(1, std::memory_order_relaxed);
        // A full downstream queue applies backpressure by busy
        // retrying; under a stop request the packet is dropped so
        // the stage can wind down.
        while (!pToT_.tryPush(std::move(pkt))) {
            if (stopRequested())
                return handled;
        }
    }
    return handled;
}

std::size_t
Pipeline::transmitStep(std::size_t batch)
{
    std::size_t handled = 0;
    std::unique_ptr<Packet> pkt;
    for (std::size_t i = 0; i < batch; ++i) {
        if (!pToT_.tryPop(pkt))
            break;
        ++handled;
    }
    transmitted_.fetch_add(handled, std::memory_order_relaxed);
    return handled;
}

PipelineStats
Pipeline::runInline(std::uint64_t packets)
{
    while (transmitted_.load(std::memory_order_relaxed) < packets) {
        receiveStep(64);
        processStep(64);
        transmitStep(64);
    }
    return stats();
}

PipelineStats
Pipeline::stats() const
{
    PipelineStats s;
    s.received = received_.load(std::memory_order_relaxed);
    s.processed = processed_.load(std::memory_order_relaxed);
    s.dropped = dropped_.load(std::memory_order_relaxed);
    s.transmitted = transmitted_.load(std::memory_order_relaxed);
    return s;
}

} // namespace net
} // namespace statsched
