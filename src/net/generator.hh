/**
 * @file
 * Synthetic traffic generator (the NTGen substitute).
 *
 * The paper saturates the system under test with NTGen, "a software
 * tool that generates IPv4 TCP/UDP packets with configurable options
 * to modify various packet header fields" (Section 4). This generator
 * produces the same kind of traffic deterministically: configurable
 * address/port ranges, protocol mix, payload sizes and payload
 * content, from an explicit seed.
 */

#ifndef STATSCHED_NET_GENERATOR_HH
#define STATSCHED_NET_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"
#include "stats/rng.hh"

namespace statsched
{
namespace net
{

/**
 * Traffic configuration.
 */
struct TrafficConfig
{
    Ipv4Address sourceBase = 0x0a000000;        //!< 10.0.0.0
    std::uint32_t sourceCount = 4096;           //!< distinct sources
    Ipv4Address destinationBase = 0xc0a80000;   //!< 192.168.0.0
    std::uint32_t destinationCount = 65536;     //!< distinct dests
    std::uint16_t portBase = 1024;
    std::uint16_t portCount = 16384;
    /** Fraction of TCP packets (remainder UDP). */
    double tcpFraction = 0.6;
    std::uint32_t payloadMin = 26;              //!< 64 B frames
    std::uint32_t payloadMax = 1458;            //!< 1500 B frames
    /**
     * Fraction of packets whose payload embeds a keyword from the
     * intrusion-detection set (exercises Aho-Corasick match paths).
     */
    double keywordFraction = 0.02;
    std::uint64_t seed = 0x7a11;
};

/**
 * Deterministic NTGen-style packet source.
 */
class TrafficGenerator
{
  public:
    /** @param config Traffic parameters. */
    explicit TrafficGenerator(const TrafficConfig &config = {});

    /** @return the configuration. */
    const TrafficConfig &config() const { return config_; }

    /** @return the next packet. */
    Packet next();

    /** @return a burst of `count` packets. */
    std::vector<Packet> burst(std::size_t count);

    /** @return packets generated so far. */
    std::uint64_t generated() const { return generated_; }

  private:
    TrafficConfig config_;
    stats::Rng rng_;
    std::uint64_t generated_ = 0;
    std::uint16_t ipId_ = 1;
};

} // namespace net
} // namespace statsched

#endif // STATSCHED_NET_GENERATOR_HH
