/**
 * @file
 * Simulated workloads: pipelined application instances.
 *
 * Every benchmark of the paper is a three-thread software pipeline
 * R -> P -> T communicating through shared-memory queues (Figure 9).
 * A Workload is a set of such instances whose threads, flattened in
 * instance order, are the tasks the assignment machinery schedules.
 * The paper runs 8 instances (24 threads) of each benchmark in the
 * case study and 2 instances (6 threads) in the Figures 1/3
 * experiments.
 */

#ifndef STATSCHED_SIM_WORKLOAD_HH
#define STATSCHED_SIM_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/task_profile.hh"

namespace statsched
{
namespace sim
{

/**
 * One application instance: an ordered chain of stage threads.
 */
struct AppInstance
{
    std::string name;                   //!< e.g. "IPFwd-L1#3"
    /** Stage profiles in pipeline order (R, P..., T). */
    std::vector<TaskProfile> stages;
};

/**
 * A set of application instances scheduled together.
 */
class Workload
{
  public:
    Workload() = default;

    /** @param name Workload label used in reports. */
    explicit Workload(std::string name) : name_(std::move(name)) {}

    /** @return the workload label. */
    const std::string &name() const { return name_; }

    /** Appends one application instance. */
    void addInstance(AppInstance instance);

    /** @return the instances. */
    const std::vector<AppInstance> &instances() const
    { return instances_; }

    /** @return total thread (task) count across instances. */
    std::uint32_t taskCount() const;

    /**
     * @return flattened task profiles; index == TaskId used by
     *         Assignment.
     */
    const std::vector<TaskProfile> &tasks() const { return tasks_; }

    /**
     * Pipeline queue edges as (producer task, consumer task) pairs in
     * global task ids.
     */
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> &
    edges() const
    {
        return edges_;
    }

    /** @return [first, last] global task range of an instance. */
    std::pair<std::uint32_t, std::uint32_t>
    instanceTaskRange(std::size_t instance) const;

  private:
    std::string name_;
    std::vector<AppInstance> instances_;
    std::vector<TaskProfile> tasks_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges_;
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_WORKLOAD_HH
