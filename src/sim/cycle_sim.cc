/**
 * @file
 * CycleSimEngine implementation.
 *
 * Batch-first layout: one measurement needs a full machine image —
 * per-core caches, strand state, stage queues, pipe groupings — and
 * constructing it fresh per call dominated small runs. Images live in
 * a ScratchPool and are *reset in place* between measurements:
 * SetAssociativeCache::reset() is exactly equivalent to
 * reconstruction, strands are re-seeded from (seed, task) as before,
 * and queues/cursors are zeroed — so a reused image is bit-identical
 * to a fresh one, and any thread may run any batch item.
 */

#include "sim/cycle_sim.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "base/check.hh"
#include "sim/cache.hh"
#include "sim/scratch_pool.hh"
#include "stats/rng.hh"

namespace statsched
{
namespace sim
{

namespace
{

/** Synthetic address-space layout (byte addresses). */
constexpr std::uint64_t hotRegionBase = 0x1000000000ull;
constexpr std::uint64_t hotRegionStride = 0x100000ull;   // 1 MB/task
constexpr std::uint64_t tableRegionBase = 0x4000000000ull;
constexpr std::uint64_t tableRegionStride = 0x4000000ull; // 64 MB
constexpr std::uint64_t codeRegionBase = 0x8000000000ull;
constexpr std::uint64_t codeRegionStride = 0x100000ull;

/** Per-strand simulation state. */
struct Strand
{
    const TaskProfile *profile = nullptr;
    core::TaskId task = 0;

    std::uint64_t stallUntil = 0;     //!< busy until this cycle
    double nextIssue = 0.0;           //!< dependence-gap clock
    double instrInPacket = 0.0;       //!< retired toward the packet
    bool hasPacket = false;           //!< currently holds a packet
    std::uint64_t packetsDone = 0;    //!< after warmup

    int inputEdge = -1;               //!< edge feeding this stage
    int outputEdge = -1;              //!< edge this stage fills

    std::uint64_t hotCursor = 0;      //!< cyclic hot-set walker
    std::uint64_t codeCursor = 0;     //!< cyclic code walker
    stats::Rng rng{0};
};

} // anonymous namespace

struct CycleSimEngine::Impl
{
    /**
     * One reusable machine image. Caches are built on first use for
     * the topology at hand and reset in place afterwards; everything
     * else is reinitialised from scratch each measurement.
     */
    struct Machine
    {
        std::vector<SetAssociativeCache> l1d;
        std::vector<SetAssociativeCache> l1i;
        /** Zero or one entry; a vector only for default construction. */
        std::vector<SetAssociativeCache> l2;
        std::vector<Strand> strands;
        std::vector<std::uint32_t> queueOcc;
        std::vector<std::uint32_t> pipeOffsets;
        std::vector<core::TaskId> pipeTasks;
        std::vector<std::uint32_t> rr;
    };

    ScratchPool<Machine> pool;

    /** Runs one measurement on a (possibly reused) machine image. */
    static double run(const Workload &workload,
                      const ChipConfig &config,
                      const CycleSimOptions &options,
                      const core::Assignment &assignment,
                      Machine &m);
};

double
CycleSimEngine::Impl::run(const Workload &workload,
                          const ChipConfig &config,
                          const CycleSimOptions &options,
                          const core::Assignment &assignment,
                          Machine &m)
{
    SCHED_REQUIRE(assignment.size() == workload.taskCount(),
                  "assignment/workload mismatch");
    const core::Topology &topo = assignment.topology();
    const auto &tasks = workload.tasks();
    const auto &edges = workload.edges();

    // --- Machine state.
    // T2-like cache geometry: 8 KB 4-way 16 B L1D, 16 KB 8-way 32 B
    // L1I per core, 4 MB 16-way 64 B shared L2. Built once per image;
    // reset() restores the just-constructed state thereafter.
    if (m.l1d.size() != topo.cores) {
        m.l1d.clear();
        m.l1i.clear();
        m.l2.clear();
        for (std::uint32_t c = 0; c < topo.cores; ++c) {
            m.l1d.emplace_back(config.l1dKb, 4, 16);
            m.l1i.emplace_back(config.l1iKb, 8, 32);
        }
        m.l2.emplace_back(config.l2Kb, 16, 64);
    } else {
        for (auto &cache : m.l1d)
            cache.reset();
        for (auto &cache : m.l1i)
            cache.reset();
        m.l2[0].reset();
    }
    std::vector<SetAssociativeCache> &l1d = m.l1d;
    std::vector<SetAssociativeCache> &l1i = m.l1i;
    SetAssociativeCache &l2 = m.l2[0];

    // --- Strand state, rebuilt from the profiles each measurement.
    m.strands.assign(tasks.size(), Strand{});
    std::vector<Strand> &strands = m.strands;
    for (core::TaskId t = 0; t < tasks.size(); ++t) {
        Strand &s = strands[t];
        s.profile = &tasks[t];
        s.task = t;
        s.rng = stats::Rng(options.seed ^
                           (0x9e37ull * (t + 1)));
        // Receive stages always hold a packet to work on.
        s.hasPacket = (tasks[t].role == StageRole::Receive);
    }
    for (int e = 0; e < static_cast<int>(edges.size()); ++e) {
        strands[edges[e].first].outputEdge = e;
        strands[edges[e].second].inputEdge = e;
    }
    m.queueOcc.assign(edges.size(), 0);
    std::vector<std::uint32_t> &queue_occ = m.queueOcc;

    // Pipe membership (CSR layout) and round-robin cursors.
    assignment.tasksByPipeInto(m.pipeOffsets, m.pipeTasks);
    m.rr.assign(topo.pipes(), 0);
    std::vector<std::uint32_t> &rr = m.rr;

    const std::uint64_t total =
        options.warmupCycles + options.cycles;

    auto line_address = [](std::uint64_t base, std::uint64_t offset) {
        return base + offset;
    };

    for (std::uint64_t cycle = 0; cycle < total; ++cycle) {
        for (std::uint32_t pipe = 0; pipe < topo.pipes(); ++pipe) {
            const core::TaskId *members =
                m.pipeTasks.data() + m.pipeOffsets[pipe];
            const std::size_t member_count =
                m.pipeOffsets[pipe + 1] - m.pipeOffsets[pipe];
            if (member_count == 0)
                continue;

            // Round-robin pick of a ready strand.
            Strand *issued = nullptr;
            for (std::size_t probe = 0; probe < member_count;
                 ++probe) {
                const std::size_t idx =
                    (rr[pipe] + probe) % member_count;
                Strand &s = strands[members[idx]];
                if (s.stallUntil > cycle)
                    continue;

                // At a packet boundary the stage may need queue
                // transitions before issuing more work.
                if (!s.hasPacket) {
                    if (s.inputEdge >= 0) {
                        if (queue_occ[s.inputEdge] == 0)
                            continue;   // starved
                        --queue_occ[s.inputEdge];
                    }
                    s.hasPacket = true;
                }
                // Intrinsic dependence gaps of a sub-unit-IPC
                // strand: the strand is ready again only when its
                // fractional issue clock comes due, leaving the
                // slot to the other strands meanwhile (the T2
                // selects among *ready* strands).
                if (static_cast<double>(cycle) < s.nextIssue)
                    continue;
                issued = &s;
                rr[pipe] = static_cast<std::uint32_t>(
                    (idx + 1) % member_count);
                break;
            }
            if (!issued)
                continue;

            Strand &s = *issued;
            const TaskProfile &p = *s.profile;
            const std::uint32_t core = assignment.coreOf(s.task);

            // Instruction fetch: walk the code image cyclically
            // (sequential fetch locality) and probe the per-core
            // L1I for a fraction of instructions (the rest are
            // served by the fetch buffer).
            if (s.rng.uniform() < options.fetchProbeFraction) {
                const std::uint64_t span = static_cast<std::uint64_t>(
                    p.l1iFootprintKb * 1024.0);
                const std::uint64_t addr = line_address(
                    codeRegionBase + p.codeId * codeRegionStride,
                    span ? (s.codeCursor % span) : 0);
                s.codeCursor += 32;   // next fetch line
                if (!l1i[core].access(addr)) {
                    if (!l2.access(addr)) {
                        s.stallUntil = cycle +
                            static_cast<std::uint64_t>(
                                config.l2MissPenalty);
                        continue;
                    }
                    s.stallUntil = cycle +
                        static_cast<std::uint64_t>(
                            config.l1MissPenalty);
                    continue;
                }
            }

            // Data access: hot working set (cyclic) or bulk table
            // (random), through the real cache hierarchy.
            const double u = s.rng.uniform();
            if (u < p.randomAccessFraction && p.tableKb > 0.0) {
                const std::uint64_t span = static_cast<std::uint64_t>(
                    p.tableKb * 1024.0);
                const std::uint64_t region = p.sharedDataId
                    ? p.sharedDataId : 0x10000u + s.task;
                const std::uint64_t addr = line_address(
                    tableRegionBase + region * tableRegionStride,
                    s.rng.uniformInt(span));
                if (!l1d[core].access(addr)) {
                    if (!l2.access(addr)) {
                        s.stallUntil = cycle +
                            static_cast<std::uint64_t>(
                                config.l2MissPenalty);
                    } else {
                        s.stallUntil = cycle +
                            static_cast<std::uint64_t>(
                                config.l1MissPenalty);
                    }
                }
            } else if (u < p.randomAccessFraction +
                       p.loadStoreFraction) {
                const std::uint64_t span = static_cast<std::uint64_t>(
                    p.l1dFootprintKb * 1024.0);
                const std::uint64_t base = hotRegionBase +
                    (p.sharedDataId
                     ? 0x2000000000ull +
                       p.sharedDataId * hotRegionStride
                     : s.task * hotRegionStride);
                const std::uint64_t addr = line_address(
                    base, span ? (s.hotCursor % span) : 0);
                s.hotCursor += 16;   // next line of the hot set
                if (!l1d[core].access(addr)) {
                    if (!l2.access(addr)) {
                        s.stallUntil = cycle +
                            static_cast<std::uint64_t>(
                                config.l2MissPenalty);
                    } else {
                        s.stallUntil = cycle +
                            static_cast<std::uint64_t>(
                                config.l1MissPenalty);
                    }
                }
            }

            // Retire one instruction and start the next
            // dependence gap. The fractional accumulator keeps the
            // long-run rate exact; after a long block the clock
            // resets (no catch-up bursts).
            s.nextIssue = std::max(s.nextIssue + 1.0 / p.issueDemand,
                                   static_cast<double>(cycle + 1));
            s.instrInPacket += 1.0;
            if (s.instrInPacket >= p.instructionsPerPacket) {
                // Packet boundary: hand off downstream.
                if (s.outputEdge >= 0) {
                    if (queue_occ[s.outputEdge] >=
                        options.queueDepth) {
                        // Output full: stay at the boundary and
                        // retry (backpressure).
                        s.instrInPacket = p.instructionsPerPacket;
                        continue;
                    }
                    ++queue_occ[s.outputEdge];
                }
                s.instrInPacket = 0.0;
                if (cycle >= options.warmupCycles)
                    ++s.packetsDone;
                s.hasPacket =
                    (p.role == StageRole::Receive);
            }
        }
    }

    // Aggregate transmitted packets over the measured interval.
    std::uint64_t transmitted = 0;
    for (const Strand &s : strands) {
        if (s.profile->role == StageRole::Transmit)
            transmitted += s.packetsDone;
    }
    const double seconds = static_cast<double>(options.cycles) /
        (config.clockGhz * 1e9);
    return static_cast<double>(transmitted) / seconds;
}

CycleSimEngine::CycleSimEngine(Workload workload,
                               const ChipConfig &config,
                               const CycleSimOptions &options)
    : workload_(std::move(workload)), config_(config),
      options_(options), impl_(std::make_unique<Impl>())
{
    SCHED_REQUIRE(workload_.taskCount() > 0, "empty workload");
    SCHED_REQUIRE(options_.cycles >= 1000,
                  "simulate at least 1000 cycles");
    SCHED_REQUIRE(options_.queueDepth >= 1, "empty stage queues");
}

CycleSimEngine::~CycleSimEngine() = default;

double
CycleSimEngine::secondsPerMeasurement() const
{
    return static_cast<double>(options_.cycles +
                               options_.warmupCycles) /
        (config_.clockGhz * 1e9);
}

double
CycleSimEngine::measure(const core::Assignment &assignment)
{
    auto lease = impl_->pool.acquire();
    return Impl::run(workload_, config_, options_, assignment,
                     *lease);
}

void
CycleSimEngine::measureBatch(std::span<const core::Assignment> batch,
                             std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    // One machine image for the whole serial batch.
    auto lease = impl_->pool.acquire();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        out[i] = Impl::run(workload_, config_, options_, batch[i],
                           *lease);
    }
}

core::BatchKernel
CycleSimEngine::parallelKernel(std::size_t batchSize)
{
    (void)batchSize;   // no per-measurement state to reserve
    return [this](const core::Assignment &a, std::size_t) {
        auto lease = impl_->pool.acquire();
        return Impl::run(workload_, config_, options_, a, *lease);
    };
}

void
CycleSimEngine::collectStats(core::EngineStats &stats) const
{
    stats.scratchReuses += impl_->pool.reuses();
    stats.scratchFallbacks += impl_->pool.fallbacks();
}

std::string
CycleSimEngine::name() const
{
    return "cyclesim:" + workload_.name();
}

} // namespace sim
} // namespace statsched
