/**
 * @file
 * SetAssociativeCache implementation.
 */

#include "sim/cache.hh"

#include "base/check.hh"

namespace statsched
{
namespace sim
{

namespace
{

std::uint32_t
log2OfPowerOfTwo(std::uint32_t v)
{
    SCHED_REQUIRE(v != 0 && (v & (v - 1)) == 0,
                  "value must be a power of two");
    std::uint32_t shift = 0;
    while ((1u << shift) < v)
        ++shift;
    return shift;
}

} // anonymous namespace

SetAssociativeCache::SetAssociativeCache(double size_kb,
                                         std::uint32_t ways,
                                         std::uint32_t line_bytes)
    : ways_(ways), lineShift_(log2OfPowerOfTwo(line_bytes))
{
    SCHED_REQUIRE(ways >= 1, "need at least one way");
    SCHED_REQUIRE(size_kb > 0.0, "empty cache");
    const std::uint64_t total_lines = static_cast<std::uint64_t>(
        size_kb * 1024.0 / line_bytes);
    SCHED_REQUIRE(total_lines >= ways,
                  "cache smaller than one set");
    std::uint32_t sets = static_cast<std::uint32_t>(
        total_lines / ways);
    // Round sets down to a power of two for cheap indexing.
    while (sets & (sets - 1))
        sets &= sets - 1;
    sets_ = sets;
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

bool
SetAssociativeCache::access(std::uint64_t address)
{
    ++accesses_;
    ++clock_;
    const std::uint64_t line_addr = address >> lineShift_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr) & (sets_ - 1);
    const std::uint64_t tag = line_addr / sets_;

    Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    Line *victim = base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = clock_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid &&
                   line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    return false;
}

bool
SetAssociativeCache::contains(std::uint64_t address) const
{
    const std::uint64_t line_addr = address >> lineShift_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr) & (sets_ - 1);
    const std::uint64_t tag = line_addr / sets_;
    const Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
SetAssociativeCache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

void
SetAssociativeCache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    clock_ = 0;
    accesses_ = 0;
    misses_ = 0;
}

} // namespace sim
} // namespace statsched
