/**
 * @file
 * Benchmark workload definitions.
 *
 * Stage profile values are derived from the src/net kernels (packet
 * sizes, operation counts per packet) and calibrated against the
 * magnitudes reported in the paper. Code ids are unique per
 * (benchmark, role); data-sharing ids are unique per shared
 * structure.
 */

#include "sim/benchmarks.hh"

#include "base/check.hh"
#include "base/logging.hh"

namespace statsched
{
namespace sim
{

namespace
{

/** Code id layout: benchmark * 8 + role. */
std::uint32_t
codeIdOf(Benchmark b, StageRole role)
{
    return static_cast<std::uint32_t>(b) * 8u +
        static_cast<std::uint32_t>(role) + 1u;
}

/**
 * Receive stage common to all benchmarks: reads packet descriptors
 * from the NIU DMA ring, writes pointers into the R->P queue.
 */
TaskProfile
receiveStage(Benchmark b)
{
    TaskProfile p;
    p.role = StageRole::Receive;
    p.issueDemand = 0.30;
    p.loadStoreFraction = 0.38;
    p.l1dFootprintKb = 1.2;
    p.l1iFootprintKb = 4.0;
    p.l2FootprintKb = 12.0;
    p.codeId = codeIdOf(b, StageRole::Receive);
    p.instructionsPerPacket = 340.0;
    return p;
}

/**
 * Transmit stage common to all benchmarks: drains the P->T queue and
 * hands packets to the NIU.
 */
TaskProfile
transmitStage(Benchmark b)
{
    TaskProfile p;
    p.role = StageRole::Transmit;
    p.issueDemand = 0.30;
    p.loadStoreFraction = 0.36;
    p.l1dFootprintKb = 1.0;
    p.l1iFootprintKb = 3.5;
    p.l2FootprintKb = 10.0;
    p.codeId = codeIdOf(b, StageRole::Transmit);
    p.instructionsPerPacket = 320.0;
    return p;
}

/**
 * Process stage skeleton; benchmark-specific fields filled by the
 * callers.
 */
TaskProfile
processStage(Benchmark b)
{
    TaskProfile p;
    p.role = StageRole::Process;
    p.codeId = codeIdOf(b, StageRole::Process);
    return p;
}

} // anonymous namespace

std::string
benchmarkName(Benchmark benchmark)
{
    switch (benchmark) {
      case Benchmark::IpfwdL1:
        return "IPFwd-L1";
      case Benchmark::IpfwdMem:
        return "IPFwd-Mem";
      case Benchmark::PacketAnalyzer:
        return "Packet analyzer";
      case Benchmark::AhoCorasick:
        return "Aho-Corasick";
      case Benchmark::Stateful:
        return "Stateful";
      case Benchmark::IpfwdIntAdd:
        return "IPFwd-intadd";
      case Benchmark::IpfwdIntMul:
        return "IPFwd-intmul";
      case Benchmark::IpsecEsp:
        return "IPsec-ESP";
    }
    SCHED_UNREACHABLE("unknown benchmark");
}

Workload
makeWorkload(Benchmark benchmark, std::uint32_t instances)
{
    SCHED_REQUIRE(instances >= 1, "need at least one instance");

    Workload workload(benchmarkName(benchmark) + "(" +
                      std::to_string(instances) + "x3)");

    for (std::uint32_t i = 0; i < instances; ++i) {
        TaskProfile process = processStage(benchmark);
        // Shared-data id namespace: 1000 + instance for per-instance
        // structures, 999 for structures shared by all instances.
        const std::uint32_t per_instance_data = 1000u + i;

        switch (benchmark) {
          case Benchmark::IpfwdL1:
            // Destination-IP hash lookup in a table that fits in the
            // L1D (net::Ipv4ForwardingTable small mode). ~35 table
            // touches per packet out of ~1250 instructions.
            process.issueDemand = 0.33;
            process.loadStoreFraction = 0.32;
            process.l1dFootprintKb = 1.2;
            process.l1iFootprintKb = 5.0;
            process.l2FootprintKb = 24.0;
            process.tableKb = 4.0;
            process.randomAccessFraction = 0.0;  // resident table
            process.sharedDataId = per_instance_data;
            process.instructionsPerPacket = 540.0;
            break;

          case Benchmark::IpfwdMem:
            // Same kernel, table initialized to defeat locality: two
            // dependent DRAM accesses per lookup (net reference:
            // Ipv4ForwardingTable::kLookupMemoryAccesses).
            process.issueDemand = 0.33;
            process.loadStoreFraction = 0.32;
            process.l1dFootprintKb = 1.2;
            process.l1iFootprintKb = 5.0;
            process.l2FootprintKb = 24.0;
            process.tableKb = 16384.0;
            process.randomAccessFraction = 0.0055;
            process.sharedDataId = per_instance_data;
            process.instructionsPerPacket = 540.0;
            break;

          case Benchmark::PacketAnalyzer:
            // Header decode at L2/L3/L4 + filter match + log record
            // write; larger text, moderate data.
            process.issueDemand = 0.32;
            process.loadStoreFraction = 0.34;
            process.l1dFootprintKb = 1.3;
            process.l1iFootprintKb = 9.0;
            process.l2FootprintKb = 96.0;  // log ring + RFC tables
            process.tableKb = 24.0;        // RFC field dispatch tables
            process.randomAccessFraction = 0.0009;
            process.sharedDataId = per_instance_data;
            process.instructionsPerPacket = 900.0;
            break;

          case Benchmark::AhoCorasick:
            // Byte-at-a-time automaton walk over the payload; the
            // automaton (Snort DoS keyword set) is shared by all
            // instances and lives in the L2.
            process.issueDemand = 0.50;
            process.loadStoreFraction = 0.45;
            process.l1dFootprintKb = 1.5;
            process.l1iFootprintKb = 6.0;
            process.l2FootprintKb = 16.0;
            process.tableKb = 384.0;       // goto/fail/output arrays
            process.randomAccessFraction = 0.045;
            process.sharedDataId = 999u;   // same automaton for all
            process.instructionsPerPacket = 5200.0;
            break;

          case Benchmark::Stateful:
            // Flow-key hash, lock, read-modify-write of the flow
            // record in a 2^16-entry table (net::FlowTable).
            process.issueDemand = 0.33;
            process.loadStoreFraction = 0.36;
            process.l1dFootprintKb = 1.2;
            process.l1iFootprintKb = 7.0;
            process.l2FootprintKb = 32.0;
            process.tableKb = 4096.0;      // 2^16 x 64 B records
            process.randomAccessFraction = 0.0085;
            process.sharedDataId = per_instance_data;
            process.instructionsPerPacket = 700.0;
            break;

          case Benchmark::IpfwdIntAdd:
            // Figure 1 variant: the processing kernel is a chain of
            // single-cycle integer adds — saturates its issue slot,
            // maximally sensitive to IntraPipe sharing.
            process.issueDemand = 0.90;
            process.loadStoreFraction = 0.18;
            process.l1dFootprintKb = 1.2;
            process.l1iFootprintKb = 4.0;
            process.l2FootprintKb = 16.0;
            process.tableKb = 4.0;
            process.sharedDataId = per_instance_data;
            process.instructionsPerPacket = 1470.0;
            break;

          case Benchmark::IpsecEsp:
            // Extension: ESP encryption + forwarding. The payload
            // passes through the per-core crypto unit, so
            // co-locating several encrypting stages in one core
            // saturates the narrow SPU port.
            process.issueDemand = 0.35;
            process.loadStoreFraction = 0.30;
            process.cryptoFraction = 0.80;
            process.l1dFootprintKb = 1.4;
            process.l1iFootprintKb = 6.0;
            process.l2FootprintKb = 24.0;
            process.tableKb = 4.0;
            process.sharedDataId = per_instance_data;
            process.instructionsPerPacket = 1900.0;
            break;

          case Benchmark::IpfwdIntMul:
            // Figure 1 variant: integer multiplies — the T2 integer
            // multiplier is long latency, so the strand issues
            // sparsely and tolerates pipe sharing.
            process.issueDemand = 0.45;
            process.loadStoreFraction = 0.18;
            process.l1dFootprintKb = 1.2;
            process.l1iFootprintKb = 4.0;
            process.l2FootprintKb = 16.0;
            process.tableKb = 4.0;
            process.sharedDataId = per_instance_data;
            process.instructionsPerPacket = 716.0;
            break;
        }

        // Per-instance heterogeneity: each instance serves its own
        // NIU DMA channel, so packet mixes (and hence working sets
        // and per-packet instruction counts) differ slightly across
        // instances. This is deterministic, not noise — it is part
        // of the workload definition — and it spreads the population
        // of assignment performances into a continuum instead of a
        // small set of discrete levels.
        const double denom =
            instances > 1 ? static_cast<double>(instances - 1) : 1.0;
        const double fp_scale = 1.0 + 0.60 * i / denom;
        const double ipp_scale =
            1.0 + 0.05 * ((i * 5) % instances) / denom;
        process.l1dFootprintKb *= fp_scale;
        process.instructionsPerPacket *= ipp_scale;

        const std::string base =
            benchmarkName(benchmark) + "#" + std::to_string(i);
        TaskProfile r = receiveStage(benchmark);
        TaskProfile t = transmitStage(benchmark);
        r.l1dFootprintKb *= fp_scale;
        r.instructionsPerPacket *= ipp_scale;
        t.instructionsPerPacket *= ipp_scale;
        r.name = base + "/R";
        process.name = base + "/P";
        t.name = base + "/T";

        AppInstance instance;
        instance.name = base;
        instance.stages = {r, process, t};
        workload.addInstance(std::move(instance));
    }
    return workload;
}

std::vector<Benchmark>
caseStudySuite()
{
    return {Benchmark::IpfwdL1, Benchmark::IpfwdMem,
            Benchmark::PacketAnalyzer, Benchmark::AhoCorasick,
            Benchmark::Stateful};
}

} // namespace sim
} // namespace statsched
