/**
 * @file
 * ContentionSolver implementation.
 *
 * Hot-path discipline: solveInto() and everything it calls must not
 * allocate in steady state (tools/lint enforces this mechanically via
 * statsched-sim-hot-alloc) and must replay the reference solver's
 * floating-point operations in the exact same order, so results stay
 * bit-identical while the work per solve drops. Three structural
 * facts make that possible:
 *
 *  - shared-footprint dedup sums non-shared members in member order
 *    first and shared structures in ascending id order second — the
 *    iteration order of the std::map the reference uses — so a flat
 *    sorted buffer reproduces its sums bit for bit;
 *  - the chip-wide L2 footprint covers all tasks whatever the
 *    assignment, so it (and with it every per-task bulk-table miss
 *    fraction) is a workload constant, precomputed at construction;
 *  - water-filling re-sorts its demand indices with std::sort each
 *    round, exactly like the reference. Demands change across
 *    fixed-point rounds, and for *tied* demands the grant a position
 *    receives is not FP-invariant under reordering, so the sort
 *    itself cannot be cached — only its buffers are. What *can* be
 *    skipped is the entire sorted loop whenever the arbiter is
 *    provably unsaturated: then every user is granted exactly its
 *    demand and the waterfill is a bitwise no-op (grantsAllDemands
 *    below). Most arbiters in most assignments take that path.
 */

#include "sim/contention.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "base/check.hh"

namespace statsched
{
namespace sim
{

namespace
{

/** Fraction of instruction fetches exposed to I-cache pressure. */
constexpr double iFetchMissWeight = 0.05;

/** Rank sentinel for tasks whose structure is not shared. */
constexpr std::uint32_t kNoRank = 0xffffffffu;

/**
 * Cache overflow fraction: how much of the working set spills out of
 * a cache of the given capacity. 0 when resident, asymptotically 1.
 */
double
overflowFraction(double footprint_kb, double capacity_kb)
{
    if (footprint_kb <= capacity_kb)
        return 0.0;
    return 1.0 - capacity_kb / footprint_kb;
}

/** Records footprint `fp` for shared id `id` in the dedup buffer at
 *  the max over the group members seen so far. */
void
dedupShared(std::vector<std::pair<std::uint32_t, double>> &buf,
            std::uint32_t id, double fp)
{
    for (auto &[bid, bfp] : buf) {
        if (bid == id) {
            bfp = std::max(bfp, fp);
            return;
        }
    }
    buf.emplace_back(id, fp);
}

/** Adds the dedup buffer's footprints to `total` in ascending-id
 *  order — the iteration order of the reference's std::map. Ids are
 *  unique, so the tie-free insertion sort below agrees with any
 *  comparison sort. */
double
sumSharedAscending(
    std::vector<std::pair<std::uint32_t, double>> &buf, double total)
{
    for (std::size_t i = 1; i < buf.size(); ++i) {
        const auto key = buf[i];
        std::size_t j = i;
        for (; j > 0 && buf[j - 1].first > key.first; --j)
            buf[j] = buf[j - 1];
        buf[j] = key;
    }
    for (const auto &[id, fp] : buf)
        total += fp;
    return total;
}

/**
 * Sums footprints of a group of tasks counting each shared structure
 * (same non-zero id) once, at its largest member footprint, using the
 * caller's flat dedup buffer instead of a std::map. Shared ids are
 * accumulated in ascending id order, reproducing the ordered-map
 * iteration of the reference solver bit for bit.
 *
 * @param members   Task ids in the group.
 * @param count     Number of members.
 * @param footprint Per-task footprint accessor.
 * @param share_id  Per-task sharing-id table.
 * @param buf       Reused (id, max footprint) buffer.
 */
template <typename FootprintFn>
double
sharedFootprint(const core::TaskId *members, std::size_t count,
                FootprintFn footprint,
                const std::uint32_t *share_id,
                std::vector<std::pair<std::uint32_t, double>> &buf)
{
    double total = 0.0;
    buf.clear();
    for (std::size_t i = 0; i < count; ++i) {
        const core::TaskId t = members[i];
        const std::uint32_t id = share_id[t];
        if (id == 0)
            total += footprint(t);
        else
            dedupShared(buf, id, footprint(t));
    }
    return sumSharedAscending(buf, total);
}

/**
 * Water-filling core over caller buffers; alloc[i] receives the
 * grant of demands[i]. Identical operation order to the public
 * waterfill(), which wraps it.
 */
void
waterfillInto(const double *demands, std::size_t count,
              double capacity, std::vector<std::size_t> &order,
              double *alloc)
{
    SCHED_REQUIRE(capacity >= 0.0, "negative capacity");
    if (count == 0)
        return;

    order.resize(count);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [demands](std::size_t a, std::size_t b) {
                  return demands[a] < demands[b];
              });

    double remaining = capacity;
    std::size_t left = count;
    for (std::size_t idx : order) {
        const double fair = remaining / static_cast<double>(left);
        const double d = std::max(0.0, demands[idx]);
        const double granted = std::min(d, fair);
        alloc[idx] = granted;
        remaining -= granted;
        --left;
    }
}

/**
 * True when water-filling demands totalling `demand_sum` against
 * `capacity` provably grants every user its full demand — in which
 * case the sorted fair-share loop is a bitwise no-op
 * (alloc[i] == demands[i] exactly) and callers can skip the
 * gather/sort entirely.
 *
 * Proof sketch: in the exact loop, user k (ascending demand order) is
 * granted min(d_k, remaining/left) where remaining started at
 * capacity and shrank by the grants so far. With the total S <=
 * 0.99*capacity, the demands not yet granted at step k sum to at most
 * remaining - 0.01*capacity, and d_k — the smallest of them — is at
 * most their average, so the fair share remaining/left exceeds d_k by
 * at least 0.01*capacity/count. That margin is astronomically larger
 * than the rounding of the <= 64 FP operations feeding `remaining`
 * and the sum itself (relative 1e-14), so min(d, fair) == d at every
 * step. The 1% margin is what buys bit-safety; do not replace it
 * with an exact comparison.
 */
bool
grantsAllDemands(double demand_sum, double capacity)
{
    return demand_sum <= 0.99 * capacity;
}

} // anonymous namespace

std::vector<double>
waterfill(const std::vector<double> &demands, double capacity)
{
    // One-shot compatibility wrapper for tests and single callers;
    // the batch path uses waterfillInto with scratch buffers.
    std::vector<double> alloc(demands.size(), 0.0); // NOLINT(statsched-sim-hot-alloc): one-shot wrapper, not on the solve path
    std::vector<std::size_t> order; // NOLINT(statsched-sim-hot-alloc): same wrapper, not on the solve path
    waterfillInto(demands.data(), demands.size(), capacity, order,
                  alloc.data());
    return alloc;
}

ContentionSolver::ContentionSolver(const ChipConfig &config,
                                   std::vector<TaskProfile> tasks)
    : config_(config), tasks_(std::move(tasks))
{
    SCHED_REQUIRE(!tasks_.empty(), "no tasks to solve");
    for (const auto &t : tasks_) {
        SCHED_REQUIRE(t.issueDemand > 0.0 &&
                      t.issueDemand <= config_.pipeIssueWidth,
                      "issue demand out of (0, pipe width]");
        SCHED_REQUIRE(t.instructionsPerPacket > 0.0,
                      "non-positive instructions per packet");
    }

    const std::size_t n = tasks_.size();
    baseCpi_.resize(n);
    loadStoreFrac_.resize(n);
    fpFrac_.resize(n);
    cryptoFrac_.resize(n);
    l1dPressureKb_.resize(n);
    l1iFootprintKb_.resize(n);
    sharedDataId_.resize(n);
    codeId_.resize(n);
    tableMiss_.resize(n);
    memFrac_.resize(n);

    for (std::size_t t = 0; t < n; ++t) {
        const TaskProfile &p = tasks_[t];
        baseCpi_[t] = 1.0 / p.issueDemand;
        loadStoreFrac_[t] = p.loadStoreFraction;
        fpFrac_[t] = p.fpFraction;
        cryptoFrac_[t] = p.cryptoFraction;
        // A bulk table thrashes at most about half the L1 (its lines
        // are evicted at the access rate rather than pinning the
        // whole cache), so its pressure contribution is capped.
        l1dPressureKb_[t] = p.l1dFootprintKb +
            std::min(p.tableKb, 0.5 * config_.l1dKb);
        l1iFootprintKb_[t] = p.l1iFootprintKb;
        sharedDataId_[t] = p.sharedDataId;
        codeId_[t] = p.codeId;
        tableMiss_[t] = p.randomAccessFraction *
            overflowFraction(p.tableKb, config_.l1dKb);
    }

    // Chip-wide L2 pressure (shared structures counted once); bulk
    // tables contribute their full size. The member set is *all*
    // tasks for every assignment, so this is a workload constant.
    std::vector<core::TaskId> all(n); // NOLINT(statsched-sim-hot-alloc): construction time, runs once per workload
    std::iota(all.begin(), all.end(), 0);
    std::vector<std::pair<std::uint32_t, double>> shared_buf; // NOLINT(statsched-sim-hot-alloc): construction time, runs once per workload
    const double l2_fp = sharedFootprint(
        all.data(), n,
        [this](core::TaskId t) {
            return tasks_[t].l2FootprintKb + tasks_[t].tableKb;
        },
        sharedDataId_.data(), shared_buf);
    l2MissProb_ = config_.l2BaseMissRate +
        (1.0 - config_.l2BaseMissRate) *
        overflowFraction(l2_fp, config_.l2Kb);

    for (std::size_t t = 0; t < n; ++t) {
        memFrac_[t] = tableMiss_[t] * l2MissProb_;
        if (memFrac_[t] > 0.0)
            memUsers_.push_back(static_cast<core::TaskId>(t));
    }

    // Dense ranks for the shared ids: rank r is the r-th smallest
    // distinct non-zero id in the workload. Real workloads have a
    // handful of distinct ids (one code image per benchmark stage, one
    // shared table per instance), so per-(core, rank) dedup slots stay
    // tiny and the solve never touches a sorted container.
    const auto rankIds = [n](const std::vector<std::uint32_t> &ids,
                             std::vector<std::uint32_t> &rank_of) {
        std::vector<std::uint32_t> uniq; // NOLINT(statsched-sim-hot-alloc): construction time, runs once per workload
        for (const std::uint32_t id : ids) {
            if (id != 0)
                uniq.push_back(id);
        }
        std::sort(uniq.begin(), uniq.end());
        uniq.erase(std::unique(uniq.begin(), uniq.end()),
                   uniq.end());
        rank_of.resize(n);
        for (std::size_t t = 0; t < n; ++t) {
            rank_of[t] = ids[t] == 0
                ? kNoRank
                : static_cast<std::uint32_t>(
                      std::lower_bound(uniq.begin(), uniq.end(),
                                       ids[t]) -
                      uniq.begin());
        }
        return static_cast<std::uint32_t>(uniq.size());
    };
    dataRanks_ = rankIds(sharedDataId_, dataRank_);
    codeRanks_ = rankIds(codeId_, codeRank_);

    // Ports no task uses (most workloads touch neither the FPU nor
    // the crypto unit) are skipped by the solve outright: with no
    // users they never constrain anything in the reference either.
    bool used[3] = {false, false, false};
    for (std::size_t t = 0; t < n; ++t) {
        used[0] = used[0] || loadStoreFrac_[t] > 0.0;
        used[1] = used[1] || fpFrac_[t] > 0.0;
        used[2] = used[2] || cryptoFrac_[t] > 0.0;
    }
    for (std::uint8_t p = 0; p < 3; ++p) {
        if (used[p])
            activePorts_[activePortCount_++] = p;
    }
}

ContentionResult
ContentionSolver::solve(const core::Assignment &assignment) const
{
    Scratch scratch;
    ContentionResult result;
    solveInto(assignment, scratch, result);
    return result;
}

void
ContentionSolver::solveInto(const core::Assignment &assignment,
                            Scratch &scratch,
                            ContentionResult &result) const
{
    SCHED_REQUIRE(assignment.size() == tasks_.size(),
                  "assignment/task-count mismatch");
    const core::Topology &topo = assignment.topology();
    const std::size_t n = tasks_.size();

    // --- Placement ids and per-arbiter user counts, all assignment
    // constants of this solve. One unchecked division per task
    // replaces the repeated checked topology lookups of
    // Assignment::coreOf; the user counts feed grantsAllDemands every
    // fixed-point round without being recounted (whether a task uses
    // a port is a property of the task, not of its rate).
    const std::vector<core::ContextId> &ctxs = assignment.contexts();
    const std::size_t P = topo.pipes();
    const std::size_t C = topo.cores;
    scratch.pipeIdOf.resize(n);
    scratch.coreIdOf.resize(n);
    scratch.pipeCount.assign(P, 0);
    scratch.portUsers.assign(3 * C, 0);
    // Real topologies have power-of-two strand/pipe groupings
    // (UltraSPARC T2: 4 strands/pipe, 2 pipes/core), turning the two
    // placement divisions into shifts; unsigned division by a
    // power of two is exact either way, so the results are identical.
    // Shared structures are deduped through (rank, core) slots whose
    // unclaimed value is +0.0: footprints are non-negative, so
    // max-merging into a virgin slot yields the first member's value
    // bitwise and no claimed/unclaimed distinction is ever needed.
    // Ranks were assigned in ascending id order at construction, and
    // the max-merge within a slot is order-independent.
    scratch.dataMax.resize(C * dataRanks_, 0.0);
    scratch.codeMax.resize(C * codeRanks_, 0.0);
    scratch.dataSum.assign(C, 0.0);
    scratch.codeSum.assign(C, 0.0);

    const std::uint32_t spp = topo.strandsPerPipe;
    const std::uint32_t ppc = topo.pipesPerCore;
    const bool pow2 =
        (spp & (spp - 1)) == 0 && (ppc & (ppc - 1)) == 0;
    const int pipeShift = std::countr_zero(spp);
    const int coreShift = std::countr_zero(ppc);
    const double *const portFrac[3] = {loadStoreFrac_.data(),
                                       fpFrac_.data(),
                                       cryptoFrac_.data()};
    for (std::size_t t = 0; t < n; ++t) {
        const std::uint32_t pipe =
            pow2 ? ctxs[t] >> pipeShift : ctxs[t] / spp;
        const std::uint32_t c =
            pow2 ? pipe >> coreShift : pipe / ppc;
        scratch.pipeIdOf[t] = pipe;
        scratch.coreIdOf[t] = c;
        ++scratch.pipeCount[pipe];
        for (std::uint32_t ap = 0; ap < activePortCount_; ++ap) {
            const std::size_t p = activePorts_[ap];
            scratch.portUsers[p * C + c] +=
                static_cast<std::uint32_t>(portFrac[p][t] > 0.0);
        }
        // Footprint accumulation rides the same pass: non-shared
        // footprints sum in ascending task order (== the reference's
        // member order within each core), shared ones max-merge into
        // their (core, rank) slot.
        const std::uint32_t dr = dataRank_[t];
        if (dr == kNoRank) {
            scratch.dataSum[c] += l1dPressureKb_[t];
        } else {
            const std::size_t slot = dr * C + c;
            scratch.dataMax[slot] = std::max(scratch.dataMax[slot],
                                             l1dPressureKb_[t]);
        }
        const std::uint32_t cr = codeRank_[t];
        if (cr == kNoRank) {
            scratch.codeSum[c] += l1iFootprintKb_[t];
        } else {
            const std::size_t slot = cr * C + c;
            scratch.codeMax[slot] = std::max(scratch.codeMax[slot],
                                             l1iFootprintKb_[t]);
        }
    }

    // --- Cache pressure per core. Shared ranks are added rank-major:
    // each core's additions still happen in ascending rank order ==
    // ascending id order — the reference map's iteration order, bit
    // for bit — while the C independent accumulation chains
    // interleave instead of serializing on FP add latency. Unclaimed
    // slots hold +0.0 (the invariant restored below), which is
    // bitwise neutral on these non-negative sums, so the loops read
    // every slot unconditionally — no data-dependent branches.
    for (std::uint32_t r = 0; r < dataRanks_; ++r) {
        const double *row = scratch.dataMax.data() +
            static_cast<std::size_t>(r) * C;
        for (std::size_t c = 0; c < C; ++c)
            scratch.dataSum[c] += row[c];
    }
    for (std::uint32_t r = 0; r < codeRanks_; ++r) {
        const double *row = scratch.codeMax.data() +
            static_cast<std::size_t>(r) * C;
        for (std::size_t c = 0; c < C; ++c)
            scratch.codeSum[c] += row[c];
    }
    std::fill(scratch.dataMax.begin(), scratch.dataMax.end(), 0.0);
    std::fill(scratch.codeMax.begin(), scratch.codeMax.end(), 0.0);
    scratch.l1dMissProb.resize(C);
    scratch.l1iMissProb.resize(C);
    for (std::size_t c = 0; c < C; ++c) {
        // Empty cores get the base rate where the reference leaves 0
        // — unobservable, since the demand loop only reads the
        // probabilities of occupied cores.
        // Hot working sets degrade gently just past capacity (LRU
        // keeps the hottest lines resident), hence the cubic shaping
        // of the overflow fraction.
        const double d_ov =
            overflowFraction(scratch.dataSum[c], config_.l1dKb);
        const double i_ov =
            overflowFraction(scratch.codeSum[c], config_.l1iKb);
        scratch.l1dMissProb[c] = config_.l1BaseMissRate +
            (1.0 - config_.l1BaseMissRate) * d_ov * d_ov * d_ov;
        scratch.l1iMissProb[c] = config_.l1BaseMissRate +
            (1.0 - config_.l1BaseMissRate) * i_ov * i_ov * i_ov;
    }

    // --- Per-task stall-inclusive issue demand. Hot working-set
    // misses (caused by core co-runners) are refills of recently used
    // lines, which remain L2 resident — they pay the L1 miss penalty.
    // Bulk-structure accesses miss the L1 according to how much of
    // the structure a private L1 could hold (tableMiss_), and go to
    // memory with the chip-wide L2 miss probability (memFrac_) —
    // both precomputed at construction.
    result.l1dMissRate.resize(n);
    result.l2MissRate.resize(n);
    result.rates.resize(n);
    scratch.demand.resize(n);
    scratch.request.resize(n);

    struct Port
    {
        const double *fraction;
        double ChipConfig::*width;
    };
    const Port ports[] = {
        {loadStoreFrac_.data(), &ChipConfig::lsuWidth},
        {fpFrac_.data(), &ChipConfig::fpuWidth},
        {cryptoFrac_.data(), &ChipConfig::cryptoWidth},
    };

    // The first fixed-point round's requests are exactly the
    // intrinsic demands computed here, so the round-1 arbiter demand
    // sums ride this pass for free; the loop only recomputes them
    // from round 2 on (and ~1.2 rounds/solve is the steady-state
    // average — most solves never pay for a separate pass at all).
    scratch.pipeDemand.assign(P, 0.0);
    scratch.portDemand.assign(3 * C, 0.0);
    double memDemandR1 = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
        const std::uint32_t c = scratch.coreIdOf[t];

        const double d_miss =
            loadStoreFrac_[t] * scratch.l1dMissProb[c];
        const double i_miss =
            iFetchMissWeight * scratch.l1iMissProb[c];
        const double hot_miss = d_miss + i_miss;

        result.l1dMissRate[t] = scratch.l1dMissProb[c];
        result.l2MissRate[t] = l2MissProb_;

        const double stall_cpi = config_.stallExposure *
            ((hot_miss + tableMiss_[t] - memFrac_[t]) *
             config_.l1MissPenalty +
             memFrac_[t] * config_.l2MissPenalty);
        const double demand = 1.0 / (baseCpi_[t] + stall_cpi);
        scratch.demand[t] = demand;
        // Both fixed-point working buffers start at the intrinsic
        // demand (result.rates is the `rate` buffer; request is
        // damped toward the converged rate each round).
        result.rates[t] = demand;
        scratch.request[t] = demand;

        // Non-users fold in as demand * (+0.0) == +0.0, which is
        // bitwise neutral on a non-negative sum — the accumulation
        // runs branch-free.
        scratch.pipeDemand[scratch.pipeIdOf[t]] += demand;
        for (std::uint32_t ap = 0; ap < activePortCount_; ++ap) {
            const std::size_t p = activePorts_[ap];
            scratch.portDemand[p * C + c] +=
                demand * ports[p].fraction[t];
        }
        memDemandR1 += demand * memFrac_[t];
    }
    scratch.cap.resize(n);

    // CSR task groupings (ascending task id within each group — the
    // reference's member order) are only needed by saturated-round
    // waterfills; they are built at most once per solve, on the first
    // slow round, and fully-fast solves never pay for them.
    bool csrBuilt = false;
    const auto buildCsr = [n](const std::uint32_t *group_of,
                              std::size_t groups,
                              std::vector<std::uint32_t> &offsets,
                              std::vector<core::TaskId> &flat) {
        offsets.assign(groups + 1, 0);
        for (std::size_t t = 0; t < n; ++t)
            ++offsets[group_of[t] + 1];
        for (std::size_t g = 1; g <= groups; ++g)
            offsets[g] += offsets[g - 1];
        flat.resize(n);
        for (std::size_t t = 0; t < n; ++t)
            flat[offsets[group_of[t]]++] =
                static_cast<core::TaskId>(t);
        for (std::size_t g = groups; g > 0; --g)
            offsets[g] = offsets[g - 1];
        offsets[0] = 0;
    };

    int iter = 0;
    for (; iter < config_.solverIterations; ++iter) {
        // Round phase 1: every arbiter's total demand, in one fused
        // pass. The sums only feed the saturation classification —
        // never the grants — so their own rounding is covered by the
        // 1% margin of grantsAllDemands. Round 1's sums were computed
        // alongside the demands above (request == demand then), so
        // only later rounds run the pass.
        double memDemand = memDemandR1;
        if (iter > 0) {
            scratch.pipeDemand.assign(P, 0.0);
            scratch.portDemand.assign(3 * C, 0.0);
            memDemand = 0.0;
            for (std::size_t t = 0; t < n; ++t) {
                const double r = scratch.request[t];
                scratch.pipeDemand[scratch.pipeIdOf[t]] += r;
                const std::size_t c = scratch.coreIdOf[t];
                for (std::uint32_t ap = 0; ap < activePortCount_;
                     ++ap) {
                    const std::size_t p = activePorts_[ap];
                    scratch.portDemand[p * C + c] +=
                        r * ports[p].fraction[t];
                }
            }
            for (const core::TaskId t : memUsers_)
                memDemand += scratch.request[t] * memFrac_[t];
        }

        // Round phase 2: classify every arbiter. A provably
        // unsaturated group grants each user exactly its demand
        // (grantsAllDemands), so when *every* group is unsaturated —
        // the common case by far — the whole round collapses into the
        // fused pass of phase 3. Empty groups have a zero sum and
        // classify fast, which no later loop ever consults.
        bool allFast = true;
        scratch.pipeFast.assign(P, 0);
        for (std::size_t pipe = 0; pipe < P; ++pipe) {
            if (grantsAllDemands(scratch.pipeDemand[pipe],
                                 config_.pipeIssueWidth))
                scratch.pipeFast[pipe] = 1;
            else
                allFast = false;
        }
        scratch.portFast.assign(3 * C, 0);
        for (std::uint32_t ap = 0; ap < activePortCount_; ++ap) {
            const std::size_t p = activePorts_[ap];
            const double width = config_.*(ports[p].width);
            for (std::size_t c = 0; c < C; ++c) {
                const std::size_t g = p * C + c;
                if (grantsAllDemands(scratch.portDemand[g], width))
                    scratch.portFast[g] = 1;
                else
                    allFast = false;
            }
        }
        const bool memFast =
            grantsAllDemands(memDemand, config_.memAccessWidth);
        allFast = allFast && memFast;

        double max_delta = 0.0;
        if (allFast) {
            // Round phase 3, fast case: every arbiter grants every
            // user its request, so the grants, the combine with the
            // intrinsic demand and the damped request update fuse
            // into one pass with no cap buffer at all. min() is
            // exact, so applying one task's grants together instead
            // of arbiter-by-arbiter is bit-neutral, and (r*f)/f
            // replays the reference's grant roundings; the combine
            // runs in ascending task order exactly like the
            // reference.
            for (std::size_t t = 0; t < n; ++t) {
                const double r = scratch.request[t];
                double cap = r; // pipe grant: min(+inf, request)
                for (std::uint32_t ap = 0; ap < activePortCount_;
                     ++ap) {
                    const double f =
                        ports[activePorts_[ap]].fraction[t];
                    if (f > 0.0)
                        cap = std::min(cap, (r * f) / f);
                }
                const double mf = memFrac_[t];
                if (mf > 0.0)
                    cap = std::min(cap, (r * mf) / mf);
                const double next = std::min(scratch.demand[t], cap);
                max_delta = std::max(
                    max_delta, std::fabs(next - result.rates[t]));
                result.rates[t] = next;
                scratch.request[t] = 0.5 * r + 0.5 * next;
            }
            if (max_delta < 1e-12)
                break;
            continue;
        }

        // Slow case: at least one arbiter is saturated. Grant
        // against a cap buffer; each saturated group reads its
        // members from the lazily-built CSR and runs the full
        // waterfill.
        if (!csrBuilt) {
            buildCsr(scratch.pipeIdOf.data(), P, scratch.pipeOffsets,
                     scratch.pipeTasks);
            buildCsr(scratch.coreIdOf.data(), C, scratch.coreOffsets,
                     scratch.coreTasks);
            csrBuilt = true;
        }
        std::fill(scratch.cap.begin(), scratch.cap.end(),
                  std::numeric_limits<double>::infinity());
        for (std::size_t pipe = 0; pipe < P; ++pipe) {
            const std::size_t count = scratch.pipeCount[pipe];
            if (count == 0 || scratch.pipeFast[pipe])
                continue;
            const core::TaskId *members =
                scratch.pipeTasks.data() + scratch.pipeOffsets[pipe];
            scratch.wfDemand.resize(count);
            scratch.wfAlloc.resize(count);
            for (std::size_t i = 0; i < count; ++i)
                scratch.wfDemand[i] = scratch.request[members[i]];
            waterfillInto(scratch.wfDemand.data(), count,
                          config_.pipeIssueWidth, scratch.wfOrder,
                          scratch.wfAlloc.data());
            for (std::size_t i = 0; i < count; ++i) {
                const core::TaskId m = members[i];
                scratch.cap[m] =
                    std::min(scratch.cap[m], scratch.wfAlloc[i]);
            }
        }
        for (std::size_t t = 0; t < n; ++t) {
            if (scratch.pipeFast[scratch.pipeIdOf[t]]) {
                scratch.cap[t] = std::min(scratch.cap[t],
                                          scratch.request[t]);
            }
        }

        for (std::uint32_t ap = 0; ap < activePortCount_; ++ap) {
            const std::size_t p = activePorts_[ap];
            for (std::size_t c = 0; c < C; ++c) {
                const std::uint32_t users =
                    scratch.portUsers[p * C + c];
                if (users == 0 || scratch.portFast[p * C + c])
                    continue;
                // Saturated: full waterfill over this group.
                const core::TaskId *members =
                    scratch.coreTasks.data() + scratch.coreOffsets[c];
                const std::size_t count =
                    scratch.coreOffsets[c + 1] -
                    scratch.coreOffsets[c];
                scratch.wfUsers.clear();
                scratch.wfDemand.clear();
                for (std::size_t i = 0; i < count; ++i) {
                    const core::TaskId t = members[i];
                    const double f = ports[p].fraction[t];
                    if (f > 0.0) {
                        scratch.wfUsers.push_back(t);
                        scratch.wfDemand.push_back(
                            scratch.request[t] * f);
                    }
                }
                scratch.wfAlloc.resize(users);
                waterfillInto(scratch.wfDemand.data(), users,
                              config_.*(ports[p].width),
                              scratch.wfOrder,
                              scratch.wfAlloc.data());
                for (std::size_t i = 0; i < users; ++i) {
                    const double f =
                        ports[p].fraction[scratch.wfUsers[i]];
                    scratch.cap[scratch.wfUsers[i]] = std::min(
                        scratch.cap[scratch.wfUsers[i]],
                        scratch.wfAlloc[i] / f);
                }
            }
        }
        // Fast-path port grant: alloc/f replays as (request*f)/f with
        // the exact same roundings as the full loop; min() updates on
        // distinct tasks commute, so per-task order is bit-neutral.
        for (std::size_t t = 0; t < n; ++t) {
            const std::size_t c = scratch.coreIdOf[t];
            for (std::uint32_t ap = 0; ap < activePortCount_; ++ap) {
                const std::size_t p = activePorts_[ap];
                if (!scratch.portFast[p * C + c])
                    continue;
                const double f = ports[p].fraction[t];
                if (f > 0.0) {
                    scratch.cap[t] = std::min(
                        scratch.cap[t],
                        (scratch.request[t] * f) / f);
                }
            }
        }

        // InterCore: off-chip access budget. The user set (tasks with
        // memFrac_ > 0) is a workload constant, precomputed ascending
        // at construction; cache-resident workloads skip the arbiter
        // outright.
        if (!memUsers_.empty()) {
            const std::size_t users = memUsers_.size();
            if (memFast) {
                for (const core::TaskId t : memUsers_) {
                    scratch.cap[t] = std::min(
                        scratch.cap[t],
                        (scratch.request[t] * memFrac_[t]) /
                            memFrac_[t]);
                }
            } else {
                scratch.wfDemand.resize(users);
                for (std::size_t i = 0; i < users; ++i) {
                    scratch.wfDemand[i] =
                        scratch.request[memUsers_[i]] *
                        memFrac_[memUsers_[i]];
                }
                scratch.wfAlloc.resize(users);
                waterfillInto(scratch.wfDemand.data(), users,
                              config_.memAccessWidth, scratch.wfOrder,
                              scratch.wfAlloc.data());
                for (std::size_t i = 0; i < users; ++i) {
                    scratch.cap[memUsers_[i]] = std::min(
                        scratch.cap[memUsers_[i]],
                        scratch.wfAlloc[i] / memFrac_[memUsers_[i]]);
                }
            }
        }

        // Combine with the intrinsic demand; damp the request update.
        for (std::size_t t = 0; t < n; ++t) {
            const double next =
                std::min(scratch.demand[t], scratch.cap[t]);
            max_delta = std::max(max_delta,
                                 std::fabs(next - result.rates[t]));
            result.rates[t] = next;
            scratch.request[t] =
                0.5 * scratch.request[t] + 0.5 * next;
        }
        if (max_delta < 1e-12)
            break;
    }

    result.iterations = iter;
}

} // namespace sim
} // namespace statsched
