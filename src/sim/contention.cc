/**
 * @file
 * ContentionSolver implementation.
 */

#include "sim/contention.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "base/check.hh"

namespace statsched
{
namespace sim
{

namespace
{

/** Fraction of instruction fetches exposed to I-cache pressure. */
constexpr double iFetchMissWeight = 0.05;

/**
 * Cache overflow fraction: how much of the working set spills out of
 * a cache of the given capacity. 0 when resident, asymptotically 1.
 */
double
overflowFraction(double footprint_kb, double capacity_kb)
{
    if (footprint_kb <= capacity_kb)
        return 0.0;
    return 1.0 - capacity_kb / footprint_kb;
}

/**
 * Sums footprints of a group of tasks counting each shared structure
 * (same non-zero id) once, at its largest member footprint.
 *
 * @param members     Task ids in the group.
 * @param footprint   Per-task footprint accessor.
 * @param share_id    Per-task sharing-id accessor.
 */
template <typename FootprintFn, typename ShareFn>
double
sharedFootprint(const std::vector<core::TaskId> &members,
                FootprintFn footprint, ShareFn share_id)
{
    double total = 0.0;
    std::map<std::uint32_t, double> shared;
    for (core::TaskId t : members) {
        const std::uint32_t id = share_id(t);
        if (id == 0) {
            total += footprint(t);
        } else {
            auto [it, inserted] = shared.emplace(id, footprint(t));
            if (!inserted)
                it->second = std::max(it->second, footprint(t));
        }
    }
    for (const auto &[id, fp] : shared)
        total += fp;
    return total;
}

} // anonymous namespace

std::vector<double>
waterfill(const std::vector<double> &demands, double capacity)
{
    SCHED_REQUIRE(capacity >= 0.0, "negative capacity");
    std::vector<double> alloc(demands.size(), 0.0);
    if (demands.empty())
        return alloc;

    std::vector<std::size_t> order(demands.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&demands](std::size_t a, std::size_t b) {
                  return demands[a] < demands[b];
              });

    double remaining = capacity;
    std::size_t left = demands.size();
    for (std::size_t idx : order) {
        const double fair = remaining / static_cast<double>(left);
        const double d = std::max(0.0, demands[idx]);
        const double granted = std::min(d, fair);
        alloc[idx] = granted;
        remaining -= granted;
        --left;
    }
    return alloc;
}

ContentionSolver::ContentionSolver(const ChipConfig &config,
                                   std::vector<TaskProfile> tasks)
    : config_(config), tasks_(std::move(tasks))
{
    SCHED_REQUIRE(!tasks_.empty(), "no tasks to solve");
    for (const auto &t : tasks_) {
        SCHED_REQUIRE(t.issueDemand > 0.0 &&
                      t.issueDemand <= config_.pipeIssueWidth,
                      "issue demand out of (0, pipe width]");
        SCHED_REQUIRE(t.instructionsPerPacket > 0.0,
                      "non-positive instructions per packet");
    }
}

ContentionResult
ContentionSolver::solve(const core::Assignment &assignment) const
{
    SCHED_REQUIRE(assignment.size() == tasks_.size(),
                  "assignment/task-count mismatch");
    const core::Topology &topo = assignment.topology();
    const std::size_t n = tasks_.size();

    const auto by_pipe = assignment.tasksByPipe();
    const auto by_core = assignment.tasksByCore();

    // --- Cache pressure per core and chip-wide (assignment dependent,
    // rate independent: computed once).
    std::vector<double> l1d_miss_prob(topo.cores, 0.0);
    std::vector<double> l1i_miss_prob(topo.cores, 0.0);
    for (std::uint32_t c = 0; c < topo.cores; ++c) {
        const auto &members = by_core[c];
        if (members.empty())
            continue;
        // A bulk table thrashes at most about half the L1 (its lines
        // are evicted at the access rate rather than pinning the
        // whole cache), so its pressure contribution is capped.
        const double d_fp = sharedFootprint(
            members,
            [this](core::TaskId t) {
                return tasks_[t].l1dFootprintKb +
                    std::min(tasks_[t].tableKb, 0.5 * config_.l1dKb);
            },
            [this](core::TaskId t) { return tasks_[t].sharedDataId; });
        const double i_fp = sharedFootprint(
            members,
            [this](core::TaskId t) {
                return tasks_[t].l1iFootprintKb;
            },
            [this](core::TaskId t) { return tasks_[t].codeId; });
        // Hot working sets degrade gently just past capacity (LRU
        // keeps the hottest lines resident), hence the cubic shaping
        // of the overflow fraction.
        const double d_ov = overflowFraction(d_fp, config_.l1dKb);
        const double i_ov = overflowFraction(i_fp, config_.l1iKb);
        l1d_miss_prob[c] = config_.l1BaseMissRate +
            (1.0 - config_.l1BaseMissRate) * d_ov * d_ov * d_ov;
        l1i_miss_prob[c] = config_.l1BaseMissRate +
            (1.0 - config_.l1BaseMissRate) * i_ov * i_ov * i_ov;
    }

    // Chip-wide L2 pressure (shared structures counted once); bulk
    // tables contribute their full size.
    std::vector<core::TaskId> all(n);
    std::iota(all.begin(), all.end(), 0);
    const double l2_fp = sharedFootprint(
        all,
        [this](core::TaskId t) {
            return tasks_[t].l2FootprintKb + tasks_[t].tableKb;
        },
        [this](core::TaskId t) { return tasks_[t].sharedDataId; });
    const double l2_miss_prob = config_.l2BaseMissRate +
        (1.0 - config_.l2BaseMissRate) *
        overflowFraction(l2_fp, config_.l2Kb);

    // --- Per-task stall-inclusive issue demand.
    ContentionResult result;
    result.l1dMissRate.resize(n);
    result.l2MissRate.resize(n);
    std::vector<double> demand(n);
    std::vector<double> mem_frac(n);   // off-chip accesses per instr
    for (std::size_t t = 0; t < n; ++t) {
        const TaskProfile &p = tasks_[t];
        const std::uint32_t c = assignment.coreOf(
            static_cast<core::TaskId>(t));

        // Hot working-set misses (caused by core co-runners) are
        // refills of recently used lines, which remain L2 resident —
        // they pay the L1 miss penalty. Bulk-structure accesses miss
        // the L1 according to how much of the structure a private L1
        // could hold, and go to memory with the chip-wide L2 miss
        // probability.
        const double d_miss = p.loadStoreFraction * l1d_miss_prob[c];
        const double i_miss = iFetchMissWeight * l1i_miss_prob[c];
        const double hot_miss = d_miss + i_miss;
        const double table_miss = p.randomAccessFraction *
            overflowFraction(p.tableKb, config_.l1dKb);
        const double table_mem_miss = table_miss * l2_miss_prob;

        result.l1dMissRate[t] = l1d_miss_prob[c];
        result.l2MissRate[t] = l2_miss_prob;
        mem_frac[t] = table_mem_miss;

        const double base_cpi = 1.0 / p.issueDemand;
        const double stall_cpi = config_.stallExposure *
            ((hot_miss + table_miss - table_mem_miss) *
             config_.l1MissPenalty +
             table_mem_miss * config_.l2MissPenalty);
        demand[t] = 1.0 / (base_cpi + stall_cpi);
    }

    // --- Fixed point over the shared-port arbiters.
    std::vector<double> rate(demand);
    std::vector<double> request(demand);
    int iter = 0;
    for (; iter < config_.solverIterations; ++iter) {
        std::vector<double> cap(n,
                                std::numeric_limits<double>::infinity());

        // IntraPipe: issue bandwidth.
        for (std::uint32_t pipe = 0; pipe < topo.pipes(); ++pipe) {
            const auto &members = by_pipe[pipe];
            if (members.empty())
                continue;
            std::vector<double> d;
            d.reserve(members.size());
            for (core::TaskId t : members)
                d.push_back(request[t]);
            const auto alloc = waterfill(d, config_.pipeIssueWidth);
            for (std::size_t i = 0; i < members.size(); ++i) {
                cap[members[i]] =
                    std::min(cap[members[i]], alloc[i]);
            }
        }

        // IntraCore: LSU / FPU / crypto ports.
        struct Port
        {
            double TaskProfile::*fraction;
            double ChipConfig::*width;
        };
        static const Port ports[] = {
            {&TaskProfile::loadStoreFraction, &ChipConfig::lsuWidth},
            {&TaskProfile::fpFraction, &ChipConfig::fpuWidth},
            {&TaskProfile::cryptoFraction, &ChipConfig::cryptoWidth},
        };
        for (const Port &port : ports) {
            for (std::uint32_t c = 0; c < topo.cores; ++c) {
                const auto &members = by_core[c];
                if (members.empty())
                    continue;
                std::vector<double> d;
                std::vector<core::TaskId> users;
                for (core::TaskId t : members) {
                    const double f = tasks_[t].*(port.fraction);
                    if (f > 0.0) {
                        users.push_back(t);
                        d.push_back(request[t] * f);
                    }
                }
                if (users.empty())
                    continue;
                const auto alloc =
                    waterfill(d, config_.*(port.width));
                for (std::size_t i = 0; i < users.size(); ++i) {
                    const double f =
                        tasks_[users[i]].*(port.fraction);
                    cap[users[i]] =
                        std::min(cap[users[i]], alloc[i] / f);
                }
            }
        }

        // InterCore: off-chip access budget.
        {
            std::vector<double> d;
            std::vector<core::TaskId> users;
            for (std::size_t t = 0; t < n; ++t) {
                if (mem_frac[t] > 0.0) {
                    users.push_back(static_cast<core::TaskId>(t));
                    d.push_back(request[t] * mem_frac[t]);
                }
            }
            if (!users.empty()) {
                const auto alloc =
                    waterfill(d, config_.memAccessWidth);
                for (std::size_t i = 0; i < users.size(); ++i) {
                    cap[users[i]] = std::min(
                        cap[users[i]],
                        alloc[i] / mem_frac[users[i]]);
                }
            }
        }

        // Combine with the intrinsic demand; damp the request update.
        double max_delta = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            const double next = std::min(demand[t], cap[t]);
            max_delta = std::max(max_delta,
                                 std::fabs(next - rate[t]));
            rate[t] = next;
            request[t] = 0.5 * request[t] + 0.5 * next;
        }
        if (max_delta < 1e-12)
            break;
    }

    result.rates = std::move(rate);
    result.iterations = iter;
    return result;
}

} // namespace sim
} // namespace statsched
