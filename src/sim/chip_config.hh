/**
 * @file
 * Chip resource configuration for the contention model.
 *
 * Captures the shared resources of the three sharing levels of the
 * UltraSPARC T2 (Section 4.1, Figure 8 of the paper):
 *
 *   IntraPipe:  instruction issue — each hardware pipeline selects one
 *               instruction per cycle among its strands;
 *   IntraCore:  L1 instruction / data caches, the load-store unit, the
 *               FPU and the cryptographic unit, shared by both pipes;
 *   InterCore:  the L2 cache, the crossbar and the memory controllers,
 *               shared chip-wide.
 *
 * Defaults follow the OpenSPARC T2 microarchitecture specification:
 * 8 KB L1D, 16 KB L1I per core, 4 MB shared L2, 1.4 GHz clock, one
 * load/store port per core, one FPU per core.
 */

#ifndef STATSCHED_SIM_CHIP_CONFIG_HH
#define STATSCHED_SIM_CHIP_CONFIG_HH

namespace statsched
{
namespace sim
{

/**
 * Shared-resource capacities and penalty coefficients.
 */
struct ChipConfig
{
    double clockGhz = 1.4;          //!< strand clock in GHz

    // IntraPipe level.
    double pipeIssueWidth = 1.0;    //!< instructions/cycle per pipeline

    // IntraCore level.
    double l1dKb = 8.0;             //!< L1 data cache per core
    double l1iKb = 16.0;            //!< L1 instruction cache per core
    double lsuWidth = 1.0;          //!< load-store ops/cycle per core
    double fpuWidth = 1.0;          //!< FP ops/cycle per core
    double cryptoWidth = 1.0;       //!< crypto ops/cycle per core

    // InterCore level.
    double l2Kb = 4096.0;           //!< shared L2 capacity
    /** Chip-wide off-chip access budget in accesses/cycle (four
     *  dual-channel FBDIMM controllers on the T2). */
    double memAccessWidth = 0.55;

    // Penalty coefficients (extra cycles per access, expressed per
    // instruction once multiplied by the access fractions).
    double l1MissPenalty = 22.0;    //!< L1 miss, L2 hit (cycles)
    double l2MissPenalty = 180.0;   //!< L2 miss to memory (cycles)
    /** Memory-level parallelism divisor: fraction of a miss latency
     *  exposed as stall (in-order cores hide little; 1.0 = none
     *  hidden). */
    double stallExposure = 0.8;

    /** Baseline L1 miss probability with a resident working set. */
    double l1BaseMissRate = 0.01;
    /** Baseline L2 miss probability with a resident working set. */
    double l2BaseMissRate = 0.005;

    /**
     * Extra stall cycles per packet paid by each endpoint of a
     * software-pipeline queue whose partner lives on a *different
     * core* (queue lines bounce through the crossbar/L2 instead of
     * staying in the core's L1). The exposed fraction scales with
     * the *square* of the endpoint's issue demand: an issue-saturated
     * strand eats the full stall, while a latency-bound strand hides
     * it behind queue slack and its existing dependence chains.
     */
    double queueCrossingCycles = 120.0;

    /** Fixed-point iterations of the contention solver. */
    int solverIterations = 40;
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_CHIP_CONFIG_HH
