/**
 * @file
 * Three-level resource contention solver.
 *
 * Given a topology, a chip configuration, the task profiles and an
 * assignment, the solver computes the steady-state instruction rate
 * of every task (instructions per cycle) under contention at the
 * three sharing levels of the UltraSPARC T2:
 *
 *  - IntraPipe: each pipeline issues one instruction per cycle,
 *    shared among its strands by max-min fair water-filling;
 *  - IntraCore: the co-runners' working sets inflate L1 miss rates
 *    (shared code/data counted once), and the LSU / FPU / crypto
 *    ports are water-filled per core;
 *  - InterCore: the chip-wide L2 occupancy inflates L2 miss rates and
 *    the off-chip access budget is water-filled chip-wide.
 *
 * Miss stalls lengthen a task's effective CPI, lowering the issue
 * demand it presents to the arbiters; the mutual dependence is
 * resolved by a damped fixed-point iteration (monotone in practice,
 * converges in a few tens of rounds).
 *
 * Batch-first layout: the solver is the innermost loop of every
 * measurement campaign (tens of thousands of iid solves per run), so
 * it is split into construction-time and solve-time work.
 * Assignment-independent quantities — per-task base CPI, port
 * fractions, bulk-table miss fractions and the chip-wide L2 pressure
 * (which covers *all* tasks, whatever the assignment) — are
 * precomputed once into struct-of-arrays tables. Everything the solve
 * itself needs lives in a caller-owned Scratch workspace, so
 * solveInto() performs no heap allocation in steady state and one
 * Scratch per thread makes batch solving embarrassingly parallel.
 * solveInto() is specified to be bit-identical to the frozen
 * pre-refactor solver (sim/reference_solver.hh) for every input.
 */

#ifndef STATSCHED_SIM_CONTENTION_HH
#define STATSCHED_SIM_CONTENTION_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "core/assignment.hh"
#include "sim/chip_config.hh"
#include "sim/task_profile.hh"

namespace statsched
{
namespace sim
{

/**
 * Max-min fair water-filling: distributes `capacity` among demands,
 * never giving a task more than it asks for. If total demand fits,
 * everyone gets their demand.
 *
 * @param demands  Non-negative demands.
 * @param capacity Non-negative capacity.
 * @return per-task allocation, same order as demands.
 */
std::vector<double> waterfill(const std::vector<double> &demands, // NOLINT(statsched-sim-hot-alloc): declaration of the one-shot wrapper; allocation-free callers use the Scratch-based solver
                              double capacity);

/**
 * Per-task solver outputs.
 */
struct ContentionResult
{
    /** Effective instruction rate per task (instructions/cycle). */
    std::vector<double> rates;
    /** Effective L1D miss probability per task. */
    std::vector<double> l1dMissRate;
    /** Effective L2 miss probability per task. */
    std::vector<double> l2MissRate;
    /** Fixed-point iterations executed. */
    int iterations = 0;
};

/**
 * Resolves contention for one assignment.
 */
class ContentionSolver
{
  public:
    /**
     * Reusable solve workspace. All buffers grow to their
     * steady-state capacity on the first solve against a given
     * workload/topology shape and are reused afterwards; a Scratch
     * must not be shared between concurrent solveInto() calls (give
     * each thread its own — sim::ScratchPool does exactly that).
     */
    struct Scratch
    {
        /** Cached per-task placement ids for the current assignment. */
        std::vector<std::uint32_t> pipeIdOf;
        std::vector<std::uint32_t> coreIdOf;

        /** Per-arbiter user counts (assignment constants, computed
         *  once per solve, reused across fixed-point rounds). */
        std::vector<std::uint32_t> pipeCount;
        std::vector<std::uint32_t> portUsers;

        /** CSR task groupings, built lazily on the first saturated
         *  round of a solve (fast rounds never need them). */
        std::vector<std::uint32_t> pipeOffsets;
        std::vector<core::TaskId> pipeTasks;
        std::vector<std::uint32_t> coreOffsets;
        std::vector<core::TaskId> coreTasks;

        /** Per-round arbiter state: total demand per group (feeds the
         *  saturation classification only, never the grants) and
         *  which groups took the provably-unsaturated fast path. */
        std::vector<double> pipeDemand;
        std::vector<unsigned char> pipeFast;
        std::vector<double> portDemand;
        std::vector<unsigned char> portFast;

        /** Shared-footprint dedup slots, one per (shared-structure
         *  rank, core), stored rank-major so the per-rank sweep walks
         *  contiguous rows. The value arrays hold +0.0 in every
         *  unclaimed slot — each solve re-zeroes them after its sweep
         *  (they are a few cache lines, cheaper to blank than to
         *  track) — so claims max-merge unconditionally
         *  (max(+0.0, kb) == kb for the first member) and the
         *  footprint sums read all slots unconditionally. */
        std::vector<double> dataMax;
        std::vector<double> codeMax;
        std::vector<double> dataSum;
        std::vector<double> codeSum;

        /** Per-core cache pressure of the current assignment. */
        std::vector<double> l1dMissProb;
        std::vector<double> l1iMissProb;

        /** Per-task fixed-point state. */
        std::vector<double> demand;
        std::vector<double> request;
        std::vector<double> cap;

        /** Water-filling buffers (saturated-arbiter slow path). */
        std::vector<double> wfDemand;
        std::vector<double> wfAlloc;
        std::vector<core::TaskId> wfUsers;
        std::vector<std::size_t> wfOrder;
    };

    /**
     * @param config Chip capacities and penalties.
     * @param tasks  Task profiles, indexed by TaskId.
     */
    ContentionSolver(const ChipConfig &config,
                     std::vector<TaskProfile> tasks);

    /** @return the task profiles. */
    const std::vector<TaskProfile> &tasks() const { return tasks_; }

    /**
     * Computes the steady-state rates for an assignment.
     *
     * Convenience wrapper over solveInto() with a one-shot workspace;
     * batch callers keep a Scratch + ContentionResult per thread and
     * call solveInto() directly.
     *
     * @param assignment Assignment of all tasks (size must match the
     *                   profile vector).
     */
    ContentionResult solve(const core::Assignment &assignment) const;

    /**
     * Allocation-free solve: fills `result` for `assignment` using
     * only the buffers in `scratch` (and the construction-time
     * tables). Bit-identical to solve() and to the reference solver
     * for every assignment.
     *
     * @param assignment Assignment of all tasks.
     * @param scratch    Thread-private workspace, reused across calls.
     * @param result     Receives rates/miss rates/iteration count;
     *                   its vectors are resized in place and reused.
     */
    void solveInto(const core::Assignment &assignment,
                   Scratch &scratch, ContentionResult &result) const;

    /**
     * @return the chip-wide L2 miss probability. The L2 working set
     * spans *all* tasks regardless of placement, so this is a
     * constant of the workload, precomputed at construction.
     */
    double l2MissProbability() const { return l2MissProb_; }

  private:
    ChipConfig config_;
    std::vector<TaskProfile> tasks_;

    // --- Assignment-independent struct-of-arrays tables, built once.
    /** 1 / issueDemand. */
    std::vector<double> baseCpi_;
    /** Port fractions, gathered per shared IntraCore port. */
    std::vector<double> loadStoreFrac_;
    std::vector<double> fpFrac_;
    std::vector<double> cryptoFrac_;
    /** L1D pressure contribution: hot set + capped bulk table. */
    std::vector<double> l1dPressureKb_;
    std::vector<double> l1iFootprintKb_;
    std::vector<std::uint32_t> sharedDataId_;
    std::vector<std::uint32_t> codeId_;
    /** Dense rank of each task's shared id among the workload's
     *  distinct non-zero ids, assigned in ascending id order
     *  (0xffffffff = not shared). Ascending rank == ascending id, so
     *  a sweep over present ranks replays the reference solver's
     *  ordered-map iteration without sorting anything at solve time. */
    std::vector<std::uint32_t> dataRank_;
    std::vector<std::uint32_t> codeRank_;
    std::uint32_t dataRanks_ = 0;
    std::uint32_t codeRanks_ = 0;
    /** Indices of the IntraCore ports (LSU/FPU/crypto) used by at
     *  least one task. A port no task ever touches contributes
     *  nothing in the reference either, so the solve skips it. */
    std::uint8_t activePorts_[3] = {0, 0, 0};
    std::uint32_t activePortCount_ = 0;
    /** Bulk-table L1 miss fraction per instruction. */
    std::vector<double> tableMiss_;
    /** Off-chip accesses per instruction (tableMiss * l2MissProb). */
    std::vector<double> memFrac_;
    /** Tasks with memFrac_ > 0, ascending — the only possible users
     *  of the InterCore arbiter, for any assignment. Empty for
     *  cache-resident workloads, which skip that arbiter entirely. */
    std::vector<core::TaskId> memUsers_;
    /** Chip-wide L2 miss probability (workload constant). */
    double l2MissProb_ = 0.0;
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_CONTENTION_HH
