/**
 * @file
 * Three-level resource contention solver.
 *
 * Given a topology, a chip configuration, the task profiles and an
 * assignment, the solver computes the steady-state instruction rate
 * of every task (instructions per cycle) under contention at the
 * three sharing levels of the UltraSPARC T2:
 *
 *  - IntraPipe: each pipeline issues one instruction per cycle,
 *    shared among its strands by max-min fair water-filling;
 *  - IntraCore: the co-runners' working sets inflate L1 miss rates
 *    (shared code/data counted once), and the LSU / FPU / crypto
 *    ports are water-filled per core;
 *  - InterCore: the chip-wide L2 occupancy inflates L2 miss rates and
 *    the off-chip access budget is water-filled chip-wide.
 *
 * Miss stalls lengthen a task's effective CPI, lowering the issue
 * demand it presents to the arbiters; the mutual dependence is
 * resolved by a damped fixed-point iteration (monotone in practice,
 * converges in a few tens of rounds).
 */

#ifndef STATSCHED_SIM_CONTENTION_HH
#define STATSCHED_SIM_CONTENTION_HH

#include <vector>

#include "core/assignment.hh"
#include "sim/chip_config.hh"
#include "sim/task_profile.hh"

namespace statsched
{
namespace sim
{

/**
 * Max-min fair water-filling: distributes `capacity` among demands,
 * never giving a task more than it asks for. If total demand fits,
 * everyone gets their demand.
 *
 * @param demands  Non-negative demands.
 * @param capacity Non-negative capacity.
 * @return per-task allocation, same order as demands.
 */
std::vector<double> waterfill(const std::vector<double> &demands,
                              double capacity);

/**
 * Per-task solver outputs.
 */
struct ContentionResult
{
    /** Effective instruction rate per task (instructions/cycle). */
    std::vector<double> rates;
    /** Effective L1D miss probability per task. */
    std::vector<double> l1dMissRate;
    /** Effective L2 miss probability per task. */
    std::vector<double> l2MissRate;
    /** Fixed-point iterations executed. */
    int iterations = 0;
};

/**
 * Resolves contention for one assignment.
 */
class ContentionSolver
{
  public:
    /**
     * @param config Chip capacities and penalties.
     * @param tasks  Task profiles, indexed by TaskId.
     */
    ContentionSolver(const ChipConfig &config,
                     std::vector<TaskProfile> tasks);

    /** @return the task profiles. */
    const std::vector<TaskProfile> &tasks() const { return tasks_; }

    /**
     * Computes the steady-state rates for an assignment.
     *
     * @param assignment Assignment of all tasks (size must match the
     *                   profile vector).
     */
    ContentionResult solve(const core::Assignment &assignment) const;

  private:
    ChipConfig config_;
    std::vector<TaskProfile> tasks_;
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_CONTENTION_HH
