/**
 * @file
 * Lock-free pool of per-thread scratch workspaces.
 *
 * The batch measurement hot path (sim::SimulatedEngine's kernels
 * running under core::ParallelEngine) needs one solver workspace per
 * concurrent evaluation. A ScratchPool keeps a fixed array of
 * cache-line-aligned slots; each acquiring thread starts its slot scan
 * at a thread-local hint, so in steady state every worker lands on
 * "its" slot on the first probe and batch evaluation neither contends
 * nor allocates. If every slot is busy (more concurrent acquirers
 * than slots), acquire() falls back to a heap-allocated workspace —
 * correct, just slower — and counts the event, so the engine report
 * shows when a pool is undersized.
 *
 * Results must not depend on which slot (or fallback) a thread gets:
 * workspaces are interchangeable by construction, since every consumer
 * (ContentionSolver::solveInto and friends) resizes and overwrites
 * its buffers before reading them.
 */

#ifndef STATSCHED_SIM_SCRATCH_POOL_HH
#define STATSCHED_SIM_SCRATCH_POOL_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "base/check.hh"

namespace statsched
{
namespace sim
{

/**
 * Fixed-size pool of reusable T workspaces with RAII leases.
 *
 * Thread-safe; a Lease is not (use it from the acquiring thread).
 */
template <typename T>
class ScratchPool
{
  private:
    struct alignas(64) Slot
    {
        std::atomic<bool> busy{false};
        T item{};
    };

  public:
    /**
     * @param slots Slot count; the default comfortably covers one
     *              slot per hardware thread plus caller overlap.
     */
    explicit ScratchPool(std::size_t slots = defaultSlotCount())
        : slots_(std::make_unique<Slot[]>(slots)), count_(slots)
    {
        SCHED_REQUIRE(slots > 0, "empty scratch pool");
    }

    /** Owns one workspace until destruction. Move-only. */
    class Lease
    {
      public:
        Lease(Slot *slot, std::unique_ptr<T> fallback)
            : slot_(slot), fallback_(std::move(fallback))
        {
        }

        Lease(Lease &&other) noexcept
            : slot_(other.slot_), fallback_(std::move(other.fallback_))
        {
            other.slot_ = nullptr;
        }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        Lease &operator=(Lease &&) = delete;

        ~Lease()
        {
            if (slot_)
                slot_->busy.store(false, std::memory_order_release);
        }

        T &operator*() { return slot_ ? slot_->item : *fallback_; }
        T *operator->() { return &**this; }

        /** @return true if this lease holds a pooled slot rather
         *  than a fallback allocation. */
        bool pooled() const { return slot_ != nullptr; }

      private:
        Slot *slot_;
        std::unique_ptr<T> fallback_;
    };

    /**
     * Acquires a workspace: a pooled slot when one is free (the
     * common case), a heap fallback otherwise.
     */
    Lease
    acquire()
    {
        const std::size_t start = threadHint() % count_;
        for (std::size_t i = 0; i < count_; ++i) {
            Slot &slot = slots_[(start + i) % count_];
            // Cheap relaxed probe first: losing threads skip busy
            // slots without writing their cache line.
            if (slot.busy.load(std::memory_order_relaxed))
                continue;
            if (!slot.busy.exchange(true, std::memory_order_acquire)) {
                reuses_.fetch_add(1, std::memory_order_relaxed);
                return Lease(&slot, nullptr);
            }
        }
        fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return Lease(nullptr, std::make_unique<T>());
    }

    /** @return number of slots. */
    std::size_t size() const { return count_; }

    /** @return acquisitions served by a pooled (reused) slot. */
    std::uint64_t
    reuses() const
    {
        return reuses_.load(std::memory_order_relaxed);
    }

    /** @return acquisitions that had to heap-allocate a workspace. */
    std::uint64_t
    fallbacks() const
    {
        return fallbacks_.load(std::memory_order_relaxed);
    }

    /** @return the default slot count for this machine. */
    static std::size_t
    defaultSlotCount()
    {
        const std::size_t hw = std::thread::hardware_concurrency();
        return std::max<std::size_t>(2 * hw, 16);
    }

  private:
    /**
     * Stable per-thread slot preference: threads get distinct hints
     * in arrival order, so steady-state workers never collide.
     */
    static std::size_t
    threadHint()
    {
        static std::atomic<std::size_t> next{0};
        thread_local const std::size_t hint =
            next.fetch_add(1, std::memory_order_relaxed);
        return hint;
    }

    std::unique_ptr<Slot[]> slots_;
    std::size_t count_;
    std::atomic<std::uint64_t> reuses_{0};
    std::atomic<std::uint64_t> fallbacks_{0};
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_SCRATCH_POOL_HH
