/**
 * @file
 * Frozen pre-refactor contention solver (see reference_solver.hh).
 *
 * The bodies below are verbatim copies of the original
 * ContentionSolver::solve() and SimulatedEngine::instanceThroughputs()
 * as of the batch refactor, with member references replaced by
 * parameters. Any behavioural edit here invalidates the bit-identity
 * oracle — change the production path instead and prove it against
 * this one.
 */

#include "sim/reference_solver.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "base/check.hh"

namespace statsched
{
namespace sim
{

namespace
{

/** Fraction of instruction fetches exposed to I-cache pressure. */
constexpr double iFetchMissWeight = 0.05;

double
overflowFraction(double footprint_kb, double capacity_kb)
{
    if (footprint_kb <= capacity_kb)
        return 0.0;
    return 1.0 - capacity_kb / footprint_kb;
}

template <typename FootprintFn, typename ShareFn>
double
sharedFootprint(const std::vector<core::TaskId> &members,
                FootprintFn footprint, ShareFn share_id)
{
    double total = 0.0;
    std::map<std::uint32_t, double> shared;
    for (core::TaskId t : members) {
        const std::uint32_t id = share_id(t);
        if (id == 0) {
            total += footprint(t);
        } else {
            auto [it, inserted] = shared.emplace(id, footprint(t));
            if (!inserted)
                it->second = std::max(it->second, footprint(t));
        }
    }
    for (const auto &[id, fp] : shared)
        total += fp;
    return total;
}

/** The original waterfill, frozen together with its callers. */
std::vector<double>
referenceWaterfill(const std::vector<double> &demands, double capacity)
{
    std::vector<double> alloc(demands.size(), 0.0);
    if (demands.empty())
        return alloc;

    std::vector<std::size_t> order(demands.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&demands](std::size_t a, std::size_t b) {
                  return demands[a] < demands[b];
              });

    double remaining = capacity;
    std::size_t left = demands.size();
    for (std::size_t idx : order) {
        const double fair = remaining / static_cast<double>(left);
        const double d = std::max(0.0, demands[idx]);
        const double granted = std::min(d, fair);
        alloc[idx] = granted;
        remaining -= granted;
        --left;
    }
    return alloc;
}

} // anonymous namespace

ContentionResult
referenceSolve(const ChipConfig &config,
               const std::vector<TaskProfile> &tasks,
               const core::Assignment &assignment)
{
    SCHED_REQUIRE(assignment.size() == tasks.size(),
                  "assignment/task-count mismatch");
    const core::Topology &topo = assignment.topology();
    const std::size_t n = tasks.size();

    const auto by_pipe = assignment.tasksByPipe();
    const auto by_core = assignment.tasksByCore();

    // --- Cache pressure per core and chip-wide (assignment dependent,
    // rate independent: computed once).
    std::vector<double> l1d_miss_prob(topo.cores, 0.0);
    std::vector<double> l1i_miss_prob(topo.cores, 0.0);
    for (std::uint32_t c = 0; c < topo.cores; ++c) {
        const auto &members = by_core[c];
        if (members.empty())
            continue;
        const double d_fp = sharedFootprint(
            members,
            [&](core::TaskId t) {
                return tasks[t].l1dFootprintKb +
                    std::min(tasks[t].tableKb, 0.5 * config.l1dKb);
            },
            [&](core::TaskId t) { return tasks[t].sharedDataId; });
        const double i_fp = sharedFootprint(
            members,
            [&](core::TaskId t) {
                return tasks[t].l1iFootprintKb;
            },
            [&](core::TaskId t) { return tasks[t].codeId; });
        const double d_ov = overflowFraction(d_fp, config.l1dKb);
        const double i_ov = overflowFraction(i_fp, config.l1iKb);
        l1d_miss_prob[c] = config.l1BaseMissRate +
            (1.0 - config.l1BaseMissRate) * d_ov * d_ov * d_ov;
        l1i_miss_prob[c] = config.l1BaseMissRate +
            (1.0 - config.l1BaseMissRate) * i_ov * i_ov * i_ov;
    }

    std::vector<core::TaskId> all(n);
    std::iota(all.begin(), all.end(), 0);
    const double l2_fp = sharedFootprint(
        all,
        [&](core::TaskId t) {
            return tasks[t].l2FootprintKb + tasks[t].tableKb;
        },
        [&](core::TaskId t) { return tasks[t].sharedDataId; });
    const double l2_miss_prob = config.l2BaseMissRate +
        (1.0 - config.l2BaseMissRate) *
        overflowFraction(l2_fp, config.l2Kb);

    // --- Per-task stall-inclusive issue demand.
    ContentionResult result;
    result.l1dMissRate.resize(n);
    result.l2MissRate.resize(n);
    std::vector<double> demand(n);
    std::vector<double> mem_frac(n);
    for (std::size_t t = 0; t < n; ++t) {
        const TaskProfile &p = tasks[t];
        const std::uint32_t c = assignment.coreOf(
            static_cast<core::TaskId>(t));

        const double d_miss = p.loadStoreFraction * l1d_miss_prob[c];
        const double i_miss = iFetchMissWeight * l1i_miss_prob[c];
        const double hot_miss = d_miss + i_miss;
        const double table_miss = p.randomAccessFraction *
            overflowFraction(p.tableKb, config.l1dKb);
        const double table_mem_miss = table_miss * l2_miss_prob;

        result.l1dMissRate[t] = l1d_miss_prob[c];
        result.l2MissRate[t] = l2_miss_prob;
        mem_frac[t] = table_mem_miss;

        const double base_cpi = 1.0 / p.issueDemand;
        const double stall_cpi = config.stallExposure *
            ((hot_miss + table_miss - table_mem_miss) *
             config.l1MissPenalty +
             table_mem_miss * config.l2MissPenalty);
        demand[t] = 1.0 / (base_cpi + stall_cpi);
    }

    // --- Fixed point over the shared-port arbiters.
    std::vector<double> rate(demand);
    std::vector<double> request(demand);
    int iter = 0;
    for (; iter < config.solverIterations; ++iter) {
        std::vector<double> cap(n,
                                std::numeric_limits<double>::infinity());

        // IntraPipe: issue bandwidth.
        for (std::uint32_t pipe = 0; pipe < topo.pipes(); ++pipe) {
            const auto &members = by_pipe[pipe];
            if (members.empty())
                continue;
            std::vector<double> d;
            d.reserve(members.size());
            for (core::TaskId t : members)
                d.push_back(request[t]);
            const auto alloc =
                referenceWaterfill(d, config.pipeIssueWidth);
            for (std::size_t i = 0; i < members.size(); ++i) {
                cap[members[i]] =
                    std::min(cap[members[i]], alloc[i]);
            }
        }

        // IntraCore: LSU / FPU / crypto ports.
        struct Port
        {
            double TaskProfile::*fraction;
            double ChipConfig::*width;
        };
        static const Port ports[] = {
            {&TaskProfile::loadStoreFraction, &ChipConfig::lsuWidth},
            {&TaskProfile::fpFraction, &ChipConfig::fpuWidth},
            {&TaskProfile::cryptoFraction, &ChipConfig::cryptoWidth},
        };
        for (const Port &port : ports) {
            for (std::uint32_t c = 0; c < topo.cores; ++c) {
                const auto &members = by_core[c];
                if (members.empty())
                    continue;
                std::vector<double> d;
                std::vector<core::TaskId> users;
                for (core::TaskId t : members) {
                    const double f = tasks[t].*(port.fraction);
                    if (f > 0.0) {
                        users.push_back(t);
                        d.push_back(request[t] * f);
                    }
                }
                if (users.empty())
                    continue;
                const auto alloc =
                    referenceWaterfill(d, config.*(port.width));
                for (std::size_t i = 0; i < users.size(); ++i) {
                    const double f =
                        tasks[users[i]].*(port.fraction);
                    cap[users[i]] =
                        std::min(cap[users[i]], alloc[i] / f);
                }
            }
        }

        // InterCore: off-chip access budget.
        {
            std::vector<double> d;
            std::vector<core::TaskId> users;
            for (std::size_t t = 0; t < n; ++t) {
                if (mem_frac[t] > 0.0) {
                    users.push_back(static_cast<core::TaskId>(t));
                    d.push_back(request[t] * mem_frac[t]);
                }
            }
            if (!users.empty()) {
                const auto alloc =
                    referenceWaterfill(d, config.memAccessWidth);
                for (std::size_t i = 0; i < users.size(); ++i) {
                    cap[users[i]] = std::min(
                        cap[users[i]],
                        alloc[i] / mem_frac[users[i]]);
                }
            }
        }

        // Combine with the intrinsic demand; damp the request update.
        double max_delta = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
            const double next = std::min(demand[t], cap[t]);
            max_delta = std::max(max_delta,
                                 std::fabs(next - rate[t]));
            rate[t] = next;
            request[t] = 0.5 * request[t] + 0.5 * next;
        }
        if (max_delta < 1e-12)
            break;
    }

    result.rates = std::move(rate);
    result.iterations = iter;
    return result;
}

std::vector<double>
referenceInstanceThroughputs(const Workload &workload,
                             const ChipConfig &config,
                             const core::Assignment &assignment)
{
    const auto solved =
        referenceSolve(config, workload.tasks(), assignment);
    const double cycles_per_second = config.clockGhz * 1e9;
    const auto &tasks = workload.tasks();

    std::vector<double> crossing_cycles(workload.taskCount(), 0.0);
    for (const auto &[producer, consumer] : workload.edges()) {
        if (assignment.coreOf(producer) !=
            assignment.coreOf(consumer)) {
            const double pd = tasks[producer].issueDemand;
            const double cd = tasks[consumer].issueDemand;
            crossing_cycles[producer] +=
                config.queueCrossingCycles * pd * pd;
            crossing_cycles[consumer] +=
                config.queueCrossingCycles * cd * cd;
        }
    }

    std::vector<double> stage_pps(workload.taskCount());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        const double cycles_per_packet =
            tasks[t].instructionsPerPacket / solved.rates[t] +
            crossing_cycles[t];
        stage_pps[t] = cycles_per_second / cycles_per_packet;
    }

    std::vector<double> instance_pps;
    instance_pps.reserve(workload.instances().size());
    for (std::size_t i = 0; i < workload.instances().size(); ++i) {
        const auto [first, last] = workload.instanceTaskRange(i);
        double pps = stage_pps[first];
        for (std::uint32_t t = first + 1; t <= last; ++t)
            pps = std::min(pps, stage_pps[t]);
        instance_pps.push_back(pps);
    }
    return instance_pps;
}

double
referenceDeterministic(const Workload &workload,
                       const ChipConfig &config,
                       const core::Assignment &assignment)
{
    const auto per_instance =
        referenceInstanceThroughputs(workload, config, assignment);
    double total = 0.0;
    for (double pps : per_instance)
        total += pps;
    return total;
}

} // namespace sim
} // namespace statsched
