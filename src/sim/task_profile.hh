/**
 * @file
 * Per-task resource-demand profile.
 *
 * A TaskProfile summarizes how one software thread exercises the
 * shared hardware: how many instructions per cycle it would retire
 * uncontended, which fraction of them touch each shared unit, and the
 * cache working sets it drags along. The simulated benchmarks of
 * sim/benchmarks.hh build their stage threads from these profiles,
 * with values grounded in the packet-processing kernels of src/net.
 */

#ifndef STATSCHED_SIM_TASK_PROFILE_HH
#define STATSCHED_SIM_TASK_PROFILE_HH

#include <cstdint>
#include <string>

namespace statsched
{
namespace sim
{

/**
 * Role of a thread inside the three-stage software pipeline used by
 * all the paper's benchmarks (Figure 9).
 */
enum class StageRole
{
    Receive,   //!< reads packets from the NIU, enqueues pointers
    Process,   //!< the benchmark-specific packet processing
    Transmit   //!< dequeues pointers, sends packets to the NIU
};

/** @return a short name for a stage role ("R", "P", "T"). */
inline const char *
stageRoleName(StageRole role)
{
    switch (role) {
      case StageRole::Receive:
        return "R";
      case StageRole::Process:
        return "P";
      default:
        return "T";
    }
}

/**
 * Resource demands of one thread.
 */
struct TaskProfile
{
    std::string name;                //!< e.g. "IPFwd-L1/P"
    StageRole role = StageRole::Process;

    /** Uncontended issue demand in instructions per cycle (<= pipe
     *  issue width; in-order T2 strands sustain at most 1). */
    double issueDemand = 0.7;

    /** Fraction of instructions that are loads or stores. */
    double loadStoreFraction = 0.25;
    /** Fraction of instructions that are floating point. */
    double fpFraction = 0.0;
    /** Fraction of instructions using the crypto unit. */
    double cryptoFraction = 0.0;

    /** Private L1 data working set in KB. */
    double l1dFootprintKb = 2.0;
    /** Instruction working set in KB; threads sharing `codeId` in
     *  the same core count it once (shared text). */
    double l1iFootprintKb = 4.0;
    /** L2 data working set in KB; threads sharing `sharedDataId`
     *  count it once chip-wide. */
    double l2FootprintKb = 16.0;

    /** Identifier of the code image (equal => shared L1I lines). */
    std::uint32_t codeId = 0;
    /** Identifier of a shared data structure (0 = none). */
    std::uint32_t sharedDataId = 0;

    /**
     * Size in KB of a bulk randomly accessed structure (IPFwd lookup
     * table, Aho-Corasick automaton, stateful flow table); 0 = none.
     * Accesses to it miss the caches according to how much of it
     * fits; it is *not* part of the hot l1dFootprintKb.
     */
    double tableKb = 0.0;
    /** Fraction of instructions that access the bulk structure. */
    double randomAccessFraction = 0.0;

    /** Instructions retired per processed packet by this stage. */
    double instructionsPerPacket = 800.0;
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_TASK_PROFILE_HH
