/**
 * @file
 * Workload implementation.
 */

#include "sim/workload.hh"

#include "base/check.hh"

namespace statsched
{
namespace sim
{

void
Workload::addInstance(AppInstance instance)
{
    SCHED_REQUIRE(!instance.stages.empty(),
                  "instance with no stages");
    const std::uint32_t first =
        static_cast<std::uint32_t>(tasks_.size());
    for (std::size_t s = 0; s < instance.stages.size(); ++s) {
        tasks_.push_back(instance.stages[s]);
        if (s > 0) {
            edges_.emplace_back(first + static_cast<std::uint32_t>(s)
                                - 1,
                                first + static_cast<std::uint32_t>(s));
        }
    }
    ranges_.emplace_back(first,
                         static_cast<std::uint32_t>(tasks_.size()) - 1);
    instances_.push_back(std::move(instance));
}

std::uint32_t
Workload::taskCount() const
{
    return static_cast<std::uint32_t>(tasks_.size());
}

std::pair<std::uint32_t, std::uint32_t>
Workload::instanceTaskRange(std::size_t instance) const
{
    SCHED_REQUIRE(instance < ranges_.size(),
                  "instance index out of range");
    return ranges_[instance];
}

} // namespace sim
} // namespace statsched
