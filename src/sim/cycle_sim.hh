/**
 * @file
 * Cycle-approximate discrete simulator of the UltraSPARC T2.
 *
 * A second, independent measurement engine that cross-validates the
 * analytic contention solver (sim/contention.hh): instead of a
 * fixed-point rate model it steps the machine cycle by cycle —
 *
 *  - each hardware pipeline issues at most one instruction per cycle,
 *    round-robin among its ready strands (the T2 issue policy);
 *  - loads/stores probe a real set-associative L1D per core; misses
 *    probe the shared L2; L2 misses stall the strand for the memory
 *    latency (sim/cache.hh);
 *  - instruction fetches probe the per-core L1I with per-code-image
 *    address streams, so co-located threads of the same program share
 *    instruction lines;
 *  - bulk structures (lookup tables / automata / flow tables) are
 *    touched at random addresses within their footprint, private or
 *    shared according to the profile's sharedDataId;
 *  - pipeline stages exchange packets through bounded queues: a stage
 *    blocks at a packet boundary when its input is empty or its
 *    output is full, so backpressure and bottleneck propagation are
 *    emergent rather than modeled.
 *
 * bench/abl_cycle_vs_analytic compares the two engines assignment by
 * assignment and runs the EVT estimation on both populations.
 */

#ifndef STATSCHED_SIM_CYCLE_SIM_HH
#define STATSCHED_SIM_CYCLE_SIM_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/performance_engine.hh"
#include "sim/chip_config.hh"
#include "sim/workload.hh"

namespace statsched
{
namespace sim
{

/**
 * Options of the cycle-approximate simulation.
 */
struct CycleSimOptions
{
    /** Simulated cycles per measurement (after warmup). */
    std::uint64_t cycles = 50000;
    /** Warmup cycles excluded from throughput accounting. */
    std::uint64_t warmupCycles = 10000;
    /** Stage-queue capacity in packets. */
    std::uint32_t queueDepth = 32;
    /** Seed of the per-strand access-stream RNGs. */
    std::uint64_t seed = 0xC1C1E5;
    /** Fraction of instructions whose fetch probes the L1I (the
     *  rest hit the fetch buffer). */
    double fetchProbeFraction = 0.05;
};

/**
 * PerformanceEngine backed by the cycle-approximate machine.
 */
class CycleSimEngine : public core::PerformanceEngine
{
  public:
    /**
     * @param workload Workload to run (copied).
     * @param config   Chip capacities/latencies (cache sizes and the
     *                 miss penalties are taken from here).
     * @param options  Simulation options.
     */
    CycleSimEngine(Workload workload, const ChipConfig &config = {},
                   const CycleSimOptions &options = {});

    ~CycleSimEngine() override;

    /** @return packets per second measured by simulation. */
    double measure(const core::Assignment &assignment) override;

    void measureBatch(std::span<const core::Assignment> batch,
                      std::span<double> out) override;

    /**
     * The cycle simulation is a deterministic pure function of the
     * assignment (RNG streams are seeded per strand, not per call),
     * so batch items evaluate independently on any thread with
     * bit-identical results; each evaluation leases a pooled machine
     * image (caches, strand state, queues) and resets it in place
     * instead of reallocating.
     */
    core::BatchKernel parallelKernel(std::size_t batchSize) override;

    /** Contributes scratch-pool reuse/fallback counters. */
    void collectStats(core::EngineStats &stats) const override;

    std::string name() const override;

    /** The modeled wall-clock of one measurement is the simulated
     *  interval itself. */
    double secondsPerMeasurement() const override;

    /** @return the workload. */
    const Workload &workload() const { return workload_; }

  private:
    /** Pool of reusable machine images (defined in the .cc). */
    struct Impl;

    Workload workload_;
    ChipConfig config_;
    CycleSimOptions options_;
    std::unique_ptr<Impl> impl_;
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_CYCLE_SIM_HH
