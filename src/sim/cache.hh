/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Used by the cycle-approximate simulator (sim/cycle_sim.hh) to
 * derive L1 hit/miss behaviour from actual address streams instead
 * of the analytic footprint heuristic — the cross-validation between
 * the two engines (bench/abl_cycle_vs_analytic) checks that the
 * heuristic is faithful where it matters.
 */

#ifndef STATSCHED_SIM_CACHE_HH
#define STATSCHED_SIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace statsched
{
namespace sim
{

/**
 * A single-level set-associative LRU cache.
 */
class SetAssociativeCache
{
  public:
    /**
     * @param size_kb    Capacity in KB.
     * @param ways       Associativity (>= 1).
     * @param line_bytes Line size in bytes (power of two).
     */
    SetAssociativeCache(double size_kb, std::uint32_t ways,
                        std::uint32_t line_bytes);

    /**
     * Performs one access.
     *
     * @param address Byte address.
     * @return true on hit.
     */
    bool access(std::uint64_t address);

    /** @return true without updating state (lookup probe). */
    bool contains(std::uint64_t address) const;

    /** Invalidates all lines. */
    void flush();

    /**
     * Returns the cache to its just-constructed state: all lines
     * invalid, LRU clock and access/miss counters zeroed. Exactly
     * equivalent to destroying and re-constructing the cache with the
     * same geometry, minus the allocation — the cycle simulator's
     * scratch reuse depends on this equivalence.
     */
    void reset();

    /** @return accesses so far. */
    std::uint64_t accesses() const { return accesses_; }

    /** @return misses so far. */
    std::uint64_t misses() const { return misses_; }

    /** @return miss ratio (0 when no accesses yet). */
    double
    missRatio() const
    {
        return accesses_ ? static_cast<double>(misses_) /
            static_cast<double>(accesses_) : 0.0;
    }

    /** @return number of sets. */
    std::uint32_t sets() const { return sets_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t ways_;
    std::uint32_t lineShift_;
    std::uint32_t sets_;
    std::vector<Line> lines_;   // sets_ x ways_, row-major
    std::uint64_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_CACHE_HH
