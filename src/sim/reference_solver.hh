/**
 * @file
 * Frozen straight-line reference of the contention model.
 *
 * This is the pre-batch-refactor solver and throughput computation,
 * kept verbatim as an executable specification: it allocates freely,
 * uses std::map for shared-footprint dedup and re-derives every
 * assignment-independent quantity on each call. The production path
 * (sim/contention.hh + sim/engine.hh) is required to be bit-identical
 * to these functions for every workload, assignment and seed — the
 * property tests (tests/sim/test_batch_identity.cc) and the
 * throughput benchmark (bench/bench_sim_throughput.cc) both compare
 * against this oracle, and the benchmark reports its measurements/sec
 * as the pre-refactor baseline.
 *
 * Do not optimize this file. Its slowness is the point.
 */

#ifndef STATSCHED_SIM_REFERENCE_SOLVER_HH
#define STATSCHED_SIM_REFERENCE_SOLVER_HH

#include <vector>

#include "core/assignment.hh"
#include "sim/chip_config.hh"
#include "sim/contention.hh"
#include "sim/task_profile.hh"
#include "sim/workload.hh"

namespace statsched
{
namespace sim
{

/**
 * The original ContentionSolver::solve(), as a free function.
 *
 * @param config     Chip capacities and penalties.
 * @param tasks      Task profiles, indexed by TaskId.
 * @param assignment Assignment of all tasks.
 */
ContentionResult
referenceSolve(const ChipConfig &config,
               const std::vector<TaskProfile> &tasks,
               const core::Assignment &assignment);

/**
 * The original SimulatedEngine::instanceThroughputs(): per-instance
 * noiseless PPS through the reference solver.
 */
std::vector<double>
referenceInstanceThroughputs(const Workload &workload,
                             const ChipConfig &config,
                             const core::Assignment &assignment);

/**
 * The original SimulatedEngine::deterministic(): total noiseless PPS
 * through the reference solver.
 */
double referenceDeterministic(const Workload &workload,
                              const ChipConfig &config,
                              const core::Assignment &assignment);

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_REFERENCE_SOLVER_HH
