/**
 * @file
 * Simulated measurement engine.
 *
 * SimulatedEngine is the stand-in for the paper's physical testbed
 * (two T5220 machines, NTGen saturating a 10 Gb link, Netra DPS
 * executing the assignment — Section 4). It measures an assignment
 * by resolving resource contention, converting stage instruction
 * rates to packet rates, taking each pipeline's bottleneck stage, and
 * summing instances — in processed packets per second, like the
 * paper. Optional multiplicative Gaussian noise models run-to-run
 * measurement variation; each measurement draws fresh noise, so a
 * sample of measurements is iid as the EVT analysis requires.
 *
 * Noise is *seeded per measurement index*, not per call: the k-th
 * measurement since construction perturbs its value with an RNG
 * seeded from (noiseSeed, k). A batch reserves its index range up
 * front, so evaluating the batch serially, chunked, or on many
 * threads (core::ParallelEngine) produces bit-identical results, and
 * measure() itself is safe to call concurrently.
 *
 * Batch-first layout: the engine is the hot path of every campaign,
 * so per-measurement work that does not depend on the assignment —
 * instructions per packet, cycles per second, the queue-crossing
 * penalty each edge would pay if split across cores — is precomputed
 * at construction, and the per-measurement remainder runs
 * allocation-free against a pooled per-thread Scratch workspace
 * (sim::ScratchPool). The kernels published by parallelKernel() lease
 * a workspace per evaluation, so core::ParallelEngine workers neither
 * contend nor allocate in steady state, with outputs bit-identical to
 * the serial path and to the frozen pre-refactor engine
 * (sim/reference_solver.hh).
 */

#ifndef STATSCHED_SIM_ENGINE_HH
#define STATSCHED_SIM_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "core/performance_engine.hh"
#include "sim/contention.hh"
#include "sim/scratch_pool.hh"
#include "sim/workload.hh"
#include "stats/rng.hh"

namespace statsched
{
namespace sim
{

/**
 * Configuration of the simulated measurement.
 */
struct EngineOptions
{
    /** Relative standard deviation of measurement noise (0 turns
     *  noise off and makes measurements exactly repeatable). */
    double noiseRelStdDev = 0.0005;
    /** Noise RNG seed. */
    std::uint64_t noiseSeed = 0x5eed;
    /** Modeled wall-clock duration of one measurement; the paper's
     *  runs process three million packets in ~1.5 s. */
    double secondsPerMeasurement = 1.5;
};

/**
 * PerformanceEngine backed by the contention model.
 */
class SimulatedEngine : public core::PerformanceEngine
{
  public:
    /**
     * Per-thread measurement workspace: the solver scratch plus the
     * engine's own stage-rate buffers. Reused across measurements;
     * never shared between concurrent evaluations.
     */
    struct Scratch
    {
        ContentionSolver::Scratch solver;
        ContentionResult solved;
        /** Exposed queue-crossing cycles per task. */
        std::vector<double> crossing;
        /** Bottleneck candidate packet rate per stage. */
        std::vector<double> stagePps;
    };

    /**
     * @param workload Workload to schedule (copied).
     * @param config   Chip configuration.
     * @param options  Noise and timing options.
     */
    SimulatedEngine(Workload workload, const ChipConfig &config = {},
                    const EngineOptions &options = {});

    /** @return packets per second for the assignment (with noise). */
    double measure(const core::Assignment &assignment) override;

    void measureBatch(std::span<const core::Assignment> batch,
                      std::span<double> out) override;

    /**
     * Reserves the next `batchSize` noise indices and returns the
     * pure per-item kernel over them (see PerformanceEngine).
     */
    core::BatchKernel parallelKernel(std::size_t batchSize) override;

    /** @return deterministic PPS (no noise), for tests/baselines. */
    double deterministic(const core::Assignment &assignment) const;

    std::string name() const override;

    double
    secondsPerMeasurement() const override
    {
        return options_.secondsPerMeasurement;
    }

    /**
     * Contributes solver and scratch-pool counters (solves, fixed-
     * point iterations, workspace reuses/fallbacks).
     */
    void collectStats(core::EngineStats &stats) const override;

    /** @return the workload driving this engine. */
    const Workload &workload() const { return workload_; }

    /** @return the chip configuration. */
    const ChipConfig &config() const { return config_; }

    /** @return per-instance PPS for an assignment (no noise). */
    std::vector<double>
    instanceThroughputs(const core::Assignment &assignment) const;

    /**
     * Allocation-free variant of instanceThroughputs(): fills `out`
     * (resized in place) using only the caller's workspace. Batch
     * consumers reuse one Scratch + output buffer across calls.
     */
    void instanceThroughputsInto(const core::Assignment &assignment,
                                 Scratch &scratch,
                                 std::vector<double> &out) const;

  private:
    /** Multiplicative noise factor of measurement `index`. */
    double noiseFactorAt(std::uint64_t index) const;

    /** Solves and fills scratch.stagePps; shared by the Into paths.
     *  Does not touch the stats counters — callers account solves
     *  themselves (the serial batch loop folds a whole batch into two
     *  atomic adds instead of two per item). */
    void stageRatesInto(const core::Assignment &assignment,
                        Scratch &scratch) const;

    /** Noise-free total PPS using the caller's workspace; uncounted
     *  like stageRatesInto(). */
    double deterministicInto(const core::Assignment &assignment,
                             Scratch &scratch) const;

    /** Adds one stageRatesInto() outcome to the stats counters. */
    void countSolve(const Scratch &scratch) const
    {
        solves_.fetch_add(1, std::memory_order_relaxed);
        solverIterations_.fetch_add(
            static_cast<std::uint64_t>(scratch.solved.iterations),
            std::memory_order_relaxed);
    }

    Workload workload_;
    ChipConfig config_;
    EngineOptions options_;
    ContentionSolver solver_;
    /** Next unassigned measurement index (noise substream id). */
    std::atomic<std::uint64_t> noiseCursor_{0};

    /** Queue-crossing penalty an edge pays iff it spans cores. */
    struct EdgeCrossing
    {
        core::TaskId producer;
        core::TaskId consumer;
        double producerCycles;
        double consumerCycles;
    };

    // --- Assignment-independent tables, built once.
    double cyclesPerSecond_ = 0.0;
    std::vector<double> instrPerPacket_;
    std::vector<EdgeCrossing> edgeCrossings_;

    /** Per-thread workspaces for the measurement hot path. */
    mutable ScratchPool<Scratch> pool_;
    /** Contention solves executed (all channels). */
    mutable std::atomic<std::uint64_t> solves_{0};
    /** Fixed-point iterations across those solves. */
    mutable std::atomic<std::uint64_t> solverIterations_{0};
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_ENGINE_HH
