/**
 * @file
 * Simulated measurement engine.
 *
 * SimulatedEngine is the stand-in for the paper's physical testbed
 * (two T5220 machines, NTGen saturating a 10 Gb link, Netra DPS
 * executing the assignment — Section 4). It measures an assignment
 * by resolving resource contention, converting stage instruction
 * rates to packet rates, taking each pipeline's bottleneck stage, and
 * summing instances — in processed packets per second, like the
 * paper. Optional multiplicative Gaussian noise models run-to-run
 * measurement variation; each measurement draws fresh noise, so a
 * sample of measurements is iid as the EVT analysis requires.
 *
 * Noise is *seeded per measurement index*, not per call: the k-th
 * measurement since construction perturbs its value with an RNG
 * seeded from (noiseSeed, k). A batch reserves its index range up
 * front, so evaluating the batch serially, chunked, or on many
 * threads (core::ParallelEngine) produces bit-identical results, and
 * measure() itself is safe to call concurrently.
 */

#ifndef STATSCHED_SIM_ENGINE_HH
#define STATSCHED_SIM_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "core/performance_engine.hh"
#include "sim/contention.hh"
#include "sim/workload.hh"
#include "stats/rng.hh"

namespace statsched
{
namespace sim
{

/**
 * Configuration of the simulated measurement.
 */
struct EngineOptions
{
    /** Relative standard deviation of measurement noise (0 turns
     *  noise off and makes measurements exactly repeatable). */
    double noiseRelStdDev = 0.0005;
    /** Noise RNG seed. */
    std::uint64_t noiseSeed = 0x5eed;
    /** Modeled wall-clock duration of one measurement; the paper's
     *  runs process three million packets in ~1.5 s. */
    double secondsPerMeasurement = 1.5;
};

/**
 * PerformanceEngine backed by the contention model.
 */
class SimulatedEngine : public core::PerformanceEngine
{
  public:
    /**
     * @param workload Workload to schedule (copied).
     * @param config   Chip configuration.
     * @param options  Noise and timing options.
     */
    SimulatedEngine(Workload workload, const ChipConfig &config = {},
                    const EngineOptions &options = {});

    /** @return packets per second for the assignment (with noise). */
    double measure(const core::Assignment &assignment) override;

    void measureBatch(std::span<const core::Assignment> batch,
                      std::span<double> out) override;

    /**
     * Reserves the next `batchSize` noise indices and returns the
     * pure per-item kernel over them (see PerformanceEngine).
     */
    core::BatchKernel parallelKernel(std::size_t batchSize) override;

    /** @return deterministic PPS (no noise), for tests/baselines. */
    double deterministic(const core::Assignment &assignment) const;

    std::string name() const override;

    double
    secondsPerMeasurement() const override
    {
        return options_.secondsPerMeasurement;
    }

    /** @return the workload driving this engine. */
    const Workload &workload() const { return workload_; }

    /** @return the chip configuration. */
    const ChipConfig &config() const { return config_; }

    /** @return per-instance PPS for an assignment (no noise). */
    std::vector<double>
    instanceThroughputs(const core::Assignment &assignment) const;

  private:
    /** Multiplicative noise factor of measurement `index`. */
    double noiseFactorAt(std::uint64_t index) const;

    Workload workload_;
    ChipConfig config_;
    EngineOptions options_;
    ContentionSolver solver_;
    /** Next unassigned measurement index (noise substream id). */
    std::atomic<std::uint64_t> noiseCursor_{0};
};

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_ENGINE_HH
