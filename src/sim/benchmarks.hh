/**
 * @file
 * The paper's benchmark suite as simulated workloads (Section 4.3).
 *
 * Five multithreaded network benchmarks, each a three-thread pipeline
 * (Receive -> Process -> Transmit, Figure 9), plus the two IPFwd
 * variants of the motivation experiment (Figure 1):
 *
 *  - IPFwd-L1:      IP forwarding, lookup table resident in the L1
 *                   data cache (best-case memory behaviour);
 *  - IPFwd-Mem:     IP forwarding, lookup table initialized to force
 *                   main-memory accesses (worst case);
 *  - PacketAnalyzer: L2/L3/L4 header decode and logging;
 *  - AhoCorasick:   payload keyword search with the Aho-Corasick
 *                   automaton (Snort DoS rules);
 *  - Stateful:      flow tracking in a 2^16-entry hash table (nProbe
 *                   hash function);
 *  - IPFwd-intadd / IPFwd-intmul: the 3-thread pipelined IPFwd
 *                   variants whose processing kernel is integer add /
 *                   integer multiply bound.
 *
 * The stage resource profiles are grounded in the packet-processing
 * kernels of src/net (see net/kernel_costs.hh for the measured
 * per-packet operation counts) and calibrated so the simulated
 * magnitudes match those the paper reports: ~0.85 MPPS per IPFwd
 * instance at best, a 0.715-1.7 MPPS assignment range for the
 * 6-thread workload, and ~6.6 MPPS best-case for 24 threads of
 * IPFwd-L1.
 */

#ifndef STATSCHED_SIM_BENCHMARKS_HH
#define STATSCHED_SIM_BENCHMARKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/workload.hh"

namespace statsched
{
namespace sim
{

/** Benchmark identifiers for the suite of the case study. */
enum class Benchmark
{
    IpfwdL1,
    IpfwdMem,
    PacketAnalyzer,
    AhoCorasick,
    Stateful,
    IpfwdIntAdd,   //!< Figure 1 variant
    IpfwdIntMul,   //!< Figure 1 variant
    /** Extension workload (not in the paper's suite): ESP
     *  encrypt-and-forward, whose P stage leans on the per-core
     *  cryptographic unit — the third IntraCore resource the paper
     *  lists (Section 4.1) but does not exercise. */
    IpsecEsp
};

/** @return the paper's name of a benchmark. */
std::string benchmarkName(Benchmark benchmark);

/**
 * Builds a workload of `instances` pipelined instances of one
 * benchmark (the case study uses 8 instances = 24 threads).
 *
 * @param benchmark Which benchmark.
 * @param instances Number of 3-thread instances, >= 1.
 */
Workload makeWorkload(Benchmark benchmark, std::uint32_t instances);

/** The five case-study benchmarks (Sections 4.3 and 5). */
std::vector<Benchmark> caseStudySuite();

} // namespace sim
} // namespace statsched

#endif // STATSCHED_SIM_BENCHMARKS_HH
