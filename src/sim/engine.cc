/**
 * @file
 * SimulatedEngine implementation.
 */

#include "sim/engine.hh"

#include <algorithm>
#include <cmath>

#include "base/check.hh"

namespace statsched
{
namespace sim
{

SimulatedEngine::SimulatedEngine(Workload workload,
                                 const ChipConfig &config,
                                 const EngineOptions &options)
    : workload_(std::move(workload)), config_(config),
      options_(options), solver_(config, workload_.tasks())
{
    SCHED_REQUIRE(workload_.taskCount() > 0, "empty workload");
    SCHED_REQUIRE(options_.noiseRelStdDev >= 0.0,
                  "negative noise level");
}

std::vector<double>
SimulatedEngine::instanceThroughputs(
    const core::Assignment &assignment) const
{
    const auto solved = solver_.solve(assignment);
    const double cycles_per_second = config_.clockGhz * 1e9;
    const auto &tasks = workload_.tasks();

    // Queue-locality penalty: an edge whose endpoints sit on
    // different cores pays a crossbar round trip on every pointer.
    // The extra per-packet stall is exposed in proportion to the
    // endpoint's issue demand (a saturated strand cannot hide it).
    std::vector<double> crossing_cycles(workload_.taskCount(), 0.0);
    for (const auto &[producer, consumer] : workload_.edges()) {
        if (assignment.coreOf(producer) !=
            assignment.coreOf(consumer)) {
            // Quadratic in the issue demand: a deep asynchronous
            // queue hides the crossing latency behind slack unless
            // the strand is close to issue saturation.
            const double pd = tasks[producer].issueDemand;
            const double cd = tasks[consumer].issueDemand;
            crossing_cycles[producer] +=
                config_.queueCrossingCycles * pd * pd;
            crossing_cycles[consumer] +=
                config_.queueCrossingCycles * cd * cd;
        }
    }

    // Stage packet rates: per-packet time is the contended
    // instruction time plus the exposed queue-crossing stalls.
    std::vector<double> stage_pps(workload_.taskCount());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        const double cycles_per_packet =
            tasks[t].instructionsPerPacket / solved.rates[t] +
            crossing_cycles[t];
        stage_pps[t] = cycles_per_second / cycles_per_packet;
    }

    // Each pipeline runs at its bottleneck stage.
    std::vector<double> instance_pps;
    instance_pps.reserve(workload_.instances().size());
    for (std::size_t i = 0; i < workload_.instances().size(); ++i) {
        const auto [first, last] = workload_.instanceTaskRange(i);
        double pps = stage_pps[first];
        for (std::uint32_t t = first + 1; t <= last; ++t)
            pps = std::min(pps, stage_pps[t]);
        instance_pps.push_back(pps);
    }
    return instance_pps;
}

double
SimulatedEngine::deterministic(const core::Assignment &assignment) const
{
    const auto per_instance = instanceThroughputs(assignment);
    double total = 0.0;
    for (double pps : per_instance)
        total += pps;
    return total;
}

double
SimulatedEngine::noiseFactorAt(std::uint64_t index) const
{
    if (options_.noiseRelStdDev == 0.0)
        return 1.0;
    // SplitMix64 finalizer over (seed, index): an independent noise
    // substream per measurement index, so a batch item's noise does
    // not depend on which thread evaluates it or in what order.
    std::uint64_t z = options_.noiseSeed +
        (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    stats::Rng rng(z ^ (z >> 31));
    const double factor =
        1.0 + options_.noiseRelStdDev * rng.normal();
    // Clamp pathological draws; throughput cannot be negative.
    return std::max(0.0, factor);
}

double
SimulatedEngine::measure(const core::Assignment &assignment)
{
    const std::uint64_t index =
        noiseCursor_.fetch_add(1, std::memory_order_relaxed);
    return deterministic(assignment) * noiseFactorAt(index);
}

void
SimulatedEngine::measureBatch(std::span<const core::Assignment> batch,
                              std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    const auto kernel = parallelKernel(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = kernel(batch[i], i);
}

core::BatchKernel
SimulatedEngine::parallelKernel(std::size_t batchSize)
{
    const std::uint64_t base =
        noiseCursor_.fetch_add(batchSize, std::memory_order_relaxed);
    return [this, base](const core::Assignment &a, std::size_t i) {
        return deterministic(a) * noiseFactorAt(base + i);
    };
}

std::string
SimulatedEngine::name() const
{
    return "sim:" + workload_.name();
}

} // namespace sim
} // namespace statsched
