/**
 * @file
 * SimulatedEngine implementation.
 *
 * Hot-path discipline: everything downstream of stageRatesInto() must
 * stay allocation-free in steady state (tools/lint enforces this via
 * statsched-sim-hot-alloc) and bit-identical to the frozen reference
 * engine. Per-edge crossing penalties are precomputed at construction
 * — whether an edge pays them still depends on the assignment, but
 * the amount does not — and edges are replayed in workload order, so
 * the per-task accumulation order matches the reference exactly.
 */

#include "sim/engine.hh"

#include <algorithm>
#include <cmath>

#include "base/check.hh"

namespace statsched
{
namespace sim
{

SimulatedEngine::SimulatedEngine(Workload workload,
                                 const ChipConfig &config,
                                 const EngineOptions &options)
    : workload_(std::move(workload)), config_(config),
      options_(options), solver_(config, workload_.tasks())
{
    SCHED_REQUIRE(workload_.taskCount() > 0, "empty workload");
    SCHED_REQUIRE(options_.noiseRelStdDev >= 0.0,
                  "negative noise level");

    cyclesPerSecond_ = config_.clockGhz * 1e9;

    const auto &tasks = workload_.tasks();
    instrPerPacket_.resize(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t)
        instrPerPacket_[t] = tasks[t].instructionsPerPacket;

    // Queue-locality penalty: an edge whose endpoints sit on
    // different cores pays a crossbar round trip on every pointer.
    // The extra per-packet stall is exposed in proportion to the
    // endpoint's issue demand (a saturated strand cannot hide it) —
    // quadratic, because a deep asynchronous queue hides the crossing
    // latency behind slack unless the strand is close to issue
    // saturation. The penalty amounts depend only on the profiles,
    // so they are frozen here; the assignment only decides whether
    // each edge pays them.
    edgeCrossings_.reserve(workload_.edges().size());
    for (const auto &[producer, consumer] : workload_.edges()) {
        const double pd = tasks[producer].issueDemand;
        const double cd = tasks[consumer].issueDemand;
        edgeCrossings_.push_back(
            {producer, consumer,
             config_.queueCrossingCycles * pd * pd,
             config_.queueCrossingCycles * cd * cd});
    }
}

void
SimulatedEngine::stageRatesInto(const core::Assignment &assignment,
                                Scratch &scratch) const
{
    solver_.solveInto(assignment, scratch.solver, scratch.solved);

    // The solver just cached every task's core id in its scratch;
    // reuse it instead of re-deriving each endpoint's core through
    // the checked topology lookups of Assignment::coreOf.
    scratch.crossing.assign(workload_.taskCount(), 0.0);
    const std::uint32_t *core_of = scratch.solver.coreIdOf.data();
    for (const EdgeCrossing &edge : edgeCrossings_) {
        if (core_of[edge.producer] != core_of[edge.consumer]) {
            scratch.crossing[edge.producer] += edge.producerCycles;
            scratch.crossing[edge.consumer] += edge.consumerCycles;
        }
    }

    // Stage packet rates: per-packet time is the contended
    // instruction time plus the exposed queue-crossing stalls.
    const std::size_t n = workload_.taskCount();
    scratch.stagePps.resize(n);
    for (std::size_t t = 0; t < n; ++t) {
        const double cycles_per_packet =
            instrPerPacket_[t] / scratch.solved.rates[t] +
            scratch.crossing[t];
        scratch.stagePps[t] = cyclesPerSecond_ / cycles_per_packet;
    }
}

void
SimulatedEngine::instanceThroughputsInto(
    const core::Assignment &assignment, Scratch &scratch,
    std::vector<double> &out) const
{
    stageRatesInto(assignment, scratch);
    countSolve(scratch);

    // Each pipeline runs at its bottleneck stage.
    const std::size_t instances = workload_.instances().size();
    out.resize(instances);
    for (std::size_t i = 0; i < instances; ++i) {
        const auto [first, last] = workload_.instanceTaskRange(i);
        double pps = scratch.stagePps[first];
        for (std::uint32_t t = first + 1; t <= last; ++t)
            pps = std::min(pps, scratch.stagePps[t]);
        out[i] = pps;
    }
}

std::vector<double>
SimulatedEngine::instanceThroughputs(
    const core::Assignment &assignment) const
{
    auto lease = pool_.acquire();
    std::vector<double> out; // NOLINT(statsched-sim-hot-alloc): one-shot convenience wrapper; batch callers use instanceThroughputsInto
    instanceThroughputsInto(assignment, *lease, out);
    return out;
}

double
SimulatedEngine::deterministicInto(const core::Assignment &assignment,
                                   Scratch &scratch) const
{
    stageRatesInto(assignment, scratch);

    // Sum of per-instance bottlenecks, accumulated in instance order
    // (the same order the per-instance vector would be summed in).
    double total = 0.0;
    for (std::size_t i = 0; i < workload_.instances().size(); ++i) {
        const auto [first, last] = workload_.instanceTaskRange(i);
        double pps = scratch.stagePps[first];
        for (std::uint32_t t = first + 1; t <= last; ++t)
            pps = std::min(pps, scratch.stagePps[t]);
        total += pps;
    }
    return total;
}

double
SimulatedEngine::deterministic(const core::Assignment &assignment) const
{
    auto lease = pool_.acquire();
    const double value = deterministicInto(assignment, *lease);
    countSolve(*lease);
    return value;
}

double
SimulatedEngine::noiseFactorAt(std::uint64_t index) const
{
    if (options_.noiseRelStdDev == 0.0)
        return 1.0;
    // SplitMix64 finalizer over (seed, index): an independent noise
    // substream per measurement index, so a batch item's noise does
    // not depend on which thread evaluates it or in what order.
    std::uint64_t z = options_.noiseSeed +
        (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    stats::Rng rng(z ^ (z >> 31));
    const double factor =
        1.0 + options_.noiseRelStdDev * rng.normal();
    // Clamp pathological draws; throughput cannot be negative.
    return std::max(0.0, factor);
}

double
SimulatedEngine::measure(const core::Assignment &assignment)
{
    const std::uint64_t index =
        noiseCursor_.fetch_add(1, std::memory_order_relaxed);
    auto lease = pool_.acquire();
    const double value = deterministicInto(assignment, *lease);
    countSolve(*lease);
    return value * noiseFactorAt(index);
}

void
SimulatedEngine::measureBatch(std::span<const core::Assignment> batch,
                              std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    // One workspace for the whole serial batch: the kernel closure is
    // bypassed so the lease is acquired once, not per item.
    const std::uint64_t base = noiseCursor_.fetch_add(
        batch.size(), std::memory_order_relaxed);
    auto lease = pool_.acquire();
    std::uint64_t iterations = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        out[i] = deterministicInto(batch[i], *lease) *
            noiseFactorAt(base + i);
        iterations +=
            static_cast<std::uint64_t>(lease->solved.iterations);
    }
    solves_.fetch_add(batch.size(), std::memory_order_relaxed);
    solverIterations_.fetch_add(iterations,
                                std::memory_order_relaxed);
}

core::BatchKernel
SimulatedEngine::parallelKernel(std::size_t batchSize)
{
    const std::uint64_t base =
        noiseCursor_.fetch_add(batchSize, std::memory_order_relaxed);
    return [this, base](const core::Assignment &a, std::size_t i) {
        auto lease = pool_.acquire();
        const double value = deterministicInto(a, *lease);
        countSolve(*lease);
        return value * noiseFactorAt(base + i);
    };
}

void
SimulatedEngine::collectStats(core::EngineStats &stats) const
{
    stats.solves += solves_.load(std::memory_order_relaxed);
    stats.solverIterations +=
        solverIterations_.load(std::memory_order_relaxed);
    stats.scratchReuses += pool_.reuses();
    stats.scratchFallbacks += pool_.fallbacks();
}

std::string
SimulatedEngine::name() const
{
    return "sim:" + workload_.name();
}

} // namespace sim
} // namespace statsched
