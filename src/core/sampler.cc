/**
 * @file
 * RandomAssignmentSampler implementation.
 */

#include "core/sampler.hh"

#include <numeric>
#include "base/check.hh"

namespace statsched
{
namespace core
{

RandomAssignmentSampler::RandomAssignmentSampler(
    const Topology &topology, std::uint32_t tasks, std::uint64_t seed,
    SamplingMethod method)
    : topology_(topology), tasks_(tasks), rng_(seed), method_(method)
{
    SCHED_REQUIRE(tasks >= 1 && tasks <= topology.contexts(),
                  "workload size out of range");
}

Assignment
RandomAssignmentSampler::draw()
{
    const std::uint32_t v = topology_.contexts();
    std::vector<ContextId> contexts(tasks_);

    if (method_ == SamplingMethod::RejectionPaper) {
        for (;;) {
            ++attempts_;
            for (auto &ctx : contexts)
                ctx = static_cast<ContextId>(rng_.uniformInt(v));
            if (Assignment::isValid(topology_, contexts))
                break;
            // Discard and redraw the whole assignment, exactly as in
            // the paper, preserving uniformity over valid placements.
        }
    } else {
        // Partial Fisher-Yates: a uniformly random ordered T-subset
        // of the V contexts — the same distribution the rejection
        // loop converges to, in O(T) time.
        ++attempts_;
        if (scratch_.size() != v) {
            scratch_.resize(v);
            std::iota(scratch_.begin(), scratch_.end(), 0);
        }
        for (std::uint32_t t = 0; t < tasks_; ++t) {
            const std::uint32_t j = t + static_cast<std::uint32_t>(
                rng_.uniformInt(v - t));
            std::swap(scratch_[t], scratch_[j]);
            contexts[t] = scratch_[t];
        }
    }

    ++produced_;
    return Assignment(topology_, contexts);
}

std::vector<Assignment>
RandomAssignmentSampler::drawSample(std::size_t n)
{
    std::vector<Assignment> sample;
    sample.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        sample.push_back(draw());
    return sample;
}

} // namespace core
} // namespace statsched
