/**
 * @file
 * Fault-tolerant sharded measurement across worker backends.
 *
 * ShardedEngine is the fan-out layer of the measurement stack: it
 * partitions every measureBatchOutcome() across N shard backends —
 * in production, statsched_worker subprocesses speaking the CRC-framed
 * pipe protocol of core/shard_protocol.hh — and merges the outcomes
 * back by original batch index. The paper's method needs *volume* of
 * iid measurements (Section 5.3); after the batch-first simulator
 * this is the next axis of scale, and it must not cost determinism:
 *
 *   Bit-identity contract. Results are byte-identical for ANY shard
 *   count, including 1 and the unsharded in-process path. The engine
 *   keeps one global measurement cursor; a batch of size B occupies
 *   the index window [base, base + B) regardless of how its items
 *   are partitioned, and every worker aligns its own engine to that
 *   window before evaluating (core/shard_worker.hh). An outcome is a
 *   pure function of (assignment, global index), so WHO computes it
 *   cannot matter — which is exactly what makes the failure handling
 *   below invisible in the results.
 *
 * Failure handling is first-class, not best-effort:
 *
 *  - Dead and hung workers are detected by per-request deadlines and
 *    by heartbeat pings before reuse of an idle backend; a worker
 *    that closes its pipe, corrupts a frame (CRC), breaks protocol,
 *    or stays silent past the deadline is terminated and its slot
 *    marked down.
 *
 *  - A failed shard's outstanding items are re-issued: surviving
 *    shards receive them as additional items of the SAME cursor
 *    window and serve them from the SAME reserved kernel, so no
 *    sample is lost, duplicated, or re-randomized — re-issue
 *    preserves both the iid sampling and bit-identity.
 *
 *  - A down slot is respawned with capped exponential backoff; a
 *    replacement worker fast-forwards its fresh engine to the
 *    campaign's current index window on its first request.
 *
 *  - A slot that keeps failing (quarantineThreshold consecutive
 *    failures) is quarantined: no further respawns. When every slot
 *    is down or quarantined, the engine degrades gracefully to the
 *    wrapped in-process engine — the campaign slows down instead of
 *    aborting, and the results stay bit-identical because the inner
 *    engine is fast-forwarded to the same cursor before serving.
 *
 *  - Byzantine (wrong-VALUE) workers are caught by audit duplication:
 *    a seeded fraction of indices — a pure function of (auditSeed,
 *    global index), bit-identical at any shard count — is issued to a
 *    second live backend in the same cursor window. Measurement is
 *    bit-identical by construction, so ANY value-bits disagreement
 *    proves corruption; the coordinator then computes the in-process
 *    ground truth for the disputed index, convicts whichever
 *    backend(s) disagree with it, discards every unaudited result the
 *    offender returned this batch (re-issued to survivors), and feeds
 *    the conviction into the same failure ladder as a crash — repeat
 *    offenders are quarantined. Detection is probabilistic per batch
 *    (a backend corrupting k results in a batch is caught with
 *    probability 1 - (1 - f)^k for audit fraction f) but inevitable
 *    for a persistent corruptor; only collusion producing identical
 *    forged bits would evade it.
 *
 * All waiting and backoff arithmetic reads an injected base::Clock,
 * so the chaos tests drive every failure path deterministically with
 * a ManualClock and scripted backends.
 *
 * Stack placement (see core/journal.hh): directly BELOW the journal,
 * ABOVE the in-process substrate —
 *
 *   Metered(Memoizing(Resilient(Journaling(Sharded(Parallel(...))))))
 *
 * The journal then records merged outcomes, so a SIGKILLed sharded
 * campaign resumes bit-identically under any shard count: replay
 * advances the sharded cursor via reserveMeasurementIndices() and the
 * workers lazily fast-forward on the first fresh request.
 * ShardedEngine publishes no kernels of its own — callers above take
 * the batch path, which is the unit of fan-out.
 */

#ifndef STATSCHED_CORE_SHARDED_ENGINE_HH
#define STATSCHED_CORE_SHARDED_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/sync.hh"
#include "core/performance_engine.hh"
#include "core/shard_protocol.hh"
#include "core/topology.hh"

namespace statsched
{

namespace base
{
class Clock;
} // namespace base

namespace core
{

class Health;

/**
 * Transport to one shard worker. Implementations: the subprocess
 * pipe backend (makeProcessShardFactory()) and the in-memory
 * loopback/scripted backends of the chaos tests. Synchronous and
 * message-framed; all failure modes surface through RecvStatus.
 */
class ShardBackend
{
  public:
    virtual ~ShardBackend() = default;

    /** How one receive attempt ended. */
    enum class RecvStatus
    {
        Frame,   //!< a CRC-verified frame was delivered
        Timeout, //!< nothing arrived within maxWaitSeconds
        Closed,  //!< the worker closed the transport (died)
        Corrupt, //!< a frame failed its CRC; worker untrustworthy
    };

    /** Starts the worker. @return false with `error` set on spawn
     *  failure. */
    virtual bool start(std::string &error) = 0;

    /** Sends raw frame bytes. @return false when the worker is gone. */
    virtual bool send(const std::uint8_t *data, std::size_t size) = 0;

    /**
     * Receives the next frame, waiting at most `maxWaitSeconds`.
     * Implementations may consume modeled time from the injected
     * clock (the scripted test backends advance a ManualClock here).
     */
    virtual RecvStatus receive(ShardFrame &frame,
                               double maxWaitSeconds) = 0;

    /** Hard-kills the worker and releases the transport. */
    virtual void terminate() = 0;
};

/** Creates the backend for shard slot `index`; called again for each
 *  respawn of that slot. */
using ShardBackendFactory =
    std::function<std::unique_ptr<ShardBackend>(std::size_t index)>;

/**
 * Sharding configuration.
 */
struct ShardedOptions
{
    /** Worker slots to fan out over (>= 1). */
    std::size_t shards = 2;
    /** Per-request deadline: a shard silent this long after a request
     *  (or handshake) is declared hung and failed. */
    double requestDeadlineSeconds = 30.0;
    /** An idle backend unused for this long is heartbeat-pinged
     *  before reuse; 0 pings before every batch. */
    double heartbeatSeconds = 5.0;
    /** Deadline on the heartbeat pong itself. */
    double heartbeatTimeoutSeconds = 5.0;
    /** First respawn delay after a slot failure (> 0). */
    double backoffBaseSeconds = 0.25;
    /** Respawn delay multiplier per consecutive failure (>= 1). */
    double backoffFactor = 2.0;
    /** Upper bound on the respawn delay. */
    double backoffCapSeconds = 8.0;
    /** Consecutive failures of one slot before it is quarantined
     *  (>= 1; successes reset the count). */
    std::uint32_t quarantineThreshold = 3;
    /** Expected worker identity: protocol version, configuration
     *  fingerprint, topology and task count. A Hello that does not
     *  match fails the shard at handshake. */
    ShardHello expected;
    /** Clock driving deadlines, heartbeats and backoff; required. */
    base::Clock *clock = nullptr;

    /** Fraction of indices audit-duplicated to a second backend
     *  (0 disables auditing; needs >= 2 live slots to take effect).
     *  Purely operational: the audited run's results are
     *  bit-identical to an unaudited one. */
    double auditFraction = 0.0;
    /** Seed of the audit selection function (use the campaign seed so
     *  the audited index set is reproducible). */
    std::uint64_t auditSeed = 0;

    /** Health aggregate receiving shard transitions (quarantine,
     *  full degradation); optional, not owned. */
    Health *health = nullptr;
};

/**
 * PerformanceEngine decorator fanning batches out to shard workers;
 * see the file comment for the contract.
 */
class ShardedEngine : public PerformanceEngine
{
  public:
    /**
     * @param inner   In-process fallback engine (not owned). Serves
     *                degraded batches and must therefore measure
     *                bit-identically to the workers (same workload,
     *                same noise/fault configuration).
     * @param factory Creates shard backends, per slot and respawn.
     * @param options Fan-out, deadline, backoff and identity config.
     */
    ShardedEngine(PerformanceEngine &inner,
                  ShardBackendFactory factory,
                  const ShardedOptions &options);

    ~ShardedEngine() override;

    double measure(const Assignment &assignment) override;
    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override;
    void measureBatch(std::span<const Assignment> batch,
                      std::span<double> out) override;
    void
    measureBatchOutcome(std::span<const Assignment> batch,
                        std::span<MeasurementOutcome> out) override;

    /** Advances the global cursor without measuring (journal replay);
     *  workers and the inner engine fast-forward lazily. */
    void reserveMeasurementIndices(std::size_t count) override;

    /** Publishes no kernels: fan-out happens at batch granularity. */

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    /** Contributes the shard health counters, then forwards to the
     *  inner engine. Worker-side solver counters are out of process
     *  and therefore invisible here. */
    void collectStats(EngineStats &stats) const override;

    /** Sends Shutdown to live workers and releases every backend;
     *  called by the destructor, idempotent. */
    void shutdownWorkers();

    /** @return slots currently holding a live backend. */
    std::size_t liveShardCount() const;

    /** @return slots quarantined for repeated failure. */
    std::size_t quarantinedShardCount() const;

    /** @return true once every slot is quarantined (all batches now
     *  serve in-process). */
    bool fullyDegraded() const;

    /**
     * Chaos hook for tests and benchmarks: hard-kills slot `index`'s
     * transport WITHOUT marking the slot failed — exactly what an
     * external SIGKILL looks like. The engine discovers the death
     * through its normal detection paths on next use.
     */
    void disruptShard(std::size_t index);

  private:
    struct Slot
    {
        /** Position in slots_, passed to the backend factory. */
        std::size_t index = 0;
        std::unique_ptr<ShardBackend> backend;
        bool quarantined = false;
        /** True once this slot ever held a started backend, so later
         *  spawns count as respawns. */
        bool spawnedOnce = false;
        /** Consecutive failures; reset by any served request. */
        std::uint32_t failures = 0;
        /** Lifetime audit convictions. Protocol successes do NOT
         *  reset these — a Byzantine worker completes every exchange
         *  flawlessly — so repeat offenders climb the quarantine
         *  ladder anyway. */
        std::uint32_t convictions = 0;
        /** Respawn gate: no spawn attempt before this clock time. */
        double earliestRespawn = 0.0;
        /** Next respawn delay (capped exponential). */
        double respawnDelay = 0.0;
        /** Clock time of the last successful exchange. */
        double lastContact = 0.0;
        /** Batch indices assigned and not yet resolved. */
        std::vector<std::size_t> pending;
        /** Batch indices this slot re-measures as an auditor (same
         *  request group as `pending`, after it). */
        std::vector<std::size_t> audits;
        /** Request id awaiting a response; 0 = none in flight. */
        std::uint32_t inflight = 0;
    };

    /** Per-batch audit bookkeeping, indexed by batch position. */
    struct AuditBook
    {
        enum State : std::uint8_t
        {
            None = 0, //!< not selected / auditor died before replying
            Pending,  //!< issued to an auditor, reply outstanding
            Have,     //!< duplicate outcome received, not yet compared
            Done,     //!< compared (or arbitrated); never re-audited
        };
        std::vector<std::uint8_t> state;
        std::vector<MeasurementOutcome> outcome;
        /** Slot index of the auditor (valid when state != None). */
        std::vector<std::size_t> auditor;
        /** Slot index that resolved the primary result. */
        std::vector<std::size_t> primary;

        void
        reset(std::size_t batchSize)
        {
            state.assign(batchSize, None);
            outcome.assign(batchSize, MeasurementOutcome{});
            auditor.assign(batchSize, kNoSlot);
            primary.assign(batchSize, kNoSlot);
        }

        static constexpr std::size_t kNoSlot =
            static_cast<std::size_t>(-1);
    };

    /** Tears down the slot's backend and records the failure:
     *  failure counters, respawn backoff gate, quarantine. */
    void failSlot(Slot &slot) SCHED_REQUIRES(mutex_);

    /** Ensures the slot has a started, handshaken, fresh-enough
     *  backend; respects the respawn gate. @return true when live. */
    bool ensureLive(Slot &slot) SCHED_REQUIRES(mutex_);

    /**
     * Receives the slot's next frame within `timeoutSeconds`.
     * @return false on timeout, closed/corrupt transport, or a
     *         backend that reports Timeout without consuming clock
     *         time (a wait that cannot make progress).
     */
    bool awaitFrame(Slot &slot, ShardFrame &frame,
                    double timeoutSeconds) SCHED_REQUIRES(mutex_);

    /** Receives and validates the worker Hello. */
    bool handshake(Slot &slot) SCHED_REQUIRES(mutex_);

    /** Heartbeat ping over an idle backend. */
    bool ping(Slot &slot) SCHED_REQUIRES(mutex_);

    /** Sends the slot's pending + audit items as one request group. */
    bool sendRequest(Slot &slot,
                     std::span<const Assignment> batch,
                     std::uint64_t base, std::size_t batchSize)
        SCHED_REQUIRES(mutex_);

    /** Awaits the slot's response group, fills `out` for primary
     *  items and `audit` for duplicated ones. */
    bool awaitResponse(Slot &slot,
                       std::span<MeasurementOutcome> out,
                       std::vector<bool> &resolved, AuditBook &audit)
        SCHED_REQUIRES(mutex_);

    /** Drops a failed slot's outstanding audit duplicates back to
     *  None so a later round may re-audit the index. */
    void resetSlotAudits(Slot &slot, AuditBook &audit)
        SCHED_REQUIRES(mutex_);

    /**
     * Compares every received audit duplicate against its primary
     * result; on a value-bits mismatch arbitrates via the in-process
     * ground truth, convicts the corrupt slot(s), discards their
     * unaudited primaries into `work` for re-issue, and fails them
     * through the normal ladder.
     */
    void arbitrateAudits(std::span<const Assignment> batch,
                         std::span<MeasurementOutcome> out,
                         std::vector<bool> &resolved,
                         AuditBook &audit,
                         std::vector<std::size_t> &work,
                         std::uint64_t base) SCHED_REQUIRES(mutex_);

    /** Materializes the inner engine's kernel for the window
     *  [base, base + batchSize), fast-forwarding it first; shared by
     *  serveLocally() and audit arbitration so the window is reserved
     *  exactly once per batch. */
    void ensureLocalKernel(std::uint64_t base, std::size_t batchSize)
        SCHED_REQUIRES(mutex_);

    /** In-process ground truth for batch position `i` of the current
     *  window — bit-identical to what an honest worker returns. */
    MeasurementOutcome localOutcome(const Assignment &assignment,
                                    std::size_t i, std::uint64_t base,
                                    std::size_t batchSize)
        SCHED_REQUIRES(mutex_);

    /** Fast-forwards the inner engine to `base` and measures the
     *  still-unresolved indices in-process. */
    void serveLocally(std::span<const Assignment> batch,
                      std::span<MeasurementOutcome> out,
                      const std::vector<bool> &resolved,
                      std::uint64_t base) SCHED_REQUIRES(mutex_);

    /** quarantinedShardCount() body, for callers already locked. */
    std::size_t quarantinedShardCountLocked() const
        SCHED_REQUIRES(mutex_);

    PerformanceEngine &inner_;
    const ShardBackendFactory factory_;
    const ShardedOptions options_;

    /**
     * One lock serializes the whole coordinator. The upper stack
     * already takes the batch path single-file, but that was an
     * unchecked convention; now concurrent callers are merely slow
     * instead of corrupting slot state, and the compile-time analysis
     * proves every helper runs under the lock.
     */
    mutable base::Mutex mutex_{"core::ShardedEngine::mutex_"};

    std::vector<Slot> slots_ SCHED_GUARDED_BY(mutex_);
    /** Global measurement cursor: next unassigned index. */
    std::uint64_t cursor_ SCHED_GUARDED_BY(mutex_) = 0;
    /** Indices already consumed on the inner engine. */
    std::uint64_t innerConsumed_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint32_t nextReqId_ SCHED_GUARDED_BY(mutex_) = 1;
    std::uint32_t nextNonce_ SCHED_GUARDED_BY(mutex_) = 1;

    /** Inner-engine kernel for the current batch window; valid only
     *  while localKernelReady_ (reset at every batch entry). */
    OutcomeKernel localKernel_ SCHED_GUARDED_BY(mutex_);
    bool localKernelReady_ SCHED_GUARDED_BY(mutex_) = false;

    // Health counters, under the same lock as the slots they count.
    std::uint64_t shardedMeasurements_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t shardFailures_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t shardReissues_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t shardRespawns_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t shardsQuarantined_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t degradedBatches_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t shardAudits_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t shardAuditMismatches_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t shardConvictions_ SCHED_GUARDED_BY(mutex_) = 0;
};

/**
 * @return a factory spawning `argv` as a subprocess per shard slot
 *         (the statsched_worker binary plus its engine flags) and
 *         speaking the pipe protocol over its stdin/stdout.
 * @param clock Clock the pipe backend's receive deadlines read; must
 *              outlive every backend (use the campaign clock).
 * @param sendStallSeconds Bound on a send that makes no progress — a
 *              frozen (SIGSTOPped) worker stops draining its stdin,
 *              and without this bound the coordinator would block
 *              forever in write() once the pipe fills. Pair it with
 *              ShardedOptions::requestDeadlineSeconds.
 */
ShardBackendFactory
makeProcessShardFactory(std::vector<std::string> argv,
                        base::Clock &clock,
                        double sendStallSeconds = 30.0);

/**
 * Per-slot variant: `argvForSlot(index)` builds the command line for
 * each slot (and respawn of it). The chaos harness uses this to give
 * ONE slot a corrupting worker while the rest stay honest.
 */
ShardBackendFactory
makeProcessShardFactory(
    std::function<std::vector<std::string>(std::size_t)> argvForSlot,
    base::Clock &clock, double sendStallSeconds = 30.0);

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_SHARDED_ENGINE_HH
