/**
 * @file
 * ShardedEngine implementation: fan-out, failure detection, re-issue,
 * backoff/quarantine, and the subprocess pipe backend.
 */

#include "core/sharded_engine.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "base/check.hh"
#include "base/clock.hh"
#include "base/subprocess.hh"
#include "core/assignment.hh"

namespace statsched
{
namespace core
{

ShardedEngine::ShardedEngine(PerformanceEngine &inner,
                             ShardBackendFactory factory,
                             const ShardedOptions &options)
    : inner_(inner), factory_(std::move(factory)), options_(options)
{
    SCHED_REQUIRE(options_.clock != nullptr,
                  "sharded engine needs a clock");
    SCHED_REQUIRE(options_.shards >= 1,
                  "sharded engine needs at least one shard slot");
    SCHED_REQUIRE(static_cast<bool>(factory_),
                  "sharded engine needs a backend factory");
    SCHED_REQUIRE(options_.requestDeadlineSeconds > 0.0,
                  "request deadline must be positive");
    SCHED_REQUIRE(options_.heartbeatTimeoutSeconds > 0.0,
                  "heartbeat timeout must be positive");
    SCHED_REQUIRE(options_.backoffBaseSeconds > 0.0,
                  "respawn backoff base must be positive");
    SCHED_REQUIRE(options_.backoffFactor >= 1.0,
                  "respawn backoff factor must be >= 1");
    SCHED_REQUIRE(
        options_.backoffCapSeconds >= options_.backoffBaseSeconds,
        "respawn backoff cap below its base");
    SCHED_REQUIRE(options_.quarantineThreshold >= 1,
                  "quarantine threshold must be >= 1");
    base::MutexLock lock(mutex_);
    slots_.resize(options_.shards);
    for (std::size_t s = 0; s < slots_.size(); ++s)
        slots_[s].index = s;
}

ShardedEngine::~ShardedEngine() { shutdownWorkers(); }

double
ShardedEngine::measure(const Assignment &assignment)
{
    return measureOutcome(assignment).valueOrNaN();
}

MeasurementOutcome
ShardedEngine::measureOutcome(const Assignment &assignment)
{
    MeasurementOutcome outcome;
    measureBatchOutcome(std::span<const Assignment>(&assignment, 1),
                        std::span<MeasurementOutcome>(&outcome, 1));
    return outcome;
}

void
ShardedEngine::measureBatch(std::span<const Assignment> batch,
                            std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    std::vector<MeasurementOutcome> outcomes(batch.size());
    measureBatchOutcome(batch, outcomes);
    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = outcomes[i].valueOrNaN();
}

void
ShardedEngine::reserveMeasurementIndices(std::size_t count)
{
    // Journal replay path: advance the global cursor only. Workers
    // fast-forward on their first fresh request, and the inner engine
    // fast-forwards when (if ever) a degraded batch needs it.
    base::MutexLock lock(mutex_);
    cursor_ += count;
}

void
ShardedEngine::measureBatchOutcome(std::span<const Assignment> batch,
                                   std::span<MeasurementOutcome> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    const std::size_t batchSize = batch.size();
    if (batchSize == 0)
        return;
    // The lock spans the whole fan-out round: slot state, the cursor
    // and the re-issue bookkeeping form one atomic coordination step.
    base::MutexLock lock(mutex_);
    const std::uint64_t base = cursor_;
    cursor_ += batchSize;

    std::vector<bool> resolved(batchSize, false);
    std::vector<std::size_t> work(batchSize);
    std::iota(work.begin(), work.end(), std::size_t{0});

    while (!work.empty()) {
        std::vector<Slot *> live;
        live.reserve(slots_.size());
        for (Slot &slot : slots_) {
            if (ensureLive(slot))
                live.push_back(&slot);
        }
        if (live.empty())
            break; // every slot down or gated: serve in-process

        // Contiguous partition of the remaining work across the live
        // slots. (The split affects only WHO computes an item, never
        // its value, so any partition is bit-identical.)
        const std::size_t per =
            (work.size() + live.size() - 1) / live.size();
        std::size_t offset = 0;
        for (Slot *slot : live) {
            slot->pending.clear();
            slot->inflight = 0;
            const std::size_t n =
                std::min(per, work.size() - offset);
            slot->pending.assign(work.begin() + offset,
                                 work.begin() + offset + n);
            offset += n;
        }
        work.clear();

        // Send every slot its request group first, then collect the
        // responses: the shards compute their partitions in parallel.
        for (Slot *slot : live) {
            if (slot->pending.empty())
                continue;
            if (!sendRequest(*slot, batch, base, batchSize)) {
                shardReissues_ += slot->pending.size();
                work.insert(work.end(), slot->pending.begin(),
                            slot->pending.end());
                slot->pending.clear();
                failSlot(*slot);
            }
        }
        for (Slot *slot : live) {
            if (slot->inflight == 0)
                continue;
            if (awaitResponse(*slot, out, resolved)) {
                slot->failures = 0;
                slot->respawnDelay = 0.0;
                slot->lastContact = options_.clock->nowSeconds();
            } else {
                for (const std::size_t idx : slot->pending) {
                    if (!resolved[idx]) {
                        ++shardReissues_;
                        work.push_back(idx);
                    }
                }
                failSlot(*slot);
            }
            slot->pending.clear();
            slot->inflight = 0;
        }
        // Re-issued work loops back to the survivors (or to a slot
        // whose respawn gate has opened); when nothing is live the
        // loop exits to the in-process fallback below.
    }

    bool complete = true;
    for (std::size_t i = 0; i < batchSize; ++i) {
        if (!resolved[i]) {
            complete = false;
            break;
        }
    }
    if (!complete) {
        ++degradedBatches_;
        serveLocally(batch, out, resolved, base);
    }
}

bool
ShardedEngine::ensureLive(Slot &slot)
{
    if (slot.quarantined)
        return false;
    const double now = options_.clock->nowSeconds();
    if (slot.backend) {
        // Heartbeat an idle backend before trusting it with work, so
        // a worker that died between batches fails here instead of
        // after a full request deadline.
        if (now - slot.lastContact >= options_.heartbeatSeconds) {
            if (!ping(slot)) {
                failSlot(slot);
                return false;
            }
        }
        return true;
    }
    if (now < slot.earliestRespawn)
        return false; // backoff gate still closed

    std::unique_ptr<ShardBackend> backend = factory_(slot.index);
    std::string error;
    if (!backend || !backend->start(error)) {
        failSlot(slot);
        return false;
    }
    slot.backend = std::move(backend);
    if (slot.spawnedOnce)
        ++shardRespawns_;
    slot.spawnedOnce = true;
    if (!handshake(slot)) {
        failSlot(slot);
        return false;
    }
    return true;
}

bool
ShardedEngine::awaitFrame(Slot &slot, ShardFrame &frame,
                          double timeoutSeconds)
{
    const double deadline =
        options_.clock->nowSeconds() + timeoutSeconds;
    while (true) {
        const double now = options_.clock->nowSeconds();
        if (now >= deadline)
            return false;
        const ShardBackend::RecvStatus status =
            slot.backend->receive(frame, deadline - now);
        switch (status) {
          case ShardBackend::RecvStatus::Frame:
            return true;
          case ShardBackend::RecvStatus::Timeout:
            // A Timeout that consumed no clock time can never make
            // progress (a scripted backend under a ManualClock);
            // treat it as the deadline expiring instead of spinning.
            if (options_.clock->nowSeconds() <= now)
                return false;
            break;
          case ShardBackend::RecvStatus::Closed:
          case ShardBackend::RecvStatus::Corrupt:
            return false;
        }
    }
}

bool
ShardedEngine::handshake(Slot &slot)
{
    ShardFrame frame;
    if (!awaitFrame(slot, frame, options_.requestDeadlineSeconds))
        return false;
    ShardHello hello;
    if (!decodeHello(frame, hello))
        return false;
    const ShardHello &want = options_.expected;
    if (hello.version != want.version ||
        hello.configHash != want.configHash ||
        hello.cores != want.cores ||
        hello.pipesPerCore != want.pipesPerCore ||
        hello.strandsPerPipe != want.strandsPerPipe ||
        hello.tasks != want.tasks)
        return false; // misconfigured worker: never trust its values
    slot.lastContact = options_.clock->nowSeconds();
    return true;
}

bool
ShardedEngine::ping(Slot &slot)
{
    const std::uint32_t nonce = nextNonce_++;
    std::vector<std::uint8_t> bytes;
    appendPing(bytes, nonce);
    if (!slot.backend->send(bytes.data(), bytes.size()))
        return false;
    ShardFrame frame;
    if (!awaitFrame(slot, frame, options_.heartbeatTimeoutSeconds))
        return false;
    std::uint32_t echoed = 0;
    if (frame.type != static_cast<std::uint8_t>(ShardMsg::Pong) ||
        !decodePingPong(frame, echoed) || echoed != nonce)
        return false;
    slot.lastContact = options_.clock->nowSeconds();
    return true;
}

bool
ShardedEngine::sendRequest(Slot &slot,
                           std::span<const Assignment> batch,
                           std::uint64_t base, std::size_t batchSize)
{
    ShardEvalRequest request;
    request.reqId = nextReqId_++;
    request.cursorBase = base;
    request.batchSize = static_cast<std::uint32_t>(batchSize);
    request.itemCount =
        static_cast<std::uint32_t>(slot.pending.size());

    std::vector<std::uint8_t> bytes;
    appendEvalRequest(bytes, request);
    for (const std::size_t idx : slot.pending) {
        ShardEvalItem item;
        item.localIndex = static_cast<std::uint32_t>(idx);
        item.contexts = batch[idx].contexts();
        appendEvalItem(bytes, item);
    }
    if (!slot.backend->send(bytes.data(), bytes.size()))
        return false;
    slot.inflight = request.reqId;
    return true;
}

bool
ShardedEngine::awaitResponse(Slot &slot,
                             std::span<MeasurementOutcome> out,
                             std::vector<bool> &resolved)
{
    // Which batch positions this slot owes us.
    std::vector<bool> owed(out.size(), false);
    for (const std::size_t idx : slot.pending)
        owed[idx] = true;

    ShardFrame frame;
    if (!awaitFrame(slot, frame, options_.requestDeadlineSeconds))
        return false;
    ShardEvalResponse response;
    if (!decodeEvalResponse(frame, response) ||
        response.reqId != slot.inflight ||
        response.itemCount != slot.pending.size())
        return false;

    for (std::uint32_t i = 0; i < response.itemCount; ++i) {
        if (!awaitFrame(slot, frame,
                        options_.requestDeadlineSeconds))
            return false;
        ShardEvalOutcome outcome;
        if (!decodeEvalOutcome(frame, outcome))
            return false;
        const std::size_t idx = outcome.localIndex;
        if (idx >= out.size() || !owed[idx] || resolved[idx])
            return false; // an outcome we never asked for
        out[idx] = outcome.outcome;
        resolved[idx] = true;
        ++shardedMeasurements_;
    }
    return true;
}

void
ShardedEngine::serveLocally(std::span<const Assignment> batch,
                            std::span<MeasurementOutcome> out,
                            const std::vector<bool> &resolved,
                            std::uint64_t base)
{
    const std::size_t batchSize = batch.size();
    SCHED_REQUIRE(innerConsumed_ <= base,
                  "inner engine ran ahead of the shard cursor");
    // Fast-forward the in-process engine to this batch's window, then
    // serve the holes at their original indices — bit-identical to
    // what the shards would have produced.
    inner_.reserveMeasurementIndices(
        static_cast<std::size_t>(base - innerConsumed_));
    innerConsumed_ = base + batchSize;

    bool anyResolved = false;
    for (std::size_t i = 0; i < batchSize; ++i) {
        if (resolved[i]) {
            anyResolved = true;
            break;
        }
    }
    if (!anyResolved) {
        // Whole batch: take the inner batch path (a ParallelEngine
        // below fans it out across threads).
        inner_.measureBatchOutcome(batch, out);
        return;
    }
    OutcomeKernel kernel = inner_.outcomeKernel(batchSize);
    if (kernel) {
        for (std::size_t i = 0; i < batchSize; ++i) {
            if (!resolved[i])
                out[i] = kernel(batch[i], i);
        }
        return;
    }
    // Kernel-less engines keep no per-index state (see
    // reserveMeasurementIndices()), so serial holes are safe.
    for (std::size_t i = 0; i < batchSize; ++i) {
        if (!resolved[i])
            out[i] = inner_.measureOutcome(batch[i]);
    }
}

void
ShardedEngine::failSlot(Slot &slot)
{
    if (slot.backend) {
        slot.backend->terminate();
        slot.backend.reset();
    }
    ++shardFailures_;
    ++slot.failures;
    slot.respawnDelay = slot.respawnDelay == 0.0
        ? options_.backoffBaseSeconds
        : std::min(slot.respawnDelay * options_.backoffFactor,
                   options_.backoffCapSeconds);
    slot.earliestRespawn =
        options_.clock->nowSeconds() + slot.respawnDelay;
    if (!slot.quarantined &&
        slot.failures >= options_.quarantineThreshold) {
        slot.quarantined = true;
        ++shardsQuarantined_;
    }
}

void
ShardedEngine::shutdownWorkers()
{
    base::MutexLock lock(mutex_);
    std::vector<std::uint8_t> bytes;
    appendShutdown(bytes);
    for (Slot &slot : slots_) {
        if (!slot.backend)
            continue;
        // Best-effort polite stop, then an unconditional reap.
        slot.backend->send(bytes.data(), bytes.size());
        slot.backend->terminate();
        slot.backend.reset();
    }
}

std::size_t
ShardedEngine::liveShardCount() const
{
    base::MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.backend ? 1 : 0;
    return n;
}

std::size_t
ShardedEngine::quarantinedShardCountLocked() const
{
    std::size_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.quarantined ? 1 : 0;
    return n;
}

std::size_t
ShardedEngine::quarantinedShardCount() const
{
    base::MutexLock lock(mutex_);
    return quarantinedShardCountLocked();
}

bool
ShardedEngine::fullyDegraded() const
{
    base::MutexLock lock(mutex_);
    return quarantinedShardCountLocked() == slots_.size();
}

void
ShardedEngine::disruptShard(std::size_t index)
{
    base::MutexLock lock(mutex_);
    SCHED_REQUIRE(index < slots_.size(), "shard index out of range");
    if (slots_[index].backend)
        slots_[index].backend->terminate();
    // The slot still believes the backend is live; the death is
    // discovered by heartbeat or request failure, like any external
    // SIGKILL.
}

void
ShardedEngine::collectStats(EngineStats &stats) const
{
    {
        base::MutexLock lock(mutex_);
        stats.shardedMeasurements += shardedMeasurements_;
        stats.shardFailures += shardFailures_;
        stats.shardReissues += shardReissues_;
        stats.shardRespawns += shardRespawns_;
        stats.shardsQuarantined += shardsQuarantined_;
        stats.shardDegradedBatches += degradedBatches_;
    }
    inner_.collectStats(stats);
}

// --- Subprocess pipe backend ------------------------------------

namespace
{

/**
 * ShardBackend over a statsched_worker subprocess: frames flow over
 * the child's stdin/stdout pipes (base::Subprocess), and receive
 * deadlines read the injected clock in bounded poll slices so a
 * Ctrl-C (EINTR) never wedges the coordinator.
 */
class ProcessShardBackend : public ShardBackend
{
  public:
    ProcessShardBackend(std::vector<std::string> argv,
                        base::Clock &clock)
        : argv_(std::move(argv)), clock_(clock)
    {
    }

    bool
    start(std::string &error) override
    {
        return process_.spawn(argv_, error);
    }

    bool
    send(const std::uint8_t *data, std::size_t size) override
    {
        return process_.writeAll(data, size);
    }

    RecvStatus
    receive(ShardFrame &frame, double maxWaitSeconds) override
    {
        if (parser_.corrupt())
            return RecvStatus::Corrupt;
        if (parser_.next(frame))
            return RecvStatus::Frame;
        const double deadline =
            clock_.nowSeconds() + maxWaitSeconds;
        while (true) {
            const double remaining =
                deadline - clock_.nowSeconds();
            if (remaining <= 0.0)
                return RecvStatus::Timeout;
            // Poll in <= 1 s slices: an EINTR or a short read never
            // extends the wait past the caller's deadline.
            const int waitMs = static_cast<int>(std::min(
                1000.0, std::ceil(remaining * 1000.0)));
            std::uint8_t buffer[4096];
            const base::Subprocess::ReadResult result =
                process_.read(buffer, sizeof buffer,
                              std::max(1, waitMs));
            switch (result.status) {
              case base::Subprocess::ReadStatus::Data:
                parser_.feed(buffer, result.bytes);
                if (parser_.corrupt())
                    return RecvStatus::Corrupt;
                if (parser_.next(frame))
                    return RecvStatus::Frame;
                break; // partial frame: keep reading
              case base::Subprocess::ReadStatus::Timeout:
              case base::Subprocess::ReadStatus::Interrupted:
                break; // the deadline check governs
              case base::Subprocess::ReadStatus::Eof:
              case base::Subprocess::ReadStatus::Error:
                return RecvStatus::Closed;
            }
        }
    }

    void
    terminate() override
    {
        process_.kill();
        process_.wait();
    }

  private:
    std::vector<std::string> argv_;
    base::Clock &clock_;
    base::Subprocess process_;
    ShardFrameParser parser_;
};

} // anonymous namespace

ShardBackendFactory
makeProcessShardFactory(std::vector<std::string> argv,
                        base::Clock &clock)
{
    return [argv, &clock](std::size_t) {
        return std::unique_ptr<ShardBackend>(
            new ProcessShardBackend(argv, clock));
    };
}

} // namespace core
} // namespace statsched
