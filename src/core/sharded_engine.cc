/**
 * @file
 * ShardedEngine implementation: fan-out, failure detection, re-issue,
 * backoff/quarantine, and the subprocess pipe backend.
 */

#include "core/sharded_engine.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <utility>

#include "base/check.hh"
#include "base/clock.hh"
#include "base/logging.hh"
#include "base/subprocess.hh"
#include "core/assignment.hh"
#include "core/health.hh"

namespace statsched
{
namespace core
{

namespace
{

/**
 * Deterministic audit selection: a splitmix64-style finalizer over
 * the GLOBAL measurement index, so the audited index set is a pure
 * function of (seed, fraction) — bit-identical at any shard count and
 * across re-issue rounds.
 */
bool
auditSelected(std::uint64_t seed, double fraction,
              std::uint64_t globalIndex)
{
    if (fraction <= 0.0)
        return false;
    if (fraction >= 1.0)
        return true;
    std::uint64_t x =
        globalIndex + 0x9e3779b97f4a7c15ULL * (seed + 1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53 < fraction;
}

/**
 * Exact-bits outcome equality. Measurement is deterministic, so an
 * honest duplicate matches in every bit; comparing through the bit
 * pattern (not operator==) also catches NaN-for-NaN substitutions.
 */
bool
outcomeBitsEqual(const MeasurementOutcome &a,
                 const MeasurementOutcome &b)
{
    std::uint64_t ab = 0;
    std::uint64_t bb = 0;
    std::memcpy(&ab, &a.value, sizeof ab);
    std::memcpy(&bb, &b.value, sizeof bb);
    return ab == bb && a.status == b.status &&
           a.attempts == b.attempts;
}

void
addConvicted(std::vector<std::size_t> &convicted, std::size_t slot)
{
    if (std::find(convicted.begin(), convicted.end(), slot) ==
        convicted.end())
        convicted.push_back(slot);
}

} // anonymous namespace

ShardedEngine::ShardedEngine(PerformanceEngine &inner,
                             ShardBackendFactory factory,
                             const ShardedOptions &options)
    : inner_(inner), factory_(std::move(factory)), options_(options)
{
    SCHED_REQUIRE(options_.clock != nullptr,
                  "sharded engine needs a clock");
    SCHED_REQUIRE(options_.shards >= 1,
                  "sharded engine needs at least one shard slot");
    SCHED_REQUIRE(static_cast<bool>(factory_),
                  "sharded engine needs a backend factory");
    SCHED_REQUIRE(options_.requestDeadlineSeconds > 0.0,
                  "request deadline must be positive");
    SCHED_REQUIRE(options_.heartbeatTimeoutSeconds > 0.0,
                  "heartbeat timeout must be positive");
    SCHED_REQUIRE(options_.backoffBaseSeconds > 0.0,
                  "respawn backoff base must be positive");
    SCHED_REQUIRE(options_.backoffFactor >= 1.0,
                  "respawn backoff factor must be >= 1");
    SCHED_REQUIRE(
        options_.backoffCapSeconds >= options_.backoffBaseSeconds,
        "respawn backoff cap below its base");
    SCHED_REQUIRE(options_.quarantineThreshold >= 1,
                  "quarantine threshold must be >= 1");
    base::MutexLock lock(mutex_);
    slots_.resize(options_.shards);
    for (std::size_t s = 0; s < slots_.size(); ++s)
        slots_[s].index = s;
}

ShardedEngine::~ShardedEngine() { shutdownWorkers(); }

double
ShardedEngine::measure(const Assignment &assignment)
{
    return measureOutcome(assignment).valueOrNaN();
}

MeasurementOutcome
ShardedEngine::measureOutcome(const Assignment &assignment)
{
    MeasurementOutcome outcome;
    measureBatchOutcome(std::span<const Assignment>(&assignment, 1),
                        std::span<MeasurementOutcome>(&outcome, 1));
    return outcome;
}

void
ShardedEngine::measureBatch(std::span<const Assignment> batch,
                            std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    std::vector<MeasurementOutcome> outcomes(batch.size());
    measureBatchOutcome(batch, outcomes);
    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = outcomes[i].valueOrNaN();
}

void
ShardedEngine::reserveMeasurementIndices(std::size_t count)
{
    // Journal replay path: advance the global cursor only. Workers
    // fast-forward on their first fresh request, and the inner engine
    // fast-forwards when (if ever) a degraded batch needs it.
    base::MutexLock lock(mutex_);
    cursor_ += count;
}

void
ShardedEngine::measureBatchOutcome(std::span<const Assignment> batch,
                                   std::span<MeasurementOutcome> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    const std::size_t batchSize = batch.size();
    if (batchSize == 0)
        return;
    // The lock spans the whole fan-out round: slot state, the cursor
    // and the re-issue bookkeeping form one atomic coordination step.
    base::MutexLock lock(mutex_);
    const std::uint64_t base = cursor_;
    cursor_ += batchSize;
    localKernel_ = nullptr;
    localKernelReady_ = false;

    std::vector<bool> resolved(batchSize, false);
    std::vector<std::size_t> work(batchSize);
    std::iota(work.begin(), work.end(), std::size_t{0});
    AuditBook audit;
    audit.reset(batchSize);

    while (!work.empty()) {
        std::vector<Slot *> live;
        live.reserve(slots_.size());
        for (Slot &slot : slots_) {
            if (ensureLive(slot))
                live.push_back(&slot);
        }
        if (live.empty())
            break; // every slot down or gated: serve in-process

        // Contiguous partition of the remaining work across the live
        // slots. (The split affects only WHO computes an item, never
        // its value, so any partition is bit-identical.)
        const std::size_t per =
            (work.size() + live.size() - 1) / live.size();
        std::size_t offset = 0;
        for (Slot *slot : live) {
            slot->pending.clear();
            slot->audits.clear();
            slot->inflight = 0;
            const std::size_t n =
                std::min(per, work.size() - offset);
            slot->pending.assign(work.begin() + offset,
                                 work.begin() + offset + n);
            offset += n;
        }
        work.clear();

        // Audit assignment: each selected index is duplicated to the
        // NEXT live slot, so the duplicate always comes from a
        // different backend. Needs two live slots — with one there is
        // nobody independent to ask.
        if (options_.auditFraction > 0.0 && live.size() >= 2) {
            for (std::size_t s = 0; s < live.size(); ++s) {
                for (const std::size_t idx : live[s]->pending) {
                    if (audit.state[idx] != AuditBook::None)
                        continue;
                    if (!auditSelected(options_.auditSeed,
                                       options_.auditFraction,
                                       base + idx))
                        continue;
                    Slot *auditor = live[(s + 1) % live.size()];
                    auditor->audits.push_back(idx);
                    audit.state[idx] = AuditBook::Pending;
                    audit.auditor[idx] = auditor->index;
                    ++shardAudits_;
                }
            }
        }

        // Send every slot its request group first, then collect the
        // responses: the shards compute their partitions in parallel.
        for (Slot *slot : live) {
            if (slot->pending.empty() && slot->audits.empty())
                continue;
            if (!sendRequest(*slot, batch, base, batchSize)) {
                shardReissues_ += slot->pending.size();
                work.insert(work.end(), slot->pending.begin(),
                            slot->pending.end());
                slot->pending.clear();
                resetSlotAudits(*slot, audit);
                failSlot(*slot);
            }
        }
        for (Slot *slot : live) {
            if (slot->inflight == 0)
                continue;
            if (awaitResponse(*slot, out, resolved, audit)) {
                slot->failures = 0;
                slot->respawnDelay = 0.0;
                slot->lastContact = options_.clock->nowSeconds();
            } else {
                for (const std::size_t idx : slot->pending) {
                    if (!resolved[idx]) {
                        ++shardReissues_;
                        work.push_back(idx);
                    }
                }
                resetSlotAudits(*slot, audit);
                failSlot(*slot);
            }
            slot->pending.clear();
            slot->audits.clear();
            slot->inflight = 0;
        }

        // Compare the duplicates that arrived this round; a mismatch
        // convicts the corrupt backend and pushes its discarded
        // results back into `work` for re-issue to the survivors.
        arbitrateAudits(batch, out, resolved, audit, work, base);
        // Re-issued work loops back to the survivors (or to a slot
        // whose respawn gate has opened); when nothing is live the
        // loop exits to the in-process fallback below.
    }

    bool complete = true;
    for (std::size_t i = 0; i < batchSize; ++i) {
        if (!resolved[i]) {
            complete = false;
            break;
        }
    }
    if (!complete) {
        ++degradedBatches_;
        serveLocally(batch, out, resolved, base);
    }
}

bool
ShardedEngine::ensureLive(Slot &slot)
{
    if (slot.quarantined)
        return false;
    const double now = options_.clock->nowSeconds();
    if (slot.backend) {
        // Heartbeat an idle backend before trusting it with work, so
        // a worker that died between batches fails here instead of
        // after a full request deadline.
        if (now - slot.lastContact >= options_.heartbeatSeconds) {
            if (!ping(slot)) {
                failSlot(slot);
                return false;
            }
        }
        return true;
    }
    if (now < slot.earliestRespawn)
        return false; // backoff gate still closed

    std::unique_ptr<ShardBackend> backend = factory_(slot.index);
    std::string error;
    if (!backend || !backend->start(error)) {
        failSlot(slot);
        return false;
    }
    slot.backend = std::move(backend);
    if (slot.spawnedOnce)
        ++shardRespawns_;
    slot.spawnedOnce = true;
    if (!handshake(slot)) {
        failSlot(slot);
        return false;
    }
    return true;
}

bool
ShardedEngine::awaitFrame(Slot &slot, ShardFrame &frame,
                          double timeoutSeconds)
{
    const double deadline =
        options_.clock->nowSeconds() + timeoutSeconds;
    while (true) {
        const double now = options_.clock->nowSeconds();
        if (now >= deadline)
            return false;
        const ShardBackend::RecvStatus status =
            slot.backend->receive(frame, deadline - now);
        switch (status) {
          case ShardBackend::RecvStatus::Frame:
            return true;
          case ShardBackend::RecvStatus::Timeout:
            // A Timeout that consumed no clock time can never make
            // progress (a scripted backend under a ManualClock);
            // treat it as the deadline expiring instead of spinning.
            if (options_.clock->nowSeconds() <= now)
                return false;
            break;
          case ShardBackend::RecvStatus::Closed:
          case ShardBackend::RecvStatus::Corrupt:
            return false;
        }
    }
}

bool
ShardedEngine::handshake(Slot &slot)
{
    ShardFrame frame;
    if (!awaitFrame(slot, frame, options_.requestDeadlineSeconds))
        return false;
    ShardHello hello;
    if (!decodeHello(frame, hello))
        return false;
    const ShardHello &want = options_.expected;
    if (hello.version != want.version ||
        hello.configHash != want.configHash ||
        hello.cores != want.cores ||
        hello.pipesPerCore != want.pipesPerCore ||
        hello.strandsPerPipe != want.strandsPerPipe ||
        hello.tasks != want.tasks)
        return false; // misconfigured worker: never trust its values
    slot.lastContact = options_.clock->nowSeconds();
    return true;
}

bool
ShardedEngine::ping(Slot &slot)
{
    const std::uint32_t nonce = nextNonce_++;
    std::vector<std::uint8_t> bytes;
    appendPing(bytes, nonce);
    if (!slot.backend->send(bytes.data(), bytes.size()))
        return false;
    ShardFrame frame;
    if (!awaitFrame(slot, frame, options_.heartbeatTimeoutSeconds))
        return false;
    std::uint32_t echoed = 0;
    if (frame.type != static_cast<std::uint8_t>(ShardMsg::Pong) ||
        !decodePingPong(frame, echoed) || echoed != nonce)
        return false;
    slot.lastContact = options_.clock->nowSeconds();
    return true;
}

bool
ShardedEngine::sendRequest(Slot &slot,
                           std::span<const Assignment> batch,
                           std::uint64_t base, std::size_t batchSize)
{
    ShardEvalRequest request;
    request.reqId = nextReqId_++;
    request.cursorBase = base;
    request.batchSize = static_cast<std::uint32_t>(batchSize);
    request.itemCount = static_cast<std::uint32_t>(
        slot.pending.size() + slot.audits.size());

    std::vector<std::uint8_t> bytes;
    appendEvalRequest(bytes, request);
    for (const std::size_t idx : slot.pending) {
        ShardEvalItem item;
        item.localIndex = static_cast<std::uint32_t>(idx);
        item.contexts = batch[idx].contexts();
        appendEvalItem(bytes, item);
    }
    // Audit duplicates ride the same request group: the worker serves
    // them from the same aligned kernel window, so an honest
    // duplicate is bit-identical to the primary by construction.
    for (const std::size_t idx : slot.audits) {
        ShardEvalItem item;
        item.localIndex = static_cast<std::uint32_t>(idx);
        item.contexts = batch[idx].contexts();
        appendEvalItem(bytes, item);
    }
    if (!slot.backend->send(bytes.data(), bytes.size()))
        return false;
    slot.inflight = request.reqId;
    return true;
}

bool
ShardedEngine::awaitResponse(Slot &slot,
                             std::span<MeasurementOutcome> out,
                             std::vector<bool> &resolved,
                             AuditBook &audit)
{
    // Which batch positions this slot owes us: bit 0 = primary
    // result, bit 1 = audit duplicate. An index is never both for
    // the same slot (the auditor is always a different backend).
    std::vector<std::uint8_t> owed(out.size(), 0);
    for (const std::size_t idx : slot.pending)
        owed[idx] |= 1;
    for (const std::size_t idx : slot.audits)
        owed[idx] |= 2;

    ShardFrame frame;
    if (!awaitFrame(slot, frame, options_.requestDeadlineSeconds))
        return false;
    ShardEvalResponse response;
    if (!decodeEvalResponse(frame, response) ||
        response.reqId != slot.inflight ||
        response.itemCount !=
            slot.pending.size() + slot.audits.size())
        return false;

    for (std::uint32_t i = 0; i < response.itemCount; ++i) {
        if (!awaitFrame(slot, frame,
                        options_.requestDeadlineSeconds))
            return false;
        ShardEvalOutcome outcome;
        if (!decodeEvalOutcome(frame, outcome))
            return false;
        const std::size_t idx = outcome.localIndex;
        if (idx >= out.size())
            return false; // an outcome we never asked for
        if ((owed[idx] & 1) != 0 && !resolved[idx]) {
            out[idx] = outcome.outcome;
            resolved[idx] = true;
            audit.primary[idx] = slot.index;
            ++shardedMeasurements_;
            owed[idx] &= static_cast<std::uint8_t>(~1);
        } else if ((owed[idx] & 2) != 0 &&
                   audit.state[idx] == AuditBook::Pending) {
            audit.outcome[idx] = outcome.outcome;
            audit.state[idx] = AuditBook::Have;
            owed[idx] &= static_cast<std::uint8_t>(~2);
        } else {
            return false; // an outcome we never asked for
        }
    }
    return true;
}

void
ShardedEngine::resetSlotAudits(Slot &slot, AuditBook &audit)
{
    // The duplicate never arrived (or can no longer be trusted):
    // return the index to None so a later round may re-select it.
    for (const std::size_t idx : slot.audits) {
        if (audit.state[idx] == AuditBook::Pending &&
            audit.auditor[idx] == slot.index) {
            audit.state[idx] = AuditBook::None;
            audit.auditor[idx] = AuditBook::kNoSlot;
        }
    }
    slot.audits.clear();
}

void
ShardedEngine::arbitrateAudits(std::span<const Assignment> batch,
                               std::span<MeasurementOutcome> out,
                               std::vector<bool> &resolved,
                               AuditBook &audit,
                               std::vector<std::size_t> &work,
                               std::uint64_t base)
{
    const std::size_t batchSize = batch.size();
    std::vector<std::size_t> convicted;
    std::vector<std::uint8_t> arbitrated(batchSize, 0);

    for (std::size_t idx = 0; idx < batchSize; ++idx) {
        if (audit.state[idx] != AuditBook::Have || !resolved[idx])
            continue; // duplicate without a primary: keep for later
        if (audit.primary[idx] == audit.auditor[idx]) {
            // A re-issue landed the primary on its own auditor —
            // self-agreement carries no information.
            audit.state[idx] = AuditBook::Done;
            continue;
        }
        if (outcomeBitsEqual(out[idx], audit.outcome[idx])) {
            audit.state[idx] = AuditBook::Done;
            continue;
        }
        // Two backends disagree on a deterministic value: at least
        // one is corrupt. The in-process engine is the trusted
        // arbiter — convict whichever side(s) disagree with it.
        ++shardAuditMismatches_;
        const MeasurementOutcome truth =
            localOutcome(batch[idx], idx, base, batchSize);
        const bool primaryLied = !outcomeBitsEqual(out[idx], truth);
        const bool auditorLied =
            !outcomeBitsEqual(audit.outcome[idx], truth);
        warn(
            "core: audit mismatch at measurement index " +
            std::to_string(base + idx) + " between shard slot " +
            std::to_string(audit.primary[idx]) + " and slot " +
            std::to_string(audit.auditor[idx]));
        out[idx] = truth;
        arbitrated[idx] = 1;
        audit.state[idx] = AuditBook::Done;
        if (primaryLied)
            addConvicted(convicted, audit.primary[idx]);
        if (auditorLied)
            addConvicted(convicted, audit.auditor[idx]);
    }
    if (convicted.empty())
        return;

    for (const std::size_t slotIndex : convicted) {
        Slot &offender = slots_[slotIndex];
        ++shardConvictions_;
        ++offender.convictions;
        // The ladder position is the conviction count: the served
        // request that delivered the corrupt values reset `failures`
        // to zero, but corruption is not forgiven by protocol-level
        // success, so a persistent corruptor still reaches
        // quarantine after quarantineThreshold convictions.
        offender.failures = offender.convictions - 1;
        warn("core: shard slot " + std::to_string(slotIndex) +
             " convicted of value corruption; discarding its "
             "results and failing the slot");
        if (options_.health != nullptr)
            options_.health->transition(
                "shards", HealthLevel::Degraded,
                "shard slot " + std::to_string(slotIndex) +
                    " convicted of value corruption (conviction " +
                    std::to_string(offender.convictions) + ")");
        // Every primary the offender returned this batch is suspect
        // unless ground truth replaced it (arbitrated) or an
        // independent, unconvicted auditor confirmed it bit-for-bit.
        for (std::size_t idx = 0; idx < batchSize; ++idx) {
            if (!resolved[idx] || audit.primary[idx] != slotIndex ||
                arbitrated[idx] != 0)
                continue;
            const bool confirmed =
                audit.state[idx] == AuditBook::Done &&
                audit.auditor[idx] != AuditBook::kNoSlot &&
                audit.auditor[idx] != slotIndex &&
                std::find(convicted.begin(), convicted.end(),
                          audit.auditor[idx]) == convicted.end();
            if (confirmed)
                continue;
            resolved[idx] = false;
            audit.primary[idx] = AuditBook::kNoSlot;
            ++shardReissues_;
            work.push_back(idx);
        }
        // Duplicates the offender produced are equally worthless.
        for (std::size_t idx = 0; idx < batchSize; ++idx) {
            if (audit.auditor[idx] == slotIndex &&
                (audit.state[idx] == AuditBook::Pending ||
                 audit.state[idx] == AuditBook::Have)) {
                audit.state[idx] = AuditBook::None;
                audit.auditor[idx] = AuditBook::kNoSlot;
            }
        }
        offender.pending.clear();
        offender.audits.clear();
        failSlot(offender);
    }
}

void
ShardedEngine::ensureLocalKernel(std::uint64_t base,
                                 std::size_t batchSize)
{
    if (localKernelReady_)
        return;
    SCHED_REQUIRE(innerConsumed_ <= base,
                  "inner engine ran ahead of the shard cursor");
    inner_.reserveMeasurementIndices(
        static_cast<std::size_t>(base - innerConsumed_));
    innerConsumed_ = base + batchSize;
    localKernel_ = inner_.outcomeKernel(batchSize);
    localKernelReady_ = true;
}

MeasurementOutcome
ShardedEngine::localOutcome(const Assignment &assignment,
                            std::size_t i, std::uint64_t base,
                            std::size_t batchSize)
{
    ensureLocalKernel(base, batchSize);
    if (localKernel_)
        return localKernel_(assignment, i);
    // Kernel-less engines keep no per-index state (see
    // reserveMeasurementIndices()), so a direct call is safe.
    return inner_.measureOutcome(assignment);
}

void
ShardedEngine::serveLocally(std::span<const Assignment> batch,
                            std::span<MeasurementOutcome> out,
                            const std::vector<bool> &resolved,
                            std::uint64_t base)
{
    const std::size_t batchSize = batch.size();
    bool anyResolved = false;
    for (std::size_t i = 0; i < batchSize; ++i) {
        if (resolved[i]) {
            anyResolved = true;
            break;
        }
    }
    if (!anyResolved && !localKernelReady_) {
        // Whole batch and the window is still unreserved: take the
        // inner batch path (a ParallelEngine below fans it out
        // across threads).
        SCHED_REQUIRE(innerConsumed_ <= base,
                      "inner engine ran ahead of the shard cursor");
        inner_.reserveMeasurementIndices(
            static_cast<std::size_t>(base - innerConsumed_));
        innerConsumed_ = base + batchSize;
        inner_.measureBatchOutcome(batch, out);
        return;
    }
    // Serve the holes at their original indices from the shared
    // window kernel (audit arbitration may have materialized it
    // already — the window is reserved exactly once per batch) —
    // bit-identical to what the shards would have produced.
    for (std::size_t i = 0; i < batchSize; ++i) {
        if (!resolved[i])
            out[i] = localOutcome(batch[i], i, base, batchSize);
    }
}

void
ShardedEngine::failSlot(Slot &slot)
{
    if (slot.backend) {
        slot.backend->terminate();
        slot.backend.reset();
    }
    ++shardFailures_;
    ++slot.failures;
    slot.respawnDelay = slot.respawnDelay == 0.0
        ? options_.backoffBaseSeconds
        : std::min(slot.respawnDelay * options_.backoffFactor,
                   options_.backoffCapSeconds);
    slot.earliestRespawn =
        options_.clock->nowSeconds() + slot.respawnDelay;
    if (!slot.quarantined &&
        slot.failures >= options_.quarantineThreshold) {
        slot.quarantined = true;
        ++shardsQuarantined_;
        if (options_.health != nullptr) {
            options_.health->transition(
                "shards", HealthLevel::Degraded,
                "shard slot " + std::to_string(slot.index) +
                    " quarantined after " +
                    std::to_string(slot.failures) +
                    " consecutive failures");
            if (quarantinedShardCountLocked() == slots_.size())
                options_.health->transition(
                    "shards", HealthLevel::Failing,
                    "all " + std::to_string(slots_.size()) +
                        " shard slots quarantined; measuring "
                        "in-process");
        }
    }
}

void
ShardedEngine::shutdownWorkers()
{
    base::MutexLock lock(mutex_);
    std::vector<std::uint8_t> bytes;
    appendShutdown(bytes);
    for (Slot &slot : slots_) {
        if (!slot.backend)
            continue;
        // Best-effort polite stop, then an unconditional reap.
        slot.backend->send(bytes.data(), bytes.size());
        slot.backend->terminate();
        slot.backend.reset();
    }
}

std::size_t
ShardedEngine::liveShardCount() const
{
    base::MutexLock lock(mutex_);
    std::size_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.backend ? 1 : 0;
    return n;
}

std::size_t
ShardedEngine::quarantinedShardCountLocked() const
{
    std::size_t n = 0;
    for (const Slot &slot : slots_)
        n += slot.quarantined ? 1 : 0;
    return n;
}

std::size_t
ShardedEngine::quarantinedShardCount() const
{
    base::MutexLock lock(mutex_);
    return quarantinedShardCountLocked();
}

bool
ShardedEngine::fullyDegraded() const
{
    base::MutexLock lock(mutex_);
    return quarantinedShardCountLocked() == slots_.size();
}

void
ShardedEngine::disruptShard(std::size_t index)
{
    base::MutexLock lock(mutex_);
    SCHED_REQUIRE(index < slots_.size(), "shard index out of range");
    if (slots_[index].backend)
        slots_[index].backend->terminate();
    // The slot still believes the backend is live; the death is
    // discovered by heartbeat or request failure, like any external
    // SIGKILL.
}

void
ShardedEngine::collectStats(EngineStats &stats) const
{
    {
        base::MutexLock lock(mutex_);
        stats.shardedMeasurements += shardedMeasurements_;
        stats.shardFailures += shardFailures_;
        stats.shardReissues += shardReissues_;
        stats.shardRespawns += shardRespawns_;
        stats.shardsQuarantined += shardsQuarantined_;
        stats.shardDegradedBatches += degradedBatches_;
        stats.shardAudits += shardAudits_;
        stats.shardAuditMismatches += shardAuditMismatches_;
        stats.shardConvictions += shardConvictions_;
    }
    inner_.collectStats(stats);
}

// --- Subprocess pipe backend ------------------------------------

namespace
{

/**
 * ShardBackend over a statsched_worker subprocess: frames flow over
 * the child's stdin/stdout pipes (base::Subprocess), and receive
 * deadlines read the injected clock in bounded poll slices so a
 * Ctrl-C (EINTR) never wedges the coordinator.
 */
class ProcessShardBackend : public ShardBackend
{
  public:
    ProcessShardBackend(std::vector<std::string> argv,
                        base::Clock &clock, double sendStallSeconds)
        : argv_(std::move(argv)), clock_(clock),
          sendStallMs_(static_cast<int>(std::max(
              1.0, std::ceil(sendStallSeconds * 1000.0))))
    {
    }

    bool
    start(std::string &error) override
    {
        return process_.spawn(argv_, error);
    }

    bool
    send(const std::uint8_t *data, std::size_t size) override
    {
        // Stall-bounded: a frozen (SIGSTOPped) worker stops draining
        // its stdin, and an unbounded write would wedge the whole
        // coordinator once the pipe buffer fills — the send-side twin
        // of the receive deadline. A stalled send surfaces as a slot
        // failure and the batch is re-issued.
        return process_.writeAll(data, size, sendStallMs_);
    }

    RecvStatus
    receive(ShardFrame &frame, double maxWaitSeconds) override
    {
        if (parser_.corrupt())
            return RecvStatus::Corrupt;
        if (parser_.next(frame))
            return RecvStatus::Frame;
        const double deadline =
            clock_.nowSeconds() + maxWaitSeconds;
        while (true) {
            const double remaining =
                deadline - clock_.nowSeconds();
            if (remaining <= 0.0)
                return RecvStatus::Timeout;
            // Poll in <= 1 s slices: an EINTR or a short read never
            // extends the wait past the caller's deadline.
            const int waitMs = static_cast<int>(std::min(
                1000.0, std::ceil(remaining * 1000.0)));
            std::uint8_t buffer[4096];
            const base::Subprocess::ReadResult result =
                process_.read(buffer, sizeof buffer,
                              std::max(1, waitMs));
            switch (result.status) {
              case base::Subprocess::ReadStatus::Data:
                parser_.feed(buffer, result.bytes);
                if (parser_.corrupt())
                    return RecvStatus::Corrupt;
                if (parser_.next(frame))
                    return RecvStatus::Frame;
                break; // partial frame: keep reading
              case base::Subprocess::ReadStatus::Timeout:
              case base::Subprocess::ReadStatus::Interrupted:
                break; // the deadline check governs
              case base::Subprocess::ReadStatus::Eof:
              case base::Subprocess::ReadStatus::Error:
                return RecvStatus::Closed;
            }
        }
    }

    void
    terminate() override
    {
        process_.kill();
        process_.wait();
    }

  private:
    std::vector<std::string> argv_;
    base::Clock &clock_;
    const int sendStallMs_;
    base::Subprocess process_;
    ShardFrameParser parser_;
};

} // anonymous namespace

ShardBackendFactory
makeProcessShardFactory(std::vector<std::string> argv,
                        base::Clock &clock, double sendStallSeconds)
{
    return [argv, &clock, sendStallSeconds](std::size_t) {
        return std::unique_ptr<ShardBackend>(
            new ProcessShardBackend(argv, clock,
                                    sendStallSeconds));
    };
}

ShardBackendFactory
makeProcessShardFactory(
    std::function<std::vector<std::string>(std::size_t)> argvForSlot,
    base::Clock &clock, double sendStallSeconds)
{
    return [argvForSlot = std::move(argvForSlot), &clock,
            sendStallSeconds](std::size_t index) {
        return std::unique_ptr<ShardBackend>(
            new ProcessShardBackend(argvForSlot(index), clock,
                                    sendStallSeconds));
    };
}

} // namespace core
} // namespace statsched
