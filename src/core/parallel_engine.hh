/**
 * @file
 * Parallel batch evaluation of task assignments.
 *
 * The paper's experimentation cost is thousands of independent
 * measurements (Section 5.3); the simulated engine is pure, so a
 * batch of assignments is embarrassingly parallel. ParallelEngine is
 * a decorator that fans measureBatch() out over a persistent
 * base::WorkerPool of std::thread workers pulling fixed-size chunks
 * from an atomic work queue.
 *
 * Determinism: the decorator only parallelizes engines that publish a
 * parallelKernel() — a pure function of (assignment, batch index) —
 * and every worker writes out[i] for the indices it claims, so the
 * result vector is bit-identical to the serial path regardless of
 * thread count or scheduling. Engines without a kernel (e.g.
 * hw::PinnedThreadEngine, which owns the physical machine) fall back
 * to the wrapped serial measureBatch().
 */

#ifndef STATSCHED_CORE_PARALLEL_ENGINE_HH
#define STATSCHED_CORE_PARALLEL_ENGINE_HH

#include "base/worker_pool.hh"
#include "core/performance_engine.hh"

namespace statsched
{
namespace core
{

/**
 * Decorator that measures batches on a worker pool.
 */
class ParallelEngine : public PerformanceEngine
{
  public:
    /**
     * @param inner   Engine to wrap; not owned. Parallel speedup
     *                requires inner.parallelKernel() to be non-empty.
     * @param threads Total threads used per batch including the
     *                caller; 0 selects the hardware concurrency.
     */
    explicit ParallelEngine(PerformanceEngine &inner,
                            unsigned threads = 0);

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** Single measurements bypass the pool. */
    double
    measure(const Assignment &assignment) override
    {
        return inner_.measure(assignment);
    }

    void measureBatch(std::span<const Assignment> batch,
                      std::span<double> out) override;

    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override
    {
        return inner_.measureOutcome(assignment);
    }

    /** Outcome batches fan out exactly like double batches. */
    void measureBatchOutcome(
        std::span<const Assignment> batch,
        std::span<MeasurementOutcome> out) override;

    /** Transparent: exposes the wrapped engine's kernel unchanged. */
    BatchKernel
    parallelKernel(std::size_t batchSize) override
    {
        return inner_.parallelKernel(batchSize);
    }

    OutcomeKernel
    outcomeKernel(std::size_t batchSize) override
    {
        return inner_.outcomeKernel(batchSize);
    }

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    void
    collectStats(EngineStats &stats) const override
    {
        inner_.collectStats(stats);
    }

    /** @return threads used per batch (callers + workers). */
    unsigned threads() const { return pool_.threads(); }

  private:
    PerformanceEngine &inner_;
    base::WorkerPool pool_;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_PARALLEL_ENGINE_HH
