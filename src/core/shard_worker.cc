/**
 * @file
 * ShardWorker implementation: frame pump, request assembly, and the
 * cursor-aligned kernel evaluation that keeps shard outcomes
 * bit-identical to the in-process path.
 */

#include "core/shard_worker.hh"

#include <utility>

#include "base/check.hh"
#include "core/assignment.hh"

namespace statsched
{
namespace core
{

ShardWorker::ShardWorker(PerformanceEngine &engine,
                         const Topology &topology,
                         std::uint32_t tasks,
                         std::uint64_t configHash)
    : engine_(engine), topology_(topology), tasks_(tasks),
      configHash_(configHash)
{
}

std::vector<std::uint8_t>
ShardWorker::helloBytes() const
{
    ShardHello hello;
    hello.version = kShardProtocolVersion;
    hello.configHash = configHash_;
    hello.cores = topology_.cores;
    hello.pipesPerCore = topology_.pipesPerCore;
    hello.strandsPerPipe = topology_.strandsPerPipe;
    hello.tasks = tasks_;
    std::vector<std::uint8_t> out;
    appendHello(out, hello);
    return out;
}

bool
ShardWorker::fail(const std::string &detail,
                  std::vector<std::uint8_t> &out)
{
    protocolError_ = true;
    errorDetail_ = detail;
    appendWorkerError(out, detail);
    return false;
}

bool
ShardWorker::consume(const std::uint8_t *data, std::size_t size,
                     std::vector<std::uint8_t> &out)
{
    if (protocolError_)
        return false;
    parser_.feed(data, size);
    ShardFrame frame;
    while (parser_.next(frame)) {
        if (!handleFrame(frame, out))
            return false;
    }
    if (parser_.corrupt())
        return fail("corrupt frame from coordinator", out);
    return true;
}

bool
ShardWorker::handleFrame(const ShardFrame &frame,
                         std::vector<std::uint8_t> &out)
{
    const ShardMsg type = static_cast<ShardMsg>(frame.type);

    if (inRequest_) {
        // Mid-group only EvalItem frames are legal.
        ShardEvalItem item;
        if (type != ShardMsg::EvalItem ||
            !decodeEvalItem(frame, item))
            return fail("expected EvalItem within request group",
                        out);
        if (item.localIndex >= request_.batchSize)
            return fail("item index outside the batch window", out);
        items_.push_back(std::move(item));
        if (items_.size() < request_.itemCount)
            return true;
        inRequest_ = false;
        return serveRequest(out);
    }

    switch (type) {
      case ShardMsg::EvalRequest: {
        if (!decodeEvalRequest(frame, request_))
            return fail("malformed EvalRequest", out);
        if (request_.itemCount == 0 || request_.batchSize == 0 ||
            request_.itemCount > request_.batchSize)
            return fail("EvalRequest with impossible counts", out);
        items_.clear();
        items_.reserve(request_.itemCount);
        inRequest_ = true;
        return true;
      }
      case ShardMsg::Ping: {
        std::uint32_t nonce = 0;
        if (!decodePingPong(frame, nonce))
            return fail("malformed Ping", out);
        appendPong(out, nonce);
        return true;
      }
      case ShardMsg::Shutdown:
        return false; // clean stop; protocolError_ stays false
      default:
        return fail("unexpected frame type", out);
    }
}

bool
ShardWorker::alignKernel(std::uint64_t cursorBase,
                         std::uint32_t batchSize)
{
    if (kernel_ && openBase_ == cursorBase && openSize_ == batchSize)
        return true; // re-issue within the open window

    if (cursorBase < consumed_)
        return false; // index streams only move forward

    // Fast-forward to the window, then reserve it. A freshly spawned
    // replacement worker lands here with consumed_ == 0 and skips
    // straight to the campaign's current position.
    engine_.reserveMeasurementIndices(
        static_cast<std::size_t>(cursorBase - consumed_));
    kernel_ = engine_.outcomeKernel(batchSize);
    if (!kernel_)
        return false; // engine cannot serve sparse shard items
    openBase_ = cursorBase;
    openSize_ = batchSize;
    consumed_ = cursorBase + batchSize;
    return true;
}

bool
ShardWorker::serveRequest(std::vector<std::uint8_t> &out)
{
    if (!alignKernel(request_.cursorBase, request_.batchSize)) {
        return fail("cannot align to request window (cursor moved "
                    "backwards, or the engine publishes no kernel)",
                    out);
    }

    ShardEvalResponse response;
    response.reqId = request_.reqId;
    response.itemCount = request_.itemCount;
    appendEvalResponse(out, response);

    for (const ShardEvalItem &item : items_) {
        ShardEvalOutcome result;
        result.localIndex = item.localIndex;
        if (item.contexts.size() != tasks_ ||
            !Assignment::isValid(topology_, item.contexts)) {
            // A malformed assignment is the coordinator's bug, but
            // failing the single item (Errored) keeps the batch
            // accounting intact instead of wedging the pipe.
            result.outcome = MeasurementOutcome::failure(
                MeasureStatus::Errored);
        } else {
            const Assignment assignment(topology_, item.contexts);
            result.outcome = kernel_(
                assignment,
                static_cast<std::size_t>(item.localIndex));
        }
        appendEvalOutcome(out, result);
    }
    items_.clear();
    ++served_;
    return true;
}

} // namespace core
} // namespace statsched
