/**
 * @file
 * AssignmentEnumerator implementation.
 *
 * Canonical representatives are generated as:
 *  - set partition of tasks into core blocks, each block listed with
 *    its minimum task first and blocks ordered by minimum task
 *    (standard canonical set-partition order);
 *  - within each block, a restricted-growth assignment of tasks to
 *    pipes (a task may start pipe p only when pipes 0..p-1 are in
 *    use), which enumerates each unordered pipe split exactly once;
 *  - blocks are laid out on physical cores 0, 1, 2, ... and tasks on
 *    strands in increasing order.
 */

#include "core/enumerator.hh"

#include <algorithm>
#include "base/check.hh"

namespace statsched
{
namespace core
{

namespace
{

/**
 * Recursion state shared by the enumeration.
 */
struct Walk
{
    const Topology &topo;
    std::uint32_t tasks;
    const std::function<bool(const Assignment &)> &visitor;
    std::uint64_t visited = 0;
    bool stopped = false;

    /** contexts[t] for the assignment under construction. */
    std::vector<ContextId> contexts;

    /**
     * Distributes the tasks of one core block over that core's pipes
     * with a restricted-growth scheme, then continues with the next
     * block.
     *
     * @param block      Tasks on this core, ascending.
     * @param index      Position within the block being placed.
     * @param pipe_load  Tasks already placed per pipe of this core.
     * @param pipes_used Number of pipes opened so far.
     * @param core       Physical core of this block.
     * @param remaining  Bitmask of tasks not yet assigned to blocks.
     * @param next_core  Physical core for the next block.
     */
    void
    placeBlock(const std::vector<TaskId> &block, std::size_t index,
               std::vector<std::uint32_t> &pipe_load,
               std::uint32_t pipes_used, std::uint32_t core,
               std::uint64_t remaining, std::uint32_t next_core)
    {
        if (stopped)
            return;
        if (index == block.size()) {
            partition(remaining, next_core);
            return;
        }
        const TaskId task = block[index];
        const std::uint32_t max_pipe =
            std::min(pipes_used + 1, topo.pipesPerCore);
        for (std::uint32_t p = 0; p < max_pipe; ++p) {
            if (pipe_load[p] >= topo.strandsPerPipe)
                continue;
            const ContextId ctx =
                (core * topo.pipesPerCore + p) * topo.strandsPerPipe +
                pipe_load[p];
            contexts[task] = ctx;
            ++pipe_load[p];
            placeBlock(block, index + 1, pipe_load,
                       std::max(pipes_used, p + 1), core, remaining,
                       next_core);
            --pipe_load[p];
            if (stopped)
                return;
        }
    }

    /**
     * Chooses the core block containing the lowest remaining task,
     * then recurses.
     *
     * @param remaining Bitmask of unassigned tasks.
     * @param core      Next physical core to fill.
     */
    void
    partition(std::uint64_t remaining, std::uint32_t core)
    {
        if (stopped)
            return;
        if (remaining == 0) {
            ++visited;
            if (!visitor(Assignment(topo, contexts)))
                stopped = true;
            return;
        }
        if (core >= topo.cores)
            return;

        const std::uint32_t core_cap =
            topo.pipesPerCore * topo.strandsPerPipe;
        const TaskId lowest =
            static_cast<TaskId>(__builtin_ctzll(remaining));
        const std::uint64_t rest = remaining & ~(1ull << lowest);

        // Enumerate subsets of `rest` of size <= core_cap - 1 to join
        // the lowest task on this core, via the standard submask walk.
        std::uint64_t sub = rest;
        for (;;) {
            if (static_cast<std::uint32_t>(
                    __builtin_popcountll(sub)) <= core_cap - 1) {
                std::vector<TaskId> block;
                block.push_back(lowest);
                for (std::uint64_t b = sub; b;) {
                    const TaskId t =
                        static_cast<TaskId>(__builtin_ctzll(b));
                    block.push_back(t);
                    b &= b - 1;
                }
                std::sort(block.begin(), block.end());
                std::vector<std::uint32_t> pipe_load(topo.pipesPerCore,
                                                     0);
                placeBlock(block, 0, pipe_load, 0, core,
                           rest & ~sub, core + 1);
                if (stopped)
                    return;
            }
            if (sub == 0)
                break;
            sub = (sub - 1) & rest;
        }
    }
};

} // anonymous namespace

AssignmentEnumerator::AssignmentEnumerator(const Topology &topology,
                                           std::uint32_t tasks)
    : topology_(topology), tasks_(tasks)
{
    SCHED_REQUIRE(tasks >= 1 && tasks <= topology.contexts(),
                  "workload size out of range");
    SCHED_REQUIRE(tasks <= 64, "bitmask enumeration limited to 64");
}

std::uint64_t
AssignmentEnumerator::forEach(
    const std::function<bool(const Assignment &)> &visitor) const
{
    Walk walk{topology_, tasks_, visitor, 0, false, {}};
    walk.contexts.assign(tasks_, 0);
    const std::uint64_t all = (tasks_ == 64)
        ? ~0ull : ((1ull << tasks_) - 1);
    walk.partition(all, 0);
    return walk.visited;
}

std::vector<Assignment>
AssignmentEnumerator::enumerateAll() const
{
    std::vector<Assignment> out;
    forEach([&out](const Assignment &a) {
        out.push_back(a);
        return true;
    });
    return out;
}

std::uint64_t
AssignmentEnumerator::count() const
{
    return forEach([](const Assignment &) { return true; });
}

} // namespace core
} // namespace statsched
