/**
 * @file
 * Exhaustive enumeration of canonical task assignments.
 *
 * For small workloads the whole assignment space can be walked — the
 * paper does exactly this for the 6-thread workloads of Figures 1
 * and 3 (~1500 assignments) to obtain the true optimum and the full
 * population CDF. The enumerator emits one representative Assignment
 * per equivalence class, in a deterministic order, by generating set
 * partitions into cores (blocks ordered by their minimum task) and
 * pipe splits within each core (canonical split order).
 */

#ifndef STATSCHED_CORE_ENUMERATOR_HH
#define STATSCHED_CORE_ENUMERATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/assignment.hh"

namespace statsched
{
namespace core
{

/**
 * Walks every canonical assignment of a workload.
 */
class AssignmentEnumerator
{
  public:
    /**
     * @param topology Processor shape.
     * @param tasks    Workload size. Enumeration cost equals the
     *                 Table 1 count — keep tasks small (<= ~8 on the
     *                 T2 shape).
     */
    AssignmentEnumerator(const Topology &topology, std::uint32_t tasks);

    /**
     * Invokes the visitor on one representative per equivalence
     * class.
     *
     * @param visitor Called with each canonical assignment; return
     *                false to stop early.
     * @return number of assignments visited.
     */
    std::uint64_t
    forEach(const std::function<bool(const Assignment &)> &visitor) const;

    /** Materializes all canonical assignments. */
    std::vector<Assignment> enumerateAll() const;

    /** @return the number of classes without materializing. */
    std::uint64_t count() const;

  private:
    Topology topology_;
    std::uint32_t tasks_;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_ENUMERATOR_HH
