/**
 * @file
 * OptimalPerformanceEstimator implementation.
 */

#include "core/estimator.hh"

#include "base/check.hh"
#include "base/logging.hh"

namespace statsched
{
namespace core
{

OptimalPerformanceEstimator::OptimalPerformanceEstimator(
    PerformanceEngine &engine, const Topology &topology,
    std::uint32_t tasks, std::uint64_t seed,
    const stats::PotOptions &options, bool warmStartFits)
    : engine_(engine), sampler_(topology, tasks, seed),
      options_(options), accumulator_(options, warmStartFits)
{
}

EstimationResult
OptimalPerformanceEstimator::extend(std::size_t n)
{
    // Generate-then-batch: draw the whole extension first (the
    // sampler stream is identical to the interleaved path), then hand
    // the engine one batch it can parallelize or deduplicate.
    std::vector<Assignment> batch = sampler_.drawSample(n);
    std::vector<MeasurementOutcome> outcomes(batch.size());
    engine_.measureBatchOutcome(batch, outcomes);

    // Only valid readings enter the sample; a failed measurement says
    // nothing about where the assignment sits in the performance
    // distribution, so excluding it leaves the sample iid.
    std::vector<double> values;
    values.reserve(batch.size());
    attempted_ += batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!outcomes[i].ok()) {
            ++failed_;
            continue;
        }
        const double v = outcomes[i].value;
        values.push_back(v);
        sample_.push_back(v);
        if (!best_ || v > bestValue_) {
            best_ = std::move(batch[i]);
            bestValue_ = v;
        }
    }
    accumulator_.extend(values);

    EstimationResult result;
    result.sample = sample_;
    result.bestAssignment = best_;
    result.bestObserved = bestValue_;
    result.attempted = attempted_;
    result.failed = failed_;
    if (accumulator_.size() == 0) {
        // Everything failed so far; report an invalid estimate with a
        // structured reason rather than asserting on an empty sample.
        result.pot.confidenceLevel = options_.confidenceLevel;
        stats::detail::markPotEstimateInvalid(
            result.pot, "no valid measurements");
    } else {
        try {
            result.pot = accumulator_.estimate();
        } catch (const ContractViolation &violation) {
            // A contract trip inside the tail machinery (degenerate
            // exceedance set, pathological fit input) must not kill a
            // campaign thousands of measurements in. Degrade to the
            // best-observed fallback and keep sampling; the next
            // round's larger sample usually regularizes the fit.
            warn(std::string("estimator: tail estimation failed "
                                   "(") + violation.what() +
                       "); degrading to best-observed fallback");
            result.pot = stats::PotEstimate();
            result.pot.confidenceLevel = options_.confidenceLevel;
            result.pot.maxObserved = bestValue_;
            stats::detail::markPotEstimateDegraded(
                result.pot, "tail estimation raised a contract "
                            "violation");
        }
    }
    result.modeledSeconds = static_cast<double>(attempted_) *
        engine_.secondsPerMeasurement();
    return result;
}

} // namespace core
} // namespace statsched
