/**
 * @file
 * OptimalPerformanceEstimator implementation.
 */

#include "core/estimator.hh"

namespace statsched
{
namespace core
{

OptimalPerformanceEstimator::OptimalPerformanceEstimator(
    PerformanceEngine &engine, const Topology &topology,
    std::uint32_t tasks, std::uint64_t seed,
    const stats::PotOptions &options)
    : engine_(engine), sampler_(topology, tasks, seed),
      options_(options)
{
}

EstimationResult
OptimalPerformanceEstimator::extend(std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        Assignment a = sampler_.draw();
        const double perf = engine_.measure(a);
        sample_.push_back(perf);
        if (!best_ || perf > bestValue_) {
            best_ = std::move(a);
            bestValue_ = perf;
        }
    }

    EstimationResult result;
    result.sample = sample_;
    result.bestAssignment = best_;
    result.bestObserved = bestValue_;
    result.pot = stats::estimateOptimalPerformance(sample_, options_);
    result.modeledSeconds = static_cast<double>(sample_.size()) *
        engine_.secondsPerMeasurement();
    return result;
}

} // namespace core
} // namespace statsched
