/**
 * @file
 * OptimalPerformanceEstimator implementation.
 */

#include "core/estimator.hh"

namespace statsched
{
namespace core
{

OptimalPerformanceEstimator::OptimalPerformanceEstimator(
    PerformanceEngine &engine, const Topology &topology,
    std::uint32_t tasks, std::uint64_t seed,
    const stats::PotOptions &options, bool warmStartFits)
    : engine_(engine), sampler_(topology, tasks, seed),
      options_(options), accumulator_(options, warmStartFits)
{
}

EstimationResult
OptimalPerformanceEstimator::extend(std::size_t n)
{
    // Generate-then-batch: draw the whole extension first (the
    // sampler stream is identical to the interleaved path), then hand
    // the engine one batch it can parallelize or deduplicate.
    std::vector<Assignment> batch = sampler_.drawSample(n);
    std::vector<double> values(batch.size());
    engine_.measureBatch(batch, values);

    for (std::size_t i = 0; i < batch.size(); ++i) {
        sample_.push_back(values[i]);
        if (!best_ || values[i] > bestValue_) {
            best_ = std::move(batch[i]);
            bestValue_ = values[i];
        }
    }
    accumulator_.extend(values);

    EstimationResult result;
    result.sample = sample_;
    result.bestAssignment = best_;
    result.bestObserved = bestValue_;
    result.pot = accumulator_.estimate();
    result.modeledSeconds = static_cast<double>(sample_.size()) *
        engine_.secondsPerMeasurement();
    return result;
}

} // namespace core
} // namespace statsched
