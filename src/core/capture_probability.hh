/**
 * @file
 * Probability that a random sample captures a top assignment
 * (Section 3.1, Figure 2 of the paper).
 *
 * With sampling-with-replacement from a large population, the
 * probability that a sample of n assignments contains at least one of
 * the best-performing P% is
 *
 *     P(A) = 1 - ((100 - P) / 100)^n,
 *
 * independent of the population size. These helpers compute the
 * probability, its inverse (the sample size needed for a target
 * probability), and the Figure 2 curves.
 */

#ifndef STATSCHED_CORE_CAPTURE_PROBABILITY_HH
#define STATSCHED_CORE_CAPTURE_PROBABILITY_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace statsched
{
namespace core
{

/**
 * P(A): probability that n iid draws include at least one of the top
 * `percent`% of the population.
 *
 * @param percent Top fraction in percent, 0 < percent < 100.
 * @param n       Sample size, n >= 0.
 */
double captureProbability(double percent, std::uint64_t n);

/**
 * Smallest sample size n with captureProbability(percent, n) >=
 * target.
 *
 * @param percent Top fraction in percent, 0 < percent < 100.
 * @param target  Target probability in (0, 1).
 */
std::uint64_t requiredSampleSize(double percent, double target);

/**
 * The Figure 2 curve for one P value: points (n, P(A)).
 *
 * @param percent Top fraction in percent.
 * @param max_n   Largest sample size on the curve.
 * @param points  Number of (log-spaced) points, >= 2.
 */
std::vector<std::pair<std::uint64_t, double>>
captureCurve(double percent, std::uint64_t max_n, std::size_t points);

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_CAPTURE_PROBABILITY_HH
