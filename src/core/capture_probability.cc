/**
 * @file
 * Capture probability implementation.
 */

#include "core/capture_probability.hh"

#include <algorithm>
#include <cmath>

#include "base/check.hh"

namespace statsched
{
namespace core
{

double
captureProbability(double percent, std::uint64_t n)
{
    SCHED_REQUIRE(percent > 0.0 && percent < 100.0,
                  "percent out of (0,100)");
    // log1p-based evaluation keeps precision for tiny P and large n.
    const double log_miss = std::log1p(-percent / 100.0);
    return -std::expm1(static_cast<double>(n) * log_miss);
}

std::uint64_t
requiredSampleSize(double percent, double target)
{
    SCHED_REQUIRE(percent > 0.0 && percent < 100.0,
                  "percent out of (0,100)");
    SCHED_REQUIRE(target > 0.0 && target < 1.0,
                  "target probability out of (0,1)");
    const double log_miss = std::log1p(-percent / 100.0);
    const double n = std::log1p(-target) / log_miss;
    return static_cast<std::uint64_t>(std::ceil(n - 1e-12));
}

std::vector<std::pair<std::uint64_t, double>>
captureCurve(double percent, std::uint64_t max_n, std::size_t points)
{
    SCHED_REQUIRE(points >= 2, "need at least two curve points");
    SCHED_REQUIRE(max_n >= 1, "empty curve range");
    std::vector<std::pair<std::uint64_t, double>> out;
    out.reserve(points);
    const double log_max = std::log(static_cast<double>(max_n));
    std::uint64_t last = 0;
    for (std::size_t i = 0; i < points; ++i) {
        const double f = static_cast<double>(i) /
            static_cast<double>(points - 1);
        std::uint64_t n = static_cast<std::uint64_t>(
            std::llround(std::exp(f * log_max)));
        n = std::max<std::uint64_t>(n, 1);
        if (n == last)
            continue;
        last = n;
        out.emplace_back(n, captureProbability(percent, n));
    }
    return out;
}

} // namespace core
} // namespace statsched
