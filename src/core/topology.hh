/**
 * @file
 * Processor topology description (Section 4.1 of the paper).
 *
 * The UltraSPARC T2 comprises 8 cores; each core contains two hardware
 * execution pipelines; each pipeline runs up to four strands, giving 64
 * hardware contexts (virtual CPUs) and three levels of resource
 * sharing:
 *
 *   - IntraPipe:  IFU / integer units, shared within a pipeline;
 *   - IntraCore:  L1 caches, TLBs, LSU, FPU, crypto unit, shared
 *                 within a core;
 *   - InterCore:  L2, crossbar, memory controllers, shared chip-wide.
 *
 * Topology captures the (cores x pipes x strands) shape generically so
 * the statistical method — which the paper stresses is architecture
 * independent — works for any such processor.
 */

#ifndef STATSCHED_CORE_TOPOLOGY_HH
#define STATSCHED_CORE_TOPOLOGY_HH

#include <cstdint>
#include <string>

#include "base/check.hh"

namespace statsched
{
namespace core
{

/** Index of a hardware context (virtual CPU). */
using ContextId = std::uint32_t;

/**
 * A three-level multithreaded processor shape.
 */
struct Topology
{
    std::uint32_t cores = 8;           //!< cores per chip
    std::uint32_t pipesPerCore = 2;    //!< hardware pipelines per core
    std::uint32_t strandsPerPipe = 4;  //!< strands per pipeline

    /** @return total hardware contexts on the chip. */
    std::uint32_t
    contexts() const
    {
        return cores * pipesPerCore * strandsPerPipe;
    }

    /** @return total pipelines on the chip. */
    std::uint32_t pipes() const { return cores * pipesPerCore; }

    /** @return the core that owns a context. */
    std::uint32_t
    coreOf(ContextId ctx) const
    {
        SCHED_REQUIRE(ctx < contexts(), "context out of range");
        return ctx / (pipesPerCore * strandsPerPipe);
    }

    /** @return the chip-global pipeline index of a context. */
    std::uint32_t
    pipeOf(ContextId ctx) const
    {
        SCHED_REQUIRE(ctx < contexts(), "context out of range");
        return ctx / strandsPerPipe;
    }

    /** @return the pipeline index of a context within its core. */
    std::uint32_t
    pipeInCore(ContextId ctx) const
    {
        return pipeOf(ctx) % pipesPerCore;
    }

    /** @return the strand slot of a context within its pipeline. */
    std::uint32_t
    strandOf(ContextId ctx) const
    {
        SCHED_REQUIRE(ctx < contexts(), "context out of range");
        return ctx % strandsPerPipe;
    }

    /** @return the first context of a chip-global pipeline. */
    ContextId
    firstContextOfPipe(std::uint32_t pipe) const
    {
        SCHED_REQUIRE(pipe < pipes(), "pipe out of range");
        return pipe * strandsPerPipe;
    }

    /** @return a short human-readable shape string, e.g. "8x2x4". */
    std::string
    shapeString() const
    {
        return std::to_string(cores) + "x" +
            std::to_string(pipesPerCore) + "x" +
            std::to_string(strandsPerPipe);
    }

    /** The UltraSPARC T2 shape used in the paper's case study. */
    static Topology
    ultraSparcT2()
    {
        return Topology{8, 2, 4};
    }

    friend bool
    operator==(const Topology &a, const Topology &b)
    {
        return a.cores == b.cores && a.pipesPerCore == b.pipesPerCore &&
            a.strandsPerPipe == b.strandsPerPipe;
    }
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_TOPOLOGY_HH
