/**
 * @file
 * Iterative task-assignment algorithm (Section 5.3, Figure 13 of the
 * paper).
 *
 * The customer specifies the acceptable performance loss X% of the
 * deployed assignment relative to the optimal one. The algorithm:
 *
 *   Step 1: run Ninit random assignments and measure each;
 *   Step 2: estimate the optimal system performance (POT method);
 *   Step 3: if (UPB - best)/UPB <= X%, stop and return the best
 *           observed assignment;
 *   Step 4: otherwise run Ndelta more random assignments, merge them
 *           into the sample, and repeat from Step 2.
 *
 * Growing the sample both improves the captured best assignment and
 * tightens the UPB estimate, so the loop converges (a safety cap on
 * the total sample size guards pathological engines).
 *
 * Failure awareness: measurements that fail (see the engine failure
 * channel in performance_engine.hh) are excluded from the sample, and
 * by default each round tops itself back up with replacement draws so
 * Ninit / Ndelta count valid points. A round in which *every* attempt
 * fails aborts the loop with IterativeResult::abortReason instead of
 * spinning forever; the safety cap counts attempts, so a mostly-broken
 * testbed still terminates.
 */

#ifndef STATSCHED_CORE_ITERATIVE_HH
#define STATSCHED_CORE_ITERATIVE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/estimator.hh"

namespace statsched
{
namespace core
{

/**
 * Why an iterative run stopped before reaching its loss target.
 */
enum class AbortKind : std::uint8_t
{
    None = 0,         //!< no abort (converged, or hit the sample cap)
    EngineFailure,    //!< every measurement in a full round failed
    Interrupted,      //!< shutdown requested (SIGINT/SIGTERM)
    DeadlineExceeded, //!< wall-clock deadline passed
    BudgetExhausted,  //!< measurement budget consumed
    RoundLimit,       //!< round budget consumed
};

/** @return a short kebab-case name for reports and exit-code maps. */
inline const char *
abortKindName(AbortKind kind)
{
    switch (kind) {
      case AbortKind::None:             return "none";
      case AbortKind::EngineFailure:    return "engine-failure";
      case AbortKind::Interrupted:      return "interrupted";
      case AbortKind::DeadlineExceeded: return "deadline-exceeded";
      case AbortKind::BudgetExhausted:  return "budget-exhausted";
      case AbortKind::RoundLimit:       return "round-limit";
    }
    return "unknown";
}

/**
 * Verdict of an IterativeOptions::stopCheck probe: kind None means
 * keep going, anything else stops the loop with that abort kind and
 * human-readable reason.
 */
struct IterativeStop
{
    AbortKind kind = AbortKind::None;
    std::string reason;
};

/**
 * Parameters of the iterative algorithm.
 */
struct IterativeOptions
{
    std::size_t initialSample = 1000;   //!< Ninit (paper: 1000)
    std::size_t incrementSample = 100;  //!< Ndelta (paper: 100)
    /** Acceptable performance loss, e.g. 0.025 for 2.5%. */
    double acceptableLoss = 0.025;
    /** Safety cap on the total sample size. */
    std::size_t maxSample = 100000;
    /** POT configuration used in Step 2. */
    stats::PotOptions pot;
    /**
     * When true, the loss is computed against the upper end of the
     * UPB confidence interval instead of the point estimate
     * (more conservative stopping).
     */
    bool useUpperConfidenceBound = false;
    /**
     * Seed each round's GPD fit from the previous round's (fast path;
     * likelihoods agree with cold fits to ~1e-9). Disable to make each
     * Step 2 bit-identical to from-scratch estimation.
     */
    bool warmStartFits = true;
    /**
     * When measurements fail (engine failure channel), draw
     * replacements so every round still contributes its full quota of
     * valid points — Ninit / Ndelta count *valid* measurements, not
     * attempts. Disable to keep the paper's fixed draw counts.
     */
    bool topUpFailedMeasurements = true;
    /** Bound on replacement rounds per iteration when topping up. */
    std::size_t maxTopUpRounds = 3;
    /**
     * Probed at the top of every round — before the round's
     * measurements — with the zero-based round index. Returning a
     * kind other than None stops the loop gracefully: in-flight
     * batches have drained (rounds are the drain unit), the result
     * carries the abort kind and reason, and everything sampled so
     * far is preserved. The campaign runner (core/campaign.hh) hooks
     * shutdown requests, wall-clock deadlines and budgets in here so
     * the search loop itself stays free of clocks and signals.
     */
    std::function<IterativeStop(std::size_t round)> stopCheck;
};

/**
 * One Step 2/3 evaluation in the run record.
 *
 * `upb` is always the POT *point estimate* of the optimum, never the
 * confidence bound; `upbUpper` is the upper end of its confidence
 * interval. The stopping rule compares against `lossTarget`, which is
 * `upb` normally and `upbUpper` when
 * IterativeOptions::useUpperConfidenceBound is set — both are
 * recorded so reports can reproduce either loss definition.
 */
struct IterativeStep
{
    std::size_t sampleSize = 0;   //!< sample size at this evaluation
    double bestObserved = 0.0;    //!< best assignment so far
    double upb = 0.0;             //!< UPB point estimate
    double upbUpper = 0.0;        //!< upper CI bound of the UPB
    /** Denominator of the stopping rule: upb, or upbUpper under
     *  useUpperConfidenceBound (infinite when the fit is unusable). */
    double lossTarget = 0.0;
    double loss = 0.0;            //!< (lossTarget - best) / lossTarget
    std::size_t attempted = 0;    //!< measurements attempted this round
    std::size_t failed = 0;       //!< attempts that failed this round
    std::size_t topUps = 0;       //!< replacement draws this round
};

/**
 * Outcome of a full run of the iterative algorithm.
 */
struct IterativeResult
{
    EstimationResult final;            //!< last estimation
    std::vector<IterativeStep> steps;  //!< per-iteration record
    bool satisfied = false;            //!< loss target reached
    std::size_t totalSampled = 0;      //!< valid measurements kept
    std::size_t totalAttempted = 0;    //!< measurements attempted
    std::size_t totalFailed = 0;       //!< attempts that failed
    /** Non-empty when the loop gave up rather than converged, e.g.
     *  "every measurement in a full round failed". */
    std::string abortReason;
    /** Structured counterpart of abortReason; None when the loop
     *  converged or ran into its sample cap. */
    AbortKind abortKind = AbortKind::None;
};

/**
 * Runs the iterative algorithm to completion.
 *
 * @param engine   Measurement engine.
 * @param topology Processor shape.
 * @param tasks    Workload size.
 * @param seed     Sampler seed.
 * @param options  Algorithm parameters.
 */
IterativeResult
iterativeAssignmentSearch(PerformanceEngine &engine,
                          const Topology &topology, std::uint32_t tasks,
                          std::uint64_t seed,
                          const IterativeOptions &options = {});

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_ITERATIVE_HH
