/**
 * @file
 * TrainedPredictorEngine implementation.
 */

#include "core/predictor.hh"

#include <cmath>

#include "base/check.hh"
#include "core/sampler.hh"
#include "stats/descriptive.hh"
#include "stats/linear_solve.hh"

namespace statsched
{
namespace core
{

std::vector<double>
assignmentFeatures(const Assignment &assignment)
{
    const Topology &topo = assignment.topology();
    const auto by_pipe = assignment.tasksByPipe();
    const auto by_core = assignment.tasksByCore();

    std::vector<double> f;
    f.push_back(1.0);   // intercept

    // Pipe-load histogram: number of pipes holding exactly k tasks,
    // k = 2 .. strandsPerPipe (load-1 pipes are the baseline).
    for (std::uint32_t k = 2; k <= topo.strandsPerPipe; ++k) {
        int count = 0;
        for (const auto &pipe : by_pipe)
            count += (pipe.size() == k) ? 1 : 0;
        f.push_back(static_cast<double>(count));
    }

    // Core-load histogram in coarse buckets.
    const std::uint32_t core_cap =
        topo.pipesPerCore * topo.strandsPerPipe;
    int mid = 0;
    int heavy = 0;
    for (const auto &members : by_core) {
        if (members.size() >= core_cap / 2 + 1)
            ++heavy;
        else if (members.size() >= 3)
            ++mid;
    }
    f.push_back(static_cast<double>(mid));
    f.push_back(static_cast<double>(heavy));

    // Pairwise co-location pressure: same-pipe and same-core task
    // pairs (quadratic crowding signals).
    double same_pipe_pairs = 0.0;
    for (const auto &pipe : by_pipe) {
        const double k = static_cast<double>(pipe.size());
        same_pipe_pairs += k * (k - 1.0) / 2.0;
    }
    double same_core_pairs = 0.0;
    for (const auto &members : by_core) {
        const double k = static_cast<double>(members.size());
        same_core_pairs += k * (k - 1.0) / 2.0;
    }
    f.push_back(same_pipe_pairs);
    f.push_back(same_core_pairs);

    // Per-task pipe-load sum (linear crowding exposure).
    double load_sum = 0.0;
    for (TaskId t = 0; t < assignment.size(); ++t)
        load_sum += static_cast<double>(
            by_pipe[assignment.pipeOf(t)].size());
    f.push_back(load_sum);

    // Adjacent-task core co-location: tasks of the same pipeline
    // instance sit at consecutive task ids, so consecutive-pair
    // same-core counts capture queue locality without the predictor
    // knowing the workload structure.
    double adjacent_same_core = 0.0;
    for (TaskId t = 0; t + 1 < assignment.size(); ++t) {
        if (assignment.coreOf(t) == assignment.coreOf(t + 1))
            adjacent_same_core += 1.0;
    }
    f.push_back(adjacent_same_core);

    // Task-identity-aware features: heterogeneous tasks react
    // differently to the same structural pressure, so the predictor
    // also sees, per task, the load of its pipe, the population of
    // its core, and whether it is co-located with its neighbours.
    for (TaskId t = 0; t < assignment.size(); ++t) {
        f.push_back(static_cast<double>(
            by_pipe[assignment.pipeOf(t)].size()));
        f.push_back(static_cast<double>(
            by_core[assignment.coreOf(t)].size()));
        double near = 0.0;
        if (t > 0 && assignment.coreOf(t) == assignment.coreOf(t - 1))
            near += 1.0;
        if (t + 1 < assignment.size() &&
            assignment.coreOf(t) == assignment.coreOf(t + 1))
            near += 1.0;
        f.push_back(near);
    }

    return f;
}

TrainedPredictorEngine::TrainedPredictorEngine(
    PerformanceEngine &oracle, const Topology &topology,
    std::uint32_t tasks, std::size_t training_n, std::uint64_t seed,
    double lambda)
    : topology_(topology), tasks_(tasks), oracleName_(oracle.name())
{
    SCHED_REQUIRE(training_n >= 30,
                  "predictor needs at least 30 training points");

    RandomAssignmentSampler sampler(topology, tasks, seed);
    const std::vector<Assignment> sample =
        sampler.drawSample(training_n);
    std::vector<double> targets(sample.size());
    oracle.measureBatch(sample, targets);

    std::vector<std::vector<double>> rows;
    rows.reserve(training_n);
    for (const Assignment &a : sample)
        rows.push_back(assignmentFeatures(a));
    weights_ = stats::ridgeRegression(rows, targets, lambda);
}

double
TrainedPredictorEngine::measure(const Assignment &assignment)
{
    const auto f = assignmentFeatures(assignment);
    SCHED_INVARIANT(f.size() == weights_.size(),
                    "feature/weight size mismatch");
    double v = 0.0;
    for (std::size_t i = 0; i < f.size(); ++i)
        v += weights_[i] * f[i];
    return v;
}

std::string
TrainedPredictorEngine::name() const
{
    return "predictor(" + oracleName_ + ")";
}

PredictorAccuracy
TrainedPredictorEngine::evaluate(PerformanceEngine &oracle,
                                 std::size_t n, std::uint64_t seed)
{
    SCHED_REQUIRE(n >= 2, "need at least two evaluation points");
    RandomAssignmentSampler sampler(topology_, tasks_, seed);
    const std::vector<Assignment> sample = sampler.drawSample(n);
    std::vector<double> predicted(sample.size());
    std::vector<double> actual(sample.size());
    measureBatch(sample, predicted);
    oracle.measureBatch(sample, actual);

    PredictorAccuracy acc;
    const double m = stats::mean(actual);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    double abs_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ss_res += (actual[i] - predicted[i]) *
            (actual[i] - predicted[i]);
        ss_tot += (actual[i] - m) * (actual[i] - m);
        abs_err += std::fabs(actual[i] - predicted[i]);
    }
    acc.rSquared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
    acc.meanAbsErrorPct =
        m > 0.0 ? abs_err / static_cast<double>(n) / m : 0.0;
    return acc;
}

} // namespace core
} // namespace statsched
