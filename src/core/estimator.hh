/**
 * @file
 * Optimal-performance estimation over a measurement engine
 * (Sections 3.3 and 5.2 of the paper).
 *
 * OptimalPerformanceEstimator drives the full method: draw a sample
 * of iid random task assignments, measure each on the engine, then
 * run the POT/EVT analysis to estimate the optimal system performance
 * (UPB) with a confidence interval. It keeps the best observed
 * assignment so callers can deploy it, and exposes the raw sample for
 * diagnostics and the figure harnesses.
 */

#ifndef STATSCHED_CORE_ESTIMATOR_HH
#define STATSCHED_CORE_ESTIMATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/performance_engine.hh"
#include "core/sampler.hh"
#include "stats/pot.hh"
#include "stats/pot_accumulator.hh"

namespace statsched
{
namespace core
{

/**
 * Outcome of an estimation run.
 */
struct EstimationResult
{
    /** Measured performance of every *valid* sampled assignment. */
    std::vector<double> sample;
    /** The best assignment observed in the sample. */
    std::optional<Assignment> bestAssignment;
    /** Performance of the best observed assignment. */
    double bestObserved = 0.0;
    /** The POT estimate of the optimal system performance. */
    stats::PotEstimate pot;
    /** Modeled experimentation time in seconds (failed measurements
     *  occupy the testbed too, so this counts attempts). */
    double modeledSeconds = 0.0;
    /** Cumulative measurements attempted, including failed ones. */
    std::size_t attempted = 0;
    /** Cumulative attempts that failed and were excluded from the
     *  sample (see the engine failure channel in
     *  performance_engine.hh). */
    std::size_t failed = 0;

    /**
     * Performance loss of the best observed assignment relative to
     * the estimated optimum: (UPB - best) / UPB (Figure 12).
     */
    double
    estimatedLoss() const
    {
        return pot.upb > 0.0 ? (pot.upb - bestObserved) / pot.upb : 0.0;
    }
};

/**
 * Runs the sampling + EVT estimation pipeline.
 */
class OptimalPerformanceEstimator
{
  public:
    /**
     * @param engine        Measurement engine (not owned).
     * @param topology      Processor shape.
     * @param tasks         Workload size.
     * @param seed          Sampler seed.
     * @param options       POT configuration (threshold, estimator,
     *                      confidence level).
     * @param warmStartFits Seed each round's GPD fit from the previous
     *                      round's (faster; likelihood agrees with the
     *                      cold fit to ~1e-9). Disable for results
     *                      bit-identical to the from-scratch
     *                      estimateOptimalPerformance() pipeline.
     */
    OptimalPerformanceEstimator(PerformanceEngine &engine,
                                const Topology &topology,
                                std::uint32_t tasks, std::uint64_t seed,
                                const stats::PotOptions &options = {},
                                bool warmStartFits = true);

    /**
     * Draws and measures `n` fresh assignments, then estimates the
     * UPB from everything measured so far. Can be called repeatedly
     * to grow the sample (the iterative algorithm does).
     *
     * Failed measurements (engine outcome not ok) are excluded from
     * the sample rather than poisoning the fit; the result reports
     * them through `attempted` / `failed`. When every measurement so
     * far has failed the estimate comes back invalid with a
     * structured reason instead of asserting.
     *
     * @param n Assignments to add to the sample.
     */
    EstimationResult extend(std::size_t n);

    /** @return valid measurements collected so far. */
    const std::vector<double> &sample() const { return sample_; }

    /** @return valid measurements accumulated so far. */
    std::size_t sampleSize() const { return sample_.size(); }

    /** @return measurements attempted, including failed ones. */
    std::size_t attempted() const { return attempted_; }

    /** @return attempts that failed and were excluded. */
    std::size_t failedCount() const { return failed_; }

  private:
    PerformanceEngine &engine_;
    RandomAssignmentSampler sampler_;
    stats::PotOptions options_;
    /** Valid measurements in collection order (the sample() view). */
    std::vector<double> sample_;
    /** Incremental POT state over the same measurements. */
    stats::PotAccumulator accumulator_;
    std::optional<Assignment> best_;
    double bestValue_ = 0.0;
    std::size_t attempted_ = 0;
    std::size_t failed_ = 0;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_ESTIMATOR_HH
