/**
 * @file
 * Baseline assignment implementations.
 */

#include "core/baselines.hh"

#include "base/check.hh"
#include "core/sampler.hh"
#include "stats/descriptive.hh"

namespace statsched
{
namespace core
{

Assignment
linuxLikeAssignment(const Topology &topology, std::uint32_t tasks)
{
    SCHED_REQUIRE(tasks >= 1 && tasks <= topology.contexts(),
                  "workload size out of range");

    // Round-robin over cores; within each core, round-robin over
    // pipes; within each pipe, strands fill in order. Track per-pipe
    // occupancy to translate to concrete contexts.
    std::vector<std::uint32_t> pipe_fill(topology.pipes(), 0);
    std::vector<std::uint32_t> core_next_pipe(topology.cores, 0);
    std::vector<ContextId> contexts(tasks);

    std::uint32_t core = 0;
    for (TaskId t = 0; t < tasks; ++t) {
        // Find the next core (round-robin) with a free context.
        for (std::uint32_t probe = 0; probe < topology.cores; ++probe) {
            const std::uint32_t c = (core + probe) % topology.cores;
            // Try that core's pipes round-robin.
            bool placed = false;
            for (std::uint32_t pp = 0; pp < topology.pipesPerCore;
                 ++pp) {
                const std::uint32_t p_in_core =
                    (core_next_pipe[c] + pp) % topology.pipesPerCore;
                const std::uint32_t pipe =
                    c * topology.pipesPerCore + p_in_core;
                if (pipe_fill[pipe] < topology.strandsPerPipe) {
                    contexts[t] = pipe * topology.strandsPerPipe +
                        pipe_fill[pipe];
                    ++pipe_fill[pipe];
                    core_next_pipe[c] =
                        (p_in_core + 1) % topology.pipesPerCore;
                    placed = true;
                    break;
                }
            }
            if (placed) {
                core = (c + 1) % topology.cores;
                break;
            }
        }
    }
    return Assignment(topology, contexts);
}

Assignment
packedAssignment(const Topology &topology, std::uint32_t tasks)
{
    SCHED_REQUIRE(tasks >= 1 && tasks <= topology.contexts(),
                  "workload size out of range");
    std::vector<ContextId> contexts(tasks);
    for (TaskId t = 0; t < tasks; ++t)
        contexts[t] = t;
    return Assignment(topology, contexts);
}

double
naiveExpectedPerformance(PerformanceEngine &engine,
                         const Topology &topology, std::uint32_t tasks,
                         std::size_t draws, std::uint64_t seed)
{
    SCHED_REQUIRE(draws >= 1, "need at least one draw");
    RandomAssignmentSampler sampler(topology, tasks, seed);
    const std::vector<Assignment> batch = sampler.drawSample(draws);
    std::vector<double> values(batch.size());
    engine.measureBatch(batch, values);
    return stats::mean(values);
}

} // namespace core
} // namespace statsched
