/**
 * @file
 * Assignment implementation.
 *
 * The canonical key sorts task lists within pipes, sorts the two pipe
 * lists within each core, and finally sorts the per-core descriptors —
 * exactly the hardware symmetries (strand, pipe, core permutations)
 * under which the contention model is invariant.
 */

#include "core/assignment.hh"

#include <algorithm>
#include <set>
#include "base/check.hh"

namespace statsched
{
namespace core
{

Assignment::Assignment(const Topology &topology,
                       std::vector<ContextId> contexts)
    : topology_(topology), contexts_(std::move(contexts))
{
    SCHED_REQUIRE(!contexts_.empty(), "empty assignment");
    SCHED_REQUIRE(isValid(topology_, contexts_),
                  "invalid assignment: out of range or duplicate "
                  "context");
}

bool
Assignment::isValid(const Topology &topology,
                    const std::vector<ContextId> &contexts)
{
    std::set<ContextId> seen;
    for (ContextId ctx : contexts) {
        if (ctx >= topology.contexts())
            return false;
        if (!seen.insert(ctx).second)
            return false;
    }
    return true;
}

std::vector<std::vector<TaskId>>
Assignment::tasksByPipe() const
{
    std::vector<std::vector<TaskId>> by_pipe(topology_.pipes());
    for (TaskId t = 0; t < contexts_.size(); ++t)
        by_pipe[pipeOf(t)].push_back(t);
    return by_pipe;
}

std::vector<std::vector<TaskId>>
Assignment::tasksByCore() const
{
    std::vector<std::vector<TaskId>> by_core(topology_.cores);
    for (TaskId t = 0; t < contexts_.size(); ++t)
        by_core[coreOf(t)].push_back(t);
    return by_core;
}

namespace
{

/**
 * Counting-sort CSR grouping over a per-task group id. Tasks are
 * visited in ascending id order, so each group's member list is
 * ascending — matching the vector-of-vectors groupings above.
 */
template <typename GroupFn>
void
groupInto(std::size_t tasks, std::size_t groups, GroupFn group_of,
          std::vector<std::uint32_t> &offsets,
          std::vector<TaskId> &flat)
{
    offsets.assign(groups + 1, 0);
    for (TaskId t = 0; t < tasks; ++t)
        ++offsets[group_of(t) + 1];
    for (std::size_t g = 1; g <= groups; ++g)
        offsets[g] += offsets[g - 1];
    flat.resize(tasks);
    // Second pass advances offsets[g] as the write cursor of group g,
    // leaving it at the start of group g + 1; the rotation restores
    // the start offsets.
    for (TaskId t = 0; t < tasks; ++t)
        flat[offsets[group_of(t)]++] = t;
    for (std::size_t g = groups; g > 0; --g)
        offsets[g] = offsets[g - 1];
    offsets[0] = 0;
}

} // anonymous namespace

void
Assignment::tasksByPipeInto(std::vector<std::uint32_t> &offsets,
                            std::vector<TaskId> &flat) const
{
    groupInto(contexts_.size(), topology_.pipes(),
              [this](TaskId t) { return pipeOf(t); }, offsets, flat);
}

void
Assignment::tasksByCoreInto(std::vector<std::uint32_t> &offsets,
                            std::vector<TaskId> &flat) const
{
    groupInto(contexts_.size(), topology_.cores,
              [this](TaskId t) { return coreOf(t); }, offsets, flat);
}

std::string
Assignment::canonicalKey() const
{
    // Build per-core descriptors: each core is the sorted pair of its
    // two (sorted) pipe task lists; cores are then sorted as strings.
    const auto by_pipe = tasksByPipe();
    std::vector<std::string> core_keys;
    core_keys.reserve(topology_.cores);

    for (std::uint32_t c = 0; c < topology_.cores; ++c) {
        std::vector<std::string> pipe_keys;
        bool core_empty = true;
        for (std::uint32_t p = 0; p < topology_.pipesPerCore; ++p) {
            const auto &tasks = by_pipe[c * topology_.pipesPerCore + p];
            std::string key = "[";
            std::vector<TaskId> sorted(tasks);
            std::sort(sorted.begin(), sorted.end());
            for (TaskId t : sorted) {
                key += std::to_string(t);
                key += ",";
            }
            key += "]";
            if (!tasks.empty())
                core_empty = false;
            pipe_keys.push_back(std::move(key));
        }
        if (core_empty)
            continue;
        std::sort(pipe_keys.begin(), pipe_keys.end());
        std::string core_key = "{";
        for (const auto &pk : pipe_keys)
            core_key += pk;
        core_key += "}";
        core_keys.push_back(std::move(core_key));
    }

    std::sort(core_keys.begin(), core_keys.end());
    std::string key;
    for (const auto &ck : core_keys)
        key += ck;
    return key;
}

std::string
Assignment::toString() const
{
    const auto by_pipe = tasksByPipe();
    std::string out;
    for (std::uint32_t c = 0; c < topology_.cores; ++c) {
        bool core_empty = true;
        for (std::uint32_t p = 0; p < topology_.pipesPerCore; ++p) {
            if (!by_pipe[c * topology_.pipesPerCore + p].empty())
                core_empty = false;
        }
        if (core_empty)
            continue;
        out += "{";
        for (std::uint32_t p = 0; p < topology_.pipesPerCore; ++p) {
            out += "[";
            const auto &tasks = by_pipe[c * topology_.pipesPerCore + p];
            for (std::size_t i = 0; i < tasks.size(); ++i) {
                if (i)
                    out += " ";
                out += "t" + std::to_string(tasks[i]);
            }
            out += "]";
        }
        out += "}";
    }
    return out;
}

} // namespace core
} // namespace statsched
