/**
 * @file
 * The iid random-assignment sampler (Section 3.3.2, Step 1 of the
 * paper).
 *
 * "We enumerate the hardware contexts of the processor with integers
 * from 1 to V and for each task in the workload we randomly select an
 * integer from this interval. ... An assignment is not valid if two
 * or more tasks are mapped to the same hardware context. If this is
 * the case, we simply discard the invalid assignment and repeat the
 * whole process."
 *
 * This sampling-with-replacement over the labeled placement space
 * yields independent, identically distributed assignments — the
 * requirement of the EVT analysis.
 *
 * Two equivalent generation methods are provided. RejectionPaper is
 * the literal procedure above; its acceptance probability is
 * V!/(V-T)!/V^T, which collapses for workloads that nearly fill the
 * machine (~1e-11 for 48 of 64 contexts). PartialFisherYates draws a
 * uniformly random ordered T-subset of contexts directly in O(T);
 * conditioning iid uniforms on distinctness yields exactly the
 * uniform distribution over ordered distinct tuples, so the two
 * methods sample the *same* distribution.
 */

#ifndef STATSCHED_CORE_SAMPLER_HH
#define STATSCHED_CORE_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "core/assignment.hh"
#include "stats/rng.hh"

namespace statsched
{
namespace core
{

/** Assignment generation method (identical output distribution). */
enum class SamplingMethod
{
    RejectionPaper,      //!< the paper's discard-and-redraw loop
    PartialFisherYates   //!< O(T) partial shuffle
};

/**
 * Draws iid uniform random task assignments.
 */
class RandomAssignmentSampler
{
  public:
    /**
     * @param topology Target processor shape.
     * @param tasks    Workload size; 1 <= tasks <= contexts().
     * @param seed     RNG seed (deterministic streams).
     * @param method   Generation method; defaults to the paper's
     *                 rejection loop, which is practical while the
     *                 workload uses at most ~2/3 of the contexts.
     */
    RandomAssignmentSampler(
        const Topology &topology, std::uint32_t tasks,
        std::uint64_t seed,
        SamplingMethod method = SamplingMethod::RejectionPaper);

    /** @return one iid random assignment. */
    Assignment draw();

    /** @return a sample of n iid random assignments. */
    std::vector<Assignment> drawSample(std::size_t n);

    /**
     * Total draws attempted so far, including the discarded invalid
     * ones — exposes the rejection rate of the paper's procedure
     * (always equals produced() under PartialFisherYates).
     */
    std::uint64_t attempts() const { return attempts_; }

    /** Valid assignments produced so far. */
    std::uint64_t produced() const { return produced_; }

    /** @return the generation method in use. */
    SamplingMethod method() const { return method_; }

  private:
    Topology topology_;
    std::uint32_t tasks_;
    stats::Rng rng_;
    SamplingMethod method_;
    /** Scratch permutation for the Fisher-Yates method. */
    std::vector<ContextId> scratch_;
    std::uint64_t attempts_ = 0;
    std::uint64_t produced_ = 0;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_SAMPLER_HH
