/**
 * @file
 * Task assignment: the mapping from tasks to hardware contexts.
 *
 * An Assignment binds each of T tasks to a distinct hardware context
 * of a Topology — the static task-to-strand binding that Netra DPS
 * performs at compile time (Section 4.2 of the paper). Performance is
 * invariant under permutations of equivalent hardware (cores with each
 * other, pipes within a core, strands within a pipe), so assignments
 * also expose a *canonical key* identifying their equivalence class;
 * the class count is what Table 1 of the paper reports.
 */

#ifndef STATSCHED_CORE_ASSIGNMENT_HH
#define STATSCHED_CORE_ASSIGNMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/check.hh"
#include "core/topology.hh"

namespace statsched
{
namespace core
{

/** Index of a task within a workload. */
using TaskId = std::uint32_t;

/**
 * An assignment of tasks to hardware contexts.
 */
class Assignment
{
  public:
    /**
     * @param topology The processor shape.
     * @param contexts contexts[t] is the hardware context of task t;
     *                 all entries must be valid and pairwise distinct.
     */
    Assignment(const Topology &topology,
               std::vector<ContextId> contexts);

    /** @return number of tasks. */
    std::size_t size() const { return contexts_.size(); }

    /** @return the topology this assignment targets. */
    const Topology &topology() const { return topology_; }

    /** @return the context of a task. */
    ContextId
    contextOf(TaskId task) const
    {
        SCHED_REQUIRE(task < contexts_.size(), "task out of range");
        return contexts_[task];
    }

    /** @return the raw task -> context vector. */
    const std::vector<ContextId> &contexts() const { return contexts_; }

    /** @return the core of a task. */
    std::uint32_t
    coreOf(TaskId task) const
    {
        return topology_.coreOf(contextOf(task));
    }

    /** @return the chip-global pipe of a task. */
    std::uint32_t
    pipeOf(TaskId task) const
    {
        return topology_.pipeOf(contextOf(task));
    }

    /** @return tasks grouped by chip-global pipe (pipes() entries). */
    std::vector<std::vector<TaskId>> tasksByPipe() const;

    /** @return tasks grouped by core (cores() entries). */
    std::vector<std::vector<TaskId>> tasksByCore() const;

    /**
     * Allocation-free grouping of tasks by chip-global pipe in CSR
     * layout: after the call, group g spans
     * flat[offsets[g], offsets[g + 1]) with tasks in ascending id
     * order — the same member order tasksByPipe() produces. The
     * buffers are resized in place, so a caller that reuses them
     * across assignments allocates only until they reach steady-state
     * capacity. This is the form the batch measurement hot path
     * consumes (sim::ContentionSolver::solveInto).
     *
     * @param offsets Receives pipes() + 1 offsets.
     * @param flat    Receives size() task ids.
     */
    void tasksByPipeInto(std::vector<std::uint32_t> &offsets,
                         std::vector<TaskId> &flat) const;

    /** CSR grouping by core; see tasksByPipeInto(). */
    void tasksByCoreInto(std::vector<std::uint32_t> &offsets,
                         std::vector<TaskId> &flat) const;

    /**
     * Canonical key of the equivalence class under hardware symmetry:
     * two assignments get equal keys iff one can be transformed into
     * the other by permuting cores, permuting pipes within cores and
     * permuting strands within pipes.
     */
    std::string canonicalKey() const;

    /**
     * Paper-style rendering, e.g. "{[t0 t2][]}{[t1][]}" — one {...}
     * per occupied core, one [...] per pipe. Cores and pipes are
     * printed in canonical order; empty cores are omitted.
     */
    std::string toString() const;

    /**
     * Validates a raw context vector without constructing.
     *
     * @return true iff all contexts are in range and distinct.
     */
    static bool isValid(const Topology &topology,
                        const std::vector<ContextId> &contexts);

  private:
    Topology topology_;
    std::vector<ContextId> contexts_;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_ASSIGNMENT_HH
