/**
 * @file
 * Iterative algorithm implementation.
 */

#include "core/iterative.hh"

#include <cmath>

namespace statsched
{
namespace core
{

IterativeResult
iterativeAssignmentSearch(PerformanceEngine &engine,
                          const Topology &topology, std::uint32_t tasks,
                          std::uint64_t seed,
                          const IterativeOptions &options)
{
    STATSCHED_ASSERT(options.acceptableLoss > 0.0 &&
                     options.acceptableLoss < 1.0,
                     "acceptable loss out of (0,1)");
    STATSCHED_ASSERT(options.initialSample >= 1 &&
                     options.incrementSample >= 1,
                     "sample sizes must be positive");

    OptimalPerformanceEstimator estimator(engine, topology, tasks, seed,
                                          options.pot,
                                          options.warmStartFits);

    IterativeResult result;
    std::size_t to_draw = options.initialSample;

    for (;;) {
        result.final = estimator.extend(to_draw);
        result.totalSampled = estimator.sampleSize();

        // Step 3: compare the best observed assignment with the
        // estimated optimal performance.
        double target = options.useUpperConfidenceBound
            ? result.final.pot.upbUpper : result.final.pot.upb;
        if (!result.final.pot.valid || !std::isfinite(target)) {
            // The tail estimate is unusable (e.g. xi >= 0 or an
            // unbounded CI); keep sampling, more data regularizes
            // the fit.
            target = std::numeric_limits<double>::infinity();
        }

        IterativeStep step;
        step.sampleSize = result.totalSampled;
        step.bestObserved = result.final.bestObserved;
        step.upb = result.final.pot.upb;
        step.upbUpper = result.final.pot.upbUpper;
        step.lossTarget = target;
        step.loss = std::isfinite(target) && target > 0.0
            ? (target - result.final.bestObserved) / target : 1.0;
        result.steps.push_back(step);

        if (step.loss <= options.acceptableLoss) {
            result.satisfied = true;
            return result;
        }
        if (result.totalSampled >= options.maxSample)
            return result;

        to_draw = options.incrementSample;
    }
}

} // namespace core
} // namespace statsched
