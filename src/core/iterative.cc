/**
 * @file
 * Iterative algorithm implementation.
 */

#include "core/iterative.hh"

#include <cmath>
#include "base/check.hh"

namespace statsched
{
namespace core
{

IterativeResult
iterativeAssignmentSearch(PerformanceEngine &engine,
                          const Topology &topology, std::uint32_t tasks,
                          std::uint64_t seed,
                          const IterativeOptions &options)
{
    SCHED_REQUIRE(options.acceptableLoss > 0.0 &&
                  options.acceptableLoss < 1.0,
                  "acceptable loss out of (0,1)");
    SCHED_REQUIRE(options.initialSample >= 1 &&
                  options.incrementSample >= 1,
                  "sample sizes must be positive");

    OptimalPerformanceEstimator estimator(engine, topology, tasks, seed,
                                          options.pot,
                                          options.warmStartFits);

    IterativeResult result;
    std::size_t to_draw = options.initialSample;
    std::size_t round = 0;

    for (;; ++round) {
        // External stop conditions (shutdown, deadline, budgets) are
        // probed at round boundaries only: a round's batches always
        // drain, so stopping never tears a batch and a journaled run
        // resumes on a group boundary.
        if (options.stopCheck) {
            IterativeStop stop = options.stopCheck(round);
            if (stop.kind != AbortKind::None) {
                result.abortKind = stop.kind;
                result.abortReason = stop.reason.empty()
                    ? abortKindName(stop.kind) : stop.reason;
                return result;
            }
        }

        const std::size_t valid_before = estimator.sampleSize();
        const std::size_t attempted_before = estimator.attempted();
        const std::size_t failed_before = estimator.failedCount();

        result.final = estimator.extend(to_draw);

        // Top the round back up to its quota of *valid* points: a
        // failed measurement carries no information, so without
        // replacement draws a faulty testbed would silently shrink
        // Ndelta and slow convergence. Bounded rounds keep a
        // mostly-dead engine from retrying forever.
        std::size_t top_ups = 0;
        if (options.topUpFailedMeasurements) {
            for (std::size_t round = 0;
                 round < options.maxTopUpRounds; ++round) {
                const std::size_t gained =
                    estimator.sampleSize() - valid_before;
                if (gained >= to_draw)
                    break;
                const std::size_t deficit = to_draw - gained;
                top_ups += deficit;
                result.final = estimator.extend(deficit);
            }
        }

        result.totalSampled = estimator.sampleSize();
        result.totalAttempted = estimator.attempted();
        result.totalFailed = estimator.failedCount();

        // Step 3: compare the best observed assignment with the
        // estimated optimal performance.
        double target = options.useUpperConfidenceBound
            ? result.final.pot.upbUpper : result.final.pot.upb;
        if (!result.final.pot.valid || !std::isfinite(target)) {
            // The tail estimate is unusable (e.g. xi >= 0 or an
            // unbounded CI); keep sampling, more data regularizes
            // the fit.
            target = std::numeric_limits<double>::infinity();
        }

        IterativeStep step;
        step.sampleSize = result.totalSampled;
        step.bestObserved = result.final.bestObserved;
        step.upb = result.final.pot.upb;
        step.upbUpper = result.final.pot.upbUpper;
        step.lossTarget = target;
        step.loss = std::isfinite(target) && target > 0.0
            ? (target - result.final.bestObserved) / target : 1.0;
        step.attempted = estimator.attempted() - attempted_before;
        step.failed = estimator.failedCount() - failed_before;
        step.topUps = top_ups;
        result.steps.push_back(step);

        if (step.loss <= options.acceptableLoss &&
            result.totalSampled > 0) {
            result.satisfied = true;
            return result;
        }
        if (estimator.sampleSize() == valid_before) {
            // Every attempt in a full round (including top-ups)
            // failed; more rounds would spin against a dead engine.
            result.abortKind = AbortKind::EngineFailure;
            result.abortReason =
                "every measurement in a full round failed";
            return result;
        }
        // The safety cap counts attempts: failed measurements consume
        // testbed time too, and a high fault rate must not extend the
        // experiment unboundedly.
        if (result.totalAttempted >= options.maxSample)
            return result;

        to_draw = options.incrementSample;
    }
}

} // namespace core
} // namespace statsched
