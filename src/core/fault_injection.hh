/**
 * @file
 * Deterministic fault injection over a measurement engine.
 *
 * Real measurement substrates misbehave: a pipeline thread hangs, a
 * performance counter returns garbage, an OS hiccup inflates one
 * reading by 3x. FaultInjectingEngine reproduces those pathologies in
 * a controlled way so the resilient layer (core::ResilientEngine) and
 * the failure-aware consumers can be exercised deterministically.
 *
 * Determinism contract: whether measurement k of this engine's
 * lifetime is faulted — and how — is a pure function of
 * (assignment, k, seed). Like sim::SimulatedEngine's noise, the
 * measurement index is reserved per batch up front, so the injected
 * fault pattern is bit-identical whether a batch is evaluated
 * serially, chunked, or on any number of core::ParallelEngine worker
 * threads. A retry is a fresh measurement with a fresh index, so
 * transient faults really are transient.
 *
 * Four fault classes, drawn per measurement in this fixed order
 * (hang, transient, garbage, outlier) from one uniform variate:
 *
 *  - hang:      the measurement stalls and a watchdog reaps it after
 *               FaultOptions::hangSeconds of modeled time; reported
 *               as MeasureStatus::TimedOut, no reading.
 *  - transient: the run errors out; MeasureStatus::Errored, no
 *               reading.
 *  - garbage:   the engine returns NaN; MeasureStatus::Invalid.
 *  - outlier:   the reading IS delivered as Ok but multiplied by
 *               FaultOptions::outlierFactor — a silently wrong value
 *               only median-of-k screening can catch.
 */

#ifndef STATSCHED_CORE_FAULT_INJECTION_HH
#define STATSCHED_CORE_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "core/performance_engine.hh"

namespace statsched
{
namespace core
{

/**
 * Fault mix of a FaultInjectingEngine. Rates are probabilities in
 * [0, 1]; their sum must not exceed 1.
 */
struct FaultOptions
{
    double hangRate = 0.0;      //!< P(modeled hang -> TimedOut)
    double transientRate = 0.0; //!< P(transient error -> Errored)
    double garbageRate = 0.0;   //!< P(NaN reading -> Invalid)
    double outlierRate = 0.0;   //!< P(silent multiplicative outlier)
    /** Multiplier applied to outlier readings (still reported Ok). */
    double outlierFactor = 3.0;
    /** Modeled wall-clock cost of one hang until the watchdog fires
     *  (priced into EngineStats::modeledSeconds). */
    double hangSeconds = 10.0;
    /** Fault stream seed, independent of the engine's noise seed. */
    std::uint64_t seed = 0xfa017;

    /** @return total probability that a measurement is disturbed. */
    double
    totalRate() const
    {
        return hangRate + transientRate + garbageRate + outlierRate;
    }
};

/**
 * Decorator that injects deterministic faults into the measurements
 * of the wrapped engine.
 */
class FaultInjectingEngine : public PerformanceEngine
{
  public:
    /**
     * @param inner   Engine to wrap; not owned.
     * @param options Fault mix and seed.
     */
    FaultInjectingEngine(PerformanceEngine &inner,
                         const FaultOptions &options);

    double measure(const Assignment &assignment) override;

    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override;

    void measureBatchOutcome(
        std::span<const Assignment> batch,
        std::span<MeasurementOutcome> out) override;

    /** Double-channel kernel: failed outcomes surface as NaN. */
    BatchKernel parallelKernel(std::size_t batchSize) override;

    OutcomeKernel outcomeKernel(std::size_t batchSize) override;

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    /**
     * Contributes the injected failures and the hang time surcharge:
     * a hung measurement costs hangSeconds instead of the engine's
     * secondsPerMeasurement() a meter above already charged.
     */
    void collectStats(EngineStats &stats) const override;

    /** Injected fault counters (lifetime totals). @{ */
    std::uint64_t injectedHangs() const
    { return hangs_.load(std::memory_order_relaxed); }
    std::uint64_t injectedTransients() const
    { return transients_.load(std::memory_order_relaxed); }
    std::uint64_t injectedGarbage() const
    { return garbage_.load(std::memory_order_relaxed); }
    std::uint64_t injectedOutliers() const
    { return outliers_.load(std::memory_order_relaxed); }
    /** @} */

  private:
    enum class FaultKind : std::uint8_t
    { None, Hang, Transient, Garbage, Outlier };

    /** Pure fault draw for measurement `index` of `assignment`. */
    FaultKind faultAt(std::uint64_t index,
                      const Assignment &assignment) const;

    /** Applies the fault drawn for `index` around a clean reading. */
    MeasurementOutcome
    applyFault(std::uint64_t index, const Assignment &assignment,
               const std::function<double()> &cleanValue);

    PerformanceEngine &inner_;
    FaultOptions options_;
    /** Next unreserved measurement index (fault substream id). */
    std::atomic<std::uint64_t> cursor_{0};
    std::atomic<std::uint64_t> hangs_{0};
    std::atomic<std::uint64_t> transients_{0};
    std::atomic<std::uint64_t> garbage_{0};
    std::atomic<std::uint64_t> outliers_{0};
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_FAULT_INJECTION_HH
