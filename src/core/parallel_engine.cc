/**
 * @file
 * ParallelEngine implementation.
 */

#include "core/parallel_engine.hh"

#include "base/logging.hh"

namespace statsched
{
namespace core
{

ParallelEngine::ParallelEngine(PerformanceEngine &inner,
                               unsigned threads)
    : inner_(inner), pool_(threads)
{
}

void
ParallelEngine::measureBatch(std::span<const Assignment> batch,
                             std::span<double> out)
{
    STATSCHED_ASSERT(batch.size() == out.size(),
                     "batch/result size mismatch");
    if (batch.empty())
        return;

    BatchKernel kernel = inner_.parallelKernel(batch.size());
    if (!kernel) {
        // The wrapped engine cannot be evaluated concurrently.
        inner_.measureBatch(batch, out);
        return;
    }

    const Assignment *items = batch.data();
    double *results = out.data();
    pool_.run(batch.size(),
              base::WorkerPool::defaultChunk(batch.size(),
                                             pool_.threads()),
              [&kernel, items, results](std::size_t begin,
                                        std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i)
                      results[i] = kernel(items[i], i);
              });
}

void
ParallelEngine::measureBatchOutcome(std::span<const Assignment> batch,
                                    std::span<MeasurementOutcome> out)
{
    STATSCHED_ASSERT(batch.size() == out.size(),
                     "batch/result size mismatch");
    if (batch.empty())
        return;

    OutcomeKernel kernel = inner_.outcomeKernel(batch.size());
    if (!kernel) {
        inner_.measureBatchOutcome(batch, out);
        return;
    }

    const Assignment *items = batch.data();
    MeasurementOutcome *results = out.data();
    pool_.run(batch.size(),
              base::WorkerPool::defaultChunk(batch.size(),
                                             pool_.threads()),
              [&kernel, items, results](std::size_t begin,
                                        std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i)
                      results[i] = kernel(items[i], i);
              });
}

} // namespace core
} // namespace statsched
