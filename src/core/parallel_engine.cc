/**
 * @file
 * ParallelEngine implementation.
 */

#include "core/parallel_engine.hh"

#include <algorithm>

namespace statsched
{
namespace core
{

namespace
{

unsigned
resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/**
 * Chunks small enough to balance uneven item costs, large enough to
 * amortize the atomic claim.
 */
std::size_t
chunkSize(std::size_t n, unsigned threads)
{
    const std::size_t target = n / (static_cast<std::size_t>(threads) * 4);
    return std::clamp<std::size_t>(target, 1, 64);
}

} // anonymous namespace

ParallelEngine::ParallelEngine(PerformanceEngine &inner,
                               unsigned threads)
    : inner_(inner), threads_(resolveThreads(threads))
{
    // The calling thread participates in every batch, so the pool
    // holds threads_ - 1 workers.
    for (unsigned i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ParallelEngine::~ParallelEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ParallelEngine::runChunks(Job &job)
{
    for (;;) {
        const std::size_t begin =
            job.next.fetch_add(job.chunk, std::memory_order_relaxed);
        if (begin >= job.n)
            return;
        const std::size_t end = std::min(begin + job.chunk, job.n);
        for (std::size_t i = begin; i < end; ++i)
            job.out[i] = job.kernel(job.batch[i], i);
        const std::size_t finished =
            job.done.fetch_add(end - begin,
                               std::memory_order_acq_rel) +
            (end - begin);
        if (finished == job.n) {
            // Pair the notification with the mutex so the waiter
            // cannot miss it between predicate check and sleep.
            { std::lock_guard<std::mutex> lock(mutex_); }
            finished_.notify_all();
        }
    }
}

void
ParallelEngine::workerLoop()
{
    std::shared_ptr<Job> seen;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || (job_ && job_ != seen);
            });
            if (stopping_)
                return;
            job = job_;
            seen = job;
        }
        runChunks(*job);
    }
}

void
ParallelEngine::measureBatch(std::span<const Assignment> batch,
                             std::span<double> out)
{
    STATSCHED_ASSERT(batch.size() == out.size(),
                     "batch/result size mismatch");
    if (batch.empty())
        return;

    BatchKernel kernel = inner_.parallelKernel(batch.size());
    if (!kernel) {
        // The wrapped engine cannot be evaluated concurrently.
        inner_.measureBatch(batch, out);
        return;
    }
    if (workers_.empty() || batch.size() == 1) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            out[i] = kernel(batch[i], i);
        return;
    }

    auto job = std::make_shared<Job>();
    job->batch = batch.data();
    job->out = out.data();
    job->n = batch.size();
    job->chunk = chunkSize(batch.size(), threads_);
    job->kernel = std::move(kernel);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
    }
    wake_.notify_all();

    runChunks(*job);

    std::unique_lock<std::mutex> lock(mutex_);
    finished_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->n;
    });
    // Clear the published job so destruction cannot race a worker
    // that never woke for it.
    job_.reset();
}

} // namespace core
} // namespace statsched
