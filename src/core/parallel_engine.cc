/**
 * @file
 * ParallelEngine implementation.
 */

#include "core/parallel_engine.hh"

#include <exception>
#include <limits>

#include "base/check.hh"

namespace statsched
{
namespace core
{

ParallelEngine::ParallelEngine(PerformanceEngine &inner,
                               unsigned threads)
    : inner_(inner), pool_(threads)
{
}

void
ParallelEngine::measureBatch(std::span<const Assignment> batch,
                             std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    if (batch.empty())
        return;

    BatchKernel kernel = inner_.parallelKernel(batch.size());
    if (!kernel) {
        // The wrapped engine cannot be evaluated concurrently.
        inner_.measureBatch(batch, out);
        return;
    }

    const Assignment *items = batch.data();
    double *results = out.data();

    if (pool_.threads() == 1) {
        // Degenerate single-thread configuration: skip the pool
        // entirely and run the kernel inline, with the same per-item
        // containment semantics as the worker path.
        for (std::size_t i = 0; i < batch.size(); ++i) {
            try {
                results[i] = kernel(items[i], i);
            } catch (const std::exception &) {
                results[i] =
                    std::numeric_limits<double>::quiet_NaN();
            }
        }
        return;
    }
    pool_.run(batch.size(),
              base::WorkerPool::defaultChunk(batch.size(),
                                             pool_.threads()),
              [&kernel, items, results](std::size_t begin,
                                        std::size_t end) {
                  // A contract violation (or any error) inside a
                  // kernel must not unwind through the worker pool —
                  // that would std::terminate the process. Failed
                  // items degrade to NaN, which downstream consumers
                  // classify as invalid readings.
                  for (std::size_t i = begin; i < end; ++i) {
                      try {
                          results[i] = kernel(items[i], i);
                      } catch (const std::exception &) {
                          results[i] = std::numeric_limits<
                              double>::quiet_NaN();
                      }
                  }
              });
}

void
ParallelEngine::measureBatchOutcome(std::span<const Assignment> batch,
                                    std::span<MeasurementOutcome> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    if (batch.empty())
        return;

    OutcomeKernel kernel = inner_.outcomeKernel(batch.size());
    if (!kernel) {
        inner_.measureBatchOutcome(batch, out);
        return;
    }

    const Assignment *items = batch.data();
    MeasurementOutcome *results = out.data();

    if (pool_.threads() == 1) {
        // See measureBatch(): inline bypass for one thread.
        for (std::size_t i = 0; i < batch.size(); ++i) {
            try {
                results[i] = kernel(items[i], i);
            } catch (const std::exception &) {
                results[i] = MeasurementOutcome::failure(
                    MeasureStatus::Errored);
            }
        }
        return;
    }
    pool_.run(batch.size(),
              base::WorkerPool::defaultChunk(batch.size(),
                                             pool_.threads()),
              [&kernel, items, results](std::size_t begin,
                                        std::size_t end) {
                  // See measureBatch(): contain per-item failures on
                  // the worker thread. Here they surface as
                  // structured Errored outcomes, so a resilient
                  // layer above can retry or quarantine the class.
                  for (std::size_t i = begin; i < end; ++i) {
                      try {
                          results[i] = kernel(items[i], i);
                      } catch (const std::exception &) {
                          results[i] = MeasurementOutcome::failure(
                              MeasureStatus::Errored);
                      }
                  }
              });
}

} // namespace core
} // namespace statsched
