/**
 * @file
 * AssignmentSpace implementation.
 */

#include "core/assignment_space.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>
#include "base/check.hh"

namespace statsched
{
namespace core
{

AssignmentSpace::AssignmentSpace(const Topology &topology)
    : topology_(topology)
{
    SCHED_REQUIRE(topology_.cores >= 1 &&
                  topology_.pipesPerCore >= 1 &&
                  topology_.strandsPerPipe >= 1,
                  "degenerate topology");
    buildCoreTable();
}

void
AssignmentSpace::buildCoreTable()
{
    const std::uint32_t cap =
        topology_.pipesPerCore * topology_.strandsPerPipe;
    coreTable_.assign(cap + 1, num::BigUint());
    coreTable_[0] = num::BigUint(1);

    // Distribute k distinct tasks over `pipesPerCore` unlabeled pipes
    // of capacity strandsPerPipe each. Computed by a nested DP that
    // assigns pipe loads in non-increasing order; for each load
    // multiset the number of set splits is the multinomial divided by
    // the permutations of equal loads.
    //
    // For the common two-pipe case this reduces to the formula in the
    // header; the DP handles any pipe count.
    const std::uint32_t pipes = topology_.pipesPerCore;
    const std::uint32_t spp = topology_.strandsPerPipe;

    // Enumerate non-increasing load vectors recursively.
    struct Enumerator
    {
        std::uint32_t pipes;
        std::uint32_t spp;
        num::BigUint total;

        /**
         * @param remaining tasks still to place
         * @param max_load  upper bound for the next pipe's load
         * @param pipes_left pipes still available
         * @param ways      set-split count accumulated so far
         * @param run_len   length of the current run of equal loads
         * @param run_load  load value of the current run
         */
        void
        recurse(std::uint32_t remaining, std::uint32_t max_load,
                std::uint32_t pipes_left, num::BigUint ways,
                std::uint32_t run_len, std::uint32_t run_load)
        {
            if (remaining == 0) {
                total += ways;
                return;
            }
            if (pipes_left == 0)
                return;
            const std::uint32_t hi = std::min(max_load,
                                              std::min(spp, remaining));
            for (std::uint32_t load = hi; load >= 1; --load) {
                // Choose which tasks go into this pipe.
                num::BigUint w =
                    ways * num::BigUint::binomial(remaining, load);
                // Divide by the run length when extending a run of
                // equal loads: unordered pipes of equal size.
                std::uint32_t new_run =
                    (load == run_load) ? run_len + 1 : 1;
                w /= num::BigUint(new_run);
                recurse(remaining - load, load, pipes_left - 1,
                        std::move(w), new_run, load);
            }
        }
    };

    for (std::uint32_t k = 1; k <= cap; ++k) {
        Enumerator e{pipes, spp, num::BigUint()};
        e.recurse(k, spp, pipes, num::BigUint(1), 0, 0);
        coreTable_[k] = e.total;
    }
}

num::BigUint
AssignmentSpace::coreArrangements(std::uint32_t k) const
{
    SCHED_REQUIRE(k < coreTable_.size(),
                  "core occupancy exceeds capacity");
    return coreTable_[k];
}

num::BigUint
AssignmentSpace::countAssignments(std::uint32_t tasks) const
{
    SCHED_REQUIRE(tasks >= 1 && tasks <= topology_.contexts(),
                  "task count out of range");

    const std::uint32_t core_cap =
        topology_.pipesPerCore * topology_.strandsPerPipe;

    // memo[(t, cores_left)] = N(t, cores_left)
    std::map<std::pair<std::uint32_t, std::uint32_t>, num::BigUint> memo;

    // N(t, cores): place the block containing the lowest-numbered
    // remaining task (size k), then recurse.
    std::function<num::BigUint(std::uint32_t, std::uint32_t)> count =
        [&](std::uint32_t t, std::uint32_t cores_left) -> num::BigUint {
        if (t == 0)
            return num::BigUint(1);
        if (cores_left == 0)
            return num::BigUint();
        const auto key = std::make_pair(t, cores_left);
        auto it = memo.find(key);
        if (it != memo.end())
            return it->second;

        num::BigUint total;
        const std::uint32_t k_max = std::min(t, core_cap);
        for (std::uint32_t k = 1; k <= k_max; ++k) {
            num::BigUint term =
                num::BigUint::binomial(t - 1, k - 1);
            term *= coreTable_[k];
            term *= count(t - k, cores_left - 1);
            total += term;
        }
        memo.emplace(key, total);
        return total;
    };

    return count(tasks, topology_.cores);
}

num::BigUint
AssignmentSpace::countLabeledPlacements(std::uint32_t tasks) const
{
    SCHED_REQUIRE(tasks >= 1 && tasks <= topology_.contexts(),
                  "task count out of range");
    num::BigUint total(1);
    const std::uint32_t v = topology_.contexts();
    for (std::uint32_t i = 0; i < tasks; ++i)
        total *= num::BigUint(v - i);
    return total;
}

} // namespace core
} // namespace statsched
