/**
 * @file
 * Baseline task-assignment policies (Section 2, Figure 1 of the
 * paper).
 *
 * The paper compares against the two baselines commonly used to
 * evaluate task-assignment proposals:
 *
 *  - Naive: tasks are randomly assigned to virtual CPUs; its expected
 *    performance is the population mean, estimated here by averaging
 *    random draws.
 *  - Linux-like: the number of tasks per core / scheduling domain is
 *    balanced; within that constraint the placement is deterministic
 *    round-robin over cores, then pipes.
 *
 * A "packed" policy (fill contexts in order, the densest legal
 * placement) is included as a pessimistic reference for tests and
 * ablations.
 */

#ifndef STATSCHED_CORE_BASELINES_HH
#define STATSCHED_CORE_BASELINES_HH

#include <cstdint>

#include "core/assignment.hh"
#include "core/performance_engine.hh"

namespace statsched
{
namespace core
{

/**
 * Linux-like balanced assignment: tasks are dealt round-robin across
 * cores, and round-robin across the pipes inside each core, so the
 * per-core (and per-pipe) task counts differ by at most one.
 *
 * @param topology Processor shape.
 * @param tasks    Workload size.
 */
Assignment linuxLikeAssignment(const Topology &topology,
                               std::uint32_t tasks);

/**
 * Packed assignment: tasks fill hardware contexts in linear order
 * (strand 0..3 of pipe 0 of core 0 first), maximizing sharing at
 * every level.
 */
Assignment packedAssignment(const Topology &topology,
                            std::uint32_t tasks);

/**
 * Expected performance of the Naive (random) scheduler: the mean
 * measured performance over `draws` iid random assignments.
 *
 * @param engine  Measurement engine.
 * @param topology Processor shape.
 * @param tasks   Workload size.
 * @param draws   Number of random assignments to average.
 * @param seed    Sampler seed.
 */
double naiveExpectedPerformance(PerformanceEngine &engine,
                                const Topology &topology,
                                std::uint32_t tasks, std::size_t draws,
                                std::uint64_t seed);

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_BASELINES_HH
