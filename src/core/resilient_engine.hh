/**
 * @file
 * Fault-tolerant measurement over an unreliable engine.
 *
 * ResilientEngine is the recovery layer of the measurement stack: it
 * turns the per-item failure channel of the wrapped engine into the
 * best valid readings it can produce within a bounded effort budget.
 * Three mechanisms compose:
 *
 *  - Retry with exponential backoff. A failed attempt (Errored,
 *    TimedOut, Invalid) is retried up to maxAttempts total attempts;
 *    the r-th retry waits backoffBaseSeconds * backoffFactor^r of
 *    *modeled* time, accounted in EngineStats::modeledSeconds just
 *    like the measurements themselves — reliability is priced into
 *    the experimentation budget, not hidden.
 *
 *  - Median-of-k screening. A reading that deviates from its batch's
 *    median by more than screenRelDeviation (relative) is suspected
 *    to be a silent outlier (e.g. an OS hiccup inflating one run);
 *    it is re-measured screenWidth - 1 more times and the median of
 *    all screenWidth readings is delivered. Off by default —
 *    screening trades experimentation time for robustness.
 *
 *  - Quarantine. An assignment class whose measurement exhausts all
 *    attempts quarantineAfter times is quarantined: further requests
 *    return MeasureStatus::Quarantined immediately and the wrapped
 *    engine is never consulted for it again. This keeps a
 *    pathological assignment (one that wedges the testbed) from
 *    eating the retry budget of every future round.
 *
 * Determinism: retries and screening re-measurements are issued as
 * sub-batches in ascending original-index order, so the measurement
 * indices the layers below reserve — and with them the injected
 * faults and noise of core::FaultInjectingEngine /
 * sim::SimulatedEngine — are bit-identical under any
 * core::ParallelEngine thread count.
 *
 * Place this decorator above a ParallelEngine (retry sub-batches fan
 * out over the pool) and below a MemoizingEngine/MeteredEngine (see
 * the ordering notes in performance_engine.hh).
 */

#ifndef STATSCHED_CORE_RESILIENT_ENGINE_HH
#define STATSCHED_CORE_RESILIENT_ENGINE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "base/sync.hh"
#include "core/performance_engine.hh"

namespace statsched
{
namespace core
{

/**
 * Retry, screening and quarantine configuration.
 */
struct ResilientOptions
{
    /** Total attempts per measurement (1 = no retries). */
    std::uint32_t maxAttempts = 4;
    /** Modeled seconds waited before the first retry. */
    double backoffBaseSeconds = 0.5;
    /** Backoff multiplier per further retry. */
    double backoffFactor = 2.0;
    /** Upper bound on one backoff wait. The uncapped geometric series
     *  overflows to infinity near attempt 1000 and poisons the
     *  modeled-time accounting long before that; five modeled minutes
     *  is already far beyond any sane retry spacing. */
    double backoffCapSeconds = 300.0;
    /** Median-of-k width; 0 or 1 disables outlier screening. */
    std::uint32_t screenWidth = 0;
    /** Relative deviation from the batch median that triggers
     *  screening, e.g. 0.5 = reading off by more than 50%. */
    double screenRelDeviation = 0.5;
    /** Full attempt-exhaustions of one assignment class before it is
     *  quarantined. */
    std::uint32_t quarantineAfter = 1;
};

/**
 * Decorator that retries, screens and quarantines measurements of an
 * unreliable wrapped engine.
 */
class ResilientEngine : public PerformanceEngine
{
  public:
    /**
     * @param inner   Engine to wrap; not owned.
     * @param options Retry/screening/quarantine parameters.
     */
    ResilientEngine(PerformanceEngine &inner,
                    const ResilientOptions &options = {});

    double measure(const Assignment &assignment) override;

    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override;

    void measureBatchOutcome(
        std::span<const Assignment> batch,
        std::span<MeasurementOutcome> out) override;

    void measureBatch(std::span<const Assignment> batch,
                      std::span<double> out) override;

    /** Deliberately publishes no kernels: retries are stateful. */

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    /**
     * Contributes retries, quarantine count and the modeled cost of
     * the extra attempts and backoff waits.
     */
    void collectStats(EngineStats &stats) const override;

    /** @return true when the assignment's class is quarantined. */
    bool isQuarantined(const Assignment &assignment) const;

    /** @return assignment classes currently quarantined. */
    std::size_t quarantineSize() const;

    /** @return extra attempts spent on retries and screening. */
    std::uint64_t
    retryCount() const
    {
        base::MutexLock lock(mutex_);
        return retries_;
    }

    /** @return readings replaced by a median-of-k re-measurement. */
    std::uint64_t
    screenedCount() const
    {
        base::MutexLock lock(mutex_);
        return screened_;
    }

  private:
    /** Measures `batch` with retry rounds; `out` same size. Returns
     *  the indices that ultimately failed. */
    void runWithRetries(std::span<const Assignment> batch,
                        std::span<MeasurementOutcome> out);

    /** Median-of-k screening pass over a measured batch. */
    void screenOutliers(std::span<const Assignment> batch,
                        std::span<MeasurementOutcome> out);

    /** Records a full attempt exhaustion; quarantines at the limit. */
    void recordExhaustion(const Assignment &assignment);

    PerformanceEngine &inner_;
    const ResilientOptions options_;

    mutable base::Mutex mutex_{"core::ResilientEngine::mutex_"};
    /** Quarantined canonical classes. */
    std::unordered_set<std::string> quarantine_
        SCHED_GUARDED_BY(mutex_);
    /** Full exhaustions per class, for the quarantine threshold. */
    std::unordered_map<std::string, std::uint32_t> exhaustions_
        SCHED_GUARDED_BY(mutex_);

    // Health counters share the quarantine lock (they used to be
    // loose atomics next to a mutex-guarded backoffSeconds_, so
    // collectStats() could pair a retry tally with a backoff total
    // from a different instant): one lock, one consistent snapshot.
    std::uint64_t retries_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t screened_ SCHED_GUARDED_BY(mutex_) = 0;
    std::uint64_t quarantined_ SCHED_GUARDED_BY(mutex_) = 0;
    /** Modeled backoff seconds accumulated. */
    double backoffSeconds_ SCHED_GUARDED_BY(mutex_) = 0.0;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_RESILIENT_ENGINE_HH
