/**
 * @file
 * Exact size of the task-assignment space (Table 1 of the paper).
 *
 * Assignments are counted up to hardware symmetry: cores are
 * interchangeable, the pipes inside a core are interchangeable, and
 * strands inside a pipe are unordered, while tasks are distinct. For
 * the paper's 3-task example on the UltraSPARC T2 this yields exactly
 * 11 assignments.
 *
 * The count is computed by dynamic programming over set partitions:
 * the number of ways to arrange a specific set of k tasks on one core
 * is
 *
 *     c(k) = sum over unordered pipe splits (j, k-j), j <= k-j,
 *            j <= strandsPerPipe, k-j <= strandsPerPipe of
 *            C(k, j)   [halved when j == k-j]
 *
 * and the total is the recursion over the block containing the
 * lowest-numbered unplaced task:
 *
 *     N(t, cores) = sum_k C(t-1, k-1) * c(k) * N(t-k, cores-1).
 *
 * All arithmetic is exact (BigUint); counts reach ~10^58 for 60-task
 * workloads.
 */

#ifndef STATSCHED_CORE_ASSIGNMENT_SPACE_HH
#define STATSCHED_CORE_ASSIGNMENT_SPACE_HH

#include <cstdint>
#include <vector>

#include "core/topology.hh"
#include "num/big_uint.hh"

namespace statsched
{
namespace core
{

/**
 * Exact combinatorics of the assignment space of one topology.
 */
class AssignmentSpace
{
  public:
    /** @param topology Processor shape; pipesPerCore <= 4 supported
     *                  generically (any value works). */
    explicit AssignmentSpace(const Topology &topology);

    /** @return the topology. */
    const Topology &topology() const { return topology_; }

    /**
     * Number of distinct ways to arrange k specific tasks on a single
     * core (unordered pipes, unordered strands). c(0) == 1.
     *
     * @param k Number of tasks, 0 <= k <= per-core capacity.
     */
    num::BigUint coreArrangements(std::uint32_t k) const;

    /**
     * Total number of distinct assignments of `tasks` distinct tasks
     * to the processor, up to hardware symmetry (the Table 1 numbers).
     *
     * @param tasks 1 <= tasks <= contexts().
     */
    num::BigUint countAssignments(std::uint32_t tasks) const;

    /**
     * Number of *labeled* placements: ordered choices of distinct
     * contexts, i.e. V! / (V - T)!. This is the population the paper's
     * uniform sampler (Step 1) draws from; each canonical class is
     * represented by `labelings(class)` labeled placements.
     */
    num::BigUint countLabeledPlacements(std::uint32_t tasks) const;

  private:
    /** Per-core arrangement counts for 0..capacity tasks. */
    void buildCoreTable();

    Topology topology_;
    std::vector<num::BigUint> coreTable_;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_ASSIGNMENT_SPACE_HH
