/**
 * @file
 * ResilientEngine implementation.
 */

#include "core/resilient_engine.hh"

#include <algorithm>
#include <cmath>
#include <exception>
#include <vector>

#include "base/check.hh"

namespace statsched
{
namespace core
{

namespace
{

/** Median of a non-empty vector (consumed); even sizes average the
 *  two middle order statistics. */
double
medianOf(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    return n % 2 == 1
        ? values[n / 2]
        : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

} // anonymous namespace

ResilientEngine::ResilientEngine(PerformanceEngine &inner,
                                 const ResilientOptions &options)
    : inner_(inner), options_(options)
{
    SCHED_REQUIRE(options.maxAttempts >= 1,
                  "need at least one attempt");
    SCHED_REQUIRE(options.backoffBaseSeconds >= 0.0 &&
                  options.backoffFactor >= 1.0,
                  "backoff must not shrink");
    SCHED_REQUIRE(options.backoffCapSeconds >=
                  options.backoffBaseSeconds,
                  "backoff cap below its base");
    SCHED_REQUIRE(options.screenRelDeviation > 0.0,
                  "screening deviation must be positive");
    SCHED_REQUIRE(options.quarantineAfter >= 1,
                  "quarantine threshold must be positive");
}

void
ResilientEngine::runWithRetries(std::span<const Assignment> batch,
                                std::span<MeasurementOutcome> out)
{
    // Indices still lacking a valid reading, in ascending order —
    // retry sub-batches are therefore deterministic, and so are the
    // measurement indices the layers below reserve for them.
    std::vector<std::size_t> pending(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        pending[i] = i;

    double backoff = 0.0;
    double wait = options_.backoffBaseSeconds;
    for (std::uint32_t attempt = 1;
         attempt <= options_.maxAttempts && !pending.empty();
         ++attempt) {
        std::vector<Assignment> sub;
        sub.reserve(pending.size());
        for (const std::size_t idx : pending)
            sub.push_back(batch[idx]);
        std::vector<MeasurementOutcome> outcomes(sub.size());
        try {
            inner_.measureBatchOutcome(sub, outcomes);
        } catch (const std::exception &) {
            // A contract violation (or any error) below becomes a
            // structured Errored outcome for the whole sub-batch;
            // the normal retry/quarantine ladder takes it from here.
            for (auto &outcome : outcomes)
                outcome = MeasurementOutcome::failure(
                    MeasureStatus::Errored);
        }

        std::vector<std::size_t> still_failed;
        for (std::size_t k = 0; k < pending.size(); ++k) {
            MeasurementOutcome outcome = outcomes[k];
            outcome.attempts = attempt;
            out[pending[k]] = outcome;
            if (!outcome.ok())
                still_failed.push_back(pending[k]);
        }
        pending = std::move(still_failed);

        if (!pending.empty() && attempt < options_.maxAttempts) {
            {
                base::MutexLock lock(mutex_);
                retries_ += pending.size();
            }
            backoff += static_cast<double>(pending.size()) * wait;
            wait = std::min(wait * options_.backoffFactor,
                            options_.backoffCapSeconds);
        }
    }

    for (const std::size_t idx : pending)
        recordExhaustion(batch[idx]);
    if (backoff > 0.0) {
        base::MutexLock lock(mutex_);
        backoffSeconds_ += backoff;
    }
}

void
ResilientEngine::screenOutliers(std::span<const Assignment> batch,
                                std::span<MeasurementOutcome> out)
{
    const std::uint32_t k = options_.screenWidth;
    if (k < 2 || batch.empty())
        return;

    std::vector<double> valid;
    valid.reserve(batch.size());
    for (const auto &outcome : out) {
        if (outcome.ok())
            valid.push_back(outcome.value);
    }
    // A single reading has no peers to be an outlier against.
    if (valid.size() < 2)
        return;
    const double median = medianOf(std::move(valid));
    if (!(std::abs(median) > 0.0))
        return;

    std::vector<std::size_t> suspects;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (out[i].ok() &&
            std::abs(out[i].value - median) >
                options_.screenRelDeviation * std::abs(median)) {
            suspects.push_back(i);
        }
    }
    if (suspects.empty())
        return;

    // One sub-batch holding every suspect k-1 times, in ascending
    // index order, keeps the re-measurement deterministic.
    std::vector<Assignment> sub;
    sub.reserve(suspects.size() * (k - 1));
    for (const std::size_t idx : suspects) {
        for (std::uint32_t r = 0; r + 1 < k; ++r)
            sub.push_back(batch[idx]);
    }
    std::vector<MeasurementOutcome> outcomes(sub.size());
    try {
        inner_.measureBatchOutcome(sub, outcomes);
    } catch (const std::exception &) {
        // Re-measurement failed wholesale; keep the original
        // suspect readings rather than replacing them with less.
        return;
    }

    for (std::size_t s = 0; s < suspects.size(); ++s) {
        const std::size_t idx = suspects[s];
        std::vector<double> readings{out[idx].value};
        for (std::uint32_t r = 0; r + 1 < k; ++r) {
            const auto &re = outcomes[s * (k - 1) + r];
            if (re.ok())
                readings.push_back(re.value);
        }
        out[idx].value = medianOf(std::move(readings));
        out[idx].attempts += k - 1;
    }
    base::MutexLock lock(mutex_);
    retries_ += sub.size();
    screened_ += suspects.size();
}

void
ResilientEngine::recordExhaustion(const Assignment &assignment)
{
    const std::string key = assignment.canonicalKey();
    base::MutexLock lock(mutex_);
    const std::uint32_t count = ++exhaustions_[key];
    if (count >= options_.quarantineAfter &&
        quarantine_.insert(key).second) {
        ++quarantined_;
    }
}

void
ResilientEngine::measureBatchOutcome(std::span<const Assignment> batch,
                                     std::span<MeasurementOutcome> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    if (batch.empty())
        return;

    // Quarantined classes are rejected before any measurement.
    std::vector<std::size_t> live;
    live.reserve(batch.size());
    {
        base::MutexLock lock(mutex_);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (quarantine_.count(batch[i].canonicalKey()) != 0) {
                out[i] = MeasurementOutcome::failure(
                    MeasureStatus::Quarantined, 0);
            } else {
                live.push_back(i);
            }
        }
    }
    if (live.empty())
        return;

    if (live.size() == batch.size()) {
        runWithRetries(batch, out);
        screenOutliers(batch, out);
        return;
    }

    std::vector<Assignment> sub;
    sub.reserve(live.size());
    for (const std::size_t idx : live)
        sub.push_back(batch[idx]);
    std::vector<MeasurementOutcome> outcomes(sub.size());
    runWithRetries(sub, outcomes);
    screenOutliers(sub, outcomes);
    for (std::size_t k = 0; k < live.size(); ++k)
        out[live[k]] = outcomes[k];
}

MeasurementOutcome
ResilientEngine::measureOutcome(const Assignment &assignment)
{
    MeasurementOutcome outcome;
    measureBatchOutcome(std::span(&assignment, 1),
                        std::span(&outcome, 1));
    return outcome;
}

double
ResilientEngine::measure(const Assignment &assignment)
{
    return measureOutcome(assignment).valueOrNaN();
}

void
ResilientEngine::measureBatch(std::span<const Assignment> batch,
                              std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    std::vector<MeasurementOutcome> outcomes(batch.size());
    measureBatchOutcome(batch, outcomes);
    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = outcomes[i].valueOrNaN();
}

void
ResilientEngine::collectStats(EngineStats &stats) const
{
    {
        // One lock, one snapshot: the retry tally, its modeled cost
        // and the backoff total all come from the same instant.
        base::MutexLock lock(mutex_);
        stats.retries += retries_;
        stats.quarantined += quarantined_;
        // Extra attempts occupy the testbed like first attempts do;
        // the meter above only charged the requested measurements.
        stats.modeledSeconds += static_cast<double>(retries_) *
            inner_.secondsPerMeasurement();
        stats.modeledSeconds += backoffSeconds_;
    }
    inner_.collectStats(stats);
}

bool
ResilientEngine::isQuarantined(const Assignment &assignment) const
{
    base::MutexLock lock(mutex_);
    return quarantine_.count(assignment.canonicalKey()) != 0;
}

std::size_t
ResilientEngine::quarantineSize() const
{
    base::MutexLock lock(mutex_);
    return quarantine_.size();
}

} // namespace core
} // namespace statsched
