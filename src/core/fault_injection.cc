/**
 * @file
 * FaultInjectingEngine implementation.
 */

#include "core/fault_injection.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.hh"
#include "base/logging.hh"

namespace statsched
{
namespace core
{

namespace
{

/** SplitMix64 finalizer. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** FNV-1a over the labeled contexts of an assignment. */
std::uint64_t
assignmentHash(const Assignment &assignment)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const ContextId context : assignment.contexts()) {
        h ^= static_cast<std::uint64_t>(context);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // anonymous namespace

FaultInjectingEngine::FaultInjectingEngine(PerformanceEngine &inner,
                                           const FaultOptions &options)
    : inner_(inner), options_(options)
{
    SCHED_REQUIRE(options.hangRate >= 0.0 &&
                  options.transientRate >= 0.0 &&
                  options.garbageRate >= 0.0 &&
                  options.outlierRate >= 0.0,
                  "fault rates must be non-negative");
    SCHED_REQUIRE(options.totalRate() <= 1.0,
                  "fault rates sum past 1");
    SCHED_REQUIRE(options.outlierFactor > 0.0,
                  "outlier factor must be positive");
    SCHED_REQUIRE(options.hangSeconds >= 0.0,
                  "negative hang cost");
}

FaultInjectingEngine::FaultKind
FaultInjectingEngine::faultAt(std::uint64_t index,
                              const Assignment &assignment) const
{
    // One uniform variate from a SplitMix64 finalizer over
    // (seed, index, assignment): pure, thread-free, and independent
    // of the wrapped engine's noise stream.
    const std::uint64_t z = mix64(
        options_.seed ^
        (index + 1) * 0x9e3779b97f4a7c15ull ^
        assignmentHash(assignment));
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;

    double edge = options_.hangRate;
    if (u < edge)
        return FaultKind::Hang;
    edge += options_.transientRate;
    if (u < edge)
        return FaultKind::Transient;
    edge += options_.garbageRate;
    if (u < edge)
        return FaultKind::Garbage;
    edge += options_.outlierRate;
    if (u < edge)
        return FaultKind::Outlier;
    return FaultKind::None;
}

MeasurementOutcome
FaultInjectingEngine::applyFault(
    std::uint64_t index, const Assignment &assignment,
    const std::function<double()> &cleanValue)
{
    switch (faultAt(index, assignment)) {
      case FaultKind::None:
        return MeasurementOutcome::classify(cleanValue());
      case FaultKind::Outlier:
        // A silently wrong reading: delivered Ok, value inflated.
        outliers_.fetch_add(1, std::memory_order_relaxed);
        return MeasurementOutcome::classify(
            cleanValue() * options_.outlierFactor);
      case FaultKind::Garbage:
        {
            garbage_.fetch_add(1, std::memory_order_relaxed);
            MeasurementOutcome outcome;
            outcome.value = std::numeric_limits<double>::quiet_NaN();
            outcome.status = MeasureStatus::Invalid;
            return outcome;
        }
      case FaultKind::Transient:
        transients_.fetch_add(1, std::memory_order_relaxed);
        return MeasurementOutcome::failure(MeasureStatus::Errored);
      case FaultKind::Hang:
        hangs_.fetch_add(1, std::memory_order_relaxed);
        return MeasurementOutcome::failure(MeasureStatus::TimedOut);
    }
    SCHED_UNREACHABLE("unreachable fault kind");
}

MeasurementOutcome
FaultInjectingEngine::measureOutcome(const Assignment &assignment)
{
    OutcomeKernel kernel = outcomeKernel(1);
    if (kernel)
        return kernel(assignment, 0);
    const std::uint64_t index =
        cursor_.fetch_add(1, std::memory_order_relaxed);
    return applyFault(index, assignment, [&] {
        return inner_.measure(assignment);
    });
}

double
FaultInjectingEngine::measure(const Assignment &assignment)
{
    return measureOutcome(assignment).valueOrNaN();
}

void
FaultInjectingEngine::measureBatchOutcome(
    std::span<const Assignment> batch,
    std::span<MeasurementOutcome> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    if (batch.empty())
        return;
    OutcomeKernel kernel = outcomeKernel(batch.size());
    if (kernel) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            out[i] = kernel(batch[i], i);
        return;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::uint64_t index =
            cursor_.fetch_add(1, std::memory_order_relaxed);
        out[i] = applyFault(index, batch[i], [&, i] {
            return inner_.measure(batch[i]);
        });
    }
}

OutcomeKernel
FaultInjectingEngine::outcomeKernel(std::size_t batchSize)
{
    BatchKernel inner_kernel = inner_.parallelKernel(batchSize);
    if (!inner_kernel)
        return {};
    // Reserve the fault indices for the whole batch up front, like
    // the simulator's noise indices: the kernel is then pure in
    // (assignment, batch index). A faulted item simply leaves its
    // inner noise index unused.
    const std::uint64_t base =
        cursor_.fetch_add(batchSize, std::memory_order_relaxed);
    return [this, inner_kernel, base](const Assignment &a,
                                      std::size_t i) {
        return applyFault(base + i, a, [&] {
            return inner_kernel(a, i);
        });
    };
}

BatchKernel
FaultInjectingEngine::parallelKernel(std::size_t batchSize)
{
    OutcomeKernel kernel = outcomeKernel(batchSize);
    if (!kernel)
        return {};
    return [kernel](const Assignment &a, std::size_t i) {
        return kernel(a, i).valueOrNaN();
    };
}

void
FaultInjectingEngine::collectStats(EngineStats &stats) const
{
    const std::uint64_t hangs =
        hangs_.load(std::memory_order_relaxed);
    stats.failures += hangs +
        transients_.load(std::memory_order_relaxed) +
        garbage_.load(std::memory_order_relaxed);
    // A hang occupies the testbed until the watchdog fires; charge
    // the difference over the normal measurement a meter above
    // already accounted for.
    stats.modeledSeconds += static_cast<double>(hangs) *
        std::max(0.0, options_.hangSeconds -
                          inner_.secondsPerMeasurement());
    inner_.collectStats(stats);
}

} // namespace core
} // namespace statsched
