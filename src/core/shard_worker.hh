/**
 * @file
 * Worker-side shard protocol servant.
 *
 * ShardWorker is the engine-facing half of the shard protocol
 * (core/shard_protocol.hh): it consumes coordinator frames, evaluates
 * EvalRequest groups against a local measurement engine, and produces
 * response frames. It is transport-agnostic byte-in/byte-out — the
 * statsched_worker binary pumps it from a stdin/stdout pipe, and the
 * in-process loopback backends used by the deterministic chaos tests
 * pump it from memory — so the protocol state machine is tested
 * without spawning a single process.
 *
 * Determinism contract. The worker mirrors the coordinator's global
 * measurement cursor: every EvalRequest names the (cursorBase,
 * batchSize) window its items live in, and the worker aligns its
 * engine to that window before evaluating:
 *
 *  - A request for the currently open window reuses the open kernel.
 *    This is what makes re-issue invisible: when a sibling shard dies
 *    mid-batch, the survivors receive additional items of the SAME
 *    window and evaluate them through the SAME reserved kernel, so
 *    the re-issued outcomes are bit-identical to what the dead shard
 *    would have produced.
 *
 *  - A request for a later window fast-forwards the engine: indices
 *    up to cursorBase are reserved and discarded
 *    (PerformanceEngine::reserveMeasurementIndices), then a kernel of
 *    batchSize is reserved. This is how a replacement worker spawned
 *    mid-campaign — whose engine cursor starts at zero — joins an
 *    in-flight measurement stream at the right index.
 *
 *  - A request for an earlier window is a protocol violation (the
 *    per-index streams only move forward); the worker reports
 *    WorkerError and stops.
 */

#ifndef STATSCHED_CORE_SHARD_WORKER_HH
#define STATSCHED_CORE_SHARD_WORKER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/performance_engine.hh"
#include "core/shard_protocol.hh"
#include "core/topology.hh"

namespace statsched
{
namespace core
{

/**
 * Protocol servant over one local measurement engine.
 */
class ShardWorker
{
  public:
    /**
     * @param engine     Engine evaluating the assignments (not
     *                   owned). Must publish outcome kernels.
     * @param topology   Processor shape assignments target.
     * @param tasks      Workload size (contexts per assignment).
     * @param configHash Engine-configuration fingerprint echoed in
     *                   the Hello (see shardConfigFingerprint()).
     */
    ShardWorker(PerformanceEngine &engine, const Topology &topology,
                std::uint32_t tasks, std::uint64_t configHash);

    /** @return the Hello frame to send before serving requests. */
    std::vector<std::uint8_t> helloBytes() const;

    /**
     * Consumes raw coordinator bytes and appends any response bytes
     * to `out`.
     *
     * @return false when serving must stop: a Shutdown frame arrived
     *         (clean) or a protocol violation was detected (see
     *         protocolError()).
     */
    bool consume(const std::uint8_t *data, std::size_t size,
                 std::vector<std::uint8_t> &out);

    /** @return true when consume() stopped on a violation. */
    bool protocolError() const { return protocolError_; }

    /** @return the violation description when protocolError(). */
    const std::string &errorDetail() const { return errorDetail_; }

    /** @return measurement indices consumed (reserved) so far. */
    std::uint64_t consumedIndices() const { return consumed_; }

    /** @return true when no request group is in flight and no
     *  coordinator bytes are buffered — the safe point for a
     *  graceful SIGTERM drain (nothing owed, nothing half-read). */
    bool
    idle() const
    {
        return !inRequest_ && parser_.buffered() == 0;
    }

    /** @return EvalRequest groups served so far. */
    std::uint64_t servedRequests() const { return served_; }

  private:
    /** @return false to stop serving (shutdown or violation). */
    bool handleFrame(const ShardFrame &frame,
                     std::vector<std::uint8_t> &out);

    /** Evaluates the completed request group into response frames. */
    bool serveRequest(std::vector<std::uint8_t> &out);

    /** Aligns the engine cursor/kernel to (cursorBase, batchSize). */
    bool alignKernel(std::uint64_t cursorBase,
                     std::uint32_t batchSize);

    /** Latches a violation and emits a WorkerError frame. */
    bool fail(const std::string &detail,
              std::vector<std::uint8_t> &out);

    PerformanceEngine &engine_;
    Topology topology_;
    std::uint32_t tasks_;
    std::uint64_t configHash_;

    ShardFrameParser parser_;

    // In-flight request group (header seen, items accumulating).
    bool inRequest_ = false;
    ShardEvalRequest request_;
    std::vector<ShardEvalItem> items_;

    // Engine cursor mirror and the open kernel window.
    std::uint64_t consumed_ = 0;
    std::uint64_t openBase_ = 0;
    std::uint32_t openSize_ = 0;
    OutcomeKernel kernel_;

    std::uint64_t served_ = 0;
    bool protocolError_ = false;
    std::string errorDetail_;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_SHARD_WORKER_HH
