/**
 * @file
 * Crash-safe measurement journal.
 *
 * A production campaign is thousands of ~1.5 s measurements (Section
 * 5.3 of the paper); a crash must not throw them away. The journal is
 * a write-ahead log of every measurement batch the engine stack
 * performs: an append-only binary file with a versioned, checksummed
 * header and CRC32-framed records, flushed to disk after every batch.
 * On restart, recoverJournal() reads back the longest trustworthy
 * prefix — torn or corrupt tail records are detected by their CRC and
 * *truncated, never trusted* — and the JournalingEngine decorator
 * replays it so the resumed campaign continues exactly where the dead
 * one stopped.
 *
 * Determinism argument (why a resumed run is bit-identical to an
 * uninterrupted one):
 *
 *  - The journal sits BELOW the stateful upper decorators and ABOVE
 *    the stateless-per-index lower ones:
 *
 *      Metered(Memoizing(Resilient(Journaling(Parallel(Fault(Sim))))))
 *
 *    Everything above the journal (memo cache, quarantine set, retry
 *    ladders, the sampler and accumulator driven by the search loop)
 *    is a pure function of the measurement outcomes it has seen. On
 *    resume the search is re-driven from scratch; the journal serves
 *    the recorded outcomes in order, so all upper state is rebuilt
 *    bit-identically without touching the testbed.
 *
 *  - Everything below the journal keeps per-measurement-index state
 *    (the simulator's noise stream, the fault injector's fault
 *    stream), reserved per batch through the kernel interface. For
 *    each replayed batch of size B the JournalingEngine requests — and
 *    discards — a batch kernel of size B from the inner stack, which
 *    advances those index cursors by exactly B (the reservation
 *    contract of PerformanceEngine::outcomeKernel()). When the replay
 *    queue drains, the cursors stand exactly where the crashed process
 *    left them, so fresh measurements continue the original streams.
 *
 *  - Only *complete* batch groups are replayed. A batch interrupted by
 *    the crash (torn record, missing group members) is dropped by
 *    recovery and re-measured fresh — with the same reserved indices
 *    it would have used originally, hence the same readings.
 *
 * Failure policy. All file I/O goes through base::io::Sink (checked
 * writes, checked fsync). When the medium fails (ENOSPC, EIO) the
 * journal never takes the process down; JournalErrorPolicy decides
 * what a write failure means:
 *
 *  - Abort (default): the journal latches failed(); the
 *    JournalingEngine refuses to hand un-journaled outcomes upward,
 *    so the campaign aborts cleanly with the durable prefix intact
 *    and resumable.
 *
 *  - Degrade: the journal latches degraded(), drops its sink and
 *    becomes a memory-only recorder (appends count droppedRecords()
 *    and do nothing else). The campaign runs to completion with
 *    bit-identical results; only durability is lost, and only from
 *    the failure point on — recovery still trusts the longest durable
 *    prefix.
 *
 * Segment rotation. With JournalConfig::segmentBytes > 0 the journal
 * is a chain journal.000, journal.001, ... instead of one file. Each
 * segment opens with the full identity header; rotation happens at
 * batch-group boundaries once the active segment exceeds the
 * threshold, and the sealed segment is compacted (interior Progress
 * checkpoints are dropped; batch groups — the replay substance — are
 * always kept). recoverJournal() walks the chain, validates every
 * header against segment 0, and stops trusting at the first torn or
 * foreign segment.
 *
 * File format (all integers little-endian):
 *
 *   header   := "SJNL" version:u32 seed:u64 cores:u32 pipesPerCore:u32
 *               strandsPerPipe:u32 tasks:u32 configHash:u64 crc:u32
 *               (crc = CRC32 of all preceding header bytes)
 *   record   := type:u8 size:u16 payload:size*u8 crc:u32
 *               (crc = CRC32 of type + size + payload)
 *   BatchBegin   (type 1) := round:u32 count:u32
 *   Measurement  (type 2) := keyHash:u64 valueBits:u64 status:u8
 *                            attempts:u32
 *   Checkpoint   (type 3) := kind:u8 round:u32 attempted:u64
 *                            sampled:u64 bestBits:u64
 *
 * A batch group is one BatchBegin followed by exactly `count`
 * Measurement records; Checkpoint records sit between groups.
 */

#ifndef STATSCHED_CORE_JOURNAL_HH
#define STATSCHED_CORE_JOURNAL_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/io.hh"
#include "core/performance_engine.hh"
#include "core/topology.hh"

namespace statsched
{
namespace core
{

/**
 * CRC32 (IEEE 802.3, polynomial 0xEDB88320, reflected) of a byte
 * range. Chainable: pass the previous return value as `seed` to
 * extend a running checksum.
 */
std::uint32_t journalCrc32(const void *data, std::size_t size,
                           std::uint32_t seed = 0);

/** On-disk journal format version understood by this build. */
constexpr std::uint32_t kJournalVersion = 1;

/**
 * Identity of the campaign a journal belongs to. A journal may only
 * be resumed by a campaign with the same identity — replaying foreign
 * outcomes would silently corrupt the statistics.
 */
struct JournalHeader
{
    std::uint64_t seed = 0;            //!< sampler seed
    std::uint32_t cores = 0;           //!< topology shape...
    std::uint32_t pipesPerCore = 0;
    std::uint32_t strandsPerPipe = 0;
    std::uint32_t tasks = 0;           //!< workload size
    /** Hash of everything else that steers the search (engine config,
     *  iterative options); campaign code decides what to fold in. */
    std::uint64_t configHash = 0;

    /** @return the header for a campaign on `topology`. */
    static JournalHeader
    forCampaign(const Topology &topology, std::uint32_t tasks,
                std::uint64_t seed, std::uint64_t configHash)
    {
        JournalHeader h;
        h.seed = seed;
        h.cores = topology.cores;
        h.pipesPerCore = topology.pipesPerCore;
        h.strandsPerPipe = topology.strandsPerPipe;
        h.tasks = tasks;
        h.configHash = configHash;
        return h;
    }

    friend bool
    operator==(const JournalHeader &a, const JournalHeader &b)
    {
        return a.seed == b.seed && a.cores == b.cores &&
            a.pipesPerCore == b.pipesPerCore &&
            a.strandsPerPipe == b.strandsPerPipe &&
            a.tasks == b.tasks && a.configHash == b.configHash;
    }
};

/** One journaled measurement within a batch group. */
struct JournalMeasurement
{
    /** FNV-1a hash of the assignment's canonicalKey() — enough to
     *  detect replay divergence without storing full assignments
     *  (the re-driven search regenerates them). */
    std::uint64_t keyHash = 0;
    MeasurementOutcome outcome;
};

/** One complete batch group recovered from a journal. */
struct JournalBatch
{
    std::uint32_t round = 0;
    std::vector<JournalMeasurement> measurements;
};

/** Why a checkpoint was written. */
enum class CheckpointKind : std::uint8_t
{
    Progress = 0, //!< periodic, campaign still running
    Complete,     //!< campaign finished (converged or hit its cap)
    Aborted,      //!< campaign stopped early (signal/deadline/budget)
};

/** Campaign summary snapshot journaled at round boundaries. */
struct JournalCheckpoint
{
    CheckpointKind kind = CheckpointKind::Progress;
    std::uint32_t round = 0;
    std::uint64_t attempted = 0; //!< measurements attempted so far
    std::uint64_t sampled = 0;   //!< valid measurements kept so far
    double best = 0.0;           //!< best observed performance
};

/** What a journal write failure means for the campaign. */
enum class JournalErrorPolicy : std::uint8_t
{
    /** Latch failed(); the JournalingEngine fails every subsequent
     *  batch so the search aborts cleanly, resumable from the durable
     *  prefix. Never hands un-journaled outcomes upward. */
    Abort = 0,
    /** Latch degraded(); drop to memory-only recording (appends
     *  become counted no-ops) and let the campaign run to completion
     *  with full results but reduced durability. */
    Degrade,
};

/** @return "abort" / "degrade". */
const char *journalErrorPolicyName(JournalErrorPolicy policy);

/**
 * Durability and failure-handling knobs for MeasurementJournal.
 */
struct JournalConfig
{
    JournalErrorPolicy onError = JournalErrorPolicy::Abort;

    /** Rotate to a new segment once the active one exceeds this many
     *  bytes (0 = single-file journal, no rotation). Checked at
     *  batch-group boundaries, so groups never span segments. */
    std::uint64_t segmentBytes = 0;

    /** Extra immediate attempts to push the unwritten remainder of a
     *  record before declaring the sink broken. The injected Clock
     *  has no sleep — and a full disk does not heal in microseconds —
     *  so the backoff is bounded retries, not timed waits; the error
     *  policy decides what happens when they run out. */
    std::uint32_t writeRetries = 2;

    /** Sink source for the journal file and every rotated segment;
     *  empty means real files (base::io::fileSinkFactory()). Tests
     *  and the chaos harness inject fault-injecting factories here. */
    base::io::SinkFactory sinkFactory;

    /** Invoked once, with a failure description, when the policy is
     *  Degrade and the journal drops to memory-only recording. Wired
     *  to the campaign Health aggregate. */
    std::function<void(const std::string &)> onDegrade;
};

/** @return the on-disk path of segment `index` ("<base>.007"). */
std::string journalSegmentPath(const std::string &base,
                               std::uint32_t index);

/**
 * Result of reading a journal back from disk. Only the longest prefix
 * of intact, complete batch groups is reported; everything after it
 * (torn record, CRC mismatch, incomplete group) is counted in
 * `truncatedBytes` and must be discarded by rewriting the active file
 * down to `validBytes` before appending.
 */
struct JournalRecovery
{
    bool fileExists = false;
    bool headerValid = false;
    JournalHeader header;
    std::vector<JournalBatch> batches;
    std::vector<JournalCheckpoint> checkpoints;
    /** Byte length of the trustworthy prefix of the ACTIVE file
     *  (header included). For single-file journals the active file is
     *  the journal itself; for segmented ones it is the last trusted
     *  segment. */
    std::uint64_t validBytes = 0;
    /** Bytes beyond trustworthy prefixes that recovery dropped (not
     *  counting whole stale segments, which are listed below). */
    std::uint64_t truncatedBytes = 0;
    /** Non-empty when the journal is unusable (missing, bad magic,
     *  corrupt header); tail truncation is NOT an error. */
    std::string error;

    /** True when the journal is a segment chain (<path>.000, ...). */
    bool segmented = false;
    /** Trusted files, in chain order (single-file: just the path). */
    std::vector<std::string> segmentFiles;
    /** The file appends continue into. */
    std::string activeSegment;
    /** Chain index of activeSegment (0 for single-file journals). */
    std::uint32_t activeSegmentIndex = 0;
    /** Segment files AFTER the trust horizon (torn predecessor,
     *  foreign header, ...); resume must delete them before
     *  appending, or a later recovery would read stale records. */
    std::vector<std::string> staleSegments;

    /** @return journaled measurements across all complete groups. */
    std::uint64_t
    measurementCount() const
    {
        std::uint64_t n = 0;
        for (const JournalBatch &b : batches)
            n += b.measurements.size();
        return n;
    }
};

/**
 * Reads a journal (single file or segment chain) and validates it
 * record by record.
 *
 * Never throws on corrupt input: torn and corrupt tails are truncated
 * into `truncatedBytes`, untrusted segments are listed as stale, and
 * unusable files are reported through `error`.
 */
JournalRecovery recoverJournal(const std::string &path);

/**
 * Append-side of the journal: owns the sink, frames records,
 * checksums them, and fsyncs at batch boundaries so a SIGKILL can
 * lose at most the in-flight batch (which recovery then drops).
 *
 * Media failures never terminate the process; they latch failed() or
 * degraded() per the configured JournalErrorPolicy (see the file
 * comment), after which every append is a counted no-op.
 */
class MeasurementJournal
{
  public:
    /** Creates (or overwrites) the journal at `path` with a fresh
     *  header — a single file, or a segment chain when
     *  config.segmentBytes > 0. Open failures latch the policy
     *  outcome instead of throwing. */
    MeasurementJournal(const std::string &path,
                       const JournalHeader &header,
                       JournalConfig config = {});

    /**
     * Reopens a single-file journal for appending after recovery: the
     * file is first truncated to `validBytes` so the untrustworthy
     * tail can never be read back by a later recovery.
     */
    MeasurementJournal(const std::string &path,
                       std::uint64_t validBytes);

    /**
     * Reopens a recovered journal (single-file or segmented) for
     * appending: deletes stale segments, truncates the active file to
     * the trusted prefix, and continues the chain in the mode
     * recovery found on disk (a single-file journal stays
     * single-file even if config asks for segments).
     */
    MeasurementJournal(const std::string &path,
                       const JournalRecovery &recovery,
                       JournalConfig config);

    MeasurementJournal(const MeasurementJournal &) = delete;
    MeasurementJournal &operator=(const MeasurementJournal &) = delete;
    MeasurementJournal(MeasurementJournal &&other) noexcept;
    ~MeasurementJournal() = default;

    /** Opens a batch group of `count` upcoming measurements. May
     *  rotate segments first (group boundaries only). */
    void beginBatch(std::uint32_t round, std::uint32_t count);

    /** Appends one measurement of the open batch group. */
    void appendMeasurement(std::uint64_t keyHash,
                           const MeasurementOutcome &outcome);

    /** Appends a checkpoint record (between batch groups). */
    void appendCheckpoint(const JournalCheckpoint &checkpoint);

    /** Fsyncs appended records to media; failures follow the error
     *  policy (an unsynced record is not durable, so a failed fsync
     *  is exactly as bad as a failed write). */
    void sync();

    /** @return true while appends actually reach the sink. */
    bool recording() const
    {
        return sink_ != nullptr && !degraded_ && !failed_;
    }

    /** @return true once a media failure degraded the journal to
     *  memory-only recording (policy Degrade); latched. */
    bool degraded() const { return degraded_; }

    /** @return true once a media failure stopped the journal under
     *  policy Abort; latched. */
    bool failed() const { return failed_; }

    /** @return description of the latched media failure. */
    const std::string &errorDetail() const { return errorDetail_; }

    /** @return records dropped after degradation/failure. */
    std::uint64_t droppedRecords() const { return droppedRecords_; }

    /** @return segment rotations performed so far. */
    std::uint64_t segmentsRotated() const { return rotations_; }

    /** @return bytes reclaimed by compacting sealed segments. */
    std::uint64_t compactedBytes() const { return compactedBytes_; }

    /** @return bytes written to the journal so far (header included
     *  for fresh journals; relative to reopen for resumed ones). */
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    void openActive(bool truncate);
    void writeRecord(std::uint8_t type, const std::uint8_t *payload,
                     std::size_t size);
    bool writeChecked(const std::uint8_t *data, std::size_t size);
    void handleIoFailure(const base::io::IoResult &result);
    void rotateSegment();
    void compactSealedSegment(const std::string &path);

    JournalConfig config_;
    std::unique_ptr<base::io::Sink> sink_;
    std::string basePath_;   //!< journal path as configured
    std::string activePath_; //!< file currently appended to
    bool segmented_ = false;
    std::uint32_t segmentIndex_ = 0;
    /** Bytes in the active segment (header included); drives
     *  rotation. */
    std::uint64_t segmentBytes_ = 0;
    /** Serialized identity header, re-written into every segment. */
    std::vector<std::uint8_t> headerBytes_;
    bool degraded_ = false;
    bool failed_ = false;
    std::string errorDetail_;
    std::uint64_t droppedRecords_ = 0;
    std::uint64_t rotations_ = 0;
    std::uint64_t compactedBytes_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

/** @return the journal key hash (FNV-1a of canonicalKey()). */
std::uint64_t journalKeyHash(const Assignment &assignment);

/**
 * Write-ahead / replay decorator. See the file comment for where it
 * sits in the stack and why that placement makes resume
 * bit-identical.
 *
 * Record mode (fresh campaign, or a resumed one whose replay queue
 * has drained): every measureBatchOutcome() is forwarded to the inner
 * stack, then journaled as one batch group and fsynced.
 *
 * Replay mode (resumed campaign with queued groups): batches are
 * served from the journal without touching the inner engines' noise
 * streams — except for the kernel-reservation fast-forward that keeps
 * their index cursors in lock-step with the original run. Divergence
 * between the re-driven search and the journal (different batch size
 * or assignment keys) latches the mismatch flag and fails the batch;
 * it indicates a configuration change, not a recoverable condition.
 *
 * Journal media failures follow the journal's error policy: under
 * Abort every batch after the failure is failed (outcomes are never
 * handed upward without durability), under Degrade outcomes keep
 * flowing and unjournaledMeasurements() counts what memory-only
 * recording cost.
 *
 * Publishes no kernels: callers above always take the batch path, so
 * every measurement is journaled.
 */
class JournalingEngine : public PerformanceEngine
{
  public:
    /**
     * @param inner   Engine stack to wrap (not owned).
     * @param journal Open journal, already positioned for appending.
     */
    JournalingEngine(PerformanceEngine &inner,
                     MeasurementJournal journal);

    /** Queues recovered batch groups to serve before touching the
     *  inner stack. Call once, before the first measurement. */
    void queueReplay(std::vector<JournalBatch> batches);

    /** Sets the round number stamped on subsequent batch groups. */
    void setRound(std::uint32_t round) { round_ = round; }

    /** @return true while queued groups remain to be served. */
    bool replaying() const { return !replayQueue_.empty(); }

    /** @return measurements served from the journal so far. */
    std::uint64_t replayedMeasurements() const { return replayed_; }

    /** @return measurements measured fresh and journaled so far. */
    std::uint64_t recordedMeasurements() const { return recorded_; }

    /** @return measurements handed upward without durability after
     *  the journal degraded (policy Degrade). */
    std::uint64_t unjournaledMeasurements() const
    {
        return unjournaled_;
    }

    /** @return true when replay detected divergence from the journal;
     *  latched, never cleared. */
    bool mismatch() const { return mismatch_; }

    /** @return human-readable divergence description when
     *  mismatch(). */
    const std::string &mismatchDetail() const { return mismatchDetail_; }

    /** @return true once a journal media failure stopped recording
     *  under policy Abort. */
    bool journalFailed() const { return journal_.failed(); }

    /** @return true once the journal degraded to memory-only
     *  recording under policy Degrade. */
    bool journalDegraded() const { return journal_.degraded(); }

    /** @return the wrapped journal (stats and error detail). */
    const MeasurementJournal &journal() const { return journal_; }

    /** Journals a checkpoint and fsyncs (no-op while replaying: the
     *  record is already on disk from the original run). */
    void checkpoint(const JournalCheckpoint &checkpoint);

    double measure(const Assignment &assignment) override;
    void measureBatch(std::span<const Assignment> batch,
                      std::span<double> out) override;
    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override;
    void measureBatchOutcome(std::span<const Assignment> batch,
                             std::span<MeasurementOutcome> out) override;

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    void
    collectStats(EngineStats &stats) const override
    {
        inner_.collectStats(stats);
    }

  private:
    void serveReplayedBatch(std::span<const Assignment> batch,
                            std::span<MeasurementOutcome> out);
    void failBatch(std::span<MeasurementOutcome> out,
                   std::string detail);
    void failUnjournaledBatch(std::span<MeasurementOutcome> out);

    PerformanceEngine &inner_;
    MeasurementJournal journal_;
    std::deque<JournalBatch> replayQueue_;
    std::uint32_t round_ = 0;
    std::uint64_t replayed_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t unjournaled_ = 0;
    bool mismatch_ = false;
    bool ioFailureWarned_ = false;
    std::string mismatchDetail_;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_JOURNAL_HH
