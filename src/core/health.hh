/**
 * @file
 * Unified campaign health aggregate.
 *
 * A long campaign survives three distinct failure domains — the
 * estimator can lose statistical validity (EstimateStatus), the
 * journal can lose its medium (JournalErrorPolicy::Degrade), and
 * shard backends can be lost or convicted of returning garbage —
 * and each layer already tracks its own state. Health is the one
 * place those states meet: a per-component {Ok, Degraded, Failing}
 * level with a latched worst() summary, so the CLI can print a
 * single truthful answer to "did this campaign complete cleanly?"
 * and return the documented completed-degraded exit code when it
 * did not.
 *
 * Components are registered lazily by their first transition; the
 * conventional names are "journal", "shards" and "estimator". The
 * listener (if any) fires on every level CHANGE — not on repeated
 * reports of the same level — outside the internal lock, so it may
 * freely log or call back into Health.
 */

#ifndef STATSCHED_CORE_HEALTH_HH
#define STATSCHED_CORE_HEALTH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/sync.hh"

namespace statsched
{
namespace core
{

/** Severity of one component's condition. Order matters: worst() is
 *  the numeric maximum. */
enum class HealthLevel : std::uint8_t
{
    Ok = 0,   //!< operating as configured
    Degraded, //!< still producing exact results, with reduced
              //!< durability, capacity or confidence
    Failing,  //!< the component can no longer do its job
};

/** @return "ok" / "degraded" / "failing". */
const char *healthLevelName(HealthLevel level);

/** One level change, as delivered to the listener. */
struct HealthTransition
{
    std::string component;
    HealthLevel from = HealthLevel::Ok;
    HealthLevel to = HealthLevel::Ok;
    std::string detail;
};

/**
 * Thread-safe per-component health registry. Transitions may arrive
 * from any thread (the sharded engine reports under its own lock);
 * reads take a consistent snapshot.
 */
class Health
{
  public:
    using Listener = std::function<void(const HealthTransition &)>;

    Health() = default;

    /** @param listener invoked (outside the lock) on every level
     *  change. */
    explicit Health(Listener listener)
        : listener_(std::move(listener))
    {
    }

    /**
     * Reports `component` at `level`. Registers the component on
     * first sight (an initial report of Ok registers silently).
     * Fires the listener only when the level actually changes;
     * `detail` explains the change.
     */
    void transition(const std::string &component, HealthLevel level,
                    const std::string &detail);

    /** @return the component's current level (Ok when never
     *  reported). */
    HealthLevel level(const std::string &component) const;

    /** @return the worst level across all components. */
    HealthLevel worst() const;

    /** One component's current state (snapshot). */
    struct Component
    {
        std::string name;
        HealthLevel level = HealthLevel::Ok;
        std::string detail; //!< detail of the last level change
    };

    /** @return all components, in first-transition order (a
     *  deterministic order: no unordered containers involved). */
    std::vector<Component> components() const;

  private:
    mutable base::Mutex mutex_;
    std::vector<Component> components_ SCHED_GUARDED_BY(mutex_);
    /** Immutable after construction; called without the lock. */
    const Listener listener_;
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_HEALTH_HH
