/**
 * @file
 * Campaign runtime implementation.
 */

#include "core/campaign.hh"

#include <optional>
#include <utility>

#include "base/check.hh"
#include "base/clock.hh"
#include "core/memoizing_engine.hh"

namespace statsched
{
namespace core
{

CampaignResult
runCampaign(PerformanceEngine &engine, const Topology &topology,
            std::uint32_t tasks, std::uint64_t seed,
            const CampaignOptions &options)
{
    SCHED_REQUIRE(options.deadlineSeconds <= 0.0 ||
                  options.clock != nullptr,
                  "a wall-clock deadline requires an injected clock");
    SCHED_REQUIRE(!options.resume || !options.journalPath.empty(),
                  "resume requires a journal path");

    CampaignResult result;
    const JournalHeader header = JournalHeader::forCampaign(
        topology, tasks, seed, options.configHash);

    // Journal layer. On resume the recovered identity header must
    // match this campaign exactly: replaying outcomes of a different
    // seed, shape or engine configuration would not crash — it would
    // silently produce statistics of a run that never happened.
    std::optional<JournalingEngine> journaling;
    if (!options.journalPath.empty()) {
        JournalConfig journalConfig;
        journalConfig.onError = options.journalOnError;
        journalConfig.segmentBytes = options.journalSegmentBytes;
        journalConfig.sinkFactory = options.journalSinkFactory;
        if (options.health != nullptr) {
            Health *health = options.health;
            journalConfig.onDegrade =
                [health](const std::string &detail) {
                    health->transition("journal",
                                       HealthLevel::Degraded,
                                       detail);
                };
        }
        if (options.resume) {
            JournalRecovery recovery =
                recoverJournal(options.journalPath);
            if (!recovery.headerValid) {
                result.journalError =
                    "cannot resume: " + recovery.error;
                return result;
            }
            if (!(recovery.header == header)) {
                result.journalError =
                    "cannot resume: journal identity (seed, "
                    "topology, tasks or configuration hash) does "
                    "not match this campaign";
                return result;
            }
            result.resumed = true;
            result.journalTruncatedBytes = recovery.truncatedBytes;
            journaling.emplace(
                engine, MeasurementJournal(options.journalPath,
                                           recovery,
                                           std::move(journalConfig)));
            journaling->queueReplay(std::move(recovery.batches));
        } else {
            journaling.emplace(
                engine,
                MeasurementJournal(options.journalPath, header,
                                   std::move(journalConfig)));
        }
    }

    // Upper decorators, in the sanctioned order (see
    // performance_engine.hh): Metered(Memoizing(Resilient(journal))).
    PerformanceEngine *stack =
        journaling ? static_cast<PerformanceEngine *>(&*journaling)
                   : &engine;
    std::optional<ResilientEngine> resilient;
    if (options.resilient) {
        resilient.emplace(*stack, options.resilience);
        stack = &*resilient;
    }
    std::optional<MemoizingEngine> memoizing;
    if (options.memoize) {
        memoizing.emplace(*stack);
        stack = &*memoizing;
    }
    MeteredEngine metered(*stack);

    const double startSeconds =
        options.clock != nullptr ? options.clock->nowSeconds() : 0.0;

    IterativeOptions iterative = options.iterative;
    iterative.stopCheck =
        [&](std::size_t round) -> IterativeStop {
        if (journaling) {
            journaling->setRound(static_cast<std::uint32_t>(round));
            // Periodic Progress checkpoint at every round boundary:
            // operator telemetry for a crashed run, and the material
            // segment compaction reclaims (no-op while replaying —
            // the original run already journaled these rounds).
            if (round > 0 && !journaling->replaying()) {
                JournalCheckpoint progress;
                progress.kind = CheckpointKind::Progress;
                progress.round = static_cast<std::uint32_t>(round);
                progress.attempted = metered.stats().measurements;
                journaling->checkpoint(progress);
            }
        }
        if (options.stopRequested && options.stopRequested())
            return {AbortKind::Interrupted,
                    "shutdown requested; sampled state checkpointed"};
        if (options.deadlineSeconds > 0.0) {
            const double elapsed =
                options.clock->nowSeconds() - startSeconds;
            if (elapsed >= options.deadlineSeconds)
                return {AbortKind::DeadlineExceeded,
                        "wall-clock deadline of " +
                            std::to_string(options.deadlineSeconds) +
                            " s exceeded"};
        }
        if (options.maxMeasurements > 0 &&
            metered.stats().measurements >= options.maxMeasurements)
            return {AbortKind::BudgetExhausted,
                    "measurement budget of " +
                        std::to_string(options.maxMeasurements) +
                        " exhausted"};
        if (options.maxRounds > 0 && round >= options.maxRounds)
            return {AbortKind::RoundLimit,
                    "round budget of " +
                        std::to_string(options.maxRounds) +
                        " exhausted"};
        return {};
    };

    result.search = iterativeAssignmentSearch(metered, topology,
                                              tasks, seed, iterative);
    result.ran = true;
    result.engineStats = metered.stats();

    if (journaling) {
        result.replayedMeasurements =
            journaling->replayedMeasurements();
        result.recordedMeasurements =
            journaling->recordedMeasurements();
        result.journalDegraded = journaling->journalDegraded();
        result.unjournaledMeasurements =
            journaling->unjournaledMeasurements();
        result.journalSegmentsRotated =
            journaling->journal().segmentsRotated();
        result.journalCompactedBytes =
            journaling->journal().compactedBytes();
        if (journaling->mismatch())
            result.journalError = "journal replay diverged: " +
                journaling->mismatchDetail();
        else if (journaling->journalFailed()) {
            result.journalError = "journal media failure: " +
                journaling->journal().errorDetail();
            if (options.health != nullptr)
                options.health->transition(
                    "journal", HealthLevel::Failing,
                    journaling->journal().errorDetail());
        }

        // Final checkpoint: even an aborted campaign leaves a synced
        // summary of how far it got, and the Complete/Aborted kind
        // tells the next resume (and the operator) what happened.
        JournalCheckpoint checkpoint;
        checkpoint.kind = result.aborted() ? CheckpointKind::Aborted
                                           : CheckpointKind::Complete;
        checkpoint.round =
            static_cast<std::uint32_t>(result.search.steps.size());
        checkpoint.attempted = result.search.totalAttempted;
        checkpoint.sampled = result.search.totalSampled;
        checkpoint.best = result.search.final.bestObserved;
        journaling->checkpoint(checkpoint);
    }

    // Estimator health: only the FINAL estimate matters (early
    // rounds are Degraded by construction — too little tail data —
    // and an aborted campaign never reached its stop condition, so
    // its estimate is incomplete rather than unhealthy).
    if (options.health != nullptr && !result.aborted() &&
        result.search.final.pot.status != stats::EstimateStatus::Ok)
        options.health->transition(
            "estimator", HealthLevel::Degraded,
            std::string(estimateStatusName(
                result.search.final.pot.status)) +
                (result.search.final.pot.invalidReason.empty()
                     ? std::string()
                     : ": " + result.search.final.pot.invalidReason));
    return result;
}

} // namespace core
} // namespace statsched
