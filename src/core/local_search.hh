/**
 * @file
 * Local-search refinement of a task assignment.
 *
 * The paper's method *finds* a near-optimal assignment by sampling
 * and *certifies* it with the EVT bound. A natural downstream
 * combination is to polish the best sampled assignment with
 * hill-climbing before deployment: move one task to a free context,
 * or swap two tasks, keeping improvements. The EVT estimate then
 * doubles as a certificate of how much the polished assignment still
 * leaves on the table (bench/abl_local_search).
 */

#ifndef STATSCHED_CORE_LOCAL_SEARCH_HH
#define STATSCHED_CORE_LOCAL_SEARCH_HH

#include <cstdint>

#include "core/performance_engine.hh"

namespace statsched
{
namespace core
{

/**
 * Options of the hill climber.
 */
struct LocalSearchOptions
{
    /** Maximum engine measurements to spend. */
    std::size_t budget = 500;
    /** Candidate moves proposed per round (best one is taken). */
    std::size_t movesPerRound = 16;
    /** Stop after this many rounds without improvement. */
    std::size_t patience = 5;
    /** RNG seed for move proposals. */
    std::uint64_t seed = 0x10ca1;
};

/**
 * Result of a local-search run.
 */
struct LocalSearchResult
{
    Assignment best;                 //!< the refined assignment
    double bestPerformance = 0.0;    //!< its measured performance
    std::size_t measurements = 0;    //!< engine calls spent
    std::size_t improvements = 0;    //!< accepted moves
};

/**
 * Hill-climbs from a starting assignment under a measurement budget.
 *
 * Moves: relocate one task to a random free context, or swap the
 * contexts of two tasks. Each round proposes `movesPerRound`
 * candidates, measures them, and keeps the best if it improves on
 * the incumbent.
 *
 * @param engine  Measurement engine.
 * @param start   Starting assignment (e.g. the best sampled one).
 * @param options Budget and move parameters.
 */
LocalSearchResult
localSearchRefine(PerformanceEngine &engine, const Assignment &start,
                  const LocalSearchOptions &options = {});

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_LOCAL_SEARCH_HH
