/**
 * @file
 * Durable campaign runtime around the iterative algorithm.
 *
 * runCampaign() is the production entry point for a search campaign:
 * it assembles the sanctioned decorator stack around a caller-provided
 * measurement engine, wires in the crash-safe journal
 * (core/journal.hh), probes external stop conditions at round
 * boundaries — graceful shutdown, wall-clock deadline, measurement and
 * round budgets — and on resume replays the journal so the continued
 * run is bit-identical to an uninterrupted one.
 *
 * The stack the runner builds (outermost first, optional layers in
 * brackets):
 *
 *   Metered([Memoizing]([Resilient](Journaling(engine))))
 *
 * where `engine` is the caller's stack — typically
 * Parallel(FaultInjecting(Simulated)) or a hardware engine. The
 * journal must wrap everything with per-measurement-index state and
 * sit below everything whose state is rebuilt by re-driving the
 * search; see the determinism argument in core/journal.hh.
 *
 * Time and signals stay OUT of this module: the wall-clock deadline
 * reads an injected base::Clock and shutdown arrives through an
 * injected predicate (the CLI passes base::shutdownRequested), so the
 * campaign logic — like everything in src/core — remains a
 * deterministic function of its inputs and is testable with
 * base::ManualClock and a scripted predicate.
 */

#ifndef STATSCHED_CORE_CAMPAIGN_HH
#define STATSCHED_CORE_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>

#include "core/health.hh"
#include "core/iterative.hh"
#include "core/journal.hh"
#include "core/resilient_engine.hh"

namespace statsched
{

namespace base
{
class Clock;
} // namespace base

namespace core
{

/**
 * Configuration of a durable campaign run.
 */
struct CampaignOptions
{
    /** Parameters of the underlying iterative search. The runner owns
     *  stopCheck; anything the caller sets there is ignored. */
    IterativeOptions iterative;

    /** Journal file; empty disables journaling (and resume). */
    std::string journalPath;
    /** Resume from an existing journal instead of starting fresh.
     *  The journal's identity header (seed, topology, tasks,
     *  configHash) must match this run. */
    bool resume = false;
    /** Folded into the journal header so a resumed run can prove it
     *  uses the same engine/search configuration; callers hash
     *  whatever steers their measurements (see the CLI). */
    std::uint64_t configHash = 0;

    /** What a journal media failure (ENOSPC, EIO) means: Abort ends
     *  the campaign cleanly with the durable prefix intact; Degrade
     *  drops to memory-only recording and completes with exact
     *  results but reduced durability. Operational only — not part
     *  of the campaign identity hash. */
    JournalErrorPolicy journalOnError = JournalErrorPolicy::Abort;
    /** Rotate journal segments at this size (0 = single file). */
    std::uint64_t journalSegmentBytes = 0;
    /** Sink source for journal files; empty means real files. Tests
     *  and the chaos harness inject fault-injecting factories. */
    base::io::SinkFactory journalSinkFactory;

    /** Health aggregate receiving journal/shard/estimator
     *  transitions; optional, not owned. */
    Health *health = nullptr;

    /** Wall-clock budget in seconds; 0 disables. Requires `clock`. */
    double deadlineSeconds = 0.0;
    /** Clock the deadline reads; not owned. Required only when
     *  deadlineSeconds > 0. */
    base::Clock *clock = nullptr;
    /** Stop once this many measurements were requested (replay
     *  included, cache hits included); 0 disables. */
    std::uint64_t maxMeasurements = 0;
    /** Stop after this many completed rounds; 0 disables. */
    std::size_t maxRounds = 0;
    /** Probed at round boundaries for graceful shutdown (the CLI
     *  passes base::shutdownRequested); empty disables. */
    std::function<bool()> stopRequested;

    /** Insert a MemoizingEngine above the journal. */
    bool memoize = true;
    /** Insert a ResilientEngine above the journal. */
    bool resilient = false;
    /** Configuration of the resilient layer when enabled. */
    ResilientOptions resilience;
};

/**
 * Everything a driver needs to report a campaign.
 */
struct CampaignResult
{
    /** False when the campaign could not start (journal unusable or
     *  identity mismatch) — see journalError; the search result is
     *  then empty. */
    bool ran = false;
    /** The iterative search outcome (partial when aborted). */
    IterativeResult search;
    /** Stats of the whole engine stack the runner assembled. */
    EngineStats engineStats;

    /** True when this run resumed from a journal. */
    bool resumed = false;
    /** Measurements served from the journal during replay. */
    std::uint64_t replayedMeasurements = 0;
    /** Measurements performed fresh and journaled this run. */
    std::uint64_t recordedMeasurements = 0;
    /** Bytes of untrustworthy journal tail dropped by recovery. */
    std::uint64_t journalTruncatedBytes = 0;
    /** Non-empty on journal problems: unusable/mismatched journal
     *  (ran == false), replay divergence, or a media failure under
     *  policy Abort (ran == true). */
    std::string journalError;
    /** True when the journal degraded to memory-only recording
     *  (policy Degrade) — results are exact, durability is not. */
    bool journalDegraded = false;
    /** Measurements that never reached the journal after it
     *  degraded. */
    std::uint64_t unjournaledMeasurements = 0;
    /** Journal segment rotations performed this run. */
    std::uint64_t journalSegmentsRotated = 0;
    /** Bytes reclaimed by compacting sealed journal segments. */
    std::uint64_t journalCompactedBytes = 0;

    /** @return true when the campaign stopped on an external stop
     *  condition (not convergence, not the sample cap). */
    bool
    aborted() const
    {
        return search.abortKind != AbortKind::None;
    }
};

/**
 * Runs a durable campaign over `engine`.
 *
 * @param engine   Measurement stack to wrap (see file comment for
 *                 what belongs below the journal); not owned.
 * @param topology Processor shape.
 * @param tasks    Workload size.
 * @param seed     Sampler seed.
 * @param options  Campaign configuration.
 */
CampaignResult runCampaign(PerformanceEngine &engine,
                           const Topology &topology,
                           std::uint32_t tasks, std::uint64_t seed,
                           const CampaignOptions &options);

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_CAMPAIGN_HH
