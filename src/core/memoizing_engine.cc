/**
 * @file
 * MemoizingEngine implementation.
 */

#include "core/memoizing_engine.hh"

#include <cmath>
#include <limits>
#include <vector>
#include "base/check.hh"

namespace statsched
{
namespace core
{

double
MemoizingEngine::measure(const Assignment &assignment)
{
    const std::string key = assignment.canonicalKey();
    {
        base::MutexLock lock(mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }

    // Measure outside the lock; concurrent first measurements of the
    // same class both run, the first insert wins and both values are
    // draws of the same distribution.
    const double value = inner_.measure(assignment);
    misses_.fetch_add(1, std::memory_order_relaxed);
    // Failed readings (NaN from a quarantined or errored outcome
    // below) must not poison the cache: the class would stay invalid
    // forever even after the inner engine recovers.
    if (!std::isfinite(value))
        return value;
    base::MutexLock lock(mutex_);
    return cache_.emplace(key, value).first->second;
}

void
MemoizingEngine::measureBatch(std::span<const Assignment> batch,
                              std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    if (batch.empty())
        return;

    // Pass 1: resolve cache hits and collect the unique misses in
    // first-occurrence order. `slot[i]` is the miss sub-batch index
    // of item i, or SIZE_MAX for a hit.
    constexpr std::size_t kHit =
        std::numeric_limits<std::size_t>::max();
    std::vector<std::string> keys(batch.size());
    std::vector<std::size_t> slot(batch.size(), kHit);
    std::vector<Assignment> misses;
    std::vector<std::string> missKeys;
    std::unordered_map<std::string, std::size_t> pending;
    std::uint64_t hit_count = 0;

    {
        base::MutexLock lock(mutex_);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            keys[i] = batch[i].canonicalKey();
            const auto cached = cache_.find(keys[i]);
            if (cached != cache_.end()) {
                out[i] = cached->second;
                ++hit_count;
                continue;
            }
            const auto dup = pending.find(keys[i]);
            if (dup != pending.end()) {
                // Duplicate inside the batch: share the first
                // occurrence's measurement.
                slot[i] = dup->second;
                ++hit_count;
                continue;
            }
            slot[i] = misses.size();
            pending.emplace(keys[i], misses.size());
            misses.push_back(batch[i]);
            missKeys.push_back(keys[i]);
        }
    }

    hits_.fetch_add(hit_count, std::memory_order_relaxed);
    misses_.fetch_add(misses.size(), std::memory_order_relaxed);
    if (misses.empty())
        return;

    // Pass 2: one engine measurement per distinct uncached class.
    std::vector<double> values(misses.size());
    inner_.measureBatch(misses, values);

    // Pass 3: fill results and publish to the cache, walking the
    // misses in first-occurrence order. Failed readings (NaN from a
    // quarantined or errored outcome below) are handed back but never
    // cached — a poisoned entry would mark the class invalid forever.
    base::MutexLock lock(mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (slot[i] != kHit)
            out[i] = values[slot[i]];
    }
    for (std::size_t m = 0; m < misses.size(); ++m) {
        if (std::isfinite(values[m]))
            cache_.emplace(missKeys[m], values[m]);
    }
}

MeasurementOutcome
MemoizingEngine::measureOutcome(const Assignment &assignment)
{
    const std::string key = assignment.canonicalKey();
    {
        base::MutexLock lock(mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return MeasurementOutcome::classify(it->second);
        }
    }

    const MeasurementOutcome outcome =
        inner_.measureOutcome(assignment);
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (!outcome.ok())
        return outcome;
    base::MutexLock lock(mutex_);
    MeasurementOutcome result = outcome;
    result.value = cache_.emplace(key, outcome.value).first->second;
    return result;
}

void
MemoizingEngine::measureBatchOutcome(std::span<const Assignment> batch,
                                     std::span<MeasurementOutcome> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    if (batch.empty())
        return;

    // Same three-pass structure as the double channel; see
    // measureBatch() for the slot/pending bookkeeping.
    constexpr std::size_t kHit =
        std::numeric_limits<std::size_t>::max();
    std::vector<std::string> keys(batch.size());
    std::vector<std::size_t> slot(batch.size(), kHit);
    std::vector<Assignment> misses;
    std::vector<std::string> missKeys;
    std::unordered_map<std::string, std::size_t> pending;
    std::uint64_t hit_count = 0;

    {
        base::MutexLock lock(mutex_);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            keys[i] = batch[i].canonicalKey();
            const auto cached = cache_.find(keys[i]);
            if (cached != cache_.end()) {
                out[i] = MeasurementOutcome::classify(cached->second);
                ++hit_count;
                continue;
            }
            const auto dup = pending.find(keys[i]);
            if (dup != pending.end()) {
                slot[i] = dup->second;
                ++hit_count;
                continue;
            }
            slot[i] = misses.size();
            pending.emplace(keys[i], misses.size());
            misses.push_back(batch[i]);
            missKeys.push_back(keys[i]);
        }
    }

    hits_.fetch_add(hit_count, std::memory_order_relaxed);
    misses_.fetch_add(misses.size(), std::memory_order_relaxed);
    if (misses.empty())
        return;

    std::vector<MeasurementOutcome> outcomes(misses.size());
    inner_.measureBatchOutcome(misses, outcomes);

    // Duplicates of a failed first occurrence share the failed
    // outcome; only successful readings are published to the cache,
    // in first-occurrence order.
    base::MutexLock lock(mutex_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (slot[i] != kHit)
            out[i] = outcomes[slot[i]];
    }
    for (std::size_t m = 0; m < misses.size(); ++m) {
        if (outcomes[m].ok())
            cache_.emplace(missKeys[m], outcomes[m].value);
    }
}

std::size_t
MemoizingEngine::size() const
{
    base::MutexLock lock(mutex_);
    return cache_.size();
}

void
MemoizingEngine::clear()
{
    base::MutexLock lock(mutex_);
    cache_.clear();
}

} // namespace core
} // namespace statsched
