/**
 * @file
 * Measurement memoization over the assignment symmetry classes.
 *
 * The iterative algorithm and the local search re-measure assignments
 * they have already paid ~1.5 s for: random sampling with replacement
 * repeats classes (especially for small workloads, Table 1), and hill
 * climbing revisits neighbours. Performance is invariant under the
 * hardware symmetries (cores, pipes within a core, strands within a
 * pipe — the same equivalence Table 1 counts), so the cache key is
 * the Assignment::canonicalKey() of the equivalence class, not the
 * labeled placement.
 *
 * Semantics: a cache hit replays the first measured value of the
 * class instead of drawing a fresh noisy measurement. For noiseless
 * engines this is exact; for noisy engines it trades iid noise on
 * duplicates for a large experimentation-time saving (the duplicate
 * would measure the *same* true value, so only the noise realization
 * differs). Disable with --no-memoize where strict iid noise matters.
 *
 * Composition: place the memoizer *above* a ParallelEngine —
 * MemoizingEngine dedups the batch and forwards only the misses, so
 * the pool measures each distinct class once. The decorator is
 * thread-safe for concurrent measure() calls, but it deliberately
 * publishes no parallelKernel of its own.
 */

#ifndef STATSCHED_CORE_MEMOIZING_ENGINE_HH
#define STATSCHED_CORE_MEMOIZING_ENGINE_HH

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_map>

#include "base/sync.hh"
#include "core/performance_engine.hh"

namespace statsched
{
namespace core
{

/**
 * Decorator that caches measurements per canonical assignment class.
 */
class MemoizingEngine : public PerformanceEngine
{
  public:
    /** @param inner Engine to wrap; not owned. */
    explicit MemoizingEngine(PerformanceEngine &inner)
        : inner_(inner)
    {
    }

    double measure(const Assignment &assignment) override;

    /**
     * Measures a batch with intra-batch deduplication: each canonical
     * class present in the batch (or the cache) is forwarded to the
     * wrapped engine at most once, in first-occurrence order — so for
     * a fixed input batch the miss sub-batch, and therefore the
     * results, are deterministic.
     */
    void measureBatch(std::span<const Assignment> batch,
                      std::span<double> out) override;

    /**
     * Failure-aware single measurement: cache hits replay as Ok
     * outcomes; only successful fresh readings enter the cache, so a
     * transient failure is retried on the next request instead of
     * being replayed forever.
     */
    MeasurementOutcome
    measureOutcome(const Assignment &assignment) override;

    /**
     * Outcome analogue of measureBatch(): same intra-batch
     * deduplication (duplicates of a failed first occurrence share
     * its failed outcome), but failed outcomes are never cached
     * across batches.
     */
    void measureBatchOutcome(
        std::span<const Assignment> batch,
        std::span<MeasurementOutcome> out) override;

    std::string name() const override { return inner_.name(); }

    double
    secondsPerMeasurement() const override
    {
        return inner_.secondsPerMeasurement();
    }

    void
    collectStats(EngineStats &stats) const override
    {
        const std::uint64_t hits =
            hits_.load(std::memory_order_relaxed);
        stats.cacheHits += hits;
        stats.cacheMisses += misses_.load(std::memory_order_relaxed);
        // Hits cost no experimentation time; a MeteredEngine above
        // this decorator metered them, so give the time back. The
        // refund assumes the sanctioned ordering (meter above the
        // cache — see performance_engine.hh); the clamp keeps an
        // unsanctioned stack from reporting negative time.
        stats.modeledSeconds = std::max(
            0.0,
            stats.modeledSeconds - static_cast<double>(hits) *
                inner_.secondsPerMeasurement());
        inner_.collectStats(stats);
    }

    /** @return measurements served from the cache. */
    std::uint64_t
    hitCount() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    /** @return distinct canonical classes measured so far. */
    std::size_t size() const;

    /** Drops all cached measurements. */
    void clear();

  private:
    PerformanceEngine &inner_;
    mutable base::Mutex mutex_{"core::MemoizingEngine::mutex_"};
    /** Measured value per canonical class. */
    std::unordered_map<std::string, double> cache_
        SCHED_GUARDED_BY(mutex_);
    // Hit/miss tallies are documented-atomic: bumped outside the
    // cache lock on purpose (the measure paths count while the inner
    // engine runs unlocked), and each is an independent monotonic
    // counter with no cross-member invariant to snapshot.
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace core
} // namespace statsched

#endif // STATSCHED_CORE_MEMOIZING_ENGINE_HH
