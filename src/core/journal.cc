/**
 * @file
 * Measurement journal implementation.
 */

#include "core/journal.hh"

#include <array>
#include <cstring>
#include <utility>

#include "base/check.hh"
#include "base/logging.hh"

namespace statsched
{
namespace core
{

namespace
{

/** Record type tags (on-disk; never renumber). */
constexpr std::uint8_t kRecordBatchBegin = 1;
constexpr std::uint8_t kRecordMeasurement = 2;
constexpr std::uint8_t kRecordCheckpoint = 3;

constexpr std::array<char, 4> kMagic = {'S', 'J', 'N', 'L'};

/** Fixed payload sizes per record type. */
constexpr std::size_t kBatchBeginSize = 4 + 4;
constexpr std::size_t kMeasurementSize = 8 + 8 + 1 + 4;
constexpr std::size_t kCheckpointSize = 1 + 4 + 8 + 8 + 8;

/** Header: magic + version + identity payload + crc. */
constexpr std::size_t kHeaderSize =
    4 + 4 + 8 + 4 * 4 + 8 + 4;

/** Little-endian serialization cursor over a byte buffer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    void
    u8(std::uint8_t v)
    {
        out_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

  private:
    std::vector<std::uint8_t> &out_;
};

/** Little-endian deserialization cursor with bounds checking. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    std::size_t remaining() const { return size_ - pos_; }

    std::uint8_t
    u8()
    {
        SCHED_REQUIRE(remaining() >= 1, "journal read out of bounds");
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        SCHED_REQUIRE(remaining() >= 2, "journal read out of bounds");
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint32_t
    u32()
    {
        SCHED_REQUIRE(remaining() >= 4, "journal read out of bounds");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        SCHED_REQUIRE(remaining() >= 8, "journal read out of bounds");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Serializes the header (everything but nothing missing: magic,
 *  version, identity, trailing crc). */
std::vector<std::uint8_t>
serializeHeader(const JournalHeader &header)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(kHeaderSize);
    ByteWriter w(bytes);
    for (char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kJournalVersion);
    w.u64(header.seed);
    w.u32(header.cores);
    w.u32(header.pipesPerCore);
    w.u32(header.strandsPerPipe);
    w.u32(header.tasks);
    w.u64(header.configHash);
    w.u32(journalCrc32(bytes.data(), bytes.size()));
    SCHED_ENSURE(bytes.size() == kHeaderSize,
                 "journal header size drifted from the format");
    return bytes;
}

/** Record-level scan of one journal file (header + records). */
struct SegmentScan
{
    bool headerValid = false;
    JournalHeader header;
    std::vector<JournalBatch> batches;
    std::vector<JournalCheckpoint> checkpoints;
    std::uint64_t validBytes = 0; //!< trusted prefix of this file
    std::uint64_t totalBytes = 0; //!< file size as read
    std::string error;            //!< unusable header, if any

    /** @return true when every byte of the file is trusted (no torn
     *  tail) — the condition for trusting a successor segment. */
    bool
    clean() const
    {
        return headerValid && validBytes == totalBytes;
    }
};

/**
 * Validates one journal file: header, then records with group-commit
 * semantics (validBytes only advances at complete batch groups and
 * checkpoints). Shared by recovery and segment compaction.
 */
SegmentScan
scanSegment(const std::vector<std::uint8_t> &bytes)
{
    SegmentScan scan;
    scan.totalBytes = bytes.size();

    // Header: fixed size, trailing CRC over everything before it. A
    // bad header means the file is not ours (or the very first write
    // was torn) — unusable either way.
    if (bytes.size() < kHeaderSize) {
        scan.error = "journal shorter than its header";
        return scan;
    }
    {
        ByteReader r(bytes.data(), kHeaderSize);
        bool magicOk = true;
        for (char c : kMagic)
            magicOk &= r.u8() == static_cast<std::uint8_t>(c);
        if (!magicOk) {
            scan.error = "journal magic mismatch";
            return scan;
        }
        const std::uint32_t version = r.u32();
        if (version != kJournalVersion) {
            scan.error = "unsupported journal version " +
                std::to_string(version);
            return scan;
        }
        scan.header.seed = r.u64();
        scan.header.cores = r.u32();
        scan.header.pipesPerCore = r.u32();
        scan.header.strandsPerPipe = r.u32();
        scan.header.tasks = r.u32();
        scan.header.configHash = r.u64();
        const std::uint32_t storedCrc = r.u32();
        const std::uint32_t computedCrc =
            journalCrc32(bytes.data(), kHeaderSize - 4);
        if (storedCrc != computedCrc) {
            scan.error = "journal header checksum mismatch";
            return scan;
        }
    }
    scan.headerValid = true;
    scan.validBytes = kHeaderSize;

    // Records. The commit unit is the complete batch group: a
    // BatchBegin plus exactly `count` Measurement records. validBytes
    // only advances at group boundaries, so a crash mid-batch (torn
    // record or missing group members) drops the whole group — it
    // will be re-measured on resume with the same reserved indices.
    std::size_t offset = kHeaderSize;
    JournalBatch openGroup;
    std::uint32_t openRemaining = 0;
    bool groupOpen = false;

    for (;;) {
        if (bytes.size() - offset < 3)
            break; // torn frame prefix (or clean EOF)
        const std::uint8_t type = bytes[offset];
        const std::uint16_t size =
            static_cast<std::uint16_t>(bytes[offset + 1]) |
            static_cast<std::uint16_t>(bytes[offset + 2]) << 8;
        const std::size_t frame = 3u + size + 4u;
        if (bytes.size() - offset < frame)
            break; // torn record body
        const std::uint32_t storedCrc =
            static_cast<std::uint32_t>(bytes[offset + 3 + size]) |
            static_cast<std::uint32_t>(bytes[offset + 4 + size]) << 8 |
            static_cast<std::uint32_t>(bytes[offset + 5 + size])
                << 16 |
            static_cast<std::uint32_t>(bytes[offset + 6 + size])
                << 24;
        if (journalCrc32(bytes.data() + offset, 3u + size) !=
            storedCrc)
            break; // corrupt record: distrust it and everything after

        ByteReader r(bytes.data() + offset + 3, size);
        bool parsed = true;
        switch (type) {
          case kRecordBatchBegin: {
            if (size != kBatchBeginSize || groupOpen) {
                parsed = false;
                break;
            }
            openGroup = JournalBatch();
            openGroup.round = r.u32();
            openRemaining = r.u32();
            groupOpen = true;
            break;
          }
          case kRecordMeasurement: {
            if (size != kMeasurementSize || !groupOpen ||
                openRemaining == 0) {
                parsed = false;
                break;
            }
            JournalMeasurement m;
            m.keyHash = r.u64();
            m.outcome.value = r.f64();
            const std::uint8_t status = r.u8();
            if (status >
                static_cast<std::uint8_t>(
                    MeasureStatus::Quarantined)) {
                parsed = false;
                break;
            }
            m.outcome.status = static_cast<MeasureStatus>(status);
            m.outcome.attempts = r.u32();
            openGroup.measurements.push_back(m);
            --openRemaining;
            break;
          }
          case kRecordCheckpoint: {
            if (size != kCheckpointSize || groupOpen) {
                parsed = false;
                break;
            }
            JournalCheckpoint cp;
            const std::uint8_t kind = r.u8();
            if (kind >
                static_cast<std::uint8_t>(CheckpointKind::Aborted)) {
                parsed = false;
                break;
            }
            cp.kind = static_cast<CheckpointKind>(kind);
            cp.round = r.u32();
            cp.attempted = r.u64();
            cp.sampled = r.u64();
            cp.best = r.f64();
            scan.checkpoints.push_back(cp);
            break;
          }
          default:
            parsed = false; // unknown type: written by a future
                            // version or garbage — either way stop
            break;
        }
        if (!parsed)
            break;

        offset += frame;
        if (groupOpen && openRemaining == 0) {
            scan.batches.push_back(std::move(openGroup));
            groupOpen = false;
            scan.validBytes = offset;
        } else if (!groupOpen) {
            scan.validBytes = offset; // checkpoint committed
        }
    }

    return scan;
}

} // anonymous namespace

std::uint32_t
journalCrc32(const void *data, std::size_t size, std::uint32_t seed)
{
    // IEEE 802.3 reflected CRC32, bytewise table; the table is built
    // once on first use.
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();

    const std::uint8_t *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::uint64_t
journalKeyHash(const Assignment &assignment)
{
    // FNV-1a over the canonical key, so symmetric assignments hash
    // equal — the same equivalence notion the memoization cache uses.
    const std::string key = assignment.canonicalKey();
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

const char *
journalErrorPolicyName(JournalErrorPolicy policy)
{
    switch (policy) {
      case JournalErrorPolicy::Abort:
        return "abort";
      case JournalErrorPolicy::Degrade:
        return "degrade";
    }
    return "?";
}

std::string
journalSegmentPath(const std::string &base, std::uint32_t index)
{
    std::string suffix = std::to_string(index);
    while (suffix.size() < 3)
        suffix.insert(suffix.begin(), '0');
    return base + "." + suffix;
}

JournalRecovery
recoverJournal(const std::string &path)
{
    JournalRecovery recovery;
    std::vector<std::uint8_t> bytes;

    // A plain file at the exact path is a single-file journal, even
    // when a stale segment chain also exists — the plain file is what
    // the last writer committed to.
    if (base::io::readFileBytes(path, bytes).ok()) {
        recovery.fileExists = true;
        recovery.segmented = false;
        recovery.activeSegment = path;
        recovery.activeSegmentIndex = 0;
        SegmentScan scan = scanSegment(bytes);
        if (!scan.headerValid) {
            recovery.error = scan.error;
            return recovery;
        }
        recovery.headerValid = true;
        recovery.header = scan.header;
        recovery.batches = std::move(scan.batches);
        recovery.checkpoints = std::move(scan.checkpoints);
        recovery.validBytes = scan.validBytes;
        recovery.truncatedBytes = scan.totalBytes - scan.validBytes;
        recovery.segmentFiles.push_back(path);
        return recovery;
    }

    if (!base::io::fileExists(journalSegmentPath(path, 0))) {
        recovery.error = "journal does not exist or is unreadable";
        return recovery;
    }

    // Segment chain: every segment carries the full identity header;
    // trust stops at the first torn, foreign or unreadable segment —
    // anything after the trust horizon was written by a writer whose
    // predecessor state we cannot vouch for.
    recovery.segmented = true;
    for (std::uint32_t i = 0;; ++i) {
        const std::string segPath = journalSegmentPath(path, i);
        if (!base::io::readFileBytes(segPath, bytes).ok()) {
            if (base::io::fileExists(segPath))
                recovery.staleSegments.push_back(segPath);
            break; // end of chain (or unreadable: stop trusting)
        }
        recovery.fileExists = true;
        SegmentScan scan = scanSegment(bytes);
        const bool trusted = scan.headerValid &&
            (i == 0 || scan.header == recovery.header);
        if (i == 0 && !trusted) {
            recovery.error = scan.error.empty()
                ? "journal header mismatch"
                : scan.error;
            return recovery;
        }
        if (!trusted) {
            recovery.staleSegments.push_back(segPath);
            for (std::uint32_t j = i + 1;
                 base::io::fileExists(journalSegmentPath(path, j));
                 ++j)
                recovery.staleSegments.push_back(
                    journalSegmentPath(path, j));
            break;
        }
        if (i == 0) {
            recovery.headerValid = true;
            recovery.header = scan.header;
        }
        for (JournalBatch &b : scan.batches)
            recovery.batches.push_back(std::move(b));
        for (const JournalCheckpoint &cp : scan.checkpoints)
            recovery.checkpoints.push_back(cp);
        recovery.segmentFiles.push_back(segPath);
        recovery.activeSegment = segPath;
        recovery.activeSegmentIndex = i;
        recovery.validBytes = scan.validBytes;
        recovery.truncatedBytes += scan.totalBytes - scan.validBytes;
        if (!scan.clean()) {
            // Torn tail mid-chain: successors were appended after
            // bytes we just distrusted — they are stale, not valid.
            for (std::uint32_t j = i + 1;
                 base::io::fileExists(journalSegmentPath(path, j));
                 ++j)
                recovery.staleSegments.push_back(
                    journalSegmentPath(path, j));
            break;
        }
    }
    return recovery;
}

MeasurementJournal::MeasurementJournal(const std::string &path,
                                       const JournalHeader &header,
                                       JournalConfig config)
    : config_(std::move(config)), basePath_(path)
{
    if (!config_.sinkFactory)
        config_.sinkFactory = base::io::fileSinkFactory();
    headerBytes_ = serializeHeader(header);
    segmented_ = config_.segmentBytes > 0;
    activePath_ = segmented_ ? journalSegmentPath(path, 0) : path;
    if (segmented_) {
        // A fresh segmented journal must not leave segments from a
        // previous campaign behind the new chain head — recovery
        // would splice their records onto ours.
        for (std::uint32_t i = 1;
             base::io::fileExists(journalSegmentPath(path, i)); ++i)
            base::io::removeFile(journalSegmentPath(path, i));
    }
    openActive(/*truncate=*/true);
    if (recording() &&
        writeChecked(headerBytes_.data(), headerBytes_.size()))
        sync();
}

MeasurementJournal::MeasurementJournal(const std::string &path,
                                       std::uint64_t validBytes)
    : basePath_(path), activePath_(path)
{
    config_.sinkFactory = base::io::fileSinkFactory();
    // Physically drop the untrustworthy tail before appending: a
    // later recovery must never see the old bytes behind new records.
    const base::io::IoResult truncated =
        base::io::truncateFile(path, validBytes);
    if (!truncated.ok()) {
        handleIoFailure(truncated);
        return;
    }
    openActive(/*truncate=*/false);
    segmentBytes_ = validBytes;
}

MeasurementJournal::MeasurementJournal(const std::string &path,
                                       const JournalRecovery &recovery,
                                       JournalConfig config)
    : config_(std::move(config)), basePath_(path)
{
    if (!config_.sinkFactory)
        config_.sinkFactory = base::io::fileSinkFactory();
    headerBytes_ = serializeHeader(recovery.header);
    // Continue in the mode found on disk: a single-file journal stays
    // single-file even when the resumed run asks for segments (the
    // two layouts must never coexist at one path).
    segmented_ = recovery.segmented;
    segmentIndex_ = recovery.activeSegmentIndex;
    activePath_ = recovery.activeSegment.empty()
        ? path
        : recovery.activeSegment;
    for (const std::string &stale : recovery.staleSegments)
        base::io::removeFile(stale);
    const base::io::IoResult truncated =
        base::io::truncateFile(activePath_, recovery.validBytes);
    if (!truncated.ok()) {
        handleIoFailure(truncated);
        return;
    }
    openActive(/*truncate=*/false);
    segmentBytes_ = recovery.validBytes;
}

MeasurementJournal::MeasurementJournal(
    MeasurementJournal &&other) noexcept
    : config_(std::move(other.config_)),
      sink_(std::move(other.sink_)),
      basePath_(std::move(other.basePath_)),
      activePath_(std::move(other.activePath_)),
      segmented_(other.segmented_),
      segmentIndex_(other.segmentIndex_),
      segmentBytes_(other.segmentBytes_),
      headerBytes_(std::move(other.headerBytes_)),
      degraded_(other.degraded_),
      failed_(other.failed_),
      errorDetail_(std::move(other.errorDetail_)),
      droppedRecords_(other.droppedRecords_),
      rotations_(other.rotations_),
      compactedBytes_(other.compactedBytes_),
      bytesWritten_(other.bytesWritten_)
{
}

void
MeasurementJournal::openActive(bool truncate)
{
    base::io::IoResult result;
    sink_ = config_.sinkFactory(activePath_, truncate, result);
    if (!sink_)
        handleIoFailure(result);
}

void
MeasurementJournal::handleIoFailure(const base::io::IoResult &result)
{
    if (degraded_ || failed_)
        return; // already latched
    errorDetail_ = activePath_ + ": " + result.detail;
    sink_.reset();
    if (config_.onError == JournalErrorPolicy::Degrade) {
        degraded_ = true;
        warn("journal degraded to memory-only recording (" +
             errorDetail_ + "); results stay exact, durability from "
             "this point is lost");
        if (config_.onDegrade)
            config_.onDegrade(errorDetail_);
    } else {
        failed_ = true;
        warn("journal media failure (" + errorDetail_ +
             "); policy abort: refusing to continue unjournaled");
    }
}

bool
MeasurementJournal::writeChecked(const std::uint8_t *data,
                                 std::size_t size)
{
    base::io::IoResult result;
    const std::uint8_t *p = data;
    std::size_t left = size;
    // Bounded immediate retries of the unwritten remainder (the
    // injected Clock has no sleep, and a full disk does not heal in
    // microseconds — the policy, not a timer, decides what a
    // persistent failure means). Retrying only the remainder keeps
    // the byte stream consistent: no frame prefix is ever duplicated.
    for (std::uint32_t attempt = 0; attempt <= config_.writeRetries;
         ++attempt) {
        result = sink_->write(p, left);
        bytesWritten_ += result.bytesWritten;
        segmentBytes_ += result.bytesWritten;
        if (result.ok())
            return true;
        p += result.bytesWritten;
        left -= result.bytesWritten;
    }
    handleIoFailure(result);
    return false;
}

void
MeasurementJournal::writeRecord(std::uint8_t type,
                                const std::uint8_t *payload,
                                std::size_t size)
{
    if (!recording()) {
        ++droppedRecords_;
        return;
    }
    SCHED_REQUIRE(size <= 0xffff, "journal record payload too large");
    std::vector<std::uint8_t> frame;
    frame.reserve(3 + size + 4);
    ByteWriter w(frame);
    w.u8(type);
    w.u16(static_cast<std::uint16_t>(size));
    frame.insert(frame.end(), payload, payload + size);
    w.u32(journalCrc32(frame.data(), frame.size()));
    writeChecked(frame.data(), frame.size());
}

void
MeasurementJournal::rotateSegment()
{
    // Seal the active segment: everything in it must be durable
    // before a successor exists, or recovery could trust a successor
    // whose predecessor still had bytes in flight.
    const base::io::IoResult sealed = sink_->sync();
    if (!sealed.ok()) {
        handleIoFailure(sealed);
        return;
    }
    sink_.reset();
    compactSealedSegment(activePath_);
    ++segmentIndex_;
    ++rotations_;
    activePath_ = journalSegmentPath(basePath_, segmentIndex_);
    openActive(/*truncate=*/true);
    if (!recording())
        return;
    segmentBytes_ = 0;
    if (writeChecked(headerBytes_.data(), headerBytes_.size())) {
        const base::io::IoResult synced = sink_->sync();
        if (!synced.ok())
            handleIoFailure(synced);
    }
}

void
MeasurementJournal::compactSealedSegment(const std::string &path)
{
    // Best-effort space reclaim on a segment that will never be
    // appended again: interior Progress checkpoints are operator
    // telemetry, not replay substance — drop them. Batch groups are
    // always kept (replay needs every one). Any failure abandons the
    // rewrite and keeps the original: compaction is an optimization,
    // never a correctness step.
    std::vector<std::uint8_t> bytes;
    if (!base::io::readFileBytes(path, bytes).ok())
        return;
    SegmentScan scan = scanSegment(bytes);
    if (!scan.clean())
        return;

    std::vector<std::uint8_t> out(bytes.begin(),
                                  bytes.begin() + kHeaderSize);
    std::size_t offset = kHeaderSize;
    while (offset < bytes.size()) {
        const std::uint8_t type = bytes[offset];
        const std::uint16_t size =
            static_cast<std::uint16_t>(bytes[offset + 1]) |
            static_cast<std::uint16_t>(bytes[offset + 2]) << 8;
        const std::size_t frame = 3u + size + 4u;
        bool keep = true;
        if (type == kRecordCheckpoint && size == kCheckpointSize) {
            const std::uint8_t kind = bytes[offset + 3];
            keep = kind !=
                static_cast<std::uint8_t>(CheckpointKind::Progress);
        }
        if (keep)
            out.insert(out.end(), bytes.begin() + offset,
                       bytes.begin() + offset + frame);
        offset += frame;
    }
    if (out.size() == bytes.size())
        return; // nothing to reclaim

    const std::string tmp = path + ".tmp";
    {
        base::io::IoResult result;
        std::unique_ptr<base::io::Sink> sink =
            config_.sinkFactory(tmp, /*truncate=*/true, result);
        if (!sink)
            return;
        if (!sink->write(out.data(), out.size()).ok() ||
            !sink->sync().ok()) {
            sink.reset();
            base::io::removeFile(tmp);
            return;
        }
    }
    if (!base::io::renameFile(tmp, path).ok()) {
        base::io::removeFile(tmp);
        return;
    }
    compactedBytes_ += bytes.size() - out.size();
}

void
MeasurementJournal::beginBatch(std::uint32_t round,
                               std::uint32_t count)
{
    // Rotation only between groups, so no group ever spans segments.
    if (recording() && segmented_ &&
        segmentBytes_ >= config_.segmentBytes)
        rotateSegment();
    std::vector<std::uint8_t> payload;
    payload.reserve(kBatchBeginSize);
    ByteWriter w(payload);
    w.u32(round);
    w.u32(count);
    writeRecord(kRecordBatchBegin, payload.data(), payload.size());
}

void
MeasurementJournal::appendMeasurement(
    std::uint64_t keyHash, const MeasurementOutcome &outcome)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(kMeasurementSize);
    ByteWriter w(payload);
    w.u64(keyHash);
    w.f64(outcome.value);
    w.u8(static_cast<std::uint8_t>(outcome.status));
    w.u32(outcome.attempts);
    writeRecord(kRecordMeasurement, payload.data(), payload.size());
}

void
MeasurementJournal::appendCheckpoint(
    const JournalCheckpoint &checkpoint)
{
    if (recording() && segmented_ &&
        segmentBytes_ >= config_.segmentBytes)
        rotateSegment();
    std::vector<std::uint8_t> payload;
    payload.reserve(kCheckpointSize);
    ByteWriter w(payload);
    w.u8(static_cast<std::uint8_t>(checkpoint.kind));
    w.u32(checkpoint.round);
    w.u64(checkpoint.attempted);
    w.u64(checkpoint.sampled);
    w.f64(checkpoint.best);
    writeRecord(kRecordCheckpoint, payload.data(), payload.size());
}

void
MeasurementJournal::sync()
{
    if (!recording())
        return;
    // fsync, not a userspace flush: the write-ahead property must
    // hold across power loss, not only across process death — and a
    // failed fsync means the records are NOT durable, which is
    // exactly as serious as a failed write.
    const base::io::IoResult result = sink_->sync();
    if (!result.ok())
        handleIoFailure(result);
}

JournalingEngine::JournalingEngine(PerformanceEngine &inner,
                                   MeasurementJournal journal)
    : inner_(inner), journal_(std::move(journal))
{
}

void
JournalingEngine::queueReplay(std::vector<JournalBatch> batches)
{
    SCHED_REQUIRE(replayed_ == 0 && recorded_ == 0,
                  "replay queued after measurements started");
    for (JournalBatch &batch : batches)
        replayQueue_.push_back(std::move(batch));
}

void
JournalingEngine::failBatch(std::span<MeasurementOutcome> out,
                            std::string detail)
{
    if (!mismatch_) {
        mismatch_ = true;
        mismatchDetail_ = std::move(detail);
        warn("journal replay diverged: " + mismatchDetail_);
    }
    for (MeasurementOutcome &o : out)
        o = MeasurementOutcome::failure(MeasureStatus::Errored);
}

void
JournalingEngine::failUnjournaledBatch(
    std::span<MeasurementOutcome> out)
{
    // Policy Abort after a media failure: the write-ahead property
    // forbids handing upward what is not durable, so the batch fails
    // and the search above aborts cleanly. The durable prefix is
    // intact and the campaign resumable once space returns.
    if (!ioFailureWarned_) {
        ioFailureWarned_ = true;
        warn("journal unavailable, failing measurements: " +
             journal_.errorDetail());
    }
    for (MeasurementOutcome &o : out)
        o = MeasurementOutcome::failure(MeasureStatus::Errored);
}

void
JournalingEngine::serveReplayedBatch(
    std::span<const Assignment> batch,
    std::span<MeasurementOutcome> out)
{
    JournalBatch group = std::move(replayQueue_.front());
    replayQueue_.pop_front();

    if (group.measurements.size() != batch.size()) {
        failBatch(out,
                  "batch size " + std::to_string(batch.size()) +
                      " does not match journaled group of " +
                      std::to_string(group.measurements.size()) +
                      " (configuration changed?)");
        return;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (journalKeyHash(batch[i]) != group.measurements[i].keyHash) {
            failBatch(out,
                      "assignment key at batch index " +
                          std::to_string(i) +
                          " does not match the journal "
                          "(configuration changed?)");
            return;
        }
    }

    // Fast-forward the inner engines' per-measurement index cursors
    // (the reservation contract in performance_engine.hh): after the
    // queue drains, fresh measurements continue the noise and fault
    // streams exactly where the original run left them. This also
    // keeps a ShardedEngine below in lock-step — its global cursor
    // advances here and its workers lazily fast-forward on their next
    // request, so a sharded campaign resumes bit-identically under
    // any shard count.
    inner_.reserveMeasurementIndices(batch.size());

    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = group.measurements[i].outcome;
    replayed_ += batch.size();
}

void
JournalingEngine::measureBatchOutcome(
    std::span<const Assignment> batch,
    std::span<MeasurementOutcome> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    if (batch.empty())
        return;
    if (mismatch_) {
        // Divergence is latched: keep failing so the search aborts
        // quickly instead of appending post-divergence garbage.
        failBatch(out, mismatchDetail_);
        return;
    }
    if (!replayQueue_.empty()) {
        serveReplayedBatch(batch, out);
        return;
    }
    if (journal_.failed()) {
        failUnjournaledBatch(out);
        return;
    }

    inner_.measureBatchOutcome(batch, out);

    // Write-ahead append: one group per batch, synced before the
    // results are handed upward, so a crash can lose at most the
    // batch currently in flight — which recovery then drops and the
    // resumed run re-measures with the same reserved indices.
    journal_.beginBatch(round_,
                        static_cast<std::uint32_t>(batch.size()));
    for (std::size_t i = 0; i < batch.size(); ++i)
        journal_.appendMeasurement(journalKeyHash(batch[i]), out[i]);
    journal_.sync();
    if (journal_.failed()) {
        // The media died under this very batch (policy Abort):
        // discard the measured outcomes rather than hand upward what
        // never became durable.
        failUnjournaledBatch(out);
        return;
    }
    if (journal_.degraded())
        unjournaled_ += batch.size();
    else
        recorded_ += batch.size();
}

double
JournalingEngine::measure(const Assignment &assignment)
{
    MeasurementOutcome outcome = measureOutcome(assignment);
    return outcome.valueOrNaN();
}

MeasurementOutcome
JournalingEngine::measureOutcome(const Assignment &assignment)
{
    MeasurementOutcome outcome;
    measureBatchOutcome(std::span<const Assignment>(&assignment, 1),
                        std::span<MeasurementOutcome>(&outcome, 1));
    return outcome;
}

void
JournalingEngine::measureBatch(std::span<const Assignment> batch,
                               std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    std::vector<MeasurementOutcome> outcomes(batch.size());
    measureBatchOutcome(batch, outcomes);
    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = outcomes[i].valueOrNaN();
}

void
JournalingEngine::checkpoint(const JournalCheckpoint &checkpoint)
{
    if (replaying())
        return; // already on disk from the original run
    journal_.appendCheckpoint(checkpoint);
    journal_.sync();
}

} // namespace core
} // namespace statsched
