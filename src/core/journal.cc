/**
 * @file
 * Measurement journal implementation.
 */

#include "core/journal.hh"

#include <array>
#include <cstring>
#include <filesystem>
#include <utility>

#include <unistd.h>

#include "base/check.hh"
#include "base/logging.hh"

namespace statsched
{
namespace core
{

namespace
{

/** Record type tags (on-disk; never renumber). */
constexpr std::uint8_t kRecordBatchBegin = 1;
constexpr std::uint8_t kRecordMeasurement = 2;
constexpr std::uint8_t kRecordCheckpoint = 3;

constexpr std::array<char, 4> kMagic = {'S', 'J', 'N', 'L'};

/** Fixed payload sizes per record type. */
constexpr std::size_t kBatchBeginSize = 4 + 4;
constexpr std::size_t kMeasurementSize = 8 + 8 + 1 + 4;
constexpr std::size_t kCheckpointSize = 1 + 4 + 8 + 8 + 8;

/** Header: magic + version + identity payload + crc. */
constexpr std::size_t kHeaderSize =
    4 + 4 + 8 + 4 * 4 + 8 + 4;

/** Little-endian serialization cursor over a byte buffer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    void
    u8(std::uint8_t v)
    {
        out_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

  private:
    std::vector<std::uint8_t> &out_;
};

/** Little-endian deserialization cursor with bounds checking. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    std::size_t remaining() const { return size_ - pos_; }

    std::uint8_t
    u8()
    {
        SCHED_REQUIRE(remaining() >= 1, "journal read out of bounds");
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        SCHED_REQUIRE(remaining() >= 2, "journal read out of bounds");
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint32_t
    u32()
    {
        SCHED_REQUIRE(remaining() >= 4, "journal read out of bounds");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        SCHED_REQUIRE(remaining() >= 8, "journal read out of bounds");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Serializes the header (everything but nothing missing: magic,
 *  version, identity, trailing crc). */
std::vector<std::uint8_t>
serializeHeader(const JournalHeader &header)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(kHeaderSize);
    ByteWriter w(bytes);
    for (char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kJournalVersion);
    w.u64(header.seed);
    w.u32(header.cores);
    w.u32(header.pipesPerCore);
    w.u32(header.strandsPerPipe);
    w.u32(header.tasks);
    w.u64(header.configHash);
    w.u32(journalCrc32(bytes.data(), bytes.size()));
    SCHED_ENSURE(bytes.size() == kHeaderSize,
                 "journal header size drifted from the format");
    return bytes;
}

} // anonymous namespace

std::uint32_t
journalCrc32(const void *data, std::size_t size, std::uint32_t seed)
{
    // IEEE 802.3 reflected CRC32, bytewise table; the table is built
    // once on first use.
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();

    const std::uint8_t *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::uint64_t
journalKeyHash(const Assignment &assignment)
{
    // FNV-1a over the canonical key, so symmetric assignments hash
    // equal — the same equivalence notion the memoization cache uses.
    const std::string key = assignment.canonicalKey();
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

JournalRecovery
recoverJournal(const std::string &path)
{
    JournalRecovery recovery;

    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        recovery.error = "journal does not exist or is unreadable";
        return recovery;
    }
    recovery.fileExists = true;

    std::vector<std::uint8_t> bytes;
    {
        std::array<std::uint8_t, 1 << 16> chunk;
        std::size_t n = 0;
        while ((n = std::fread(chunk.data(), 1, chunk.size(), file)) >
               0)
            bytes.insert(bytes.end(), chunk.begin(),
                         chunk.begin() + n);
        std::fclose(file);
    }

    // Header: fixed size, trailing CRC over everything before it. A
    // bad header means the file is not ours (or the very first write
    // was torn) — unusable either way.
    if (bytes.size() < kHeaderSize) {
        recovery.error = "journal shorter than its header";
        return recovery;
    }
    {
        ByteReader r(bytes.data(), kHeaderSize);
        bool magicOk = true;
        for (char c : kMagic)
            magicOk &= r.u8() == static_cast<std::uint8_t>(c);
        if (!magicOk) {
            recovery.error = "journal magic mismatch";
            return recovery;
        }
        const std::uint32_t version = r.u32();
        if (version != kJournalVersion) {
            recovery.error = "unsupported journal version " +
                std::to_string(version);
            return recovery;
        }
        recovery.header.seed = r.u64();
        recovery.header.cores = r.u32();
        recovery.header.pipesPerCore = r.u32();
        recovery.header.strandsPerPipe = r.u32();
        recovery.header.tasks = r.u32();
        recovery.header.configHash = r.u64();
        const std::uint32_t storedCrc = r.u32();
        const std::uint32_t computedCrc =
            journalCrc32(bytes.data(), kHeaderSize - 4);
        if (storedCrc != computedCrc) {
            recovery.error = "journal header checksum mismatch";
            return recovery;
        }
    }
    recovery.headerValid = true;
    recovery.validBytes = kHeaderSize;

    // Records. The commit unit is the complete batch group: a
    // BatchBegin plus exactly `count` Measurement records. validBytes
    // only advances at group boundaries, so a crash mid-batch (torn
    // record or missing group members) drops the whole group — it
    // will be re-measured on resume with the same reserved indices.
    std::size_t offset = kHeaderSize;
    JournalBatch openGroup;
    std::uint32_t openRemaining = 0;
    bool groupOpen = false;

    for (;;) {
        if (bytes.size() - offset < 3)
            break; // torn frame prefix (or clean EOF)
        const std::uint8_t type = bytes[offset];
        const std::uint16_t size =
            static_cast<std::uint16_t>(bytes[offset + 1]) |
            static_cast<std::uint16_t>(bytes[offset + 2]) << 8;
        const std::size_t frame = 3u + size + 4u;
        if (bytes.size() - offset < frame)
            break; // torn record body
        const std::uint32_t storedCrc =
            static_cast<std::uint32_t>(bytes[offset + 3 + size]) |
            static_cast<std::uint32_t>(bytes[offset + 4 + size]) << 8 |
            static_cast<std::uint32_t>(bytes[offset + 5 + size])
                << 16 |
            static_cast<std::uint32_t>(bytes[offset + 6 + size])
                << 24;
        if (journalCrc32(bytes.data() + offset, 3u + size) !=
            storedCrc)
            break; // corrupt record: distrust it and everything after

        ByteReader r(bytes.data() + offset + 3, size);
        bool parsed = true;
        switch (type) {
          case kRecordBatchBegin: {
            if (size != kBatchBeginSize || groupOpen) {
                parsed = false;
                break;
            }
            openGroup = JournalBatch();
            openGroup.round = r.u32();
            openRemaining = r.u32();
            groupOpen = true;
            break;
          }
          case kRecordMeasurement: {
            if (size != kMeasurementSize || !groupOpen ||
                openRemaining == 0) {
                parsed = false;
                break;
            }
            JournalMeasurement m;
            m.keyHash = r.u64();
            m.outcome.value = r.f64();
            const std::uint8_t status = r.u8();
            if (status >
                static_cast<std::uint8_t>(
                    MeasureStatus::Quarantined)) {
                parsed = false;
                break;
            }
            m.outcome.status = static_cast<MeasureStatus>(status);
            m.outcome.attempts = r.u32();
            openGroup.measurements.push_back(m);
            --openRemaining;
            break;
          }
          case kRecordCheckpoint: {
            if (size != kCheckpointSize || groupOpen) {
                parsed = false;
                break;
            }
            JournalCheckpoint cp;
            const std::uint8_t kind = r.u8();
            if (kind >
                static_cast<std::uint8_t>(CheckpointKind::Aborted)) {
                parsed = false;
                break;
            }
            cp.kind = static_cast<CheckpointKind>(kind);
            cp.round = r.u32();
            cp.attempted = r.u64();
            cp.sampled = r.u64();
            cp.best = r.f64();
            recovery.checkpoints.push_back(cp);
            break;
          }
          default:
            parsed = false; // unknown type: written by a future
                            // version or garbage — either way stop
            break;
        }
        if (!parsed)
            break;

        offset += frame;
        if (groupOpen && openRemaining == 0) {
            recovery.batches.push_back(std::move(openGroup));
            groupOpen = false;
            recovery.validBytes = offset;
        } else if (!groupOpen) {
            recovery.validBytes = offset; // checkpoint committed
        }
    }

    recovery.truncatedBytes =
        static_cast<std::uint64_t>(bytes.size()) - recovery.validBytes;
    return recovery;
}

MeasurementJournal::MeasurementJournal(const std::string &path,
                                       const JournalHeader &header)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        STATSCHED_FATAL("cannot create journal at " + path);
    const std::vector<std::uint8_t> bytes = serializeHeader(header);
    if (std::fwrite(bytes.data(), 1, bytes.size(), file_) !=
        bytes.size())
        STATSCHED_FATAL("cannot write journal header to " + path);
    bytesWritten_ = bytes.size();
    sync();
}

MeasurementJournal::MeasurementJournal(const std::string &path,
                                       std::uint64_t validBytes)
    : path_(path)
{
    // Physically drop the untrustworthy tail before appending: a
    // later recovery must never see the old bytes behind new records.
    std::error_code ec;
    std::filesystem::resize_file(path, validBytes, ec);
    if (ec)
        STATSCHED_FATAL("cannot truncate journal " + path + " to its "
                    "valid prefix: " + ec.message());
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr)
        STATSCHED_FATAL("cannot reopen journal at " + path);
}

MeasurementJournal::MeasurementJournal(
    MeasurementJournal &&other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      bytesWritten_(other.bytesWritten_)
{
}

MeasurementJournal::~MeasurementJournal()
{
    if (file_ != nullptr) {
        std::fflush(file_);
        std::fclose(file_);
    }
}

void
MeasurementJournal::writeRecord(std::uint8_t type,
                                const std::uint8_t *payload,
                                std::size_t size)
{
    SCHED_REQUIRE(file_ != nullptr, "journal already moved from");
    SCHED_REQUIRE(size <= 0xffff, "journal record payload too large");
    std::vector<std::uint8_t> frame;
    frame.reserve(3 + size + 4);
    ByteWriter w(frame);
    w.u8(type);
    w.u16(static_cast<std::uint16_t>(size));
    frame.insert(frame.end(), payload, payload + size);
    w.u32(journalCrc32(frame.data(), frame.size()));
    if (std::fwrite(frame.data(), 1, frame.size(), file_) !=
        frame.size())
        STATSCHED_FATAL("journal write failed at " + path_ +
                    " (disk full?)");
    bytesWritten_ += frame.size();
}

void
MeasurementJournal::beginBatch(std::uint32_t round,
                               std::uint32_t count)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(kBatchBeginSize);
    ByteWriter w(payload);
    w.u32(round);
    w.u32(count);
    writeRecord(kRecordBatchBegin, payload.data(), payload.size());
}

void
MeasurementJournal::appendMeasurement(
    std::uint64_t keyHash, const MeasurementOutcome &outcome)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(kMeasurementSize);
    ByteWriter w(payload);
    w.u64(keyHash);
    w.f64(outcome.value);
    w.u8(static_cast<std::uint8_t>(outcome.status));
    w.u32(outcome.attempts);
    writeRecord(kRecordMeasurement, payload.data(), payload.size());
}

void
MeasurementJournal::appendCheckpoint(
    const JournalCheckpoint &checkpoint)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(kCheckpointSize);
    ByteWriter w(payload);
    w.u8(static_cast<std::uint8_t>(checkpoint.kind));
    w.u32(checkpoint.round);
    w.u64(checkpoint.attempted);
    w.u64(checkpoint.sampled);
    w.f64(checkpoint.best);
    writeRecord(kRecordCheckpoint, payload.data(), payload.size());
}

void
MeasurementJournal::sync()
{
    SCHED_REQUIRE(file_ != nullptr, "journal already moved from");
    if (std::fflush(file_) != 0)
        STATSCHED_FATAL("journal flush failed at " + path_);
    // fsync, not just fflush: the write-ahead property must hold
    // across power loss, not only across process death.
    ::fsync(::fileno(file_));
}

JournalingEngine::JournalingEngine(PerformanceEngine &inner,
                                   MeasurementJournal journal)
    : inner_(inner), journal_(std::move(journal))
{
}

void
JournalingEngine::queueReplay(std::vector<JournalBatch> batches)
{
    SCHED_REQUIRE(replayed_ == 0 && recorded_ == 0,
                  "replay queued after measurements started");
    for (JournalBatch &batch : batches)
        replayQueue_.push_back(std::move(batch));
}

void
JournalingEngine::failBatch(std::span<MeasurementOutcome> out,
                            std::string detail)
{
    if (!mismatch_) {
        mismatch_ = true;
        mismatchDetail_ = std::move(detail);
        warn("journal replay diverged: " + mismatchDetail_);
    }
    for (MeasurementOutcome &o : out)
        o = MeasurementOutcome::failure(MeasureStatus::Errored);
}

void
JournalingEngine::serveReplayedBatch(
    std::span<const Assignment> batch,
    std::span<MeasurementOutcome> out)
{
    JournalBatch group = std::move(replayQueue_.front());
    replayQueue_.pop_front();

    if (group.measurements.size() != batch.size()) {
        failBatch(out,
                  "batch size " + std::to_string(batch.size()) +
                      " does not match journaled group of " +
                      std::to_string(group.measurements.size()) +
                      " (configuration changed?)");
        return;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (journalKeyHash(batch[i]) != group.measurements[i].keyHash) {
            failBatch(out,
                      "assignment key at batch index " +
                          std::to_string(i) +
                          " does not match the journal "
                          "(configuration changed?)");
            return;
        }
    }

    // Fast-forward the inner engines' per-measurement index cursors
    // (the reservation contract in performance_engine.hh): after the
    // queue drains, fresh measurements continue the noise and fault
    // streams exactly where the original run left them. This also
    // keeps a ShardedEngine below in lock-step — its global cursor
    // advances here and its workers lazily fast-forward on their next
    // request, so a sharded campaign resumes bit-identically under
    // any shard count.
    inner_.reserveMeasurementIndices(batch.size());

    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = group.measurements[i].outcome;
    replayed_ += batch.size();
}

void
JournalingEngine::measureBatchOutcome(
    std::span<const Assignment> batch,
    std::span<MeasurementOutcome> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    if (batch.empty())
        return;
    if (mismatch_) {
        // Divergence is latched: keep failing so the search aborts
        // quickly instead of appending post-divergence garbage.
        failBatch(out, mismatchDetail_);
        return;
    }
    if (!replayQueue_.empty()) {
        serveReplayedBatch(batch, out);
        return;
    }

    inner_.measureBatchOutcome(batch, out);

    // Write-ahead append: one group per batch, synced before the
    // results are handed upward, so a crash can lose at most the
    // batch currently in flight — which recovery then drops and the
    // resumed run re-measures with the same reserved indices.
    journal_.beginBatch(round_,
                        static_cast<std::uint32_t>(batch.size()));
    for (std::size_t i = 0; i < batch.size(); ++i)
        journal_.appendMeasurement(journalKeyHash(batch[i]), out[i]);
    journal_.sync();
    recorded_ += batch.size();
}

double
JournalingEngine::measure(const Assignment &assignment)
{
    MeasurementOutcome outcome = measureOutcome(assignment);
    return outcome.valueOrNaN();
}

MeasurementOutcome
JournalingEngine::measureOutcome(const Assignment &assignment)
{
    MeasurementOutcome outcome;
    measureBatchOutcome(std::span<const Assignment>(&assignment, 1),
                        std::span<MeasurementOutcome>(&outcome, 1));
    return outcome;
}

void
JournalingEngine::measureBatch(std::span<const Assignment> batch,
                               std::span<double> out)
{
    SCHED_REQUIRE(batch.size() == out.size(),
                  "batch/result size mismatch");
    std::vector<MeasurementOutcome> outcomes(batch.size());
    measureBatchOutcome(batch, outcomes);
    for (std::size_t i = 0; i < batch.size(); ++i)
        out[i] = outcomes[i].valueOrNaN();
}

void
JournalingEngine::checkpoint(const JournalCheckpoint &checkpoint)
{
    if (replaying())
        return; // already on disk from the original run
    journal_.appendCheckpoint(checkpoint);
    journal_.sync();
}

} // namespace core
} // namespace statsched
