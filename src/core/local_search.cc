/**
 * @file
 * Local search implementation.
 */

#include "core/local_search.hh"

#include <algorithm>
#include <vector>

#include "base/check.hh"
#include "stats/rng.hh"

namespace statsched
{
namespace core
{

namespace
{

/**
 * Proposes a neighbour: with equal probability relocate one task to
 * a random free context or swap two tasks' contexts.
 */
std::vector<ContextId>
proposeMove(const std::vector<ContextId> &contexts,
            const Topology &topo, stats::Rng &rng)
{
    std::vector<ContextId> next(contexts);
    const std::size_t t =
        static_cast<std::size_t>(rng.uniformInt(next.size()));

    if (next.size() >= 2 && (rng.next() & 1u)) {
        // Swap two tasks.
        std::size_t other =
            static_cast<std::size_t>(rng.uniformInt(next.size() - 1));
        if (other >= t)
            ++other;
        std::swap(next[t], next[other]);
        return next;
    }

    // Relocate to a free context.
    std::vector<bool> used(topo.contexts(), false);
    for (ContextId c : contexts)
        used[c] = true;
    std::vector<ContextId> free_ctx;
    for (ContextId c = 0; c < topo.contexts(); ++c) {
        if (!used[c])
            free_ctx.push_back(c);
    }
    if (free_ctx.empty()) {
        // Full machine: fall back to a swap.
        std::size_t other =
            static_cast<std::size_t>(rng.uniformInt(next.size() - 1));
        if (other >= t)
            ++other;
        std::swap(next[t], next[other]);
        return next;
    }
    next[t] = free_ctx[rng.uniformInt(free_ctx.size())];
    return next;
}

} // anonymous namespace

LocalSearchResult
localSearchRefine(PerformanceEngine &engine, const Assignment &start,
                  const LocalSearchOptions &options)
{
    SCHED_REQUIRE(options.budget >= 1 &&
                  options.movesPerRound >= 1,
                  "degenerate local-search options");

    stats::Rng rng(options.seed);
    const Topology &topo = start.topology();

    LocalSearchResult result{start, engine.measure(start), 1, 0};
    std::size_t stale_rounds = 0;

    while (result.measurements < options.budget &&
           stale_rounds < options.patience) {
        // Propose the whole round first, then measure it as one
        // batch the engine can parallelize or deduplicate. The
        // proposals depend only on the RNG and the incumbent, which
        // is fixed within a round, so this is identical to the
        // propose-measure-propose interleaving.
        const std::size_t moves =
            std::min(options.movesPerRound,
                     options.budget - result.measurements);
        std::vector<Assignment> candidates;
        candidates.reserve(moves);
        for (std::size_t m = 0; m < moves; ++m) {
            candidates.emplace_back(
                topo, proposeMove(result.best.contexts(), topo, rng));
        }
        std::vector<double> values(candidates.size());
        engine.measureBatch(candidates, values);
        result.measurements += candidates.size();

        // Keep the round's best strictly-improving move (ties keep
        // the earliest, as the serial scan did).
        std::vector<ContextId> best_move;
        double best_value = result.bestPerformance;
        for (std::size_t m = 0; m < candidates.size(); ++m) {
            if (values[m] > best_value) {
                best_value = values[m];
                best_move = candidates[m].contexts();
            }
        }

        if (best_move.empty()) {
            ++stale_rounds;
            continue;
        }
        stale_rounds = 0;
        ++result.improvements;
        result.best = Assignment(topo, best_move);
        result.bestPerformance = best_value;
    }
    return result;
}

} // namespace core
} // namespace statsched
